//! Associative scan elements and their combination rules.
//!
//! From S. Särkkä and Á. F. García-Fernández, "Temporal Parallelization of
//! Bayesian Smoothers", IEEE TAC 66(1), 2021 (the paper's reference [3]).

use kalman_dense::{gemm, matmul, matmul_tn, Cholesky, LuFactor, Matrix, Trans};
use kalman_model::{KalmanError, LinearModel, Result};

/// Filtering element `a_i = (A, b, C, η, J)`.
///
/// The element parametrizes `p(x_i | y_i, x_{i-1})` as
/// `N(x_i; A x_{i-1} + b, C)` together with the likelihood factor
/// `exp(−½ x_{i-1}ᵀ J x_{i-1} + ηᵀ x_{i-1})`; combining elements under
/// [`FilterElement::combine`] is associative, and the prefix combination of
/// elements `0..=i` carries the filtered mean in `b` and covariance in `C`.
#[derive(Debug, Clone)]
pub struct FilterElement {
    /// Linear coefficient `A`.
    pub a: Matrix,
    /// Offset `b` (column vector).
    pub b: Matrix,
    /// Covariance `C`.
    pub c: Matrix,
    /// Information vector `η` (column vector).
    pub eta: Matrix,
    /// Information matrix `J`.
    pub j: Matrix,
}

impl FilterElement {
    /// Builds the element for state `i` of a uniform model.
    ///
    /// For `i == 0` the element conditions the prior on state 0's
    /// observation; for `i > 0` it conditions the transition
    /// `N(F x + c, Q)` on the observation of state `i` (if any).
    ///
    /// # Errors
    ///
    /// [`KalmanError::NotPositiveDefinite`] if an innovation covariance is
    /// not SPD.
    pub fn for_state(model: &LinearModel, i: usize) -> Result<FilterElement> {
        let n = model.state_dim(0);
        let step = &model.steps[i];
        if i == 0 {
            let prior = model.prior.as_ref().ok_or(KalmanError::PriorRequired)?;
            let m0 = Matrix::col_from_slice(&prior.mean);
            let p0 = prior.cov.to_dense();
            let (b, c) = match &step.observation {
                None => (m0, p0),
                Some(obs) => update(&m0, &p0, &obs.g, &obs.o, &obs.noise.to_dense(), i)?,
            };
            Ok(FilterElement {
                a: Matrix::zeros(n, n),
                b,
                c,
                eta: Matrix::zeros(n, 1),
                j: Matrix::zeros(n, n),
            })
        } else {
            let evo = step.evolution.as_ref().expect("validated");
            let f = &evo.f;
            let cvec = Matrix::col_from_slice(&evo.c);
            let q = evo.noise.to_dense();
            match &step.observation {
                None => Ok(FilterElement {
                    a: f.clone(),
                    b: cvec,
                    c: q,
                    eta: Matrix::zeros(n, 1),
                    j: Matrix::zeros(n, n),
                }),
                Some(obs) => {
                    let g = &obs.g;
                    let o = Matrix::col_from_slice(&obs.o);
                    let l = obs.noise.to_dense();
                    // S = G Q Gᵀ + L
                    let gq = matmul(g, &q);
                    let mut s = l;
                    gemm(1.0, &gq, Trans::No, g, Trans::Yes, 1.0, &mut s);
                    s.symmetrize();
                    let s_chol = Cholesky::new(&s)
                        .map_err(|_| KalmanError::NotPositiveDefinite { step: i })?;
                    // K = Q Gᵀ S⁻¹ = (S⁻¹ G Q)ᵀ.
                    let k = s_chol.solve(&gq).transpose();
                    // innovation offset: o − G c
                    let resid = &o - &matmul(g, &cvec);
                    // A = (I − K G) F
                    let mut ikg = Matrix::identity(n);
                    gemm(-1.0, &k, Trans::No, g, Trans::No, 1.0, &mut ikg);
                    let a = matmul(&ikg, f);
                    // b = c + K (o − G c)
                    let b = &cvec + &matmul(&k, &resid);
                    // C = (I − K G) Q
                    let mut c = matmul(&ikg, &q);
                    c.symmetrize();
                    // η = Fᵀ Gᵀ S⁻¹ (o − Gc);  J = Fᵀ Gᵀ S⁻¹ G F
                    let sinv_resid = s_chol.solve(&resid);
                    let gf = matmul(g, f);
                    let eta = matmul_tn(&gf, &sinv_resid);
                    let sinv_gf = s_chol.solve(&gf);
                    let mut j = matmul_tn(&gf, &sinv_gf);
                    j.symmetrize();
                    Ok(FilterElement { a, b, c, eta, j })
                }
            }
        }
    }

    /// The associative combination `self ⊗ later` (`self` is earlier in
    /// time).
    ///
    /// With `D = I + C₁J₂` (and `I + J₂C₁ = Dᵀ`, since `C₁`, `J₂` are
    /// symmetric), the TAC-2021 rules are
    ///
    /// ```text
    /// A = A₂D⁻¹A₁            η = A₁ᵀD⁻ᵀ(η₂ − J₂b₁) + η₁
    /// b = A₂D⁻¹(b₁ + C₁η₂) + b₂    J = A₁ᵀD⁻ᵀJ₂A₁ + J₁
    /// C = A₂D⁻¹C₁A₂ᵀ + C₂
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `D` is singular (cannot happen for SPD covariances).
    pub fn combine(&self, later: &FilterElement) -> FilterElement {
        let n = self.a.rows();
        let (a1, b1, c1, eta1, j1) = (&self.a, &self.b, &self.c, &self.eta, &self.j);
        let (a2, b2, c2, eta2, j2) = (&later.a, &later.b, &later.c, &later.eta, &later.j);

        // D = I + C1 J2.
        let mut d = Matrix::identity(n);
        gemm(1.0, c1, Trans::No, j2, Trans::No, 1.0, &mut d);
        let lu_dt =
            LuFactor::new(d.transpose()).expect("I + J2·C1 is nonsingular for SPD covariances");
        let lu_d = LuFactor::new(d).expect("I + C1·J2 is nonsingular for SPD covariances");

        // D⁻¹ [A1 | b1+C1η2 | C1] in one multi-RHS solve.
        let b1_c1eta2 = b1 + &matmul(c1, eta2);
        let solved = lu_d.solve(&Matrix::hstack(&[a1, &b1_c1eta2, c1]));
        let dinv_a1 = solved.sub_matrix(0, 0, n, n);
        let dinv_b = solved.sub_matrix(0, n, n, 1);
        let dinv_c1 = solved.sub_matrix(0, n + 1, n, n);

        let a = matmul(a2, &dinv_a1);
        let b = &matmul(a2, &dinv_b) + b2;
        let mut c = matmul(&matmul(a2, &dinv_c1), &a2.transpose());
        c += c2;
        c.symmetrize();

        // D⁻ᵀ [(η2 − J2 b1) | J2 A1] in one multi-RHS solve.
        let eta2_j2b1 = eta2 - &matmul(j2, b1);
        let j2a1 = matmul(j2, a1);
        let solved2 = lu_dt.solve(&Matrix::hstack(&[&eta2_j2b1, &j2a1]));
        let dt_eta = solved2.sub_matrix(0, 0, n, 1);
        let dt_j2a1 = solved2.sub_matrix(0, 1, n, n);

        let eta = &matmul_tn(a1, &dt_eta) + eta1;
        let mut j = matmul_tn(a1, &dt_j2a1);
        j += j1;
        j.symmetrize();

        FilterElement { a, b, c, eta, j }
    }
}

/// Kalman measurement update (helper for the first element).
fn update(
    m: &Matrix,
    p: &Matrix,
    g: &Matrix,
    o: &[f64],
    l: &Matrix,
    step: usize,
) -> Result<(Matrix, Matrix)> {
    let gp = matmul(g, p);
    let mut s = l.clone();
    gemm(1.0, &gp, Trans::No, g, Trans::Yes, 1.0, &mut s);
    s.symmetrize();
    let s_chol = Cholesky::new(&s).map_err(|_| KalmanError::NotPositiveDefinite { step })?;
    let k = s_chol.solve(&gp).transpose();
    let resid = &Matrix::col_from_slice(o) - &matmul(g, m);
    let mean = m + &matmul(&k, &resid);
    let mut cov = p.clone();
    gemm(-1.0, &k, Trans::No, &gp, Trans::No, 1.0, &mut cov);
    cov.symmetrize();
    Ok((mean, cov))
}

/// Smoothing element `b_i = (E, g, L)`.
///
/// Parametrizes `p(x_i | x_{i+1}, y_{0..i})` as `N(x_i; E x_{i+1} + g, L)`;
/// the suffix combination of elements `i..=k` carries the smoothed mean in
/// `g` and covariance in `L`.
#[derive(Debug, Clone)]
pub struct SmoothElement {
    /// Gain `E` onto the next state.
    pub e: Matrix,
    /// Offset `g` (column vector).
    pub g: Matrix,
    /// Covariance `L`.
    pub l: Matrix,
}

impl SmoothElement {
    /// Builds the element for state `i` from the filtered `(m_i, P_i)` and
    /// the evolution into state `i+1` (pass `None` for the last state).
    ///
    /// # Errors
    ///
    /// [`KalmanError::NotPositiveDefinite`] if the predictive covariance is
    /// not SPD.
    pub fn for_state(
        model: &LinearModel,
        i: usize,
        m: &[f64],
        p: &Matrix,
    ) -> Result<SmoothElement> {
        let n = p.rows();
        let mvec = Matrix::col_from_slice(m);
        if i + 1 >= model.num_states() {
            return Ok(SmoothElement {
                e: Matrix::zeros(n, n),
                g: mvec,
                l: p.clone(),
            });
        }
        let evo = model.steps[i + 1].evolution.as_ref().expect("validated");
        let f = &evo.f;
        // P⁻ = F P Fᵀ + Q
        let fp = matmul(f, p);
        let mut pred = evo.noise.to_dense();
        gemm(1.0, &fp, Trans::No, f, Trans::Yes, 1.0, &mut pred);
        pred.symmetrize();
        let chol =
            Cholesky::new(&pred).map_err(|_| KalmanError::NotPositiveDefinite { step: i + 1 })?;
        // E = P Fᵀ (P⁻)⁻¹ = ((P⁻)⁻¹ F P)ᵀ
        let e = chol.solve(&fp).transpose();
        // g = m − E (F m + c)
        let mut fm = matmul(f, &mvec);
        for (v, c) in fm.col_mut(0).iter_mut().zip(&evo.c) {
            *v += c;
        }
        let g = &mvec - &matmul(&e, &fm);
        // L = P − E F P
        let mut l = p.clone();
        gemm(-1.0, &e, Trans::No, &fp, Trans::No, 1.0, &mut l);
        l.symmetrize();
        Ok(SmoothElement { e, g, l })
    }

    /// The associative combination `self ⊗ later` (`self` is earlier in
    /// time; the scan runs from the last state toward the first).
    pub fn combine(&self, later: &SmoothElement) -> SmoothElement {
        let e = matmul(&self.e, &later.e);
        let g = &matmul(&self.e, &later.g) + &self.g;
        let mut l = matmul(&matmul(&self.e, &later.l), &self.e.transpose());
        l += &self.l;
        l.symmetrize();
        SmoothElement { e, g, l }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalman_model::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn first_element_is_posterior_of_prior() {
        let model = generators::paper_benchmark(&mut rng(1), 3, 4, true);
        let e = FilterElement::for_state(&model, 0).unwrap();
        assert_eq!(e.a.max_abs(), 0.0);
        assert_eq!(e.j.max_abs(), 0.0);
        // b must equal the one-step Kalman update of the prior.
        let fr = kalman_seq::kalman_filter(&model).unwrap();
        for (x, y) in e.b.col(0).iter().zip(&fr.means[0]) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(e.c.approx_eq(&fr.covs[0], 1e-12));
    }

    #[test]
    fn element_without_prior_fails() {
        let model = generators::paper_benchmark(&mut rng(2), 2, 3, false);
        assert!(matches!(
            FilterElement::for_state(&model, 0),
            Err(KalmanError::PriorRequired)
        ));
    }

    /// Associativity: (a ⊗ b) ⊗ c == a ⊗ (b ⊗ c).
    #[test]
    fn filter_combination_is_associative() {
        let model = generators::paper_benchmark(&mut rng(3), 3, 3, true);
        let e1 = FilterElement::for_state(&model, 1).unwrap();
        let e2 = FilterElement::for_state(&model, 2).unwrap();
        let e3 = FilterElement::for_state(&model, 3).unwrap();
        let left = e1.combine(&e2).combine(&e3);
        let right = e1.combine(&e2.combine(&e3));
        assert!(left.a.approx_eq(&right.a, 1e-10));
        assert!(left.b.approx_eq(&right.b, 1e-10));
        assert!(left.c.approx_eq(&right.c, 1e-10));
        assert!(left.eta.approx_eq(&right.eta, 1e-10));
        assert!(left.j.approx_eq(&right.j, 1e-10));
    }

    /// Sequential fold of filter elements reproduces the Kalman filter.
    #[test]
    fn filter_fold_matches_kalman_filter() {
        let model = generators::paper_benchmark(&mut rng(4), 3, 10, true);
        let fr = kalman_seq::kalman_filter(&model).unwrap();
        let mut acc = FilterElement::for_state(&model, 0).unwrap();
        for (x, y) in acc.b.col(0).iter().zip(&fr.means[0]) {
            assert!((x - y).abs() < 1e-10);
        }
        for i in 1..model.num_states() {
            let e = FilterElement::for_state(&model, i).unwrap();
            acc = acc.combine(&e);
            for (x, y) in acc.b.col(0).iter().zip(&fr.means[i]) {
                assert!((x - y).abs() < 1e-8, "state {i}");
            }
            assert!(acc.c.approx_eq(&fr.covs[i], 1e-8), "cov state {i}");
        }
    }

    #[test]
    fn smooth_combination_is_associative() {
        let model = generators::paper_benchmark(&mut rng(5), 3, 3, true);
        let fr = kalman_seq::kalman_filter(&model).unwrap();
        let e1 = SmoothElement::for_state(&model, 0, &fr.means[0], &fr.covs[0]).unwrap();
        let e2 = SmoothElement::for_state(&model, 1, &fr.means[1], &fr.covs[1]).unwrap();
        let e3 = SmoothElement::for_state(&model, 2, &fr.means[2], &fr.covs[2]).unwrap();
        let left = e1.combine(&e2).combine(&e3);
        let right = e1.combine(&e2.combine(&e3));
        assert!(left.e.approx_eq(&right.e, 1e-10));
        assert!(left.g.approx_eq(&right.g, 1e-10));
        assert!(left.l.approx_eq(&right.l, 1e-10));
    }

    #[test]
    fn unobserved_elements_are_pure_prediction() {
        let mut model = generators::paper_benchmark(&mut rng(6), 2, 3, true);
        model.steps[2].observation = None;
        let e = FilterElement::for_state(&model, 2).unwrap();
        let evo = model.steps[2].evolution.as_ref().unwrap();
        assert!(e.a.approx_eq(&evo.f, 0.0));
        assert_eq!(e.eta.max_abs(), 0.0);
        assert_eq!(e.j.max_abs(), 0.0);
    }
}

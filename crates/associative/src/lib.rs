//! The Särkkä & García-Fernández (2021) parallel-in-time Kalman smoother.
//!
//! The paper's "Associative" comparison algorithm: the forward (filtering)
//! and backward (smoothing) sweeps of a conventional RTS smoother are
//! restructured as *prefix sums* under custom associative operations, then
//! evaluated with a parallel scan (`kalman_par::inclusive_scan_in_place` /
//! `suffix_scan_in_place`), giving a `Θ(log k)` critical path in the number
//! of combine operations.
//!
//! Characteristics relative to the odd-even QR smoother (paper §6):
//!
//! * requires a prior on the initial state and a uniform model
//!   (`H_i = I`, square `F_i`);
//! * states and covariances are computed *together* — there is no cheaper
//!   no-covariance variant;
//! * can handle singular input covariances (like RTS), but nothing is known
//!   about its numerical stability, whereas the QR smoothers are
//!   conditionally backward stable.
//!
//! Since the backend unification the smoother runs on the plan/execute
//! engine: [`ScanPlan`] executes a shared symbolic
//! [`kalman_odd_even::ScanSchedule`] against whitened step data with
//! plan-owned scratch (zero steady-state allocations), implements
//! [`kalman_odd_even::SmootherBackend`], and serves through the streaming
//! stack next to the odd-even plan.  Its fixed Brent–Kung combine tree
//! makes `Seq ≡ Par` **bitwise** (the one-shot scan helpers in
//! `kalman-par` only promise rounding-level agreement across grains).
//! [`associative_smooth`] is a thin one-shot wrapper over a transient
//! plan.
//!
//! # Example
//!
//! ```
//! use kalman_associative::{associative_smooth, AssociativeOptions};
//! use kalman_model::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
//! let model = generators::paper_benchmark(&mut rng, 4, 50, true);
//! let smoothed = associative_smooth(&model, AssociativeOptions::default()).unwrap();
//! assert_eq!(smoothed.len(), 51);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod elements;
mod plan;
mod smoother;

pub use elements::{FilterElement, SmoothElement};
pub use plan::{ScanOptions, ScanPlan};
pub use smoother::{associative_filter, associative_smooth, AssociativeOptions};

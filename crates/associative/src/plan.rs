//! Plan/execute split for the associative-scan smoother.
//!
//! [`ScanPlan`] is the scan counterpart of `kalman_odd_even::SmoothPlan`:
//! a shared symbolic [`ScanSchedule`] (which element pairs combine at which
//! sweep level — a function of the window length alone) plus plan-owned
//! numeric scratch, executing against borrowed [`WhitenedStep`] data so the
//! same whitened window every other backend consumes drives the scan too.
//! In steady state (same schedule call after call) `execute`/`solve_into`/
//! `selinv_into` perform **zero heap allocations**: element and sweep
//! containers retain capacity, every matrix cycles through the
//! `kalman-dense` workspace, and batch-scale shapes additionally hold an
//! arena scope across each phase (the PR 4 budgets).
//!
//! Unlike the batch elements in [`crate::FilterElement::for_state`], the
//! planned path starts from *whitened* blocks.  With `VᵀV = K⁻¹` the
//! whitened evolution rows say `D u_i = B u_{i-1} + rhs + ε`, `ε ∼ N(0, I)`,
//! so for square invertible `D` (the `H = I` models the scan supports) the
//! covariance-form transition is recovered per step as
//!
//! ```text
//! F = D⁻¹B      c = D⁻¹·rhs      Q = D⁻¹D⁻ᵀ
//! ```
//!
//! and whitened observation rows contribute `G = C`, `o = rhs`, `L = I`.
//! State 0's stacked rows (prior and/or observations) enter in information
//! form: `J₀ = CᵀC`, `η₀ = Cᵀ·rhs`, and a Cholesky of `J₀` yields the
//! posterior `(m₀, P₀)` seeding the first element.  A window whose head
//! rows do not determine state 0 (no prior, rank-deficient observations)
//! fails with [`KalmanError::RankDeficient`] — dispatchers fall back to the
//! odd-even backend, which handles the semidefinite case.
//!
//! Both sweeps run the schedule's fixed Brent–Kung tree: each level's
//! disjoint pairs combine in parallel into pre-assigned slots and write
//! back serially, so `ExecPolicy::Seq` and `ExecPolicy::par()` perform the
//! identical floating-point operations — the scan backend is bitwise
//! deterministic across thread counts and grains.  With
//! [`ScanOptions::fold`] the plan instead folds the same elements left to
//! right (the `SequentialRts` backend): a different association order,
//! agreeing with the tree to rounding (≤ 1e-8), useful as the cheap
//! sequential reference and for short windows where tree overhead loses.

use crate::elements::{FilterElement, SmoothElement};
use kalman_dense::{gemm, matmul, matmul_tn, Cholesky, LuFactor, Matrix, Trans};
use kalman_model::{KalmanError, LinearModel, Result, Smoothed, WhitenedEvo, WhitenedStep};
use kalman_odd_even::{BackendKind, ScanSchedule};
use kalman_par::{map_collect_into, ExecPolicy};
use std::sync::Arc;

/// Options for a [`ScanPlan`].
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Execution policy for element construction and the tree sweeps.
    pub policy: ExecPolicy,
    /// Fold the elements sequentially instead of sweeping the tree — the
    /// `SequentialRts` backend.  The fold ignores `policy` for the sweeps
    /// (element construction still parallelizes).
    pub fold: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            policy: ExecPolicy::par(),
            fold: false,
        }
    }
}

/// Covariance-form transition recovered from whitened evolution rows:
/// `u_i = F u_{i-1} + c + w`, `w ∼ N(0, Q)`.
#[derive(Debug, Clone)]
struct CovForm {
    f: Matrix,
    c: Matrix,
    q: Matrix,
}

fn cov_form(i: usize, evo: &WhitenedEvo) -> Result<CovForm> {
    let n = evo.d.cols();
    if evo.d.rows() != n || evo.b.cols() != n {
        return Err(KalmanError::UnsupportedStructure(
            "the scan backend requires square evolution blocks (uniform dimensions, H = I)".into(),
        ));
    }
    let lu = LuFactor::new(evo.d.clone()) // lint: allow(alloc, "pooled Matrix clone: buffers come from the thread-local workspace; steady-state scan flushes are heap-alloc-free (tests/alloc_steady_state.rs)")
        .map_err(|_| KalmanError::RankDeficient { state: i })?;
    let f = lu.solve(&evo.b);
    let c = lu.solve(&evo.rhs);
    let dinv = lu.inverse();
    let mut q = matmul(&dinv, &dinv.transpose());
    q.symmetrize();
    Ok(CovForm { f, c, q })
}

/// The first filtering element: state 0's posterior from its stacked
/// whitened rows (prior rows and/or observation rows), via the information
/// form `J₀ = CᵀC`, `η₀ = Cᵀ·rhs`.
fn head_element(step: &WhitenedStep) -> Result<FilterElement> {
    let n = step.state_dim;
    let obs = step.obs.as_ref().ok_or(KalmanError::PriorRequired)?;
    let mut j0 = matmul_tn(&obs.c, &obs.c);
    j0.symmetrize();
    let eta0 = matmul_tn(&obs.c, &obs.rhs);
    let chol = Cholesky::new(&j0).map_err(|_| KalmanError::RankDeficient { state: 0 })?;
    let mut p0 = chol.inverse();
    p0.symmetrize();
    let m0 = chol.solve(&eta0);
    Ok(FilterElement {
        a: Matrix::zeros(n, n),
        b: m0,
        c: p0,
        eta: Matrix::zeros(n, 1),
        j: Matrix::zeros(n, n),
    })
}

/// The filtering element for state `i ≥ 1` from its covariance-form
/// transition and whitened observation rows (`G = C`, `o = rhs`, `L = I`).
/// The same TAC-2021 conditioning as [`FilterElement::for_state`].
fn filter_element(
    i: usize,
    form: &CovForm,
    obs: Option<&kalman_model::WhitenedObs>,
) -> Result<FilterElement> {
    let n = form.f.rows();
    let Some(obs) = obs else {
        return Ok(FilterElement {
            a: form.f.clone(), // lint: allow(alloc, "pooled Matrix clone: buffers come from the thread-local workspace; steady-state scan flushes are heap-alloc-free (tests/alloc_steady_state.rs)")
            b: form.c.clone(), // lint: allow(alloc, "pooled Matrix clone, as above")
            c: form.q.clone(), // lint: allow(alloc, "pooled Matrix clone, as above")
            eta: Matrix::zeros(n, 1),
            j: Matrix::zeros(n, n),
        });
    };
    let g = &obs.c;
    // S = G Q Gᵀ + I (whitened observation noise is the identity).
    let gq = matmul(g, &form.q);
    let mut s = Matrix::identity(g.rows());
    gemm(1.0, &gq, Trans::No, g, Trans::Yes, 1.0, &mut s);
    s.symmetrize();
    let s_chol = Cholesky::new(&s).map_err(|_| KalmanError::NotPositiveDefinite { step: i })?;
    // K = Q Gᵀ S⁻¹ = (S⁻¹ G Q)ᵀ.
    let k = s_chol.solve(&gq).transpose();
    let resid = &obs.rhs - &matmul(g, &form.c);
    // A = (I − K G) F
    let mut ikg = Matrix::identity(n);
    gemm(-1.0, &k, Trans::No, g, Trans::No, 1.0, &mut ikg);
    let a = matmul(&ikg, &form.f);
    // b = c + K (o − G c)
    let b = &form.c + &matmul(&k, &resid);
    // C = (I − K G) Q
    let mut c = matmul(&ikg, &form.q);
    c.symmetrize();
    // η = Fᵀ Gᵀ S⁻¹ (o − Gc);  J = Fᵀ Gᵀ S⁻¹ G F
    let sinv_resid = s_chol.solve(&resid);
    let gf = matmul(g, &form.f);
    let eta = matmul_tn(&gf, &sinv_resid);
    let sinv_gf = s_chol.solve(&gf);
    let mut j = matmul_tn(&gf, &sinv_gf);
    j.symmetrize();
    Ok(FilterElement { a, b, c, eta, j })
}

/// The smoothing element for a state with filtered `(m, P)` and the
/// covariance-form transition into the next state (`None` for the last).
fn smooth_element(
    i_next: usize,
    m: &Matrix,
    p: &Matrix,
    next: Option<&CovForm>,
) -> Result<SmoothElement> {
    let n = p.rows();
    let Some(form) = next else {
        return Ok(SmoothElement {
            e: Matrix::zeros(n, n),
            g: m.clone(), // lint: allow(alloc, "pooled Matrix clone: buffers come from the thread-local workspace; steady-state scan flushes are heap-alloc-free (tests/alloc_steady_state.rs)")
            l: p.clone(), // lint: allow(alloc, "pooled Matrix clone, as above")
        });
    };
    let f = &form.f;
    // P⁻ = F P Fᵀ + Q
    let fp = matmul(f, p);
    let mut pred = form.q.clone(); // lint: allow(alloc, "pooled Matrix clone, as above")
    gemm(1.0, &fp, Trans::No, f, Trans::Yes, 1.0, &mut pred);
    pred.symmetrize();
    let chol =
        Cholesky::new(&pred).map_err(|_| KalmanError::NotPositiveDefinite { step: i_next })?;
    // E = P Fᵀ (P⁻)⁻¹ = ((P⁻)⁻¹ F P)ᵀ
    let e = chol.solve(&fp).transpose();
    // g = m − E (F m + c)
    let fm = &matmul(f, m) + &form.c;
    let g = m - &matmul(&e, &fm);
    // L = P − E F P
    let mut l = p.clone(); // lint: allow(alloc, "pooled Matrix clone, as above")
    gemm(-1.0, &e, Trans::No, &fp, Trans::No, 1.0, &mut l);
    l.symmetrize();
    Ok(SmoothElement { e, g, l })
}

/// `true` when repeated executes of `schedule` would overflow the
/// thread-local workspace budgets into the allocator.  The scan's steady
/// state holds three matrix-valued containers per state (transition form,
/// filtering element, smoothing element — roughly eight `n²`-class buffers
/// in all), so the arena pays off earlier than the odd-even plan's `3·k`.
fn arena_pays_off(schedule: &ScanSchedule) -> bool {
    let k = schedule.len();
    let n = schedule.state_dim();
    8 * k > kalman_dense::budget_for_len((n * n).max(1)).max(1)
}

/// An executable associative-scan smoothing plan: a shared
/// [`ScanSchedule`] plus this consumer's element scratch and
/// execution-policy decisions.  The scan analogue of
/// `kalman_odd_even::SmoothPlan` — see the module docs for the numeric
/// pipeline, and DESIGN.md §"Backend trait + dispatch" for how streams
/// pick between the two.
///
/// ```
/// use kalman_associative::{ScanOptions, ScanPlan};
/// use kalman_model::generators;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let model = generators::paper_benchmark(&mut rng, 3, 40, true);
/// let mut plan = ScanPlan::for_model(&model, ScanOptions::default()).unwrap();
/// let first = plan.smooth_model(&model).unwrap();   // plan built above, executed here
/// let again = plan.smooth_model(&model).unwrap();   // pure re-execution: no re-planning
/// assert_eq!(first.max_mean_diff(&again), 0.0);
/// ```
#[derive(Debug)]
pub struct ScanPlan {
    schedule: Arc<ScanSchedule>,
    options: ScanOptions,
    /// Covariance-form transition per step (`None` for step 0).
    forms: Vec<Option<CovForm>>,
    felems: Vec<FilterElement>,
    selems: Vec<SmoothElement>,
    /// Parallel-stage output slots (pre-assigned; drained serially).
    #[allow(clippy::type_complexity)]
    build_tmp: Vec<Option<Result<(Option<CovForm>, FilterElement)>>>,
    smooth_tmp: Vec<Option<Result<SmoothElement>>>,
    pair_f: Vec<Option<FilterElement>>,
    pair_s: Vec<Option<SmoothElement>>,
    /// Whitening buffers for the model-level entry points.
    steps: Vec<WhitenedStep>,
    whiten_tmp: Vec<Option<Result<WhitenedStep>>>,
    /// `selems` holds the posterior of the most recent `execute`.
    executed: bool,
    /// Hold a workspace [`kalman_dense::arena_scope`] across the phases.
    arena: bool,
}

impl ScanPlan {
    /// A plan executing `schedule` under `options`.
    pub fn new(schedule: Arc<ScanSchedule>, options: ScanOptions) -> ScanPlan {
        let arena = arena_pays_off(&schedule);
        ScanPlan {
            schedule,
            options,
            forms: Vec::new(),
            felems: Vec::new(),
            selems: Vec::new(),
            build_tmp: Vec::new(),
            smooth_tmp: Vec::new(),
            pair_f: Vec::new(),
            pair_s: Vec::new(),
            steps: Vec::new(),
            whiten_tmp: Vec::new(),
            executed: false,
            arena,
        }
    }

    /// Builds a fresh (unshared) schedule for `dims` and wraps it in a plan.
    ///
    /// # Panics
    ///
    /// Panics on shapes outside the scan's structural domain
    /// ([`kalman_odd_even::scan_supports_dims`]).
    pub fn for_dims(dims: &[usize], options: ScanOptions) -> ScanPlan {
        ScanPlan::new(Arc::new(ScanSchedule::build(dims)), options)
    }

    /// A plan for a model's shape (validates the model first).
    ///
    /// # Errors
    ///
    /// Model validation errors, or [`KalmanError::UnsupportedStructure`]
    /// for shapes the scan cannot plan (mixed state dimensions).
    pub fn for_model(model: &LinearModel, options: ScanOptions) -> Result<ScanPlan> {
        model.validate()?;
        let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
        if !kalman_odd_even::scan_supports_dims(&dims) {
            return Err(KalmanError::UnsupportedStructure(
                "the scan backend requires uniform state dimensions".into(),
            ));
        }
        Ok(ScanPlan::for_dims(&dims, options))
    }

    /// The shared schedule backing this plan.
    pub fn schedule(&self) -> &Arc<ScanSchedule> {
        &self.schedule
    }

    /// Shorthand for `self.schedule().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.schedule.dims()
    }

    /// Shorthand for `self.schedule().signature()`.
    pub fn signature(&self) -> u64 {
        self.schedule.signature()
    }

    /// The options the plan executes under.
    pub fn options(&self) -> &ScanOptions {
        &self.options
    }

    /// The backend this plan serves as: [`BackendKind::SequentialRts`] when
    /// folding, [`BackendKind::Scan`] when sweeping the tree.
    pub fn kind(&self) -> BackendKind {
        if self.options.fold {
            BackendKind::SequentialRts
        } else {
            BackendKind::Scan
        }
    }

    /// Swaps in an externally shared schedule (a `PlanCache` hit) and
    /// invalidates any held posterior.
    pub fn set_schedule(&mut self, schedule: Arc<ScanSchedule>) {
        self.schedule = schedule;
        self.executed = false;
        self.arena = arena_pays_off(&self.schedule);
    }

    /// Re-plans for `dims` if the shape changed; returns `true` when a
    /// rebuild happened.  An unshared schedule is rebuilt in place; a
    /// shared one is replaced by a fresh `Arc` so sibling plans keep theirs.
    ///
    /// # Panics
    ///
    /// Panics on shapes outside the scan's structural domain — dispatchers
    /// resolve those to the odd-even backend before touching a scan plan.
    pub fn ensure_shape(&mut self, dims: &[usize]) -> bool {
        if self.schedule.dims() == dims {
            return false;
        }
        match Arc::get_mut(&mut self.schedule) {
            Some(s) => s.rebuild(dims),
            None => self.schedule = Arc::new(ScanSchedule::build(dims)),
        }
        kalman_obs::event(
            "scan.plan_rebuild",
            kalman_odd_even::signature_of_dims(dims.iter().copied()),
            dims.len() as u64,
        );
        self.executed = false;
        self.arena = arena_pays_off(&self.schedule);
        true
    }

    /// Overrides the plan-owned arena decision (see
    /// `kalman_odd_even::SmoothPlan::set_arena` — same contract).
    pub fn set_arena(&mut self, on: bool) {
        self.arena = on;
    }

    /// `true` when the plan holds the workspace arena during executes.
    pub fn arena(&self) -> bool {
        self.arena
    }

    fn arena_guard(&self) -> Option<kalman_dense::ArenaScope> {
        self.arena.then(kalman_dense::arena_scope)
    }

    fn matches_steps(&self, steps: &[WhitenedStep]) -> bool {
        let dims = self.schedule.dims();
        steps.len() == dims.len() && steps.iter().zip(dims).all(|(s, &d)| s.state_dim == d)
    }

    /// Numeric execution: builds the scan elements from `steps` and runs
    /// the forward and backward sweeps, leaving the smoothed posterior in
    /// plan-owned scratch for [`ScanPlan::solve_into`] /
    /// [`ScanPlan::selinv_into`].  On success `steps` is drained (capacity
    /// retained for the caller to refill); on **any** error `steps` is left
    /// intact so the caller can re-execute the same window on another
    /// backend (the dispatcher's numeric-fallback path).
    ///
    /// # Errors
    ///
    /// [`KalmanError::InvalidModel`] on a shape mismatch,
    /// [`KalmanError::PriorRequired`] when state 0 has no determining rows,
    /// [`KalmanError::RankDeficient`] when state 0's information matrix or
    /// an evolution block is singular, [`KalmanError::NotPositiveDefinite`]
    /// when an innovation or predictive covariance is not SPD.
    pub fn execute(&mut self, steps: &mut Vec<WhitenedStep>) -> Result<()> {
        self.executed = false;
        if !self.matches_steps(steps) {
            // lint: allow(alloc, "error path: allocates only when the caller handed an unplanned shape")
            return Err(KalmanError::InvalidModel(format!(
                "plan shape mismatch: plan covers {} states but was given {}",
                self.schedule.len(),
                steps.len()
            )));
        }
        let _arena = self.arena_guard();
        let k1 = steps.len();
        let schedule = Arc::clone(&self.schedule);

        {
            let _span = kalman_obs::span!("scan.elements");
            let step_slice: &[WhitenedStep] = steps;
            map_collect_into(
                self.options.policy.for_len(k1),
                k1,
                &mut self.build_tmp,
                |i| {
                    let step = &step_slice[i];
                    if i == 0 {
                        Ok((None, head_element(step)?))
                    } else {
                        let evo = step.evo.as_ref().ok_or(KalmanError::PriorRequired)?;
                        let form = cov_form(i, evo)?;
                        let elem = filter_element(i, &form, step.obs.as_ref())?;
                        Ok((Some(form), elem))
                    }
                },
            );
            self.forms.clear();
            self.felems.clear();
            for slot in self.build_tmp.iter_mut() {
                let (form, elem) = slot.take().expect("filled above")?;
                self.forms.push(form); // lint: allow(alloc, "push into cleared scratch that retains capacity across flushes; amortized, steady-state alloc-free")
                self.felems.push(elem); // lint: allow(alloc, "push into cleared scratch, as above")
            }
        }

        {
            let _span = kalman_obs::span!("scan.fwd");
            if self.options.fold {
                for i in 1..k1 {
                    let (head, tail) = self.felems.split_at_mut(i);
                    let combined = head[i - 1].combine(&tail[0]);
                    tail[0] = combined;
                }
            } else {
                for level in schedule.levels() {
                    let pairs = level.pairs();
                    let felems = &self.felems;
                    map_collect_into(
                        self.options.policy.for_len(pairs.len()),
                        pairs.len(),
                        &mut self.pair_f,
                        |j| {
                            let (src, dst) = pairs[j];
                            felems[src as usize].combine(&felems[dst as usize])
                        },
                    );
                    for (j, &(_, dst)) in pairs.iter().enumerate() {
                        self.felems[dst as usize] = self.pair_f[j].take().expect("filled above");
                    }
                }
            }
        }

        {
            let _span = kalman_obs::span!("scan.smooth");
            let felems = &self.felems;
            let forms = &self.forms;
            map_collect_into(
                self.options.policy.for_len(k1),
                k1,
                &mut self.smooth_tmp,
                |i| {
                    let next = forms.get(i + 1).and_then(|f| f.as_ref());
                    smooth_element(i + 1, &felems[i].b, &felems[i].c, next)
                },
            );
            self.selems.clear();
            for slot in self.smooth_tmp.iter_mut() {
                self.selems.push(slot.take().expect("filled above")?); // lint: allow(alloc, "push into cleared scratch that retains capacity across flushes; amortized, steady-state alloc-free")
            }
        }

        {
            let _span = kalman_obs::span!("scan.bwd");
            let last = k1 - 1;
            if self.options.fold {
                for i in (0..last).rev() {
                    let (head, tail) = self.selems.split_at_mut(i + 1);
                    let combined = head[i].combine(&tail[0]);
                    head[i] = combined;
                }
            } else {
                // The same pair lists run the suffix sweep mirrored: indices
                // reflect (`i ↦ last − i`) and the mirrored dst slot is the
                // *earlier* operand of the combine.
                for level in schedule.levels() {
                    let pairs = level.pairs();
                    let selems = &self.selems;
                    map_collect_into(
                        self.options.policy.for_len(pairs.len()),
                        pairs.len(),
                        &mut self.pair_s,
                        |j| {
                            let (src, dst) = pairs[j];
                            let (msrc, mdst) = (last - src as usize, last - dst as usize);
                            selems[mdst].combine(&selems[msrc])
                        },
                    );
                    for (j, &(_, dst)) in pairs.iter().enumerate() {
                        let mdst = last - dst as usize;
                        self.selems[mdst] = self.pair_s[j].take().expect("filled above");
                    }
                }
            }
        }

        steps.clear();
        self.executed = true;
        Ok(())
    }

    fn require_executed(&self) -> Result<()> {
        if self.executed {
            Ok(())
        } else {
            Err(KalmanError::InvalidModel(
                "plan has no posterior: call execute() first".into(),
            ))
        }
    }

    /// Copies the smoothed means of the most recent [`ScanPlan::execute`]
    /// into reused storage.
    ///
    /// # Errors
    ///
    /// No prior [`ScanPlan::execute`].
    pub fn solve_into(&mut self, means: &mut Vec<Vec<f64>>) -> Result<()> {
        self.require_executed()?;
        let _span = kalman_obs::span!("scan.solve");
        let k1 = self.selems.len();
        means.truncate(k1);
        while means.len() < k1 {
            means.push(Vec::new()); // lint: allow(alloc, "grows the reused output to window length once; repeat windows reuse the slots")
        }
        for (m, e) in means.iter_mut().zip(&self.selems) {
            m.clear();
            m.extend_from_slice(e.g.col(0));
        }
        Ok(())
    }

    /// Copies the smoothed covariances of the most recent
    /// [`ScanPlan::execute`] into reused storage.  Unlike the odd-even
    /// SelInv phase this is a plain copy — the scan computes covariances
    /// inherently.
    ///
    /// # Errors
    ///
    /// No prior [`ScanPlan::execute`].
    pub fn selinv_into(&mut self, covs: &mut Vec<Matrix>) -> Result<()> {
        self.require_executed()?;
        let _span = kalman_obs::span!("scan.selinv");
        let k1 = self.selems.len();
        covs.truncate(k1);
        while covs.len() < k1 {
            covs.push(Matrix::zeros(1, 1)); // lint: allow(alloc, "grows the reused output to window length once; repeat windows reuse the slots")
        }
        for (c, e) in covs.iter_mut().zip(&self.selems) {
            c.clone_from(&e.l);
        }
        Ok(())
    }

    /// Whitens `model` (in parallel, through plan-owned buffers) and runs
    /// execute → solve → covariance copy, writing into `out` (reused
    /// storage).  Covariances are always produced — they are inherent to
    /// the scan.
    ///
    /// # Errors
    ///
    /// Model validation/whitening errors, plus everything
    /// [`ScanPlan::execute`] can raise.
    pub fn smooth_model_into(&mut self, model: &LinearModel, out: &mut Smoothed) -> Result<()> {
        model.validate()?;
        let _arena = self.arena_guard();
        let k1 = model.num_states();
        {
            let _span = kalman_obs::span!("scan.whiten");
            map_collect_into(
                self.options.policy.for_len(k1),
                k1,
                &mut self.whiten_tmp,
                |i| WhitenedStep::from_model_step(model, i),
            );
            self.steps.clear();
            for slot in self.whiten_tmp.iter_mut() {
                self.steps.push(slot.take().expect("filled above")?);
            }
        }
        let mut steps = std::mem::take(&mut self.steps);
        let result = (|| {
            self.execute(&mut steps)?;
            self.solve_into(&mut out.means)?;
            self.selinv_into(out.covariances.get_or_insert_with(Vec::new))
        })();
        self.steps = steps;
        result
    }

    /// Allocating convenience form of [`ScanPlan::smooth_model_into`].
    ///
    /// # Errors
    ///
    /// As [`ScanPlan::smooth_model_into`].
    pub fn smooth_model(&mut self, model: &LinearModel) -> Result<Smoothed> {
        let mut out = Smoothed {
            means: Vec::new(),
            covariances: None,
        };
        self.smooth_model_into(model, &mut out)?;
        Ok(out)
    }
}

impl kalman_odd_even::SmootherBackend for ScanPlan {
    fn kind(&self) -> BackendKind {
        ScanPlan::kind(self)
    }

    fn dims(&self) -> &[usize] {
        ScanPlan::dims(self)
    }

    fn signature(&self) -> u64 {
        ScanPlan::signature(self)
    }

    fn ensure_shape(&mut self, dims: &[usize]) -> bool {
        ScanPlan::ensure_shape(self, dims)
    }

    fn execute(&mut self, steps: &mut Vec<WhitenedStep>) -> Result<()> {
        ScanPlan::execute(self, steps)
    }

    fn solve_into(&mut self, means: &mut Vec<Vec<f64>>) -> Result<()> {
        ScanPlan::solve_into(self, means)
    }

    fn selinv_into(&mut self, covs: &mut Vec<Matrix>) -> Result<()> {
        ScanPlan::selinv_into(self, covs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalman_model::{generators, solve_dense, whiten_model};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn plan_matches_dense_oracle_and_reuses_bitwise() {
        let model = generators::paper_benchmark(&mut rng(91), 3, 21, true);
        let dense = solve_dense(&model).unwrap();
        let mut plan = ScanPlan::for_model(&model, ScanOptions::default()).unwrap();
        let first = plan.smooth_model(&model).unwrap();
        assert!(first.max_mean_diff(&dense) < 1e-8);
        assert!(first.max_cov_diff(&dense).unwrap() < 1e-8);
        for _ in 0..3 {
            let again = plan.smooth_model(&model).unwrap();
            assert_eq!(first.max_mean_diff(&again), 0.0);
            assert_eq!(first.max_cov_diff(&again), Some(0.0));
        }
    }

    #[test]
    fn tree_is_bitwise_across_policies() {
        let model = generators::paper_benchmark(&mut rng(92), 4, 37, true);
        let mut results = Vec::new();
        for policy in [
            ExecPolicy::Seq,
            ExecPolicy::par_with_grain(1),
            ExecPolicy::par_with_grain(7),
        ] {
            let mut plan = ScanPlan::for_model(
                &model,
                ScanOptions {
                    policy,
                    fold: false,
                },
            )
            .unwrap();
            results.push(plan.smooth_model(&model).unwrap());
        }
        for other in &results[1..] {
            assert_eq!(results[0].max_mean_diff(other), 0.0);
            assert_eq!(results[0].max_cov_diff(other), Some(0.0));
        }
    }

    #[test]
    fn fold_agrees_with_tree_to_rounding() {
        let model = generators::paper_benchmark(&mut rng(93), 3, 41, true);
        let mut tree = ScanPlan::for_model(&model, ScanOptions::default()).unwrap();
        let mut fold = ScanPlan::for_model(
            &model,
            ScanOptions {
                fold: true,
                ..ScanOptions::default()
            },
        )
        .unwrap();
        assert_eq!(fold.kind(), BackendKind::SequentialRts);
        assert_eq!(tree.kind(), BackendKind::Scan);
        let t = tree.smooth_model(&model).unwrap();
        let f = fold.smooth_model(&model).unwrap();
        assert!(t.max_mean_diff(&f) < 1e-9);
        assert!(t.max_cov_diff(&f).unwrap() < 1e-9);
        let dense = solve_dense(&model).unwrap();
        assert!(f.max_mean_diff(&dense) < 1e-8);
    }

    #[test]
    fn handles_missing_observations() {
        let mut model = generators::sparse_observations(&mut rng(94), 3, 24, 4);
        model.set_prior(vec![0.0; 3], kalman_model::CovarianceSpec::Identity(3));
        let mut plan = ScanPlan::for_model(&model, ScanOptions::default()).unwrap();
        let scan = plan.smooth_model(&model).unwrap();
        let dense = solve_dense(&model).unwrap();
        assert!(scan.max_mean_diff(&dense) < 1e-8);
        assert!(scan.max_cov_diff(&dense).unwrap() < 1e-8);
    }

    #[test]
    fn full_rank_observations_substitute_for_a_prior() {
        // paper_benchmark observes every state with a square G, so state 0's
        // whitened rows determine it even without a prior — the information
        // seed generalizes the batch path's explicit-prior requirement.
        let model = generators::paper_benchmark(&mut rng(95), 3, 18, false);
        let mut plan = ScanPlan::for_model(&model, ScanOptions::default()).unwrap();
        let scan = plan.smooth_model(&model).unwrap();
        let dense = solve_dense(&model).unwrap();
        assert!(scan.max_mean_diff(&dense) < 1e-8);
        assert!(scan.max_cov_diff(&dense).unwrap() < 1e-8);
    }

    #[test]
    fn underdetermined_state0_errors_and_leaves_steps_intact() {
        let mut model = generators::paper_benchmark(&mut rng(96), 3, 9, false);
        model.steps[0].observation = None;
        let mut steps = whiten_model(&model).unwrap();
        let mut plan = ScanPlan::for_dims(&[3; 10], ScanOptions::default());
        assert!(matches!(
            plan.execute(&mut steps),
            Err(KalmanError::PriorRequired)
        ));
        // The window survives the failure for a fallback re-execute.
        assert_eq!(steps.len(), 10);
        assert!(plan.solve_into(&mut Vec::new()).is_err());
    }

    #[test]
    fn execute_rejects_mismatched_steps() {
        let model = generators::paper_benchmark(&mut rng(97), 2, 8, true);
        let mut steps = whiten_model(&model).unwrap();
        let mut plan = ScanPlan::for_dims(&[2; 4], ScanOptions::default());
        assert!(matches!(
            plan.execute(&mut steps),
            Err(KalmanError::InvalidModel(_))
        ));
        assert_eq!(steps.len(), 9);
        plan.ensure_shape(&[2; 9]);
        plan.execute(&mut steps).unwrap();
        assert!(steps.is_empty());
        let mut means = Vec::new();
        plan.solve_into(&mut means).unwrap();
        assert_eq!(means.len(), 9);
    }

    #[test]
    fn single_state_window() {
        let model = generators::paper_benchmark(&mut rng(98), 2, 0, true);
        let mut plan = ScanPlan::for_model(&model, ScanOptions::default()).unwrap();
        let scan = plan.smooth_model(&model).unwrap();
        let dense = solve_dense(&model).unwrap();
        assert!(scan.max_mean_diff(&dense) < 1e-10);
    }

    #[test]
    fn ensure_shape_rebuilds_only_on_change() {
        let mut plan = ScanPlan::for_dims(&[2; 8], ScanOptions::default());
        assert!(!plan.ensure_shape(&[2; 8]));
        assert!(plan.ensure_shape(&[2; 12]));
        assert_eq!(plan.dims(), &[2; 12]);
    }

    #[test]
    fn rejects_mixed_dimension_models() {
        let model = generators::dimension_change(&mut rng(99), 2, 6);
        assert!(matches!(
            ScanPlan::for_model(&model, ScanOptions::default()),
            Err(KalmanError::UnsupportedStructure(_))
        ));
    }
}

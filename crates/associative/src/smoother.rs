//! The two-scan smoother driver.

use crate::elements::FilterElement;
use kalman_dense::Matrix;
use kalman_model::{KalmanError, LinearModel, Result, Smoothed};
use kalman_par::{inclusive_scan_in_place, map_collect, ExecPolicy};

/// Options for the associative smoother.
#[derive(Debug, Clone, Copy)]
pub struct AssociativeOptions {
    /// Execution policy for element construction and both scans.
    pub policy: ExecPolicy,
}

impl Default for AssociativeOptions {
    fn default() -> Self {
        AssociativeOptions {
            policy: ExecPolicy::par(),
        }
    }
}

fn check_supported(model: &LinearModel) -> Result<()> {
    model.validate()?;
    if model.prior.is_none() {
        return Err(KalmanError::PriorRequired);
    }
    if !model.is_uniform() {
        return Err(KalmanError::UnsupportedStructure(
            "the associative smoother requires uniform state dimensions, square F, and H = I"
                .into(),
        ));
    }
    Ok(())
}

/// Runs only the filtering scan, returning filtered means and covariances.
///
/// # Errors
///
/// [`KalmanError::PriorRequired`] / [`KalmanError::UnsupportedStructure`]
/// for unsupported models; covariance failures propagate.
pub fn associative_filter(
    model: &LinearModel,
    options: AssociativeOptions,
) -> Result<(Vec<Vec<f64>>, Vec<Matrix>)> {
    check_supported(model)?;
    let k1 = model.num_states();
    let elems: Vec<Result<FilterElement>> =
        map_collect(options.policy, k1, |i| FilterElement::for_state(model, i));
    let mut elems: Vec<FilterElement> = elems.into_iter().collect::<Result<_>>()?;
    inclusive_scan_in_place(options.policy, &mut elems, |a, b| a.combine(b));
    let means = elems.iter().map(|e| e.b.col(0).to_vec()).collect();
    let covs = elems.into_iter().map(|e| e.c).collect();
    Ok((means, covs))
}

/// Smooths `model` with the associative parallel-scan algorithm.
///
/// A thin wrapper over the planned path: builds a transient
/// [`crate::ScanPlan`] for the model's shape and executes it once — phase 1
/// builds the filtering elements (parallel per step) and runs the forward
/// sweep, phase 2 builds the smoothing elements from the filtered results
/// and runs the backward (suffix) sweep, both over the schedule's fixed
/// Brent–Kung tree (so results are bitwise identical across execution
/// policies).  Unlike the QR smoothers, covariances are inherent to the
/// computation and always returned.
///
/// # Errors
///
/// Same as [`associative_filter`].
pub fn associative_smooth(model: &LinearModel, options: AssociativeOptions) -> Result<Smoothed> {
    check_supported(model)?;
    let mut plan = crate::ScanPlan::for_model(
        model,
        crate::ScanOptions {
            policy: options.policy,
            fold: false,
        },
    )?;
    // One-shot execution: workspace retention would never be harvested.
    plan.set_arena(false);
    plan.smooth_model(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalman_model::{generators, solve_dense};
    use kalman_seq::{kalman_filter, rts_smooth};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn filter_matches_conventional_filter() {
        let model = generators::paper_benchmark(&mut rng(60), 3, 25, true);
        let (means, covs) = associative_filter(&model, AssociativeOptions::default()).unwrap();
        let fr = kalman_filter(&model).unwrap();
        for i in 0..model.num_states() {
            for (x, y) in means[i].iter().zip(&fr.means[i]) {
                assert!((x - y).abs() < 1e-8, "state {i}");
            }
            assert!(covs[i].approx_eq(&fr.covs[i], 1e-8), "cov {i}");
        }
    }

    #[test]
    fn smoother_matches_rts_and_dense() {
        let model = generators::paper_benchmark(&mut rng(61), 4, 40, true);
        let assoc = associative_smooth(&model, AssociativeOptions::default()).unwrap();
        let rts = rts_smooth(&model).unwrap();
        let dense = solve_dense(&model).unwrap();
        assert!(
            assoc.max_mean_diff(&rts) < 1e-8,
            "vs RTS {}",
            assoc.max_mean_diff(&rts)
        );
        assert!(assoc.max_cov_diff(&rts).unwrap() < 1e-8);
        assert!(assoc.max_mean_diff(&dense) < 1e-8);
        assert!(assoc.max_cov_diff(&dense).unwrap() < 1e-8);
    }

    #[test]
    fn seq_and_par_policies_agree() {
        let model = generators::paper_benchmark(&mut rng(62), 3, 33, true);
        let seq = associative_smooth(
            &model,
            AssociativeOptions {
                policy: ExecPolicy::Seq,
            },
        )
        .unwrap();
        let par = associative_smooth(
            &model,
            AssociativeOptions {
                policy: ExecPolicy::par_with_grain(2),
            },
        )
        .unwrap();
        // The parallel scan applies the operator in a different association
        // order, so results differ by rounding only.
        assert!(seq.max_mean_diff(&par) < 1e-9);
        assert!(seq.max_cov_diff(&par).unwrap() < 1e-9);
    }

    #[test]
    fn requires_prior_and_uniform_model() {
        let model = generators::paper_benchmark(&mut rng(63), 2, 5, false);
        assert!(matches!(
            associative_smooth(&model, AssociativeOptions::default()),
            Err(KalmanError::PriorRequired)
        ));
        let mut dim_change = generators::dimension_change(&mut rng(64), 2, 4);
        dim_change.set_prior(vec![0.0; 2], kalman_model::CovarianceSpec::Identity(2));
        assert!(matches!(
            associative_smooth(&dim_change, AssociativeOptions::default()),
            Err(KalmanError::UnsupportedStructure(_))
        ));
    }

    #[test]
    fn handles_missing_observations() {
        let mut model = generators::sparse_observations(&mut rng(65), 3, 20, 4);
        model.set_prior(vec![0.0; 3], kalman_model::CovarianceSpec::Identity(3));
        let assoc = associative_smooth(&model, AssociativeOptions::default()).unwrap();
        let rts = rts_smooth(&model).unwrap();
        assert!(assoc.max_mean_diff(&rts) < 1e-8);
        assert!(assoc.max_cov_diff(&rts).unwrap() < 1e-8);
    }

    #[test]
    fn handles_tracking_problem() {
        let p = generators::tracking_2d(&mut rng(66), 40, 0.1, 0.5, 0.2);
        let assoc = associative_smooth(&p.model, AssociativeOptions::default()).unwrap();
        let rts = rts_smooth(&p.model).unwrap();
        assert!(assoc.max_mean_diff(&rts) < 1e-7);
        assert!(assoc.max_cov_diff(&rts).unwrap() < 1e-7);
    }

    #[test]
    fn single_state() {
        let model = generators::paper_benchmark(&mut rng(67), 2, 0, true);
        let assoc = associative_smooth(&model, AssociativeOptions::default()).unwrap();
        let rts = rts_smooth(&model).unwrap();
        assert!(assoc.max_mean_diff(&rts) < 1e-10);
    }
}

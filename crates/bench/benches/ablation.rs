//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. grain size of the parallel batches (paper Fig. 6 left),
//! 2. odd-column compression on/off (step 3 of each level),
//! 3. the separable covariance phase (full vs NC),
//! 4. compiled-sequential twin vs parallel code on the work-stealing pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kalman::prelude::*;
use kalman_bench::sweep::panel_model;

fn bench_ablation(c: &mut Criterion) {
    let model = panel_model(6, 20_000, 42);

    let mut group = c.benchmark_group("ablation_grain");
    group.sample_size(10);
    for grain in [1usize, 10, 100, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(grain), &model, |b, m| {
            b.iter(|| {
                odd_even_smooth(
                    m,
                    OddEvenOptions::with_policy(ExecPolicy::par_with_grain(grain)),
                )
                .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_compression");
    group.sample_size(10);
    for (name, compress) in [("compress_on", true), ("compress_off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| {
                odd_even_smooth(
                    m,
                    OddEvenOptions {
                        covariances: true,
                        policy: ExecPolicy::par(),
                        compress_odd: compress,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_covariance_phase");
    group.sample_size(10);
    for (name, covs) in [("full", true), ("nc", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, m| {
            b.iter(|| {
                odd_even_smooth(
                    m,
                    OddEvenOptions {
                        covariances: covs,
                        policy: ExecPolicy::par(),
                        compress_odd: true,
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_seq_twin");
    group.sample_size(10);
    // The compiled-sequential twin (plain loops, no scheduler)…
    group.bench_with_input(BenchmarkId::from_parameter("seq_twin"), &model, |b, m| {
        b.iter(|| odd_even_smooth(m, OddEvenOptions::with_policy(ExecPolicy::Seq)).unwrap())
    });
    // …vs the parallel code on the default pool.
    group.bench_with_input(BenchmarkId::from_parameter("par_pool"), &model, |b, m| {
        b.iter(|| odd_even_smooth(m, OddEvenOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

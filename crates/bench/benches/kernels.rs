//! Criterion benchmarks of the dense kernels (the BLAS/LAPACK substitutes)
//! at the block sizes the smoothers actually use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kalman::dense::{matmul, random, tri, Cholesky, LuFactor, QrFactor};
use rand::SeedableRng;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    for n in [6usize, 48] {
        // The smoother's workhorse: QR of a stacked 2n×n block.
        let tall = random::gaussian(&mut rng, 2 * n, n);
        c.bench_with_input(BenchmarkId::new("qr_2n_x_n", n), &tall, |b, m| {
            b.iter(|| QrFactor::new(m.clone()))
        });

        let square = random::gaussian(&mut rng, n, n);
        let square2 = random::gaussian(&mut rng, n, n);
        c.bench_with_input(
            BenchmarkId::new("gemm_n_x_n", n),
            &(square.clone(), square2),
            |b, (x, y)| b.iter(|| matmul(x, y)),
        );

        let spd = random::spd(&mut rng, n);
        c.bench_with_input(BenchmarkId::new("cholesky", n), &spd, |b, m| {
            b.iter(|| Cholesky::new(m).unwrap())
        });

        c.bench_with_input(BenchmarkId::new("lu", n), &square, |b, m| {
            b.iter(|| LuFactor::new(m.clone()).unwrap())
        });

        let qr = QrFactor::new(random::gaussian(&mut rng, 2 * n, n));
        let r = qr.r();
        let rhs = random::gaussian(&mut rng, n, n);
        c.bench_with_input(
            BenchmarkId::new("trisolve_n_rhs", n),
            &(r, rhs),
            |b, (u, y)| {
                b.iter(|| {
                    let mut x = y.clone();
                    tri::solve_upper_in_place(u, &mut x).unwrap();
                    x
                })
            },
        );

        // Qᵀ application to an n-column companion — the fill-producing step.
        let comp = random::gaussian(&mut rng, 2 * n, n);
        c.bench_with_input(BenchmarkId::new("apply_qt", n), &(qr, comp), |b, (q, m)| {
            b.iter(|| {
                let mut t = m.clone();
                q.apply_qt(&mut t);
                t
            })
        });
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

//! Criterion benchmarks of the generic parallel scan against its sequential
//! twin, on both cheap (f64 add) and expensive (matrix-multiply) operators —
//! the regime the associative smoother lives in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kalman::dense::{matmul, random, Matrix};
use kalman::par::{inclusive_scan_in_place, suffix_scan_in_place, ExecPolicy};
use rand::SeedableRng;

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_f64_add");
    group.sample_size(20);
    let base: Vec<f64> = (0..1_000_000).map(|i| (i % 97) as f64).collect();
    for (name, policy) in [
        ("seq", ExecPolicy::Seq),
        ("par_grain1000", ExecPolicy::par_with_grain(1000)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            b.iter(|| {
                let mut v = base.clone();
                inclusive_scan_in_place(p, &mut v, |a, x| a + x);
                v[base.len() - 1]
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scan_matmul_6x6");
    group.sample_size(10);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    // Orthonormal factors keep products bounded over a long scan.
    let elems: Vec<Matrix> = (0..20_000)
        .map(|_| random::orthonormal(&mut rng, 6))
        .collect();
    for (name, policy) in [
        ("seq", ExecPolicy::Seq),
        ("par_grain10", ExecPolicy::par_with_grain(10)),
    ] {
        group.bench_with_input(BenchmarkId::new("prefix", name), &policy, |b, &p| {
            b.iter(|| {
                let mut v = elems.clone();
                inclusive_scan_in_place(p, &mut v, matmul);
                v.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("suffix", name), &policy, |b, &p| {
            b.iter(|| {
                let mut v = elems.clone();
                suffix_scan_in_place(p, &mut v, matmul);
                v.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);

//! Criterion benchmarks of all six smoother variants on both paper panel
//! shapes (scaled down for statistical benchmarking practicality).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kalman_bench::sweep::{panel_model, Algorithm};

fn bench_smoothers(c: &mut Criterion) {
    for (n, k) in [(6usize, 5_000usize), (48, 500)] {
        let model = panel_model(n, k, 42);
        let mut group = c.benchmark_group(format!("smoothers_n{n}_k{k}"));
        group.sample_size(10);
        for alg in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(alg.name().replace(' ', "_")),
                &model,
                |b, m| b.iter(|| alg.run(m)),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_smoothers);
criterion_main!(benches);

//! Criterion benchmarks of the streaming subsystem: steady-state ingestion
//! across lag sizes, and batched pool polling across pool widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kalman::model::{generators, LinearModel};
use kalman::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn opts(lag: usize) -> StreamOptions {
    StreamOptions {
        lag,
        flush_every: lag,
        covariances: false,
        policy: ExecPolicy::Seq,
        auto_flush: true,
        lag_policy: None,
        ..StreamOptions::default()
    }
}

fn drive(model: &LinearModel, o: StreamOptions) -> usize {
    let p = model.prior.as_ref().expect("prior");
    let mut s = StreamingSmoother::with_prior(p.mean.clone(), p.cov.clone(), o).expect("opts");
    let mut count = 0;
    for (i, step) in model.steps.iter().enumerate() {
        if i > 0 {
            count += s
                .evolve(step.evolution.clone().expect("chain"))
                .expect("step")
                .len();
        }
        if let Some(obs) = &step.observation {
            s.observe(obs.clone()).expect("obs");
        }
    }
    count + s.finish().expect("solvable").0.len()
}

fn bench_stream_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_steady_state_n4_k512");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let model = generators::paper_benchmark(&mut rng, 4, 512, true);
    for lag in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(lag), &lag, |b, &lag| {
            b.iter(|| drive(&model, opts(lag)))
        });
    }
    group.finish();
}

fn bench_pool_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_poll_n4_k256");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let models: Vec<LinearModel> = (0..16)
        .map(|_| generators::paper_benchmark(&mut rng, 4, 256, true))
        .collect();
    for width in [1usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            b.iter(|| {
                let mut pool = SmootherPool::new(ExecPolicy::par_with_grain(1));
                let ids: Vec<StreamId> = models[..width]
                    .iter()
                    .map(|m| {
                        let p = m.prior.as_ref().expect("prior");
                        pool.insert(
                            StreamingSmoother::with_prior(p.mean.clone(), p.cov.clone(), opts(32))
                                .expect("opts"),
                        )
                    })
                    .collect();
                let mut count = 0;
                for si in 0..models[0].num_states() {
                    for (k, m) in models[..width].iter().enumerate() {
                        let step = &m.steps[si];
                        if si > 0 {
                            pool.evolve(ids[k], step.evolution.clone().expect("chain"))
                                .expect("step");
                        }
                        if let Some(obs) = &step.observation {
                            pool.observe(ids[k], obs.clone()).expect("obs");
                        }
                    }
                    for (_, steps) in pool.poll() {
                        count += steps.expect("solvable").len();
                    }
                }
                for id in ids {
                    count += pool.finish(id).expect("solvable").0.len();
                }
                count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stream_steady_state, bench_pool_widths);
criterion_main!(benches);

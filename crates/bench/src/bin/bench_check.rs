//! CI regression gate for the `BENCH_*.json` artifacts.
//!
//! Compares the speedup entries of a freshly measured artifact against the
//! checked-in baseline and fails (exit 1) when any speedup regressed more
//! than `--tol` (default 0.20, the ">20%" gate).  Speedups — blocked
//! kernels + workspace pooling versus the in-process reference
//! configuration — are compared rather than absolute seconds because CI
//! runners differ in clock speed run to run; a ratio measured within one
//! process is the hardware-normalized signal.
//!
//! `cargo run --release -p kalman-bench --bin bench_check -- \
//!     --baseline BENCH_smoother.json --current BENCH_smoother.new.json`

use kalman_bench::{read_bench_json, Args};

fn is_speedup(name: &str) -> bool {
    name.starts_with("speedup/") || name.ends_with("/speedup")
}

fn main() {
    let mut args = Args::parse();
    let baseline_path: String = args.get("baseline", String::new());
    let current_path: String = args.get("current", String::new());
    let tol: f64 = args.get("tol", 0.20);
    args.finish();
    assert!(
        !baseline_path.is_empty() && !current_path.is_empty(),
        "usage: bench_check --baseline <json> --current <json> [--tol 0.20]"
    );

    let baseline = read_bench_json(&baseline_path).expect("read baseline");
    let current = read_bench_json(&current_path).expect("read current");

    let mut compared = 0;
    let mut failures = Vec::new();
    for b in baseline.iter().filter(|e| is_speedup(&e.name)) {
        let Some(c) = current.iter().find(|e| e.name == b.name) else {
            println!(
                "  {:<28} baseline {:>7.2}x  (absent in current; skipped)",
                b.name, b.value
            );
            continue;
        };
        compared += 1;
        let floor = b.value * (1.0 - tol);
        let status = if c.value >= floor { "ok" } else { "REGRESSED" };
        println!(
            "  {:<28} baseline {:>7.2}x  current {:>7.2}x  floor {:>7.2}x  {status}",
            b.name, b.value, c.value, floor
        );
        if c.value < floor {
            failures.push(b.name.clone());
        }
    }

    assert!(
        compared > 0,
        "no comparable speedup entries between {baseline_path} and {current_path}"
    );
    if !failures.is_empty() {
        eprintln!(
            "bench_check: {} speedup(s) regressed more than {:.0}%: {}",
            failures.len(),
            tol * 100.0,
            failures.join(", ")
        );
        std::process::exit(1);
    }
    println!(
        "bench_check: {compared} speedups within {:.0}% of baseline",
        tol * 100.0
    );
}

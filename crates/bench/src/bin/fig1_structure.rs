//! Figure 1: the nonzero block structure of the odd-even `R` factor for a
//! problem with k = 50 states (each cell is an n×n block).
//!
//! `cargo run --release -p kalman-bench --bin fig1_structure [--k 50]`

use kalman::model::{generators, whiten_model};
use kalman::odd_even::factor_odd_even;
use kalman::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut args = kalman_bench::Args::parse();
    let k: usize = args.get("k", 49); // 50 states, matching the paper
    args.finish();

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let model = generators::paper_benchmark(&mut rng, 2, k, false);
    let steps = whiten_model(&model).unwrap();
    let r = factor_odd_even(&steps, ExecPolicy::par(), true).unwrap();

    let states = r.num_states();
    let blocks = r.structure();
    let mut grid = vec![vec![false; states]; states];
    for (i, j) in &blocks {
        grid[*i][*j] = true;
    }

    println!(
        "Figure 1: block structure of R, {} states (permuted odd-even order)",
        states
    );
    println!("each '#' is one n-by-n nonzero block\n");
    for row in &grid {
        let line: String = row.iter().map(|&b| if b { '#' } else { '.' }).collect();
        println!("{line}");
    }

    println!("\nelimination levels (chain halves every level):");
    for (l, level) in r.levels.iter().enumerate() {
        println!("  level {l}: {:>3} columns eliminated", level.len());
    }
    let nnz = blocks.len();
    println!(
        "\n{} nonzero blocks total ({} diagonal + {} off-diagonal; bidiagonal R would have {})",
        nnz,
        states,
        nnz - states,
        2 * states - 1
    );
}

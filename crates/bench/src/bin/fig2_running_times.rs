//! Figure 2: running times of all six smoother variants versus core count,
//! for the two problem shapes of the paper's panels.
//!
//! Paper sizes: (n=6, k=5 000 000) and (n=48, k=100 000) on 56/64-core
//! servers with 128–200 GB of RAM.  Defaults here are scaled to the
//! container (24 cores, 21 GB): (n=6, k=500 000) and (n=48, k=20 000);
//! `--paper` requests the full paper sizes.
//!
//! `cargo run --release -p kalman-bench --bin fig2_running_times \
//!     [--k6 500000] [--k48 20000] [--runs 3] [--paper] [--quick]`

use kalman_bench::sweep::{panel_model, run_sweep, Algorithm};
use kalman_bench::{core_sweep, fmt_secs, print_row, Args};

fn main() {
    let mut args = Args::parse();
    let paper = args.has("paper");
    let quick = args.has("quick");
    let (dk6, dk48) = if paper {
        (5_000_000, 100_000)
    } else if quick {
        (20_000, 2_000)
    } else {
        (500_000, 20_000)
    };
    let k6: usize = args.get("k6", dk6);
    let k48: usize = args.get("k48", dk48);
    let runs: usize = args.get("runs", if quick { 1 } else { 3 });
    args.finish();

    let cores = core_sweep();
    for (n, k, seed) in [(6usize, k6, 10u64), (48, k48, 11)] {
        println!("\n=== Figure 2 panel: n={n} k={k} (medians of {runs} runs) ===");
        eprintln!("building model n={n} k={k}…");
        let model = panel_model(n, k, seed);
        let records = run_sweep(&model, &cores, runs);

        let mut header = vec!["cores".to_string()];
        header.extend(Algorithm::ALL.iter().map(|a| a.name().to_string()));
        print_row(&header);
        for &c in &cores {
            let mut row = vec![c.to_string()];
            for alg in Algorithm::ALL {
                let t = if alg.is_parallel() {
                    kalman_bench::sweep::time_of(&records, alg, c)
                } else {
                    // Sequential algorithms: one flat line, as in the paper.
                    kalman_bench::sweep::time_of(&records, alg, 1)
                };
                row.push(t.map(fmt_secs).unwrap_or_else(|| "-".into()));
            }
            print_row(&row);
        }
    }
    println!("\n(times in seconds; sequential algorithms are flat lines, as in the paper)");
}

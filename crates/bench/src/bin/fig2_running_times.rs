//! Figure 2: running times of all six smoother variants versus core count,
//! for the two problem shapes of the paper's panels.
//!
//! Paper sizes: (n=6, k=5 000 000) and (n=48, k=100 000) on 56/64-core
//! servers with 128–200 GB of RAM.  Defaults here are scaled to the
//! container (24 cores, 21 GB): (n=6, k=500 000) and (n=48, k=20 000);
//! `--paper` requests the full paper sizes.
//!
//! `cargo run --release -p kalman-bench --bin fig2_running_times \
//!     [--k6 500000] [--k48 20000] [--runs 3] [--paper] [--quick]`
//!
//! `--smoke` runs the CI-sized single-thread benchmark instead: the batch
//! odd-even smoother at n ∈ {4, 8, 16} (k = `--ksmoke`, default 20 000),
//! measured twice — once with the blocked kernels + workspace pooling and
//! once with the unblocked reference kernels + pooling disabled — and
//! records both timings plus the speedups to `--json PATH`
//! (`BENCH_smoother.json` in CI).
//!
//! The in-process "reference" toggles only the kernel/pooling choices, not
//! the structural rewrites (fused factor-and-apply, triangular-pentagonal
//! eliminations, scratch reuse), so these speedups *understate* the gain
//! over the pre-optimization tree; the checked-in `BENCH_smoother.json`
//! additionally records `main-baseline/*` timings measured by interleaved
//! A/B against the predecessor commit on the same machine, with the
//! `vs-main/*` speedups the acceptance gate refers to.

use kalman::prelude::*;
use kalman_bench::sweep::{panel_model, run_sweep, Algorithm};
use kalman_bench::{core_sweep, fmt_secs, median_time, print_row, Args, BenchEntry};

fn smoke(args: &mut Args) {
    let k: usize = args.get("ksmoke", 20_000);
    let runs: usize = args.get("runs", 3);
    let json: String = args.get("json", String::new());

    let opts = OddEvenOptions {
        covariances: true,
        policy: ExecPolicy::Seq,
        compress_odd: true,
    };
    let mut entries = Vec::new();
    println!("fig2 --smoke: single-thread batch odd-even smoother, k={k}, medians of {runs}");
    print_row(&[
        "n".into(),
        "reference".into(),
        "blocked".into(),
        "speedup".into(),
    ]);
    for (n, seed) in [(4usize, 10u64), (8, 11), (16, 12)] {
        let model = panel_model(n, k, seed);
        // Reference: unblocked kernels, pooling off (the pre-optimization
        // configuration, measured in-process for an apples-to-apples run).
        kalman::dense::set_reference_kernels(true);
        kalman::dense::set_pooling(false);
        let t_ref = median_time(runs, || {
            odd_even_smooth(&model, opts).expect("well-posed");
        });
        // Blocked: the default fast path.
        kalman::dense::set_reference_kernels(false);
        kalman::dense::set_pooling(true);
        let t_blk = median_time(runs, || {
            odd_even_smooth(&model, opts).expect("well-posed");
        });
        let speedup = t_ref / t_blk;
        print_row(&[
            n.to_string(),
            fmt_secs(t_ref),
            fmt_secs(t_blk),
            format!("{speedup:.2}x"),
        ]);
        entries.push(BenchEntry::new(format!("smoother/n{n}/reference"), t_ref));
        entries.push(BenchEntry::new(format!("smoother/n{n}/blocked"), t_blk));
        entries.push(BenchEntry::new(format!("speedup/n{n}"), speedup));
    }
    if !json.is_empty() {
        let config = format!("fig2 --smoke: odd-even, 1 thread, k={k}, runs={runs}, n in [4,8,16]");
        kalman_bench::write_bench_json(&json, &config, &entries).expect("write json");
        println!("wrote {json}");
    }
}

fn main() {
    let mut args = Args::parse();
    if args.has("smoke") {
        smoke(&mut args);
        args.finish();
        return;
    }
    let paper = args.has("paper");
    let quick = args.has("quick");
    let (dk6, dk48) = if paper {
        (5_000_000, 100_000)
    } else if quick {
        (20_000, 2_000)
    } else {
        (500_000, 20_000)
    };
    let k6: usize = args.get("k6", dk6);
    let k48: usize = args.get("k48", dk48);
    let runs: usize = args.get("runs", if quick { 1 } else { 3 });
    args.finish();

    let cores = core_sweep();
    for (n, k, seed) in [(6usize, k6, 10u64), (48, k48, 11)] {
        println!("\n=== Figure 2 panel: n={n} k={k} (medians of {runs} runs) ===");
        eprintln!("building model n={n} k={k}…");
        let model = panel_model(n, k, seed);
        let records = run_sweep(&model, &cores, runs);

        let mut header = vec!["cores".to_string()];
        header.extend(Algorithm::ALL.iter().map(|a| a.name().to_string()));
        print_row(&header);
        for &c in &cores {
            let mut row = vec![c.to_string()];
            for alg in Algorithm::ALL {
                let t = if alg.is_parallel() {
                    kalman_bench::sweep::time_of(&records, alg, c)
                } else {
                    // Sequential algorithms: one flat line, as in the paper.
                    kalman_bench::sweep::time_of(&records, alg, 1)
                };
                row.push(t.map(fmt_secs).unwrap_or_else(|| "-".into()));
            }
            print_row(&row);
        }
    }
    println!("\n(times in seconds; sequential algorithms are flat lines, as in the paper)");
}

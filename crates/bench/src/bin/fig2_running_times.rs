//! Figure 2: running times of all six smoother variants versus core count,
//! for the two problem shapes of the paper's panels.
//!
//! Paper sizes: (n=6, k=5 000 000) and (n=48, k=100 000) on 56/64-core
//! servers with 128–200 GB of RAM.  Defaults here are scaled to the
//! container (24 cores, 21 GB): (n=6, k=500 000) and (n=48, k=20 000);
//! `--paper` requests the full paper sizes.
//!
//! `cargo run --release -p kalman-bench --bin fig2_running_times \
//!     [--k6 500000] [--k48 20000] [--runs 3] [--paper] [--quick]`
//!
//! `--smoke` runs the CI-sized single-thread benchmark instead: the batch
//! odd-even smoother at n ∈ {4, 8, 16} (k = `--ksmoke`, default 20 000),
//! measured twice — once with the blocked kernels + workspace pooling and
//! once with the unblocked reference kernels + pooling disabled — and
//! records both timings plus the speedups to `--json PATH`
//! (`BENCH_smoother.json` in CI).
//!
//! The in-process "reference" toggles only the kernel/pooling choices, not
//! the structural rewrites (fused factor-and-apply, triangular-pentagonal
//! eliminations, scratch reuse), so these speedups *understate* the gain
//! over the pre-optimization tree; the checked-in `BENCH_smoother.json`
//! additionally records `main-baseline/*` timings measured by interleaved
//! A/B against the predecessor commit on the same machine, with the
//! `vs-main/*` speedups the acceptance gate refers to.

use kalman::prelude::*;
use kalman_bench::sweep::{panel_model, run_sweep, Algorithm};
use kalman_bench::{core_sweep, fmt_secs, median_time, print_row, Args, BenchEntry};
use std::time::Instant;

/// Plan-reuse amortization on the serving path: the latency of a stream's
/// *first* flush (symbolic plan build + cold per-stream scratch) versus a
/// steady-state flush re-executing the cached plan, on a fixed window
/// shape (n = 4, lag = flush_every = 32), served by `backend`.  Returns
/// (median first flush, median steady flush, min steady flush); the
/// first/steady ratio is the `speedup/plan_reuse` entry the CI gate
/// watches, and the min is the per-arm statistic of the backend A/B
/// comparison (under `BackendPolicy::Auto` early flushes probe both
/// backends, so the min is the informed-dispatch latency).
fn flush_amortization(reps: usize, backend: BackendPolicy) -> (f64, f64, f64) {
    let n = 4usize;
    let opts = StreamOptions {
        lag: 32,
        flush_every: 32,
        covariances: false,
        policy: ExecPolicy::Seq,
        auto_flush: false,
        backend,
        ..StreamOptions::default()
    };
    let model = panel_model(n, 1_000, 99);
    let prior = model.prior.as_ref().expect("panel models carry priors");
    let mut firsts = Vec::new();
    let mut steadies = Vec::new();
    let mut out = Vec::new();
    for _ in 0..reps {
        let mut stream = StreamingSmoother::with_prior(prior.mean.clone(), prior.cov.clone(), opts)
            .expect("valid options");
        let mut next = 0usize;
        let feed = |stream: &mut StreamingSmoother, count: usize, next: &mut usize| {
            for _ in 0..count {
                let step = &model.steps[*next];
                if *next > 0 {
                    stream
                        .evolve(step.evolution.clone().expect("chain step"))
                        .expect("well-formed step");
                }
                if let Some(obs) = &step.observation {
                    stream.observe(obs.clone()).expect("well-formed obs");
                }
                *next += 1;
            }
        };
        feed(&mut stream, 64, &mut next); // fill to window capacity
        let t = Instant::now();
        stream.flush_into(&mut out).expect("window solvable");
        firsts.push(t.elapsed().as_secs_f64());
        for cycle in 0..8 {
            feed(&mut stream, 32, &mut next);
            let t = Instant::now();
            stream.flush_into(&mut out).expect("window solvable");
            if cycle >= 2 {
                steadies.push(t.elapsed().as_secs_f64());
            }
        }
        let plan_cap = if matches!(backend, BackendPolicy::Auto) {
            2 // Auto probes both backends once before trusting medians.
        } else {
            1
        };
        assert!(
            stream.plan_builds() <= plan_cap,
            "steady cadence must reuse its plans ({} builds)",
            stream.plan_builds()
        );
    }
    let steady_min = steadies.iter().copied().fold(f64::INFINITY, f64::min);
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    (median(&mut firsts), median(&mut steadies), steady_min)
}

fn smoke(args: &mut Args) {
    let k: usize = args.get("ksmoke", 20_000);
    let runs: usize = args.get("runs", 3);
    let json: String = args.get("json", String::new());

    let opts = OddEvenOptions {
        covariances: true,
        policy: ExecPolicy::Seq,
        compress_odd: true,
    };
    let rounds = runs.max(7);
    let mut entries = Vec::new();
    println!(
        "fig2 --smoke: single-thread batch odd-even smoother, k={k}, \
         interleaved mins of {rounds}"
    );
    print_row(&[
        "n".into(),
        "reference".into(),
        "blocked".into(),
        "speedup".into(),
    ]);
    for (n, seed) in [(4usize, 10u64), (8, 11), (16, 12)] {
        let model = panel_model(n, k, seed);
        // Interleaved A/B with min-of-rounds per arm: robust against the
        // coarse-grained throttling of the shared container, where whole
        // seconds can run ~1.5x slow and per-arm medians compare different
        // weather.  Reference arm: unblocked kernels, pooling off (the
        // pre-optimization configuration, measured in-process for an
        // apples-to-apples run).  Blocked arm: the default fast path.
        let mut t_ref = f64::INFINITY;
        let mut t_blk = f64::INFINITY;
        for _ in 0..rounds {
            kalman::dense::set_reference_kernels(true);
            kalman::dense::set_pooling(false);
            t_ref = t_ref.min(median_time(1, || {
                odd_even_smooth(&model, opts).expect("well-posed");
            }));
            kalman::dense::set_reference_kernels(false);
            kalman::dense::set_pooling(true);
            t_blk = t_blk.min(median_time(1, || {
                odd_even_smooth(&model, opts).expect("well-posed");
            }));
        }
        let speedup = t_ref / t_blk;
        print_row(&[
            n.to_string(),
            fmt_secs(t_ref),
            fmt_secs(t_blk),
            format!("{speedup:.2}x"),
        ]);
        entries.push(BenchEntry::new(format!("smoother/n{n}/reference"), t_ref));
        entries.push(BenchEntry::new(format!("smoother/n{n}/blocked"), t_blk));
        entries.push(BenchEntry::new(format!("speedup/n{n}"), speedup));
    }

    // Plan-reuse amortization: first (planning) flush vs steady-state
    // (cached-plan) flush on the streaming serving path.
    let (first, steady, _) = flush_amortization(9, BackendPolicy::OddEven);
    let amortization = first / steady;
    println!(
        "plan reuse (stream n=4, window 64): first flush {first:.2e} s, steady flush \
         {steady:.2e} s, amortization {amortization:.2}x"
    );
    entries.push(BenchEntry::new("stream/first_flush", first));
    entries.push(BenchEntry::new("stream/steady_flush", steady));
    entries.push(BenchEntry::new("speedup/plan_reuse", amortization));

    // Backend dispatch on the serving path: the same steady-state flush
    // served by the odd-even, associative-scan, and Auto backends, in
    // interleaved rounds with min-of-rounds per arm.  The gated ratio is
    // best-fixed-backend / Auto — ~1.0 while Auto's measured dispatch
    // keeps picking the faster backend; a dispatch regression (picking
    // the slower backend, or overhead in the decision) drags it below
    // the bench_check floor.
    let backend_rounds = 5;
    let mut oe_min = f64::INFINITY;
    let mut scan_min = f64::INFINITY;
    let mut auto_min = f64::INFINITY;
    for _ in 0..backend_rounds {
        oe_min = oe_min.min(flush_amortization(3, BackendPolicy::OddEven).2);
        scan_min = scan_min.min(flush_amortization(3, BackendPolicy::Scan).2);
        auto_min = auto_min.min(flush_amortization(3, BackendPolicy::Auto).2);
    }
    let auto_speedup = oe_min.min(scan_min) / auto_min;
    println!(
        "backend steady flush ({backend_rounds} interleaved rounds): odd-even \
         {oe_min:.2e} s, scan {scan_min:.2e} s, auto {auto_min:.2e} s, \
         speedup/backend_auto {auto_speedup:.2}x"
    );
    entries.push(BenchEntry::new("backend/odd_even_steady_flush", oe_min));
    entries.push(BenchEntry::new("scan/steady_flush", scan_min));
    entries.push(BenchEntry::new("backend/auto_steady_flush", auto_min));
    entries.push(BenchEntry::new("speedup/backend_auto", auto_speedup));

    // Instrumentation overhead: the same steady-state flush measured with
    // the obs runtime switch off vs on, in interleaved rounds with
    // min-of-rounds per side (the A/B methodology of docs/BENCHMARKS.md).
    // The gated ratio is min_off/min_on — ~1.0 while the spans stay
    // cheap; instrumentation overhead growth drags it below the
    // bench_check floor.
    let obs_rounds = 5;
    let mut min_on = f64::INFINITY;
    let mut min_off = f64::INFINITY;
    for _ in 0..obs_rounds {
        kalman::obs::set_enabled(false);
        min_off = min_off.min(flush_amortization(3, BackendPolicy::OddEven).1);
        kalman::obs::set_enabled(true);
        min_on = min_on.min(flush_amortization(3, BackendPolicy::OddEven).1);
    }
    let obs_speedup = min_off / min_on;
    println!(
        "obs overhead (steady flush, {obs_rounds} interleaved rounds): metrics off \
         {min_off:.2e} s, on {min_on:.2e} s, speedup/obs_on {obs_speedup:.2}x"
    );
    entries.push(BenchEntry::new("obs/steady_flush_on", min_on));
    entries.push(BenchEntry::new("obs/steady_flush_off", min_off));
    entries.push(BenchEntry::new("speedup/obs_on", obs_speedup));

    if !json.is_empty() {
        let config = format!(
            "fig2 --smoke: odd-even, 1 thread, k={k}, n in [4,8,16], interleaved \
             A/B mins of {rounds} rounds per pair (reference = unblocked kernels + \
             pooling off, blocked = default dispatch incl. SIMD/mono kernels); \
             stream/* + speedup/plan_reuse: first vs steady-state flush of a n=4 \
             lag=32 stream; backend/* + scan/steady_flush + speedup/backend_auto: \
             steady flush per smoother backend, interleaved mins of \
             {backend_rounds} rounds, gate = best fixed backend / Auto; obs/* + \
             speedup/obs_on: steady flush with instrumentation off vs on, \
             interleaved mins of {obs_rounds} rounds; main-baseline/* and \
             vs-main/* rows (when present) are historical A/B measurements vs \
             pre-optimization main, carried in the baseline"
        );
        kalman_bench::write_bench_json(&json, &config, &entries).expect("write json");
        println!("wrote {json}");
    }
}

fn main() {
    let mut args = Args::parse();
    if args.has("smoke") {
        smoke(&mut args);
        args.finish();
        return;
    }
    let paper = args.has("paper");
    let quick = args.has("quick");
    let (dk6, dk48) = if paper {
        (5_000_000, 100_000)
    } else if quick {
        (20_000, 2_000)
    } else {
        (500_000, 20_000)
    };
    let k6: usize = args.get("k6", dk6);
    let k48: usize = args.get("k48", dk48);
    let runs: usize = args.get("runs", if quick { 1 } else { 3 });
    args.finish();

    let cores = core_sweep();
    for (n, k, seed) in [(6usize, k6, 10u64), (48, k48, 11)] {
        println!("\n=== Figure 2 panel: n={n} k={k} (medians of {runs} runs) ===");
        eprintln!("building model n={n} k={k}…");
        let model = panel_model(n, k, seed);
        let records = run_sweep(&model, &cores, runs);

        let mut header = vec!["cores".to_string()];
        header.extend(Algorithm::ALL.iter().map(|a| a.name().to_string()));
        print_row(&header);
        for &c in &cores {
            let mut row = vec![c.to_string()];
            for alg in Algorithm::ALL {
                let t = if alg.is_parallel() {
                    kalman_bench::sweep::time_of(&records, alg, c)
                } else {
                    // Sequential algorithms: one flat line, as in the paper.
                    kalman_bench::sweep::time_of(&records, alg, 1)
                };
                row.push(t.map(fmt_secs).unwrap_or_else(|| "-".into()));
            }
            print_row(&row);
        }
    }
    println!("\n(times in seconds; sequential algorithms are flat lines, as in the paper)");
}

//! Figure 3: speedups of the three parallel smoothers relative to the same
//! implementation on one core (same measurement as Figure 2, different view).
//!
//! `cargo run --release -p kalman-bench --bin fig3_speedups \
//!     [--k6 500000] [--k48 20000] [--runs 3] [--quick]`

use kalman_bench::sweep::{panel_model, run_sweep, time_of, Algorithm};
use kalman_bench::{core_sweep, print_row, Args};

fn main() {
    let mut args = Args::parse();
    let quick = args.has("quick");
    let k6: usize = args.get("k6", if quick { 20_000 } else { 500_000 });
    let k48: usize = args.get("k48", if quick { 2_000 } else { 20_000 });
    let runs: usize = args.get("runs", if quick { 1 } else { 3 });
    args.finish();

    let cores = core_sweep();
    for (n, k, seed) in [(6usize, k6, 10u64), (48, k48, 11)] {
        println!("\n=== Figure 3 panel: n={n} k={k} — speedup vs same code on 1 core ===");
        let model = panel_model(n, k, seed);
        let records = run_sweep(&model, &cores, runs);

        let mut header = vec!["cores".to_string()];
        header.extend(Algorithm::PARALLEL.iter().map(|a| a.name().to_string()));
        print_row(&header);
        for &c in &cores {
            let mut row = vec![c.to_string()];
            for alg in Algorithm::PARALLEL {
                let t1 = time_of(&records, alg, 1).expect("1-core time measured");
                let tc = time_of(&records, alg, c).expect("time measured");
                row.push(format!("{:.2}x", t1 / tc));
            }
            print_row(&row);
        }
    }
    println!("\n(the paper reports up to 47x on 64 ARM cores; expect proportionally less here)");
}

//! Figure 4: speedups of the four phases of an embarrassingly-parallel
//! micro-benchmark that characterizes the hardware and the scheduler:
//!
//! 1. allocate k step structures, storing their addresses in an array,
//! 2. allocate a 2n×n matrix per step,
//! 3. fill every matrix with `A_ij = i + j`,
//! 4. QR-factorize every matrix.
//!
//! Each phase is a separate `parallel_for` with block size 8 (the paper's
//! choice, to avoid false sharing in phase 1).
//!
//! `cargo run --release -p kalman-bench --bin fig4_microbench \
//!     [--n 48] [--k 20000] [--runs 3]`
//!
//! `--smoke` runs the CI-sized kernel microbenchmark instead: GEMM and QR
//! (factor + `Qᵀ` application) across block sizes, blocked kernels versus
//! the unblocked reference, single-threaded; `--json PATH` records the
//! timings and speedups (`BENCH_kernels.json` in CI).

use kalman::dense::{gemm, gemm_ref, Matrix, QrFactor, Trans};
use kalman::par::{for_each_mut, run_with_threads, ExecPolicy};
use kalman_bench::{core_sweep, median_time, print_row, Args, BenchEntry};

/// Deterministic full-rank test matrix (no RNG needed in the kernel
/// sweep); shared with the dense crate's kernel oracle tests.
fn test_matrix(m: usize, n: usize) -> Matrix {
    kalman::dense::random::deterministic_well_conditioned(m, n)
}

fn smoke(args: &mut Args) {
    let runs: usize = args.get("runs", 5);
    let json: String = args.get("json", String::new());
    let mut entries = Vec::new();

    println!("fig4 --smoke: dense kernel microbenchmark (single thread, medians of {runs})");
    print_row(&[
        "kernel".into(),
        "reference".into(),
        "blocked".into(),
        "speedup".into(),
    ]);

    // GEMM: C = A·B at n×n·n, repeated to amortize timer resolution.
    for n in [8usize, 16, 24, 48, 96, 192] {
        let a = test_matrix(n, n);
        let b = test_matrix(n, n);
        let mut c = Matrix::zeros(n, n);
        let reps = (4_000_000 / (n * n * n)).max(1);
        let t_ref = median_time(runs, || {
            for _ in 0..reps {
                gemm_ref(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
            }
        }) / reps as f64;
        let t_blk = median_time(runs, || {
            for _ in 0..reps {
                gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c);
            }
        }) / reps as f64;
        let name = format!("gemm/n{n}");
        print_row(&[
            name.clone(),
            format!("{:.3e}", t_ref),
            format!("{:.3e}", t_blk),
            format!("{:.2}x", t_ref / t_blk),
        ]);
        entries.push(BenchEntry::new(format!("{name}/reference"), t_ref));
        entries.push(BenchEntry::new(format!("{name}/blocked"), t_blk));
        entries.push(BenchEntry::new(format!("{name}/speedup"), t_ref / t_blk));
    }

    // QR: factor a 2n×n stack and apply Qᵀ to a 2n×(n+1) companion — the
    // odd-even elimination's primitive — blocked (compact-WY) vs unblocked.
    for n in [8usize, 16, 24, 48, 96, 128, 192, 256] {
        let a = test_matrix(2 * n, n);
        let b = test_matrix(2 * n, n + 1);
        let reps = (2_000_000 / (n * n * n)).max(1);
        let t_ref = median_time(runs, || {
            for _ in 0..reps {
                let qr = QrFactor::new_unblocked(a.clone());
                let mut rhs = b.clone();
                qr.apply_qt(&mut rhs);
                std::hint::black_box(&rhs);
            }
        }) / reps as f64;
        let t_blk = median_time(runs, || {
            for _ in 0..reps {
                let mut rhs = b.clone();
                let qr = QrFactor::new_applying(a.clone(), &mut [&mut rhs]);
                std::hint::black_box(&qr);
            }
        }) / reps as f64;
        let name = format!("qr/n{n}");
        print_row(&[
            name.clone(),
            format!("{:.3e}", t_ref),
            format!("{:.3e}", t_blk),
            format!("{:.2}x", t_ref / t_blk),
        ]);
        entries.push(BenchEntry::new(format!("{name}/reference"), t_ref));
        entries.push(BenchEntry::new(format!("{name}/blocked"), t_blk));
        entries.push(BenchEntry::new(format!("{name}/speedup"), t_ref / t_blk));
    }

    if !json.is_empty() {
        let config = format!("fig4 --smoke: dense kernels, 1 thread, runs={runs}");
        kalman_bench::write_bench_json(&json, &config, &entries).expect("write json");
        println!("wrote {json}");
    }
}

/// A step structure, heap-allocated like the paper's array-of-pointers.
struct Step {
    matrix: Option<Matrix>,
    qr: Option<QrFactor>,
}

fn main() {
    let mut args = Args::parse();
    if args.has("smoke") {
        smoke(&mut args);
        args.finish();
        return;
    }
    let n: usize = args.get("n", 48);
    let k: usize = args.get("k", 20_000);
    let runs: usize = args.get("runs", 3);
    args.finish();

    let policy = ExecPolicy::par_with_grain(8);
    println!("Figure 4: embarrassingly-parallel micro-benchmark, n={n} k={k}");

    let phase_names = [
        "Allocate Structure",
        "Allocate Matrix",
        "Fill Matrix",
        "QR Factorization",
    ];
    let cores = core_sweep();
    // times[phase][core_idx]
    let mut times = vec![vec![0.0f64; cores.len()]; 4];

    for (ci, &c) in cores.iter().enumerate() {
        let measured: [f64; 4] = run_with_threads(c, move || {
            let mut t = [0.0f64; 4];
            // Phase 1: allocate the structures.
            let mut steps: Vec<Box<Step>> = Vec::new();
            t[0] = median_time(runs, || {
                let mut v: Vec<Box<Step>> = Vec::with_capacity(k);
                for _ in 0..k {
                    v.push(Box::new(Step {
                        matrix: None,
                        qr: None,
                    }));
                }
                // Parallel touch to mirror the paper's parallel_for shape.
                for_each_mut(policy, &mut v, |_, s| {
                    s.matrix = None;
                });
                steps = v;
            });
            // Phase 2: allocate a 2n×n matrix per step.
            t[1] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    s.matrix = Some(Matrix::zeros(2 * n, n));
                });
            });
            // Phase 3: fill A_ij = i + j.
            t[2] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    let m = s.matrix.as_mut().expect("allocated in phase 2");
                    for j in 0..n {
                        let col = m.col_mut(j);
                        for (i, v) in col.iter_mut().enumerate() {
                            *v = (i + j) as f64;
                        }
                    }
                });
            });
            // Phase 4: QR-factorize each matrix.
            t[3] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    let m = s.matrix.as_ref().expect("allocated in phase 2").clone();
                    s.qr = Some(QrFactor::new(m));
                });
            });
            t
        });
        for p in 0..4 {
            times[p][ci] = measured[p];
        }
        eprintln!(
            "  cores {c:>2}: {:?}",
            measured.map(|x| (x * 1e3).round() / 1e3)
        );
    }

    println!("\nspeedup vs 1 core:");
    let mut header = vec!["cores".to_string()];
    header.extend(phase_names.iter().map(|s| s.to_string()));
    print_row(&header);
    for (ci, &c) in cores.iter().enumerate() {
        let mut row = vec![c.to_string()];
        for phase_times in &times {
            row.push(format!("{:.2}x", phase_times[0] / phase_times[ci]));
        }
        print_row(&row);
    }
    println!("\n(paper: QR scales near-linearly; allocation/fill phases are memory-bound and scale poorly)");
}

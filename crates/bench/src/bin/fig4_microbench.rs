//! Figure 4: speedups of the four phases of an embarrassingly-parallel
//! micro-benchmark that characterizes the hardware and the scheduler:
//!
//! 1. allocate k step structures, storing their addresses in an array,
//! 2. allocate a 2n×n matrix per step,
//! 3. fill every matrix with `A_ij = i + j`,
//! 4. QR-factorize every matrix.
//!
//! Each phase is a separate `parallel_for` with block size 8 (the paper's
//! choice, to avoid false sharing in phase 1).
//!
//! `cargo run --release -p kalman-bench --bin fig4_microbench \
//!     [--n 48] [--k 20000] [--runs 3]`

use kalman::dense::{Matrix, QrFactor};
use kalman::par::{for_each_mut, run_with_threads, ExecPolicy};
use kalman_bench::{core_sweep, median_time, print_row, Args};

/// A step structure, heap-allocated like the paper's array-of-pointers.
struct Step {
    matrix: Option<Matrix>,
    qr: Option<QrFactor>,
}

fn main() {
    let mut args = Args::parse();
    let n: usize = args.get("n", 48);
    let k: usize = args.get("k", 20_000);
    let runs: usize = args.get("runs", 3);
    args.finish();

    let policy = ExecPolicy::par_with_grain(8);
    println!("Figure 4: embarrassingly-parallel micro-benchmark, n={n} k={k}");

    let phase_names = [
        "Allocate Structure",
        "Allocate Matrix",
        "Fill Matrix",
        "QR Factorization",
    ];
    let cores = core_sweep();
    // times[phase][core_idx]
    let mut times = vec![vec![0.0f64; cores.len()]; 4];

    for (ci, &c) in cores.iter().enumerate() {
        let measured: [f64; 4] = run_with_threads(c, move || {
            let mut t = [0.0f64; 4];
            // Phase 1: allocate the structures.
            let mut steps: Vec<Box<Step>> = Vec::new();
            t[0] = median_time(runs, || {
                let mut v: Vec<Box<Step>> = Vec::with_capacity(k);
                for _ in 0..k {
                    v.push(Box::new(Step {
                        matrix: None,
                        qr: None,
                    }));
                }
                // Parallel touch to mirror the paper's parallel_for shape.
                for_each_mut(policy, &mut v, |_, s| {
                    s.matrix = None;
                });
                steps = v;
            });
            // Phase 2: allocate a 2n×n matrix per step.
            t[1] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    s.matrix = Some(Matrix::zeros(2 * n, n));
                });
            });
            // Phase 3: fill A_ij = i + j.
            t[2] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    let m = s.matrix.as_mut().expect("allocated in phase 2");
                    for j in 0..n {
                        let col = m.col_mut(j);
                        for (i, v) in col.iter_mut().enumerate() {
                            *v = (i + j) as f64;
                        }
                    }
                });
            });
            // Phase 4: QR-factorize each matrix.
            t[3] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    let m = s.matrix.as_ref().expect("allocated in phase 2").clone();
                    s.qr = Some(QrFactor::new(m));
                });
            });
            t
        });
        for p in 0..4 {
            times[p][ci] = measured[p];
        }
        eprintln!(
            "  cores {c:>2}: {:?}",
            measured.map(|x| (x * 1e3).round() / 1e3)
        );
    }

    println!("\nspeedup vs 1 core:");
    let mut header = vec!["cores".to_string()];
    header.extend(phase_names.iter().map(|s| s.to_string()));
    print_row(&header);
    for (ci, &c) in cores.iter().enumerate() {
        let mut row = vec![c.to_string()];
        for phase_times in &times {
            row.push(format!("{:.2}x", phase_times[0] / phase_times[ci]));
        }
        print_row(&row);
    }
    println!("\n(paper: QR scales near-linearly; allocation/fill phases are memory-bound and scale poorly)");
}

//! Figure 4: speedups of the four phases of an embarrassingly-parallel
//! micro-benchmark that characterizes the hardware and the scheduler:
//!
//! 1. allocate k step structures, storing their addresses in an array,
//! 2. allocate a 2n×n matrix per step,
//! 3. fill every matrix with `A_ij = i + j`,
//! 4. QR-factorize every matrix.
//!
//! Each phase is a separate `parallel_for` with block size 8 (the paper's
//! choice, to avoid false sharing in phase 1).
//!
//! `cargo run --release -p kalman-bench --bin fig4_microbench \
//!     [--n 48] [--k 20000] [--runs 3]`
//!
//! `--smoke` runs the CI-sized kernel microbenchmark instead: GEMM and QR
//! (factor + `Qᵀ` application) across block sizes, blocked kernels versus
//! the unblocked reference, plus the monomorphized SIMD kernels versus the
//! scalar oracle at the serving dimensions n ∈ {4, 8, 16}; each pair is
//! measured as interleaved A/B rounds with per-arm minima (the noise-robust
//! methodology of docs/BENCHMARKS.md), single-threaded; `--json PATH`
//! records the timings and speedups (`BENCH_kernels.json` in CI).

use kalman::dense::{
    gemm, gemm_ref, qr_tri_stack_applying, qr_tri_stack_applying_with, KernelKind, Matrix,
    QrFactor, Trans,
};
use kalman::par::{for_each_mut, run_with_threads, ExecPolicy};
use kalman_bench::{core_sweep, median_time, print_row, time_once, Args, BenchEntry};

/// Deterministic full-rank test matrix (no RNG needed in the kernel
/// sweep); shared with the dense crate's kernel oracle tests.
fn test_matrix(m: usize, n: usize) -> Matrix {
    kalman::dense::random::deterministic_well_conditioned(m, n)
}

/// Interleaved A/B measurement: alternates the two arms round by round and
/// returns each arm's minimum.  On a shared, noisy runner either arm can be
/// stalled in any given round, but the interleaved min converges to the
/// true cost of each side under the *same* conditions — medians of
/// back-to-back blocks don't.
fn ab_min(rounds: usize, mut a: impl FnMut() -> f64, mut b: impl FnMut() -> f64) -> (f64, f64) {
    let (mut ta, mut tb) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        ta = ta.min(a());
        tb = tb.min(b());
    }
    (ta, tb)
}

fn push_pair(entries: &mut Vec<BenchEntry>, name: &str, arms: (&str, &str), t_a: f64, t_b: f64) {
    print_row(&[
        name.into(),
        format!("{:.3e}", t_a),
        format!("{:.3e}", t_b),
        format!("{:.2}x", t_a / t_b),
    ]);
    entries.push(BenchEntry::new(format!("{name}/{}", arms.0), t_a));
    entries.push(BenchEntry::new(format!("{name}/{}", arms.1), t_b));
    entries.push(BenchEntry::new(format!("{name}/speedup"), t_a / t_b));
}

fn smoke(args: &mut Args) {
    let runs: usize = args.get("runs", 5);
    let rounds = runs.max(7); // interleaved A/B needs several alternations
    let json: String = args.get("json", String::new());
    let mut entries = Vec::new();

    println!(
        "fig4 --smoke: dense kernel microbenchmark (single thread, interleaved mins of {rounds})"
    );
    print_row(&[
        "kernel".into(),
        "reference".into(),
        "blocked".into(),
        "speedup".into(),
    ]);

    // GEMM: C = A·B at n×n·n, repeated to amortize timer resolution.
    for n in [8usize, 16, 24, 48, 96, 192] {
        let a = test_matrix(n, n);
        let b = test_matrix(n, n);
        let mut c_ref = Matrix::zeros(n, n);
        let mut c_blk = Matrix::zeros(n, n);
        let reps = (4_000_000 / (n * n * n)).max(1);
        let (t_ref, t_blk) = ab_min(
            rounds,
            || {
                time_once(|| {
                    for _ in 0..reps {
                        gemm_ref(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c_ref);
                    }
                })
                .0 / reps as f64
            },
            || {
                time_once(|| {
                    for _ in 0..reps {
                        gemm(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c_blk);
                    }
                })
                .0 / reps as f64
            },
        );
        push_pair(
            &mut entries,
            &format!("gemm/n{n}"),
            ("reference", "blocked"),
            t_ref,
            t_blk,
        );
    }

    // QR: factor a 2n×n stack and apply Qᵀ to a 2n×(n+1) companion — the
    // odd-even elimination's primitive — blocked (compact-WY above
    // QR_BLOCK_MIN_COLS, fused or factor-then-apply below per
    // QR_FUSED_MAX_COLS) vs the unblocked factor + separate sweep.  The
    // n ∈ {96, 128, 192} points straddle the QR_FUSED_MAX_COLS crossover,
    // so their gated speedups pin the regime switch.
    for n in [8usize, 16, 24, 48, 96, 128, 192, 256] {
        let a = test_matrix(2 * n, n);
        let b = test_matrix(2 * n, n + 1);
        let reps = (2_000_000 / (n * n * n)).max(1);
        let (t_ref, t_blk) = ab_min(
            rounds,
            || {
                time_once(|| {
                    for _ in 0..reps {
                        let qr = QrFactor::new_unblocked(a.clone());
                        let mut rhs = b.clone();
                        qr.apply_qt(&mut rhs);
                        std::hint::black_box(&rhs);
                    }
                })
                .0 / reps as f64
            },
            || {
                time_once(|| {
                    for _ in 0..reps {
                        let mut rhs = b.clone();
                        let qr = QrFactor::new_applying(a.clone(), &mut [&mut rhs]);
                        std::hint::black_box(&qr);
                    }
                })
                .0 / reps as f64
            },
        );
        push_pair(
            &mut entries,
            &format!("qr/n{n}"),
            ("reference", "blocked"),
            t_ref,
            t_blk,
        );
    }

    // Monomorphized SIMD kernels vs the scalar oracle at the serving
    // dimensions.  GEMM compares the `KernelKind`-bound monomorphic entry
    // (the pointer a uniform-n plan binds at plan time) against the scalar
    // reference loop nest; QR compares the monomorphized triangular-stack
    // elimination against the same routine with the runtime kernel switch
    // forced to the scalar reference path.
    println!("monomorphized SIMD kernels vs scalar oracle:");
    print_row(&[
        "kernel".into(),
        "scalar".into(),
        "simd/mono".into(),
        "speedup".into(),
    ]);
    for n in [4usize, 8, 16] {
        let kind = KernelKind::for_dim(n);
        let mono = kind.gemm();
        let a = test_matrix(n, n);
        let b = test_matrix(n, n);
        let mut c_ref = Matrix::zeros(n, n);
        let mut c_simd = Matrix::zeros(n, n);
        let reps = (4_000_000 / (n * n * n)).max(1);
        let (t_scalar, t_simd) = ab_min(
            rounds,
            || {
                time_once(|| {
                    for _ in 0..reps {
                        gemm_ref(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c_ref);
                    }
                })
                .0 / reps as f64
            },
            || {
                time_once(|| {
                    for _ in 0..reps {
                        mono(1.0, &a, Trans::No, &b, Trans::No, 0.0, &mut c_simd);
                    }
                })
                .0 / reps as f64
            },
        );
        push_pair(
            &mut entries,
            &format!("gemm/n{n}/simd"),
            ("scalar", "mono"),
            t_scalar,
            t_simd,
        );
    }
    for n in [4usize, 8, 16] {
        let kind = KernelKind::for_dim(n);
        let r0 = QrFactor::new(test_matrix(n, n)).r();
        let d0 = test_matrix(n, n);
        let top0 = test_matrix(n, n + 1);
        let bot0 = test_matrix(n, n + 1);
        let reps = (1_000_000 / (n * n * n)).max(1);
        let (t_scalar, t_mono) = ab_min(
            rounds,
            || {
                kalman::dense::set_reference_kernels(true);
                let t = time_once(|| {
                    for _ in 0..reps {
                        let (mut r, mut d) = (r0.clone(), d0.clone());
                        let (mut top, mut bot) = (top0.clone(), bot0.clone());
                        qr_tri_stack_applying(&mut r, &mut d, &mut [(&mut top, &mut bot)]);
                        std::hint::black_box(&r);
                    }
                })
                .0 / reps as f64;
                kalman::dense::set_reference_kernels(false);
                t
            },
            || {
                time_once(|| {
                    for _ in 0..reps {
                        let (mut r, mut d) = (r0.clone(), d0.clone());
                        let (mut top, mut bot) = (top0.clone(), bot0.clone());
                        qr_tri_stack_applying_with(
                            kind,
                            &mut r,
                            &mut d,
                            &mut [(&mut top, &mut bot)],
                        );
                        std::hint::black_box(&r);
                    }
                })
                .0 / reps as f64
            },
        );
        push_pair(
            &mut entries,
            &format!("qr/n{n}/mono"),
            ("scalar", "mono"),
            t_scalar,
            t_mono,
        );
    }

    if !json.is_empty() {
        let config = format!(
            "fig4 --smoke: dense kernels, 1 thread, interleaved A/B mins of {rounds} rounds \
             per pair; gemm/qr rows: blocked vs unblocked reference (qr n in [96,128,192] \
             straddles the QR_FUSED_MAX_COLS crossover); gemm/nK/simd + qr/nK/mono rows: \
             monomorphized SIMD kernels vs the scalar oracle at the serving dimensions"
        );
        kalman_bench::write_bench_json(&json, &config, &entries).expect("write json");
        println!("wrote {json}");
    }
}

/// A step structure, heap-allocated like the paper's array-of-pointers.
struct Step {
    matrix: Option<Matrix>,
    qr: Option<QrFactor>,
}

fn main() {
    let mut args = Args::parse();
    if args.has("smoke") {
        smoke(&mut args);
        args.finish();
        return;
    }
    let n: usize = args.get("n", 48);
    let k: usize = args.get("k", 20_000);
    let runs: usize = args.get("runs", 3);
    args.finish();

    let policy = ExecPolicy::par_with_grain(8);
    println!("Figure 4: embarrassingly-parallel micro-benchmark, n={n} k={k}");

    let phase_names = [
        "Allocate Structure",
        "Allocate Matrix",
        "Fill Matrix",
        "QR Factorization",
    ];
    let cores = core_sweep();
    // times[phase][core_idx]
    let mut times = vec![vec![0.0f64; cores.len()]; 4];

    for (ci, &c) in cores.iter().enumerate() {
        let measured: [f64; 4] = run_with_threads(c, move || {
            let mut t = [0.0f64; 4];
            // Phase 1: allocate the structures.
            let mut steps: Vec<Box<Step>> = Vec::new();
            t[0] = median_time(runs, || {
                let mut v: Vec<Box<Step>> = Vec::with_capacity(k);
                for _ in 0..k {
                    v.push(Box::new(Step {
                        matrix: None,
                        qr: None,
                    }));
                }
                // Parallel touch to mirror the paper's parallel_for shape.
                for_each_mut(policy, &mut v, |_, s| {
                    s.matrix = None;
                });
                steps = v;
            });
            // Phase 2: allocate a 2n×n matrix per step.
            t[1] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    s.matrix = Some(Matrix::zeros(2 * n, n));
                });
            });
            // Phase 3: fill A_ij = i + j.
            t[2] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    let m = s.matrix.as_mut().expect("allocated in phase 2");
                    for j in 0..n {
                        let col = m.col_mut(j);
                        for (i, v) in col.iter_mut().enumerate() {
                            *v = (i + j) as f64;
                        }
                    }
                });
            });
            // Phase 4: QR-factorize each matrix.
            t[3] = median_time(runs, || {
                for_each_mut(policy, &mut steps, |_, s| {
                    let m = s.matrix.as_ref().expect("allocated in phase 2").clone();
                    s.qr = Some(QrFactor::new(m));
                });
            });
            t
        });
        for p in 0..4 {
            times[p][ci] = measured[p];
        }
        eprintln!(
            "  cores {c:>2}: {:?}",
            measured.map(|x| (x * 1e3).round() / 1e3)
        );
    }

    println!("\nspeedup vs 1 core:");
    let mut header = vec!["cores".to_string()];
    header.extend(phase_names.iter().map(|s| s.to_string()));
    print_row(&header);
    for (ci, &c) in cores.iter().enumerate() {
        let mut row = vec![c.to_string()];
        for phase_times in &times {
            row.push(format!("{:.2}x", phase_times[0] / phase_times[ci]));
        }
        print_row(&row);
    }
    println!("\n(paper: QR scales near-linearly; allocation/fill phases are memory-bound and scale poorly)");
}

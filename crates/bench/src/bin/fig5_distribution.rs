//! Figure 5: distribution of running times of the Odd-Even smoother over
//! repeated runs, on 1 core and on many cores — quantifying the noise the
//! randomized work-stealing scheduler introduces.
//!
//! The paper histograms 100 runs with the horizontal span set to 20% of the
//! median and reports ±2.4% variation on 64 cores and <0.9% on one core.
//!
//! `cargo run --release -p kalman-bench --bin fig5_distribution \
//!     [--n 48] [--k 5000] [--runs 100]`

use kalman::model::generators;
use kalman::prelude::*;
use kalman_bench::{time_once, Args};
use rand::SeedableRng;

fn histogram(label: &str, times: &[f64]) {
    let mut sorted = times.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = sorted[sorted.len() / 2];
    // 10 buckets spanning ±10% of the median (20% span, like the paper).
    let lo = median * 0.9;
    let width = median * 0.2 / 10.0;
    let mut buckets = [0usize; 10];
    let mut outliers = 0usize;
    for &t in times {
        let b = ((t - lo) / width).floor();
        if (0.0..10.0).contains(&b) {
            buckets[b as usize] += 1;
        } else {
            outliers += 1;
        }
    }
    let max_dev = sorted
        .iter()
        .map(|t| (t - median).abs() / median)
        .fold(0.0f64, f64::max);
    println!(
        "\n{label}: median {median:.4}s, max deviation ±{:.2}%",
        max_dev * 100.0
    );
    for (i, &count) in buckets.iter().enumerate() {
        let left = (lo + i as f64 * width) / median * 100.0 - 100.0;
        let bar: String = std::iter::repeat_n('#', count).collect();
        println!("  {left:>+6.1}% |{bar} {count}");
    }
    if outliers > 0 {
        println!("  (+{outliers} outside the ±10% span)");
    }
}

fn main() {
    let mut args = Args::parse();
    let n: usize = args.get("n", 48);
    let k: usize = args.get("k", 5_000);
    let runs: usize = args.get("runs", 100);
    args.finish();

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
    let model = generators::paper_benchmark(&mut rng, n, k, false);
    println!("Figure 5: Odd-Even running-time distribution, n={n} k={k}, {runs} runs each");

    let max_cores = kalman::par::available_parallelism();
    for cores in [1usize, max_cores] {
        let model_ref = &model;
        let times: Vec<f64> = run_with_threads(cores, move || {
            // Warm up allocator and pool.
            odd_even_smooth(model_ref, OddEvenOptions::default()).expect("well-posed");
            (0..runs)
                .map(|_| {
                    time_once(|| {
                        odd_even_smooth(model_ref, OddEvenOptions::default()).expect("well-posed")
                    })
                    .0
                })
                .collect()
        });
        histogram(&format!("{cores} core(s)"), &times);
    }
}

//! Figure 6 (left): running time of the Odd-Even smoother on all cores as a
//! function of the `parallel_for` block-size parameter.
//!
//! The paper sweeps TBB block sizes from 1 to 10⁶ on (n=6, k=5M): flat from
//! 1 to ~1000, slowing beyond ~5000 as parallelism runs out.
//!
//! `cargo run --release -p kalman-bench --bin fig6_blocksize \
//!     [--k 500000] [--runs 3]`

use kalman::model::generators;
use kalman::prelude::*;
use kalman_bench::{median_time, print_row, Args};
use rand::SeedableRng;

fn main() {
    let mut args = Args::parse();
    let k: usize = args.get("k", 500_000);
    let runs: usize = args.get("runs", 3);
    args.finish();

    let n = 6;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
    let model = generators::paper_benchmark(&mut rng, n, k, false);
    let cores = kalman::par::available_parallelism();
    println!("Figure 6 (left): Odd-Even on {cores} cores, n={n} k={k}, block-size sweep");

    print_row(&["block size".into(), "time (s)".into()]);
    let sizes = [
        1usize, 3, 10, 30, 100, 300, 1_000, 5_000, 20_000, 100_000, 1_000_000,
    ];
    for &grain in &sizes {
        if grain > 4 * k {
            continue;
        }
        let model_ref = &model;
        let secs = run_with_threads(cores, move || {
            median_time(runs, || {
                odd_even_smooth(
                    model_ref,
                    OddEvenOptions::with_policy(ExecPolicy::par_with_grain(grain)),
                )
                .expect("well-posed")
            })
        });
        print_row(&[grain.to_string(), format!("{secs:.4}")]);
    }
    println!("\n(paper: flat from 1 to ~1000, slower beyond ~5000 — insufficient parallelism)");
}

//! Figure 6 (right): speedups of the Odd-Even smoother for problems of
//! different dimensions — (n=6, k large), (n=48, k=100k scaled), and a
//! large-state/small-k problem where parallelism is insufficient.
//!
//! The paper uses (n=500, k=500); the default here is (n=200, k=300) to fit
//! the container's memory — the qualitative effect (worst speedups of the
//! three, due to insufficient parallel slack) is the same.  Block size is 10
//! for the first two shapes and 1 for the large-state shape, as in the paper.
//!
//! `cargo run --release -p kalman-bench --bin fig6_dims \
//!     [--k6 200000] [--k48 10000] [--nbig 200] [--kbig 300] [--runs 3]`

use kalman::model::generators;
use kalman::prelude::*;
use kalman_bench::{core_sweep, median_time, print_row, Args};
use rand::SeedableRng;

fn main() {
    let mut args = Args::parse();
    let k6: usize = args.get("k6", 200_000);
    let k48: usize = args.get("k48", 10_000);
    let nbig: usize = args.get("nbig", 200);
    let kbig: usize = args.get("kbig", 300);
    let runs: usize = args.get("runs", 3);
    args.finish();

    let shapes: [(usize, usize, usize); 3] = [(6, k6, 10), (48, k48, 10), (nbig, kbig, 1)];
    let cores = core_sweep();

    println!("Figure 6 (right): Odd-Even speedups for different problem shapes");
    let mut all_times: Vec<Vec<f64>> = Vec::new();
    for &(n, k, grain) in &shapes {
        eprintln!("building model n={n} k={k}…");
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(14);
        let model = generators::paper_benchmark(&mut rng, n, k, false);
        let mut times = Vec::with_capacity(cores.len());
        for &c in &cores {
            let model_ref = &model;
            let secs = run_with_threads(c, move || {
                median_time(runs, || {
                    odd_even_smooth(
                        model_ref,
                        OddEvenOptions::with_policy(ExecPolicy::par_with_grain(grain)),
                    )
                    .expect("well-posed")
                })
            });
            eprintln!("  n={n} k={k} cores={c}: {secs:.3}s");
            times.push(secs);
        }
        all_times.push(times);
    }

    let mut header = vec!["cores".to_string()];
    for &(n, k, _) in &shapes {
        header.push(format!("n={n} k={k}"));
    }
    print_row(&header);
    for (ci, &c) in cores.iter().enumerate() {
        let mut row = vec![c.to_string()];
        for times in &all_times {
            row.push(format!("{:.2}x", times[0] / times[ci]));
        }
        print_row(&row);
    }
    println!("\n(paper: n=48 scales best, n=6 close behind, the large-n/small-k shape worst)");
}

//! §5.4 overhead table: the single-core *work overhead* of the parallel
//! algorithms relative to their sequential counterparts.
//!
//! The paper reports: Odd-Even / Paige-Saunders = 1.8–2.5× (1.8–2.0× for the
//! NC variants), and Associative / Kalman(RTS) = 1.8–2.7×.
//!
//! `cargo run --release -p kalman-bench --bin overhead_table \
//!     [--k6 200000] [--k48 10000] [--runs 3]`

use kalman::prelude::*;
use kalman_bench::sweep::{panel_model, Algorithm};
use kalman_bench::{median_time, print_row, Args};

fn main() {
    let mut args = Args::parse();
    let k6: usize = args.get("k6", 200_000);
    let k48: usize = args.get("k48", 10_000);
    let runs: usize = args.get("runs", 3);
    args.finish();

    println!("Single-core overhead of the parallel algorithms (paper §5.4)\n");
    print_row(&[
        "shape".into(),
        "ratio".into(),
        "measured".into(),
        "paper".into(),
    ]);

    for (n, k, seed) in [(6usize, k6, 10u64), (48, k48, 11)] {
        let model = panel_model(n, k, seed);
        // Parallel algorithms pinned to a single worker thread.
        let t = |alg: Algorithm| -> f64 {
            let model_ref = &model;
            if alg.is_parallel() {
                run_with_threads(1, move || median_time(runs, || alg.run(model_ref)))
            } else {
                median_time(runs, || alg.run(model_ref))
            }
        };
        let oe = t(Algorithm::OddEven);
        let oe_nc = t(Algorithm::OddEvenNc);
        let assoc = t(Algorithm::Associative);
        let ps = t(Algorithm::PaigeSaunders);
        let ps_nc = t(Algorithm::PaigeSaundersNc);
        let rts = t(Algorithm::Kalman);

        let shape = format!("n={n} k={k}");
        print_row(&[
            shape.clone(),
            "OddEven/PS".into(),
            format!("{:.2}x", oe / ps),
            "1.8-2.5x".into(),
        ]);
        print_row(&[
            shape.clone(),
            "OE-NC/PS-NC".into(),
            format!("{:.2}x", oe_nc / ps_nc),
            "1.8-2.0x".into(),
        ]);
        print_row(&[
            shape,
            "Assoc/Kalman".into(),
            format!("{:.2}x", assoc / rts),
            "1.8-2.7x".into(),
        ]);
    }
    println!(
        "\n(ratios > 1 are the price of parallelism: the parallel algorithms do more arithmetic)"
    );
}

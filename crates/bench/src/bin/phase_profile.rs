//! Dev helper: phase timing of the batch odd-even smoother (whiten /
//! factor / solve / SelInv), single thread — plus the plan/execute split:
//! how long building the symbolic `PlanSchedule` takes versus executing
//! the numeric pipeline through a reused `SmoothPlan`, and what the
//! one-shot path pays for re-planning every call.
use kalman::model::{whiten_model, LinearModel};
use kalman::odd_even::{factor_odd_even_owned, selinv_diag, PlanSchedule, SmoothPlan};
use kalman::prelude::*;
use kalman_bench::{median_time, Args};
use rand::SeedableRng;

fn profile(model: &LinearModel, runs: usize) -> [f64; 4] {
    let policy = ExecPolicy::Seq;
    let t_whiten = median_time(runs, || {
        std::hint::black_box(whiten_model(model).unwrap());
    });
    let steps = whiten_model(model).unwrap();
    let t_factor = median_time(runs, || {
        std::hint::black_box(factor_odd_even_owned(steps.clone(), policy, true).unwrap());
    });
    let r = factor_odd_even_owned(steps, policy, true).unwrap();
    let t_solve = median_time(runs, || {
        std::hint::black_box(r.solve(policy).unwrap());
    });
    let t_selinv = median_time(runs, || {
        std::hint::black_box(selinv_diag(&r, policy).unwrap());
    });
    [t_whiten, t_factor, t_solve, t_selinv]
}

/// `(plan build, steady-state planned execute)` for the model's shape: the
/// symbolic schedule construction alone, and a full re-factorization
/// through a warm reused plan (whiten excluded from both).
fn profile_plan(model: &LinearModel, runs: usize) -> (f64, f64) {
    let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
    let t_build = median_time(runs, || {
        std::hint::black_box(PlanSchedule::build(&dims));
    });
    let opts = OddEvenOptions {
        covariances: false,
        policy: ExecPolicy::Seq,
        compress_odd: true,
    };
    let mut plan = SmoothPlan::for_dims(&dims, opts);
    let mut steps = whiten_model(model).unwrap();
    plan.execute(&mut steps).unwrap(); // warm the plan's arena
    let t_execute = median_time(runs, || {
        steps.clear();
        steps.extend(whiten_model(model).unwrap());
        plan.execute(&mut steps).unwrap();
    });
    // Subtract the re-whitening the timed closure needs to refill steps.
    let t_rewhiten = median_time(runs, || {
        std::hint::black_box(whiten_model(model).unwrap());
    });
    (t_build, (t_execute - t_rewhiten).max(0.0))
}

fn main() {
    let mut args = Args::parse();
    let k: usize = args.get("k", 4000);
    let runs: usize = args.get("runs", 3);
    args.finish();
    for (n, seed) in [(4usize, 10u64), (8, 11), (16, 12)] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let model = kalman::model::generators::paper_benchmark(&mut rng, n, k, true);
        let [w, f, s, c] = profile(&model, runs);
        println!(
            "n={n}: whiten {w:.4} factor {f:.4} solve {s:.4} selinv {c:.4}  total {:.4}",
            w + f + s + c
        );
        let (plan_build, planned_exec) = profile_plan(&model, runs);
        println!(
            "       plan-build {plan_build:.6} planned-execute {planned_exec:.4}  \
             (build amortizes to {:.2}% of one execute)",
            100.0 * plan_build / planned_exec.max(1e-12)
        );
    }
}

//! Dev helper: phase timing of the batch odd-even smoother (whiten /
//! factor / solve / SelInv), single thread.
use kalman::model::{whiten_model, LinearModel};
use kalman::odd_even::{factor_odd_even_owned, selinv_diag};
use kalman::prelude::*;
use kalman_bench::{median_time, Args};
use rand::SeedableRng;

fn profile(model: &LinearModel, runs: usize) -> [f64; 4] {
    let policy = ExecPolicy::Seq;
    let t_whiten = median_time(runs, || {
        std::hint::black_box(whiten_model(model).unwrap());
    });
    let steps = whiten_model(model).unwrap();
    let t_factor = median_time(runs, || {
        std::hint::black_box(factor_odd_even_owned(steps.clone(), policy, true).unwrap());
    });
    let r = factor_odd_even_owned(steps, policy, true).unwrap();
    let t_solve = median_time(runs, || {
        std::hint::black_box(r.solve(policy).unwrap());
    });
    let t_selinv = median_time(runs, || {
        std::hint::black_box(selinv_diag(&r, policy).unwrap());
    });
    [t_whiten, t_factor, t_solve, t_selinv]
}

fn main() {
    let mut args = Args::parse();
    let k: usize = args.get("k", 4000);
    let runs: usize = args.get("runs", 3);
    args.finish();
    for (n, seed) in [(4usize, 10u64), (8, 11), (16, 12)] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let model = kalman::model::generators::paper_benchmark(&mut rng, n, k, true);
        let [w, f, s, c] = profile(&model, runs);
        println!(
            "n={n}: whiten {w:.4} factor {f:.4} solve {s:.4} selinv {c:.4}  total {:.4}",
            w + f + s + c
        );
    }
}

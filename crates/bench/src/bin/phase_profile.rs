//! Dev helper: phase timing of the batch odd-even smoother (whiten /
//! factor / solve / SelInv), single thread — plus the plan/execute split:
//! how long building the symbolic `PlanSchedule` takes versus executing
//! the numeric pipeline through a reused `SmoothPlan`, and what the
//! one-shot path pays for re-planning every call.
//!
//! The per-phase numbers are read from the **production phase spans**
//! (`oe.whiten` / `oe.factor` / `oe.solve` / `oe.selinv` histograms in the
//! `kalman-obs` registry) rather than re-timing wrapper calls, so what
//! this tool reports and what live instrumentation exports can never
//! disagree.
use kalman::model::{whiten_model, LinearModel, Smoothed};
use kalman::odd_even::{PlanSchedule, SmoothPlan};
use kalman::prelude::*;
use kalman_bench::{median_time, Args};
use rand::SeedableRng;

/// Names of the production phase spans, in pipeline order.
const PHASES: [&str; 4] = ["oe.whiten", "oe.factor", "oe.solve", "oe.selinv"];

/// Mean seconds per phase over `runs` warm plan executions, read back
/// from the production span histograms.  `None` when instrumentation is
/// compiled out (`obs-off`) or disabled at runtime — there is nothing to
/// read then.
fn profile(model: &LinearModel, runs: usize) -> Option<[f64; 4]> {
    let hists = PHASES.map(kalman::obs::histogram);
    let opts = OddEvenOptions {
        covariances: true,
        policy: ExecPolicy::Seq,
        compress_odd: true,
    };
    let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
    let mut plan = SmoothPlan::for_dims(&dims, opts);
    let mut out = Smoothed {
        means: Vec::new(),
        covariances: None,
    };
    plan.smooth_model_into(model, &mut out).unwrap(); // warm plan + arena
    let before = hists.map(|h| h.snapshot());
    for _ in 0..runs {
        plan.smooth_model_into(model, &mut out).unwrap();
    }
    let mut phase_secs = [0.0f64; 4];
    for (i, h) in hists.iter().enumerate() {
        let delta = h.snapshot().since(&before[i]);
        if delta.count == 0 {
            return None;
        }
        phase_secs[i] = delta.mean() / 1e9;
    }
    Some(phase_secs)
}

/// `(plan build, steady-state planned execute)` for the model's shape: the
/// symbolic schedule construction alone, and a full re-factorization
/// through a warm reused plan (whiten excluded from both).
fn profile_plan(model: &LinearModel, runs: usize) -> (f64, f64) {
    let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
    let t_build = median_time(runs, || {
        std::hint::black_box(PlanSchedule::build(&dims));
    });
    let opts = OddEvenOptions {
        covariances: false,
        policy: ExecPolicy::Seq,
        compress_odd: true,
    };
    let mut plan = SmoothPlan::for_dims(&dims, opts);
    let mut steps = whiten_model(model).unwrap();
    plan.execute(&mut steps).unwrap(); // warm the plan's arena
    let t_execute = median_time(runs, || {
        steps.clear();
        steps.extend(whiten_model(model).unwrap());
        plan.execute(&mut steps).unwrap();
    });
    // Subtract the re-whitening the timed closure needs to refill steps.
    let t_rewhiten = median_time(runs, || {
        std::hint::black_box(whiten_model(model).unwrap());
    });
    (t_build, (t_execute - t_rewhiten).max(0.0))
}

fn main() {
    let mut args = Args::parse();
    let k: usize = args.get("k", 4000);
    let runs: usize = args.get("runs", 3);
    args.finish();
    println!(
        "dense kernel backend: {} (dispatch counters below are the \
         dense.kernel.dispatch.* gauges of docs/OBSERVABILITY.md)",
        kalman::dense::simd_backend()
    );
    for (n, seed) in [(4usize, 10u64), (8, 11), (16, 12)] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let model = kalman::model::generators::paper_benchmark(&mut rng, n, k, true);
        let (scalar0, simd0, mono0) = kalman::dense::kernel_dispatch_counts();
        match profile(&model, runs) {
            Some([w, f, s, c]) => println!(
                "n={n}: whiten {w:.4} factor {f:.4} solve {s:.4} selinv {c:.4}  total {:.4}",
                w + f + s + c
            ),
            None => println!(
                "n={n}: phase spans recorded nothing (instrumentation disabled \
                 or built with obs-off) — per-phase split unavailable"
            ),
        }
        // Which rung of the kernel dispatch ladder served this shape:
        // deltas of the process-wide scalar/simd/mono hit counters across
        // the profiled executions.
        let (scalar1, simd1, mono1) = kalman::dense::kernel_dispatch_counts();
        println!(
            "       kernel dispatch: scalar {} simd {} mono {}",
            scalar1 - scalar0,
            simd1 - simd0,
            mono1 - mono0
        );
        let (plan_build, planned_exec) = profile_plan(&model, runs);
        println!(
            "       plan-build {plan_build:.6} planned-execute {planned_exec:.4}  \
             (build amortizes to {:.2}% of one execute)",
            100.0 * plan_build / planned_exec.max(1e-12)
        );
    }
}

//! Saturation benchmark: many async producers against a sharded serving
//! pool under bounded queues.
//!
//! Sweeps shard counts for a fixed producer population and reports
//! end-to-end serving throughput (events and finalized steps per second),
//! backpressure engagement (producer throttles), and flush-pass latency.
//! Single-threaded by construction — producers and consumer share one
//! core through the vendored cooperative executor — so the numbers
//! isolate the *serving machinery* (queues, gating, batched flushes),
//! not hardware parallelism; on a multi-core runner the per-shard flush
//! batches additionally parallelize under `ExecPolicy::par()`.
//!
//! `cargo run --release -p kalman-bench --bin saturation -- \
//!     [--producers 64] [--steps 200] [--cap 32] [--smoke]`

use futures::executor::LocalPool;
use kalman::model::StreamEvent;
use kalman::prelude::*;
use kalman::serve::{ServeConfig, ShardedPool};
use kalman_bench::{print_row, Args};

fn event_stream(n: usize, steps: usize, salt: usize) -> Vec<StreamEvent> {
    let mut events = Vec::with_capacity(2 * steps - 1);
    for i in 0..steps {
        if i > 0 {
            events.push(StreamEvent::Evolve(Evolution::random_walk(n)));
        }
        events.push(StreamEvent::Observe(Observation {
            g: Matrix::identity(n),
            o: (0..n)
                .map(|c| ((salt * steps * n + i * n + c) as f64 * 0.05).sin())
                .collect(),
            noise: CovarianceSpec::Identity(n),
        }));
    }
    events
}

struct RunStats {
    secs: f64,
    drains: u64,
    throttled: u64,
    flushed_steps: u64,
    /// p50/p95/p99 whole-drain latency in seconds, from the serving
    /// layer's drain-latency histogram.
    drain_quantiles: [f64; 3],
    /// The final serving-metrics snapshot (printed for the largest sweep
    /// point via its `Display` table).
    stats: kalman::serve::Stats,
}

fn run(producers: usize, shards: usize, steps: usize, cap: usize, n: usize) -> RunStats {
    let cfg = ServeConfig {
        shards,
        queue_capacity: cap,
        policy: ExecPolicy::Seq,
    };
    let (mut pool, ingress) = ShardedPool::new(cfg);
    let opts = StreamOptions {
        lag: 12,
        flush_every: 6,
        covariances: false,
        policy: ExecPolicy::Seq,
        ..StreamOptions::default()
    };
    for key in 0..producers as u64 {
        pool.insert(
            key,
            StreamingSmoother::with_prior(vec![0.0; n], CovarianceSpec::Identity(n), opts)
                .expect("valid options"),
        )
        .expect("fresh key");
    }
    let mut tasks = LocalPool::new();
    let spawner = tasks.spawner();
    for key in 0..producers {
        let mut tx = ingress.clone();
        let events = event_stream(n, steps, key);
        spawner.spawn_local(async move {
            for event in events {
                tx.submit(key as u64, event).await.expect("pool alive");
                futures::future::yield_now().await;
            }
        });
    }
    drop(ingress);

    let start = std::time::Instant::now();
    let mut drains = 0u64;
    loop {
        tasks.run_until_stalled();
        let summary = pool.drain();
        drains += 1;
        if tasks.is_empty() && summary.ops == 0 {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = pool.stats();
    let agg = stats.aggregate();
    let mut flushed_steps = agg.flushed_steps;
    let d = &stats.drain_latency;
    let drain_quantiles = [d.p50() / 1e9, d.p95() / 1e9, d.p99() / 1e9];
    for key in 0..producers as u64 {
        flushed_steps += pool.finish(key).expect("solvable").0.len() as u64;
    }
    assert_eq!(flushed_steps as usize, producers * steps);
    RunStats {
        secs,
        drains,
        throttled: agg.throttled,
        flushed_steps: agg.flushed_steps,
        drain_quantiles,
        stats,
    }
}

fn main() {
    let mut args = Args::parse();
    let smoke = args.has("smoke");
    let producers: usize = args.get("producers", 64);
    let steps: usize = args.get("steps", if smoke { 60 } else { 200 });
    let cap: usize = args.get("cap", 32);
    let n: usize = args.get("n", 4);
    args.finish();

    let events = producers * (2 * steps - 1);
    println!(
        "saturation: {producers} producers x {steps} steps (n = {n}), \
         queue capacity {cap}/shard, {events} events per run\n"
    );
    print_row(&[
        "shards".into(),
        "secs".into(),
        "events/s".into(),
        "steps/s".into(),
        "drains".into(),
        "throttled".into(),
        "drain p50".into(),
        "p95".into(),
        "p99".into(),
    ]);
    let mut last = None;
    for shards in [1usize, 2, 4, 8] {
        if shards > producers {
            continue;
        }
        let r = run(producers, shards, steps, cap, n);
        print_row(&[
            format!("{shards}"),
            format!("{:.3}", r.secs),
            format!("{:.0}", events as f64 / r.secs),
            format!("{:.0}", r.flushed_steps as f64 / r.secs),
            format!("{}", r.drains),
            format!("{}", r.throttled),
            format!("{:.1}us", r.drain_quantiles[0] * 1e6),
            format!("{:.1}us", r.drain_quantiles[1] * 1e6),
            format!("{:.1}us", r.drain_quantiles[2] * 1e6),
        ]);
        last = Some(r.stats);
    }
    println!(
        "\nthrottled = producer submissions that found their shard queue full \
         (each waited for a drain);\ndrain p50/p95/p99 = whole-drain latency \
         quantiles from the serving layer's histogram."
    );
    if let Some(stats) = last {
        println!("\nper-shard metrics of the last sweep point:");
        println!("{stats}");
    }
}

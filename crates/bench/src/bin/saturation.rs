//! Saturation benchmark: many async producers against a sharded serving
//! pool under bounded queues.
//!
//! Sweeps shard counts for a fixed producer population and reports
//! end-to-end serving throughput (events and finalized steps per second),
//! backpressure engagement (producer throttles), and flush-pass latency.
//! Single-threaded by construction — producers and consumer share one
//! core through the vendored cooperative executor — so the numbers
//! isolate the *serving machinery* (queues, gating, batched flushes),
//! not hardware parallelism; on a multi-core runner the per-shard flush
//! batches additionally parallelize under `ExecPolicy::par()`.
//!
//! `cargo run --release -p kalman-bench --bin saturation -- \
//!     [--producers 64] [--steps 200] [--cap 32] [--smoke]`
//!
//! With `--cluster`, the same round-paced workload instead runs through
//! the cross-process serving layer (`kalman::cluster`): a supervisor
//! re-execs this binary as shard worker processes, sweeps the worker
//! count, kills a worker mid-load and times the restart+replay recovery,
//! and records everything (plus a `speedup/cluster_w2` ratio gated by
//! `bench_check`) into a `BENCH_serve.json` artifact:
//!
//! `cargo run --release -p kalman-bench --bin saturation -- \
//!     --cluster [--smoke] [--json BENCH_serve.json]`

use futures::executor::LocalPool;
use kalman::cluster::{ClusterConfig, StreamInit, StreamSpec, Supervisor};
use kalman::model::StreamEvent;
use kalman::prelude::*;
use kalman::serve::{ServeConfig, ShardedPool};
use kalman_bench::{print_row, write_bench_json, Args, BenchEntry};

fn event_stream(n: usize, steps: usize, salt: usize) -> Vec<StreamEvent> {
    let mut events = Vec::with_capacity(2 * steps - 1);
    for i in 0..steps {
        if i > 0 {
            events.push(StreamEvent::Evolve(Evolution::random_walk(n)));
        }
        events.push(StreamEvent::Observe(Observation {
            g: Matrix::identity(n),
            o: (0..n)
                .map(|c| ((salt * steps * n + i * n + c) as f64 * 0.05).sin())
                .collect(),
            noise: CovarianceSpec::Identity(n),
        }));
    }
    events
}

struct RunStats {
    secs: f64,
    drains: u64,
    throttled: u64,
    flushed_steps: u64,
    /// p50/p95/p99 whole-drain latency in seconds, from the serving
    /// layer's drain-latency histogram.
    drain_quantiles: [f64; 3],
    /// The final serving-metrics snapshot (printed for the largest sweep
    /// point via its `Display` table).
    stats: kalman::serve::Stats,
}

fn run(producers: usize, shards: usize, steps: usize, cap: usize, n: usize) -> RunStats {
    let cfg = ServeConfig {
        shards,
        queue_capacity: cap,
        policy: ExecPolicy::Seq,
    };
    let (mut pool, ingress) = ShardedPool::new(cfg);
    let opts = StreamOptions {
        lag: 12,
        flush_every: 6,
        covariances: false,
        policy: ExecPolicy::Seq,
        ..StreamOptions::default()
    };
    for key in 0..producers as u64 {
        pool.insert(
            key,
            StreamingSmoother::with_prior(vec![0.0; n], CovarianceSpec::Identity(n), opts)
                .expect("valid options"),
        )
        .expect("fresh key");
    }
    let mut tasks = LocalPool::new();
    let spawner = tasks.spawner();
    for key in 0..producers {
        let mut tx = ingress.clone();
        let events = event_stream(n, steps, key);
        spawner.spawn_local(async move {
            for event in events {
                tx.submit(key as u64, event).await.expect("pool alive");
                futures::future::yield_now().await;
            }
        });
    }
    drop(ingress);

    let start = std::time::Instant::now();
    let mut drains = 0u64;
    loop {
        tasks.run_until_stalled();
        let summary = pool.drain();
        drains += 1;
        if tasks.is_empty() && summary.ops == 0 {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = pool.stats();
    let agg = stats.aggregate();
    let mut flushed_steps = agg.flushed_steps;
    let d = &stats.drain_latency;
    let drain_quantiles = [d.p50() / 1e9, d.p95() / 1e9, d.p99() / 1e9];
    for key in 0..producers as u64 {
        flushed_steps += pool.finish(key).expect("solvable").0.len() as u64;
    }
    assert_eq!(flushed_steps as usize, producers * steps);
    RunStats {
        secs,
        drains,
        throttled: agg.throttled,
        flushed_steps: agg.flushed_steps,
        drain_quantiles,
        stats,
    }
}

/// One cluster measurement: wall time for the whole load, and — when a
/// worker was killed mid-load — the kill-to-recovered wall time.
struct ClusterRun {
    secs: f64,
    recovery_secs: Option<f64>,
}

/// Round-paces `producers` event streams through a supervised worker
/// cluster.  With `kill_mid_load`, SIGKILLs worker 0 halfway through and
/// times the supervisor's detect → restart → restore → replay cycle.
fn run_cluster(producers: usize, workers: usize, steps: usize, n: usize, kill: bool) -> ClusterRun {
    let mut sup = Supervisor::new(ClusterConfig {
        workers,
        queue_capacity: 4 * producers.max(1),
        // Re-exec this binary with no arguments: the socket environment
        // variable alone turns the child into a worker (see `main`).
        worker_args: Vec::new(),
        ..ClusterConfig::default()
    })
    .expect("valid cluster config");
    let opts = StreamOptions {
        lag: 12,
        flush_every: 6,
        covariances: false,
        policy: ExecPolicy::Seq,
        auto_flush: false,
        ..StreamOptions::default()
    };
    for key in 0..producers as u64 {
        sup.insert(
            key,
            StreamSpec {
                init: StreamInit::WithPrior {
                    mean: vec![0.0; n],
                    cov: CovarianceSpec::Identity(n),
                },
                opts,
            },
        )
        .expect("fresh key");
    }
    let streams: Vec<Vec<StreamEvent>> = (0..producers)
        .map(|salt| event_stream(n, steps, salt))
        .collect();
    let rounds = 2 * steps - 1;
    let kill_round = if kill { Some(rounds / 2) } else { None };

    let start = std::time::Instant::now();
    let mut recovery_secs = None;
    let mut finalized = 0usize;
    for si in 0..rounds {
        for (key, events) in streams.iter().enumerate() {
            sup.send(key as u64, events[si].clone()).expect("delivery");
        }
        if Some(si) == kill_round {
            sup.kill_worker(0);
            let t = std::time::Instant::now();
            // The heartbeat discovers the silent death and runs the full
            // recovery (backoff, respawn, snapshot restore, log replay).
            sup.heartbeat().expect("recovery");
            recovery_secs = Some(t.elapsed().as_secs_f64());
        }
        if si % 4 == 3 {
            sup.poll().expect("poll");
            for (_, out) in sup.take_outputs() {
                finalized += out.len();
            }
        }
    }
    for key in 0..producers as u64 {
        finalized += sup.finish(key).expect("solvable").0.len();
    }
    for (_, out) in sup.take_outputs() {
        finalized += out.len();
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(finalized, producers * steps, "every step exactly once");
    assert!(
        sup.take_stream_errors().is_empty(),
        "healthy load must not produce stream errors"
    );
    sup.shutdown();
    ClusterRun {
        secs,
        recovery_secs,
    }
}

/// The `--cluster` mode: worker-count sweep + recovery timing, recorded
/// as a `BENCH_serve.json` artifact.
fn cluster_main(producers: usize, steps: usize, n: usize, json: &str) {
    let events = producers * (2 * steps - 1);
    println!(
        "saturation --cluster: {producers} streams x {steps} steps (n = {n}), \
         {events} events per run, worker processes re-exec'd from this binary\n"
    );
    print_row(&[
        "workers".into(),
        "secs".into(),
        "events/s".into(),
        "recovery".into(),
    ]);
    let mut entries = Vec::new();
    let mut secs_w1 = 0.0;
    let mut secs_w2 = 0.0;
    for workers in [1usize, 2, 4] {
        let r = run_cluster(producers, workers, steps, n, false);
        print_row(&[
            format!("{workers}"),
            format!("{:.3}", r.secs),
            format!("{:.0}", events as f64 / r.secs),
            "-".into(),
        ]);
        entries.push(BenchEntry::new(format!("cluster/w{workers}/secs"), r.secs));
        entries.push(BenchEntry::new(
            format!("cluster/w{workers}/events_per_s"),
            events as f64 / r.secs,
        ));
        match workers {
            1 => secs_w1 = r.secs,
            2 => secs_w2 = r.secs,
            _ => {}
        }
    }
    let rk = run_cluster(producers, 2, steps, n, true);
    let recovery = rk.recovery_secs.expect("kill was injected");
    print_row(&[
        "2+kill".into(),
        format!("{:.3}", rk.secs),
        format!("{:.0}", events as f64 / rk.secs),
        format!("{:.1}ms", recovery * 1e3),
    ]);
    entries.push(BenchEntry::new(
        "cluster/recovery_after_kill/secs",
        recovery,
    ));
    // The gated ratio: two timings from the same process on the same
    // machine, so it is hardware-normalized like the kernel speedups.
    entries.push(BenchEntry::new("speedup/cluster_w2", secs_w1 / secs_w2));

    println!(
        "\nrecovery = SIGKILL of worker 0 mid-load to heartbeat-detected, \
         restarted, snapshot-restored, log-replayed;\nspeedup/cluster_w2 = \
         1-worker over 2-worker wall time (gated by bench_check)."
    );
    let config = format!("cluster producers={producers} steps={steps} n={n}");
    write_bench_json(json, &config, &entries).expect("write artifact");
    println!("wrote {json} ({} entries)", entries.len());
}

fn main() {
    // If the supervisor re-exec'd us as a shard worker, this never
    // returns; in every other invocation it is an instant no-op.
    kalman::cluster::worker_entry_from_env();

    let mut args = Args::parse();
    let smoke = args.has("smoke");
    let cluster = args.has("cluster");
    if cluster {
        // Heavier per-event compute than the in-process sweep (n = 8):
        // the gated w1/w2 ratio is only stable when smoothing work, not
        // socket traffic, dominates the wall time.
        let producers: usize = args.get("producers", if smoke { 16 } else { 32 });
        let steps: usize = args.get("steps", if smoke { 150 } else { 300 });
        let n: usize = args.get("n", 8);
        let json: String = args.get("json", "BENCH_serve.json".to_string());
        args.finish();
        cluster_main(producers, steps, n, &json);
        return;
    }
    let producers: usize = args.get("producers", 64);
    let steps: usize = args.get("steps", if smoke { 60 } else { 200 });
    let cap: usize = args.get("cap", 32);
    let n: usize = args.get("n", 4);
    args.finish();

    let events = producers * (2 * steps - 1);
    println!(
        "saturation: {producers} producers x {steps} steps (n = {n}), \
         queue capacity {cap}/shard, {events} events per run\n"
    );
    print_row(&[
        "shards".into(),
        "secs".into(),
        "events/s".into(),
        "steps/s".into(),
        "drains".into(),
        "throttled".into(),
        "drain p50".into(),
        "p95".into(),
        "p99".into(),
    ]);
    let mut last = None;
    for shards in [1usize, 2, 4, 8] {
        if shards > producers {
            continue;
        }
        let r = run(producers, shards, steps, cap, n);
        print_row(&[
            format!("{shards}"),
            format!("{:.3}", r.secs),
            format!("{:.0}", events as f64 / r.secs),
            format!("{:.0}", r.flushed_steps as f64 / r.secs),
            format!("{}", r.drains),
            format!("{}", r.throttled),
            format!("{:.1}us", r.drain_quantiles[0] * 1e6),
            format!("{:.1}us", r.drain_quantiles[1] * 1e6),
            format!("{:.1}us", r.drain_quantiles[2] * 1e6),
        ]);
        last = Some(r.stats);
    }
    println!(
        "\nthrottled = producer submissions that found their shard queue full \
         (each waited for a drain);\ndrain p50/p95/p99 = whole-drain latency \
         quantiles from the serving layer's histogram."
    );
    if let Some(stats) = last {
        println!("\nper-shard metrics of the last sweep point:");
        println!("{stats}");
    }
}

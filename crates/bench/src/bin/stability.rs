//! §6 stability experiment: the QR-based smoothers are conditionally
//! backward stable — their accuracy depends only on the conditioning of the
//! input covariances — while the normal-equations cyclic-reduction smoother
//! (the paper's dismissed "third parallel algorithm") squares the condition
//! number and loses accuracy orders of magnitude earlier.
//!
//! Sweeps the condition number of the `K_i`/`L_i` covariances and reports
//! each solver's max error against the dense Householder-QR oracle.
//!
//! `cargo run --release -p kalman-bench --bin stability [--n 4] [--k 60]`

use kalman::model::{generators, solve_dense};
use kalman::prelude::*;
use kalman_bench::{print_row, Args};
use rand::SeedableRng;

fn main() {
    let mut args = Args::parse();
    let n: usize = args.get("n", 4);
    let k: usize = args.get("k", 60);
    args.finish();

    println!("Stability: max |error| vs dense QR oracle, n={n} k={k}");
    println!("(covariances K_i, L_i are random SPD with the given condition number)\n");
    print_row(&[
        "cond(K,L)".into(),
        "Odd-Even".into(),
        "Paige-Saunders".into(),
        "Associative".into(),
        "NormalEq-CR".into(),
        "NormalEq-Chol".into(),
    ]);

    for exp in [0i32, 2, 4, 6, 8, 10, 12] {
        let cond = 10f64.powi(exp);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1000 + exp as u64);
        let mut model = generators::ill_conditioned(&mut rng, n, k, cond);
        model.set_prior(vec![0.0; n], CovarianceSpec::Identity(n));
        let oracle = solve_dense(&model).expect("oracle solves");

        let err = |r: Result<Smoothed, KalmanError>| -> String {
            match r {
                Ok(s) => format!("{:.1e}", s.max_mean_diff(&oracle)),
                Err(KalmanError::NotPositiveDefinite { .. }) => "lost-PD".into(),
                Err(KalmanError::RankDeficient { .. }) => "singular".into(),
                Err(e) => format!("{e}"),
            }
        };

        print_row(&[
            format!("1e{exp}"),
            err(odd_even_smooth(&model, OddEvenOptions::default())),
            err(paige_saunders_smooth(&model, SmootherOptions::default())),
            err(associative_smooth(&model, AssociativeOptions::default())),
            err(normal_equations_smooth(
                &model,
                TridiagMethod::CyclicReduction,
                ExecPolicy::par(),
            )),
            err(normal_equations_smooth(
                &model,
                TridiagMethod::Cholesky,
                ExecPolicy::Seq,
            )),
        ]);
    }
    println!("\n(expect the QR columns to degrade gracefully with cond, and the normal-equations");
    println!(" columns to lose ~2x the digits — or positive definiteness outright)");
}

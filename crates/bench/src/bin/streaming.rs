//! Streaming serving benchmark: steady-state throughput and finalization
//! latency of the fixed-lag smoother, and multi-stream serving throughput
//! of the `SmootherPool` against naive per-stream batch re-smoothing.
//!
//! ```text
//! cargo run --release -p kalman-bench --bin streaming -- \
//!     --k 2000 --streams 8 --dim 4 --flush 32 --runs 3
//! ```
//!
//! The pool comparison is the subsystem's claim to existence: a serving
//! process that re-smooths each user's *entire history* on every update
//! does `Θ(T²)` work per stream over a stream of length `T`, while the
//! windowed smoother condenses finalized history into an R-factor head and
//! does `Θ(T)` — and the pool batches all ready windows through one
//! parallel loop per poll.

use kalman::model::{generators, LinearModel};
use kalman::prelude::*;
use kalman_bench::{median_time, print_row, Args};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn stream_opts(lag: usize, flush: usize) -> StreamOptions {
    StreamOptions {
        lag,
        flush_every: flush,
        covariances: false,
        policy: ExecPolicy::Seq,
        auto_flush: true,
        lag_policy: None,
        ..StreamOptions::default()
    }
}

/// Runs one model through a standalone stream; returns (finalized count,
/// per-flush latencies in seconds).
fn run_stream(model: &LinearModel, opts: StreamOptions) -> (usize, Vec<f64>) {
    let prior = model.prior.as_ref().expect("benchmark models carry priors");
    let mut stream = StreamingSmoother::with_prior(prior.mean.clone(), prior.cov.clone(), opts)
        .expect("valid options");
    let mut count = 0;
    let mut latencies = Vec::new();
    for (i, step) in model.steps.iter().enumerate() {
        if i > 0 {
            let evo = step.evolution.clone().expect("chain step");
            if stream.ready() {
                let t = Instant::now();
                count += stream.flush().expect("window solvable").len();
                latencies.push(t.elapsed().as_secs_f64());
            }
            stream.evolve(evo).expect("well-formed step");
        }
        if let Some(obs) = &step.observation {
            stream.observe(obs.clone()).expect("well-formed obs");
        }
    }
    let (tail, _) = stream.finish().expect("final window solvable");
    (count + tail.len(), latencies)
}

/// Naive baseline: keep each stream's whole history and re-smooth it from
/// scratch at the same cadence the windowed smoother flushes.
fn run_naive(model: &LinearModel, flush: usize) -> usize {
    let mut history = LinearModel::new();
    history.prior = model.prior.clone();
    let mut smooths = 0;
    for (i, step) in model.steps.iter().enumerate() {
        history.push_step(step.clone());
        if (i + 1) % flush == 0 || i + 1 == model.num_states() {
            odd_even_smooth(&history, OddEvenOptions::nc(ExecPolicy::Seq))
                .expect("well-posed model");
            smooths += 1;
        }
    }
    smooths
}

/// Streams every model through a pool, polling after each step round.
fn run_pool(models: &[LinearModel], opts: StreamOptions, policy: ExecPolicy) -> usize {
    let mut pool = SmootherPool::new(policy);
    let ids: Vec<StreamId> = models
        .iter()
        .map(|m| {
            let p = m.prior.as_ref().expect("prior");
            let mut s = StreamingSmoother::with_prior(p.mean.clone(), p.cov.clone(), opts)
                .expect("valid options");
            s.set_auto_flush(false);
            pool.insert(s)
        })
        .collect();
    let mut count = 0;
    for si in 0..models[0].num_states() {
        for (k, model) in models.iter().enumerate() {
            let step = &model.steps[si];
            if si > 0 {
                pool.evolve(ids[k], step.evolution.clone().expect("chain step"))
                    .expect("well-formed step");
            }
            if let Some(obs) = &step.observation {
                pool.observe(ids[k], obs.clone()).expect("well-formed obs");
            }
        }
        for (_, steps) in pool.poll() {
            count += steps.expect("windows solvable").len();
        }
    }
    for id in ids {
        count += pool.finish(id).expect("final window solvable").0.len();
    }
    count
}

fn main() {
    let mut args = Args::parse();
    let k: usize = args.get("k", 2000);
    let streams: usize = args.get("streams", 8);
    let dim: usize = args.get("dim", 4);
    let flush: usize = args.get("flush", 32);
    let runs: usize = args.get("runs", 3);
    args.finish();

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let models: Vec<LinearModel> = (0..streams)
        .map(|_| generators::paper_benchmark(&mut rng, dim, k, true))
        .collect();

    // ---- single-stream throughput / latency across lags -----------------
    println!(
        "single stream: n = {dim}, {} steps, flush_every = {flush}",
        k + 1
    );
    print_row(&[
        "lag".into(),
        "steps/s".into(),
        "median flush".into(),
        "max flush".into(),
    ]);
    for lag in [8usize, 32, 128] {
        let opts = stream_opts(lag, flush);
        let secs = median_time(runs, || run_stream(&models[0], opts));
        let (_, lats) = run_stream(&models[0], opts);
        let mut sorted = lats.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_flush = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        let max_flush = sorted.last().copied().unwrap_or(0.0);
        print_row(&[
            format!("{lag}"),
            format!("{:.0}", (k + 1) as f64 / secs),
            format!("{:.2e} s", median_flush),
            format!("{:.2e} s", max_flush),
        ]);
    }

    // Plan-reuse amortization: a stream's very first flush builds its
    // window plan (symbolic schedule + cold scratch); every later flush at
    // the same cadence re-executes the cached plan.  The first recorded
    // latency vs the steady median is the serving benefit of the
    // plan/execute split.
    {
        let (_, lats) = run_stream(&models[0], stream_opts(32, flush));
        let first = lats.first().copied().unwrap_or(0.0);
        let mut sorted = lats.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let steady = sorted.get(sorted.len() / 2).copied().unwrap_or(first);
        println!(
            "\nplan reuse (lag 32): first flush {first:.2e} s (plans the window), \
             steady median {steady:.2e} s (cached plan), amortization {:.2}x",
            first / steady.max(1e-12)
        );
    }

    // ---- serving pool vs naive per-stream re-smoothing ------------------
    let opts = stream_opts(32, flush);
    println!(
        "\nserving {streams} concurrent streams ({} steps each):",
        k + 1
    );
    let total_steps = (streams * (k + 1)) as f64;

    let naive_secs = median_time(runs, || {
        for m in &models {
            run_naive(m, flush);
        }
    });
    let seq_secs = median_time(runs, || {
        for m in &models {
            run_stream(m, opts);
        }
    });
    let pool_seq_secs = median_time(runs, || run_pool(&models, opts, ExecPolicy::Seq));
    let pool_par_secs = median_time(runs, || {
        run_pool(&models, opts, ExecPolicy::par_with_grain(1))
    });

    print_row(&[
        "variant".into(),
        "time".into(),
        "steps/s".into(),
        "vs naive".into(),
    ]);
    for (name, secs) in [
        ("naive re-smooth", naive_secs),
        ("stream, one-by-one", seq_secs),
        ("pool (seq)", pool_seq_secs),
        ("pool (par)", pool_par_secs),
    ] {
        print_row(&[
            name.into(),
            format!("{secs:.3} s"),
            format!("{:.0}", total_steps / secs),
            format!("{:.1}x", naive_secs / secs),
        ]);
    }
    let speedup = naive_secs / pool_par_secs;
    println!(
        "\npool speedup over naive sequential per-stream smoothing: {speedup:.1}x \
         ({} streams; target > 2x)",
        streams
    );
    // The work-stealing acceptance metric: the same batched flushes, with
    // cross-stream parallelism on vs off.  Streams are independent, so on a
    // c-core runner this approaches min(c, streams)x; on one core it is ~1x
    // (the pool adds only scheduling overhead, which this line records).
    let par_speedup = pool_seq_secs / pool_par_secs;
    println!(
        "pool ExecPolicy::par over ExecPolicy::Seq: {par_speedup:.2}x on a {}-worker pool, \
         {} hardware threads (target >= 2x on a >= 4-core runner)",
        kalman::par::current_pool_threads(),
        kalman::par::available_parallelism()
    );
}

//! Shared harness utilities for the benchmark binaries that regenerate the
//! paper's figures and tables.
//!
//! Each figure/table has a dedicated binary under `src/bin/` (see DESIGN.md
//! for the per-experiment index).  This library provides the pieces they
//! share: median-of-N timing (the paper reports medians of 5 runs), a tiny
//! command-line flag parser, and aligned table output.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod sweep;

use std::time::Instant;

/// Times `f`, returning (seconds, result) for a single run.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let out = f();
    (t.elapsed().as_secs_f64(), out)
}

/// Median running time of `runs` executions of `f` (the paper's §5.4
/// methodology: all running times are medians of 5 runs).
pub fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(runs >= 1);
    let mut times: Vec<f64> = (0..runs).map(|_| time_once(&mut f).0).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    times[times.len() / 2]
}

/// Core counts to sweep: 1, 2, 4, … up to the machine's parallelism,
/// always including the maximum (mirrors the paper's 1..64 sweeps).
pub fn core_sweep() -> Vec<usize> {
    let max = kalman::par::available_parallelism();
    let mut cores = Vec::new();
    let mut c = 1;
    while c < max {
        cores.push(c);
        c *= 2;
    }
    cores.push(max);
    cores
}

/// A minimal `--flag value` parser for the bench binaries.
///
/// Flags look like `--cores 8 --k 100000 --paper`; unrecognized flags are
/// reported by the binary itself via [`Args::finish`].
pub struct Args {
    raw: Vec<String>,
    used: Vec<bool>,
}

impl Args {
    /// Captures the process arguments (skipping the binary name).
    pub fn parse() -> Args {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let used = vec![false; raw.len()];
        Args { raw, used }
    }

    /// Returns the value following `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value is present but unparsable.
    pub fn get<T: std::str::FromStr>(&mut self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        let flag = format!("--{name}");
        for i in 0..self.raw.len() {
            if self.raw[i] == flag {
                self.used[i] = true;
                let Some(v) = self.raw.get(i + 1) else {
                    panic!("flag {flag} expects a value");
                };
                self.used[i + 1] = true;
                return v
                    .parse()
                    .unwrap_or_else(|e| panic!("invalid value for {flag}: {e}"));
            }
        }
        default
    }

    /// `true` when the bare flag `--name` is present.
    pub fn has(&mut self, name: &str) -> bool {
        let flag = format!("--{name}");
        for i in 0..self.raw.len() {
            if self.raw[i] == flag {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Errors out on unrecognized arguments (call after all `get`/`has`).
    pub fn finish(self) {
        for (arg, used) in self.raw.iter().zip(&self.used) {
            assert!(used, "unrecognized argument: {arg}");
        }
    }
}

/// One measurement destined for a `BENCH_*.json` artifact.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Hierarchical name, e.g. `smoother/n4/blocked` or `speedup/n4`.
    pub name: String,
    /// The measured value (seconds for timings, ratio for speedups).
    pub value: f64,
}

impl BenchEntry {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: f64) -> Self {
        BenchEntry {
            name: name.into(),
            value,
        }
    }
}

/// Writes a `BENCH_*.json` artifact: a flat, line-oriented JSON document —
/// one entry per line — so diffs stay readable and `bench_check` can parse
/// it without a JSON library.
///
/// # Errors
///
/// I/O errors creating or writing the file.
pub fn write_bench_json(path: &str, config: &str, entries: &[BenchEntry]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"schema\": \"kalman-bench/1\",")?;
    writeln!(f, "  \"config\": \"{}\",", config.replace('"', "'"))?;
    writeln!(f, "  \"entries\": [")?;
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"name\": \"{}\", \"value\": {:.6e}}}{comma}",
            e.name, e.value
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")
}

/// Parses a `BENCH_*.json` artifact written by [`write_bench_json`]
/// (line-oriented; not a general JSON parser).
///
/// # Errors
///
/// I/O errors; malformed entry lines are skipped.
pub fn read_bench_json(path: &str) -> std::io::Result<Vec<BenchEntry>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once("\", \"value\": ") else {
            continue;
        };
        let Ok(value) = rest.trim_end_matches('}').parse::<f64>() else {
            continue;
        };
        out.push(BenchEntry::new(name, value));
    }
    Ok(out)
}

/// Prints a row of right-aligned cells under 14-character columns.
pub fn print_row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats seconds with 4 significant digits.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_is_positive_and_finite() {
        let t = median_time(3, || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(t >= 0.0 && t.is_finite());
    }

    #[test]
    fn core_sweep_is_increasing_and_ends_at_max() {
        let s = core_sweep();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.last().unwrap(), kalman::par::available_parallelism());
        assert_eq!(s[0], 1);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(1.23456), "1.2346");
    }

    #[test]
    fn bench_json_roundtrips() {
        let path = std::env::temp_dir().join("kalman_bench_json_test.json");
        let path = path.to_str().unwrap();
        let entries = vec![
            BenchEntry::new("smoother/n4/blocked", 0.123),
            BenchEntry::new("speedup/n4", 1.75),
        ];
        write_bench_json(path, "test config \"quoted\"", &entries).unwrap();
        let back = read_bench_json(path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, "smoother/n4/blocked");
        assert!((back[0].value - 0.123).abs() < 1e-12);
        assert_eq!(back[1].name, "speedup/n4");
        assert!((back[1].value - 1.75).abs() < 1e-12);
        std::fs::remove_file(path).ok();
    }
}

//! Shared experiment logic for the figure-regenerating binaries.
//!
//! Figures 2 and 3 of the paper are two views of the same measurement —
//! running times and speedups of six smoother variants over a core-count
//! sweep — so both binaries call [`run_sweep`] and print different columns.

use crate::median_time;
use kalman::model::generators;
use kalman::prelude::*;
use rand::SeedableRng;

/// The six smoother variants of the paper's Figure 2, in legend order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The odd-even parallel smoother with covariances.
    OddEven,
    /// Odd-even without the covariance phase.
    OddEvenNc,
    /// Särkkä & García-Fernández parallel-scan smoother.
    Associative,
    /// Sequential Paige–Saunders with SelInv covariances.
    PaigeSaunders,
    /// Sequential Paige–Saunders without covariances.
    PaigeSaundersNc,
    /// Conventional sequential Kalman (RTS) smoother.
    Kalman,
}

impl Algorithm {
    /// All variants, in the paper's legend order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::OddEven,
        Algorithm::OddEvenNc,
        Algorithm::Associative,
        Algorithm::PaigeSaunders,
        Algorithm::PaigeSaundersNc,
        Algorithm::Kalman,
    ];

    /// The parallel variants (the only ones whose speedup Figure 3 plots).
    pub const PARALLEL: [Algorithm; 3] = [
        Algorithm::OddEven,
        Algorithm::OddEvenNc,
        Algorithm::Associative,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::OddEven => "Odd-Even",
            Algorithm::OddEvenNc => "Odd-Even NC",
            Algorithm::Associative => "Associative",
            Algorithm::PaigeSaunders => "Paige-Saunders",
            Algorithm::PaigeSaundersNc => "Paige-Saunders NC",
            Algorithm::Kalman => "Kalman",
        }
    }

    /// `true` for the parallel-in-time algorithms.
    pub fn is_parallel(self) -> bool {
        matches!(
            self,
            Algorithm::OddEven | Algorithm::OddEvenNc | Algorithm::Associative
        )
    }

    /// Runs the smoother once on `model` (panics on solver failure: the
    /// benchmark models are well posed by construction).
    pub fn run(self, model: &LinearModel) {
        match self {
            Algorithm::OddEven => {
                odd_even_smooth(model, OddEvenOptions::default()).expect("well-posed");
            }
            Algorithm::OddEvenNc => {
                odd_even_smooth(model, OddEvenOptions::nc(ExecPolicy::par())).expect("well-posed");
            }
            Algorithm::Associative => {
                associative_smooth(model, AssociativeOptions::default()).expect("well-posed");
            }
            Algorithm::PaigeSaunders => {
                paige_saunders_smooth(model, SmootherOptions { covariances: true })
                    .expect("well-posed");
            }
            Algorithm::PaigeSaundersNc => {
                paige_saunders_smooth(model, SmootherOptions { covariances: false })
                    .expect("well-posed");
            }
            Algorithm::Kalman => {
                rts_smooth(model).expect("well-posed");
            }
        }
    }
}

/// One measurement of the sweep.
#[derive(Debug, Clone)]
pub struct Record {
    /// Which smoother.
    pub algorithm: Algorithm,
    /// Core count the measurement ran on (1 for sequential algorithms).
    pub cores: usize,
    /// Median running time in seconds.
    pub seconds: f64,
}

/// Generates the paper's benchmark model for a panel (always with a prior so
/// the RTS/associative smoothers run on the identical problem).
pub fn panel_model(n: usize, k: usize, seed: u64) -> LinearModel {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    generators::paper_benchmark(&mut rng, n, k, true)
}

/// Measures every algorithm over the core sweep (parallel algorithms at
/// every core count, sequential ones once), mirroring Figure 2's panels.
pub fn run_sweep(model: &LinearModel, cores: &[usize], runs: usize) -> Vec<Record> {
    let mut records = Vec::new();
    for alg in Algorithm::ALL {
        if alg.is_parallel() {
            for &c in cores {
                let secs = run_with_threads(c, move || median_time(runs, || alg.run(model)));
                records.push(Record {
                    algorithm: alg,
                    cores: c,
                    seconds: secs,
                });
                eprintln!("  measured {:<18} on {c:>2} cores: {secs:.3}s", alg.name());
            }
        } else {
            let secs = median_time(runs, || alg.run(model));
            records.push(Record {
                algorithm: alg,
                cores: 1,
                seconds: secs,
            });
            eprintln!("  measured {:<18} (sequential): {secs:.3}s", alg.name());
        }
    }
    records
}

/// Extracts the time of `alg` on `cores` from sweep records.
pub fn time_of(records: &[Record], alg: Algorithm, cores: usize) -> Option<f64> {
    records
        .iter()
        .find(|r| r.algorithm == alg && r.cores == cores)
        .map(|r| r.seconds)
}

//! Cluster-layer errors.

use kalman_model::KalmanError;
use kalman_wire::WireError;
use std::fmt;

/// Everything that can go wrong supervising cross-process serving.
///
/// Transport-level failures ([`ClusterError::Wire`], [`ClusterError::Io`])
/// are normally *handled internally* — the supervisor treats them as a
/// worker death and recovers (restart, restore, replay).  They surface to
/// the caller only when recovery itself is impossible (spawn failures, a
/// worker that cannot come back within its crash budget *and* cannot be
/// replayed locally).
#[derive(Debug)]
pub enum ClusterError {
    /// A frame could not be encoded, decoded, or moved.
    Wire(WireError),
    /// A stream-layer failure (invalid spec, rejected options, flush
    /// errors surfaced synchronously).
    Kalman(KalmanError),
    /// Transport or process-management I/O failed.
    Io(std::io::Error),
    /// A worker process could not be spawned or did not connect back in
    /// time.
    Spawn(String),
    /// A worker stopped responding and the deadline for its reply passed.
    ReplyTimeout {
        /// Index of the silent worker slot.
        slot: usize,
    },
    /// The peer sent a frame that violates the protocol state machine.
    Protocol(String),
    /// The key is not registered with the supervisor.
    UnknownKey(u64),
    /// The supervisor configuration is unusable.
    Config(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Wire(e) => write!(f, "wire failure: {e}"),
            ClusterError::Kalman(e) => write!(f, "stream failure: {e}"),
            ClusterError::Io(e) => write!(f, "cluster I/O failure: {e}"),
            ClusterError::Spawn(msg) => write!(f, "worker spawn failed: {msg}"),
            ClusterError::ReplyTimeout { slot } => {
                write!(f, "worker {slot} did not reply before the deadline")
            }
            ClusterError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClusterError::UnknownKey(key) => write!(f, "unknown stream key {key}"),
            ClusterError::Config(msg) => write!(f, "bad cluster config: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Wire(e) => Some(e),
            ClusterError::Kalman(e) => Some(e),
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> Self {
        ClusterError::Wire(e)
    }
}

impl From<KalmanError> for ClusterError {
    fn from(e: KalmanError) -> Self {
        ClusterError::Kalman(e)
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// Shorthand result type for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;

//! Deterministic fault injection for the supervisor's transport layer.
//!
//! A [`FaultPlan`] is a scripted set of failures the supervisor applies
//! to its *own* side of each worker connection — kill a child after N
//! events, corrupt or truncate a specific outbound frame, swallow
//! snapshot acks.  Because every rule triggers at a deterministic point
//! in the event sequence, recovery tests can pin exact outcomes (which
//! steps replay, when the budget exhausts) instead of sampling luck.
//! An empty plan (the default) injects nothing and costs two integer
//! compares per frame.

/// What to do to an outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Flip one payload bit after the CRC is computed — the receiver
    /// must detect [`kalman_wire::WireError::BadCrc`] and die.
    Corrupt,
    /// Send only a prefix of the frame, then sever the connection — the
    /// receiver must detect truncation, never stall on a partial frame.
    Truncate,
}

/// A scripted set of deterministic transport failures.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(slot, events)`: SIGKILL slot's worker right after the
    /// `events`-th event frame (1-based, counted per slot over the
    /// slot's lifetime) is delivered.
    pub kill_after_events: Vec<(usize, u64)>,
    /// `(slot, frame, fault)`: apply `fault` to the `frame`-th frame
    /// (1-based, counted per connection) sent to the slot.
    pub frame_faults: Vec<(usize, u64, FrameFault)>,
    /// `(slot, count)`: swallow the slot's next `count` snapshot acks —
    /// the supervisor behaves as if the worker never acked, so its log
    /// keeps growing and recovery replays a longer suffix.
    pub delay_acks: Vec<(usize, u32)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` if the plan says to kill `slot`'s worker now (consumes the
    /// rule).
    pub(crate) fn take_kill(&mut self, slot: usize, events_delivered: u64) -> bool {
        if let Some(i) = self
            .kill_after_events
            .iter()
            .position(|&(s, n)| s == slot && n == events_delivered)
        {
            self.kill_after_events.swap_remove(i);
            return true;
        }
        false
    }

    /// The fault to apply to this outbound frame, if any (consumes the
    /// rule).
    pub(crate) fn take_frame_fault(&mut self, slot: usize, frame: u64) -> Option<FrameFault> {
        let i = self
            .frame_faults
            .iter()
            .position(|&(s, n, _)| s == slot && n == frame)?;
        let (_, _, fault) = self.frame_faults.swap_remove(i);
        Some(fault)
    }

    /// `true` if this slot's next snapshot ack should be swallowed
    /// (decrements the rule's counter).
    pub(crate) fn take_ack_delay(&mut self, slot: usize) -> bool {
        if let Some(i) = self
            .delay_acks
            .iter()
            .position(|&(s, n)| s == slot && n > 0)
        {
            self.delay_acks[i].1 -= 1;
            if self.delay_acks[i].1 == 0 {
                self.delay_acks.swap_remove(i);
            }
            return true;
        }
        false
    }
}

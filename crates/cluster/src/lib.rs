//! Fault-tolerant cross-process serving for streaming Kalman smoothing.
//!
//! `kalman-cluster` moves the sharded serving front-end of
//! [`kalman_serve`] across process boundaries: a [`Supervisor`] spawns
//! one worker process per shard slot (a re-exec of the current binary,
//! gated by the [`SOCKET_ENV`] environment variable), routes stream
//! events to them over [`kalman_wire`]-framed Unix sockets, and — the
//! point of the exercise — survives worker crashes without losing or
//! duplicating a single output.
//!
//! # The recovery contract
//!
//! Three mechanisms combine into exactly-once, bitwise-reproducible
//! serving (the integration tests pin all of it):
//!
//! 1. **Write-ahead log.** Every insert/event/finish is logged by the
//!    supervisor before it is sent.
//! 2. **Snapshot checkpoints.** Periodically each worker ships a
//!    bitwise-transparent [`kalman_stream::WindowSnapshot`] of every
//!    resident stream (having first shipped all pending outputs, so the
//!    ack never outruns data); the supervisor then truncates the covered
//!    log prefix.
//! 3. **Restart + replay.** A dead worker (kill -9, hang-up, corrupt
//!    frame, heartbeat miss) is restarted with bounded exponential
//!    backoff, restored from the last acked snapshots, and fed the
//!    logged suffix.  Replayed outputs regenerate bitwise-identically
//!    (the flush cadence is canonical), and a per-key output cursor
//!    drops what the caller already saw.
//!
//! A slot that exhausts its [`ClusterConfig::crash_budget`] **degrades**
//! to an in-process shard rebuilt from the same snapshots and log —
//! service continues, still without data loss.
//!
//! Deterministic fault injection ([`FaultPlan`]) scripts worker kills,
//! frame corruption/truncation, and swallowed acks so tests exercise
//! every recovery path reproducibly.
//!
//! See `DESIGN.md` §"Cross-process serving" for the frame layout and
//! recovery state machine, and `docs/GUIDE.md` for a walkthrough from
//! in-process [`kalman_serve::ShardedPool`] to a supervised cluster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fault;
pub mod proto;
mod supervisor;
mod worker;

pub use error::{ClusterError, Result};
pub use fault::{FaultPlan, FrameFault};
pub use proto::{StreamInit, StreamSpec};
pub use supervisor::{ClusterConfig, ClusterStats, Supervisor};
pub use worker::{worker_entry_from_env, SOCKET_ENV};

//! The supervisor ↔ worker protocol: frame kinds and message payloads.
//!
//! Built entirely on [`kalman_wire`] primitives — every payload is a
//! sequence of wire codec values, and every frame is CRC-framed by
//! [`kalman_wire::FrameWriter`].  The protocol is strictly
//! request-driven: workers only speak when spoken to, except that a
//! processed `Finish` always produces a `Finished` reply.  See
//! DESIGN.md §"Cross-process serving" for the full state machine.

use crate::error::{ClusterError, Result};
use kalman_model::CovarianceSpec;
use kalman_stream::{Checkpoint, FinalizedStep, StreamOptions, StreamingSmoother, WindowSnapshot};
use kalman_wire::{codec, Reader, WireError, Writer};

/// Supervisor → worker: serving configuration (must precede anything
/// else on a fresh connection).
pub const K_CONFIG: u8 = 1;
/// Supervisor → worker: register a stream (`key`, [`StreamSpec`]).
pub const K_INSERT: u8 = 2;
/// Supervisor → worker: one stream event (`key`, event).
pub const K_EVENT: u8 = 3;
/// Supervisor → worker: drain and report all pending outputs.
pub const K_POLL: u8 = 4;
/// Supervisor → worker: drain, then snapshot every resident stream
/// (`seq` echoes back in the ack).
pub const K_SNAPSHOT_REQ: u8 = 5;
/// Supervisor → worker: restore one stream from a snapshot (`key`,
/// options, snapshot) — the recovery path on a fresh worker.
pub const K_RESTORE: u8 = 6;
/// Supervisor → worker: finish a stream (`key`).
pub const K_FINISH: u8 = 7;
/// Supervisor → worker: liveness probe.
pub const K_PING: u8 = 8;
/// Supervisor → worker: exit cleanly.
pub const K_SHUTDOWN: u8 = 9;

/// Worker → supervisor: first frame after connecting.
pub const K_HELLO: u8 = 16;
/// Worker → supervisor: a batch of finalized outputs.
pub const K_OUTPUTS: u8 = 17;
/// Worker → supervisor: snapshot of every resident stream.
pub const K_SNAPSHOT_ACK: u8 = 18;
/// Worker → supervisor: a stream finished (`key`, tail, checkpoint).
pub const K_FINISHED: u8 = 19;
/// Worker → supervisor: liveness reply.
pub const K_PONG: u8 = 20;
/// Worker → supervisor: a stream-level error (`key`, message).
pub const K_STREAM_ERROR: u8 = 21;

const INIT_FRESH: u8 = 0;
const INIT_PRIOR: u8 = 1;
const INIT_RESUME: u8 = 2;

/// How a stream starts.
#[derive(Debug, Clone)]
pub enum StreamInit {
    /// No prior on the initial state (dimension `dim`).
    Fresh {
        /// State dimension.
        dim: usize,
    },
    /// A Gaussian prior on the initial state.
    WithPrior {
        /// Prior mean.
        mean: Vec<f64>,
        /// Prior covariance.
        cov: CovarianceSpec,
    },
    /// Continue from a finished stream's checkpoint.
    Resume {
        /// The condensed prior stream.
        checkpoint: Checkpoint,
    },
}

/// A serializable stream registration: everything a worker needs to
/// construct the [`StreamingSmoother`] the supervisor wants resident.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// How the stream starts.
    pub init: StreamInit,
    /// The stream's options (a fixed lag; the supervisor rejects
    /// [`kalman_stream::LagPolicy::Auto`] before a spec ever ships).
    pub opts: StreamOptions,
}

impl StreamSpec {
    /// Index of the first step this stream will emit (for output
    /// dedup accounting).
    pub fn first_index(&self) -> u64 {
        match &self.init {
            StreamInit::Resume { checkpoint } => checkpoint.index + 1,
            _ => 0,
        }
    }

    /// Constructs the smoother this spec describes.
    ///
    /// # Errors
    ///
    /// As the [`StreamingSmoother`] constructors (degenerate options or
    /// dimensions).
    pub fn build(&self) -> kalman_model::Result<StreamingSmoother> {
        match &self.init {
            StreamInit::Fresh { dim } => StreamingSmoother::new(*dim, self.opts),
            StreamInit::WithPrior { mean, cov } => {
                StreamingSmoother::with_prior(mean.clone(), cov.clone(), self.opts)
            }
            StreamInit::Resume { checkpoint } => {
                StreamingSmoother::resume(checkpoint.clone(), self.opts)
            }
        }
    }
}

/// Appends a [`StreamSpec`].
pub fn encode_spec(w: &mut Writer, spec: &StreamSpec) {
    match &spec.init {
        StreamInit::Fresh { dim } => {
            w.put_u8(INIT_FRESH);
            w.put_u32(*dim as u32);
        }
        StreamInit::WithPrior { mean, cov } => {
            w.put_u8(INIT_PRIOR);
            codec::encode_vec_f64(w, mean);
            codec::encode_cov(w, cov);
        }
        StreamInit::Resume { checkpoint } => {
            w.put_u8(INIT_RESUME);
            codec::encode_checkpoint(w, checkpoint);
        }
    }
    codec::encode_stream_options(w, &spec.opts);
}

/// Decodes a [`StreamSpec`].
pub fn decode_spec(r: &mut Reader<'_>) -> kalman_wire::Result<StreamSpec> {
    let init = match r.get_u8()? {
        INIT_FRESH => StreamInit::Fresh {
            dim: r.get_u32()? as usize,
        },
        INIT_PRIOR => StreamInit::WithPrior {
            mean: codec::decode_vec_f64(r)?,
            cov: codec::decode_cov(r)?,
        },
        INIT_RESUME => StreamInit::Resume {
            checkpoint: codec::decode_checkpoint(r)?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "stream init",
                tag,
            })
        }
    };
    let opts = codec::decode_stream_options(r)?;
    Ok(StreamSpec { init, opts })
}

/// A decoded worker → supervisor message.
#[derive(Debug)]
pub enum Incoming {
    /// First frame on a fresh connection.
    Hello,
    /// A batch of finalized outputs.
    Outputs(Vec<(u64, FinalizedStep)>),
    /// A whole-worker snapshot.
    SnapshotAck {
        /// Echo of the requested sequence number.
        seq: u64,
        /// Every resident stream's live window.
        snapshots: Vec<(u64, WindowSnapshot)>,
    },
    /// One stream finished.
    Finished {
        /// The finished stream's key.
        key: u64,
        /// Remaining finalized steps (the closing window).
        tail: Vec<FinalizedStep>,
        /// The resumable condensation of the whole stream.
        checkpoint: Checkpoint,
    },
    /// Liveness reply.
    Pong,
    /// A stream-level error the worker absorbed (the stream keeps
    /// serving; this mirrors in-process `last_errors`).
    StreamError {
        /// The affected stream's key.
        key: u64,
        /// Human-readable failure.
        message: String,
    },
}

/// Decodes a worker → supervisor frame.
///
/// # Errors
///
/// [`ClusterError::Protocol`] on a frame kind workers never send;
/// [`ClusterError::Wire`] on payload defects.
pub fn decode_incoming(kind: u8, payload: &[u8]) -> Result<Incoming> {
    let mut r = Reader::new(payload);
    let msg = match kind {
        K_HELLO => Incoming::Hello,
        K_PONG => Incoming::Pong,
        K_OUTPUTS => {
            let count = r.get_u32()? as usize;
            let mut out = Vec::with_capacity(count.min(r.remaining()));
            for _ in 0..count {
                let key = r.get_u64()?;
                let step = codec::decode_finalized_step(&mut r)?;
                out.push((key, step));
            }
            Incoming::Outputs(out)
        }
        K_SNAPSHOT_ACK => {
            let seq = r.get_u64()?;
            let count = r.get_u32()? as usize;
            let mut snapshots = Vec::with_capacity(count.min(r.remaining()));
            for _ in 0..count {
                let key = r.get_u64()?;
                let snap = codec::decode_window_snapshot(&mut r)?;
                snapshots.push((key, snap));
            }
            Incoming::SnapshotAck { seq, snapshots }
        }
        K_FINISHED => {
            let key = r.get_u64()?;
            let count = r.get_u32()? as usize;
            let mut tail = Vec::with_capacity(count.min(r.remaining()));
            for _ in 0..count {
                tail.push(codec::decode_finalized_step(&mut r)?);
            }
            let checkpoint = codec::decode_checkpoint(&mut r)?;
            Incoming::Finished {
                key,
                tail,
                checkpoint,
            }
        }
        K_STREAM_ERROR => {
            let key = r.get_u64()?;
            let message = codec::decode_string(&mut r)?;
            Incoming::StreamError { key, message }
        }
        other => {
            return Err(ClusterError::Protocol(format!(
                "unexpected frame kind {other:#04x} from worker"
            )))
        }
    };
    r.finish()?;
    Ok(msg)
}

//! The supervisor: cross-process sharded serving with crash recovery.
//!
//! A [`Supervisor`] owns `workers` shard slots.  Each slot normally runs
//! a child process (a re-exec of the current binary gated by
//! [`crate::SOCKET_ENV`]) speaking the framed protocol over a Unix
//! socket.  Keys route to slots by the same [`stable_shard`] hash the
//! in-process [`ShardedPool`] uses.
//!
//! # Durability model
//!
//! Every mutation (insert, event, finish) is appended to the slot's
//! in-memory **write-ahead log before it is sent**.  Periodically (every
//! [`ClusterConfig::checkpoint_every`] events) the supervisor asks the
//! worker for a **snapshot** of every resident stream — the live window,
//! not an early finalization — and on the ack truncates the log prefix
//! the snapshot covers.  A worker death (heartbeat miss, hang-up,
//! nonzero exit, corrupt frame) therefore never loses data: the slot is
//! restarted with bounded exponential backoff, restored from the last
//! acked snapshots, and the logged suffix is replayed.  Replay
//! regenerates exactly the outputs the dead worker would have produced
//! (snapshots are bitwise-transparent and the flush cadence is
//! canonical), and a per-key output cursor drops the prefix the
//! supervisor already delivered — every finalized step is delivered
//! **exactly once**, bitwise equal to in-process serving.
//!
//! After [`ClusterConfig::crash_budget`] consecutive restarts a slot
//! **degrades**: the supervisor rebuilds the shard in-process from the
//! same snapshots + log suffix and keeps serving without worker
//! processes — graceful degradation, still no data loss.

use crate::error::{ClusterError, Result};
use crate::fault::{FaultPlan, FrameFault};
use crate::proto::{
    decode_incoming, encode_spec, Incoming, StreamSpec, K_CONFIG, K_EVENT, K_FINISH, K_INSERT,
    K_PING, K_POLL, K_RESTORE, K_SHUTDOWN, K_SNAPSHOT_REQ,
};
use crate::worker::SOCKET_ENV;
use kalman_model::{KalmanError, StreamEvent};
use kalman_obs::{Counter, Histogram};
use kalman_serve::{stable_shard, Ingress, ServeConfig, ShardedPool};
use kalman_stream::{
    Checkpoint, FinalizedStep, LagPolicy, StreamOptions, StreamingSmoother, WindowSnapshot,
};
use kalman_wire::{codec, frame_bytes, FrameReader, FrameWriter, Progress, WireError, Writer};
use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Cluster deployment and recovery policy.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of shard slots (worker processes), ≥ 1.
    pub workers: usize,
    /// Per-worker ingestion queue bound (the worker's internal
    /// [`ShardedPool`] queue).
    pub queue_capacity: usize,
    /// Execution policy of each worker's batched flush.
    pub policy: kalman_par::ExecPolicy,
    /// Events per slot between snapshot checkpoints (≥ 1).  Smaller
    /// means shorter replays after a crash but more snapshot traffic.
    pub checkpoint_every: u64,
    /// Socket read timeout: a worker silent for this long while a reply
    /// is expected counts as a heartbeat miss.
    pub heartbeat_timeout: Duration,
    /// Overall deadline for any single worker reply (a poll of a large
    /// shard legitimately takes longer than one heartbeat).
    pub reply_timeout: Duration,
    /// How long a freshly spawned worker gets to connect back.
    pub spawn_timeout: Duration,
    /// Consecutive restarts after which a slot degrades to in-process
    /// serving.
    pub crash_budget: u32,
    /// First restart backoff; doubles per consecutive restart.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Arguments passed to the re-exec'd worker binary (the test
    /// harness uses a libtest filter to land in the worker entry).
    pub worker_args: Vec<String>,
    /// Deterministic fault injection (tests only; default injects
    /// nothing).
    pub fault_plan: FaultPlan,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 2,
            queue_capacity: 1024,
            policy: kalman_par::ExecPolicy::Seq,
            checkpoint_every: 64,
            heartbeat_timeout: Duration::from_secs(2),
            reply_timeout: Duration::from_secs(30),
            spawn_timeout: Duration::from_secs(10),
            crash_budget: 3,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            worker_args: vec!["cluster_worker_entry".into(), "--exact".into()],
            fault_plan: FaultPlan::default(),
        }
    }
}

/// One durable mutation, logged before it is sent.
#[derive(Debug, Clone)]
enum WalEntry {
    Insert { key: u64, spec: StreamSpec },
    Event { key: u64, event: StreamEvent },
    Finish { key: u64 },
}

/// Cached `kalman-obs` registry handles (lookups once, not per frame).
struct Metrics {
    frames_sent: &'static Counter,
    frames_recv: &'static Counter,
    events: &'static Counter,
    restarts: &'static Counter,
    degraded: &'static Counter,
    snapshots: &'static Counter,
    replay_len: &'static Histogram,
}

impl Metrics {
    fn new() -> Metrics {
        Metrics {
            frames_sent: kalman_obs::counter("wire.frames_sent"),
            frames_recv: kalman_obs::counter("wire.frames_recv"),
            events: kalman_obs::counter("cluster.events"),
            restarts: kalman_obs::counter("cluster.restarts"),
            degraded: kalman_obs::counter("cluster.degraded"),
            snapshots: kalman_obs::counter("cluster.snapshots_acked"),
            replay_len: kalman_obs::histogram("cluster.replay_len"),
        }
    }
}

/// A live connection to a worker process.
struct Conn {
    child: Child,
    tx: FrameWriter<UnixStream>,
    rx: FrameReader<UnixStream>,
    socket_path: PathBuf,
    /// Frames sent on this connection (fault rules index into this).
    frames_sent: u64,
}

impl Conn {
    /// Sends one frame, applying any scripted fault.  A `Truncate` fault
    /// severs the connection and reports the severance as an I/O error
    /// so the caller enters recovery immediately.
    fn send(
        &mut self,
        metrics: &Metrics,
        fault: &mut FaultPlan,
        slot: usize,
        kind: u8,
        payload: &[u8],
    ) -> kalman_wire::Result<()> {
        self.frames_sent += 1;
        metrics.frames_sent.inc();
        match fault.take_frame_fault(slot, self.frames_sent) {
            None => self.tx.send(kind, payload),
            Some(FrameFault::Corrupt) => {
                let mut bytes = frame_bytes(kind, payload);
                // Flip a bit after the CRC was computed; the worker must
                // detect BadCrc and die (its exit is the next failure the
                // supervisor observes).
                let last = bytes.len() - 1;
                bytes[last] ^= 0x01;
                let sock = self.tx.get_mut();
                sock.write_all(&bytes)?;
                sock.flush()?;
                Ok(())
            }
            Some(FrameFault::Truncate) => {
                let bytes = frame_bytes(kind, payload);
                let cut = (bytes.len() / 2).max(1);
                let sock = self.tx.get_mut();
                sock.write_all(&bytes[..cut])?;
                sock.flush()?;
                let _ = sock.shutdown(std::net::Shutdown::Both);
                Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "fault injection: connection severed mid-frame",
                )))
            }
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

/// A degraded slot: the shard rebuilt in-process.
struct LocalShard {
    pool: ShardedPool,
    ingress: Ingress,
}

enum Mode {
    Remote(Conn),
    Local(LocalShard),
}

struct Slot {
    mode: Mode,
    /// Entries not yet covered by an acked snapshot, oldest first.
    wal: VecDeque<(u64, WalEntry)>,
    /// Next log sequence number.
    next_seq: u64,
    /// Highest sequence number covered by `snapshots`.
    acked_seq: u64,
    /// Every resident stream's state at `acked_seq` (with the options
    /// needed to restore it).
    snapshots: Vec<(u64, StreamOptions, WindowSnapshot)>,
    /// Lifetime event frames delivered (kill-fault rules index this).
    events_delivered: u64,
    /// Events since the last snapshot request.
    events_since_ckpt: u64,
    /// Consecutive restarts (resets never — the budget is lifetime).
    restarts: u32,
}

/// What a pumped worker frame amounted to (after applying it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seen {
    Outputs,
    Ack,
    Finished(u64),
    Pong,
    StreamError(u64),
    Hello,
}

/// Point-in-time cluster health.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Restarts per slot, lifetime.
    pub restarts: Vec<u32>,
    /// Which slots run in-process after exhausting their crash budget.
    pub degraded: Vec<bool>,
    /// Un-truncated write-ahead entries per slot (replay cost of a crash
    /// right now).
    pub wal_depth: Vec<usize>,
}

/// Fault-tolerant cross-process sharded serving (see the module docs).
pub struct Supervisor {
    cfg: ClusterConfig,
    fault: FaultPlan,
    metrics: Metrics,
    slots: Vec<Slot>,
    /// Options of every live (not yet finished) stream.
    opts: HashMap<u64, StreamOptions>,
    /// Next output index each key owes the caller — the exactly-once
    /// cursor (replayed duplicates fall below it and are dropped).
    next_emit: HashMap<u64, u64>,
    /// Accepted outputs not yet taken by the caller.
    outputs: HashMap<u64, Vec<FinalizedStep>>,
    /// Closing checkpoints of finished streams.
    finished: HashMap<u64, Checkpoint>,
    /// Stream-level errors reported by workers (mirrors the in-process
    /// pool's `last_errors`).
    stream_errors: Vec<(u64, String)>,
    /// Monotonic per-spawn nonce (socket path uniqueness).
    spawn_nonce: u64,
}

impl Supervisor {
    /// Spawns every worker and waits for all of them to connect.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] on a degenerate configuration;
    /// [`ClusterError::Spawn`] when a worker cannot be started.
    pub fn new(cfg: ClusterConfig) -> Result<Supervisor> {
        if cfg.workers == 0 {
            return Err(ClusterError::Config("need at least one worker".into()));
        }
        if cfg.checkpoint_every == 0 {
            return Err(ClusterError::Config("checkpoint_every must be ≥ 1".into()));
        }
        if cfg.queue_capacity == 0 {
            return Err(ClusterError::Config("queue_capacity must be ≥ 1".into()));
        }
        let metrics = Metrics::new();
        let fault = cfg.fault_plan.clone();
        let mut sup = Supervisor {
            fault,
            metrics,
            slots: Vec::with_capacity(cfg.workers),
            opts: HashMap::new(),
            next_emit: HashMap::new(),
            outputs: HashMap::new(),
            finished: HashMap::new(),
            stream_errors: Vec::new(),
            spawn_nonce: 0,
            cfg,
        };
        for idx in 0..sup.cfg.workers {
            let conn = sup.spawn_conn(idx)?;
            sup.slots.push(Slot {
                mode: Mode::Remote(conn),
                wal: VecDeque::new(),
                next_seq: 0,
                acked_seq: 0,
                snapshots: Vec::new(),
                events_delivered: 0,
                events_since_ckpt: 0,
                restarts: 0,
            });
        }
        Ok(sup)
    }

    /// Number of shard slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// The slot a key routes to (same [`stable_shard`] hash as the
    /// in-process pool).
    pub fn slot_of(&self, key: u64) -> usize {
        stable_shard(key, self.slots.len())
    }

    /// Point-in-time health.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            restarts: self.slots.iter().map(|s| s.restarts).collect(),
            degraded: self
                .slots
                .iter()
                .map(|s| matches!(s.mode, Mode::Local(_)))
                .collect(),
            wal_depth: self.slots.iter().map(|s| s.wal.len()).collect(),
        }
    }

    /// Stream-level errors reported since the last call (cleared on
    /// read; mirrors the in-process pool's `last_errors`).
    pub fn take_stream_errors(&mut self) -> Vec<(u64, String)> {
        std::mem::take(&mut self.stream_errors)
    }

    /// Registers a stream.
    ///
    /// # Errors
    ///
    /// Rejects duplicate keys and — because snapshot-based recovery
    /// cannot capture adaptive-lag scratch state — any spec using
    /// [`LagPolicy::Auto`], with [`ClusterError::Kalman`].
    pub fn insert(&mut self, key: u64, spec: StreamSpec) -> Result<()> {
        if matches!(spec.opts.effective_lag_policy(), LagPolicy::Auto { .. }) {
            return Err(ClusterError::Kalman(KalmanError::Stream(
                "cluster streams need a fixed lag: auto-lag state cannot be \
                 snapshotted for crash recovery"
                    .into(),
            )));
        }
        if self.opts.contains_key(&key) || self.finished.contains_key(&key) {
            return Err(ClusterError::Kalman(KalmanError::Stream(format!(
                "stream key {key} is already registered"
            ))));
        }
        let slot = self.slot_of(key);
        self.opts.insert(key, spec.opts);
        self.next_emit.insert(key, spec.first_index());
        self.log_and_deliver(slot, WalEntry::Insert { key, spec })
    }

    /// Routes one event to its stream.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownKey`] for unregistered keys.  Transport
    /// failures are handled internally (recovery); what surfaces is
    /// recovery itself failing beyond repair.
    pub fn send(&mut self, key: u64, event: StreamEvent) -> Result<()> {
        if !self.opts.contains_key(&key) {
            return Err(ClusterError::UnknownKey(key));
        }
        let slot = self.slot_of(key);
        self.metrics.events.inc();
        self.log_and_deliver(slot, WalEntry::Event { key, event })?;
        self.slots[slot].events_since_ckpt += 1;
        if self.slots[slot].events_since_ckpt >= self.cfg.checkpoint_every {
            self.checkpoint_slot(slot)?;
        }
        Ok(())
    }

    /// Convenience: evolve.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::send`].
    pub fn evolve(&mut self, key: u64, evolution: kalman_model::Evolution) -> Result<()> {
        self.send(key, StreamEvent::Evolve(evolution))
    }

    /// Convenience: observe.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::send`].
    pub fn observe(&mut self, key: u64, observation: kalman_model::Observation) -> Result<()> {
        self.send(key, StreamEvent::Observe(observation))
    }

    /// Forcibly kills a slot's worker process **without** recovering it:
    /// the next poll or heartbeat notices the death and runs the normal
    /// recovery path.  An operational hook (rolling a worker onto a new
    /// binary, or exercising recovery in tests); degraded slots ignore
    /// it.
    pub fn kill_worker(&mut self, slot: usize) {
        if let Some(s) = self.slots.get_mut(slot) {
            if let Mode::Remote(conn) = &mut s.mode {
                let _ = conn.child.kill();
                let _ = conn.child.wait();
            }
        }
    }

    /// Drains every slot and banks the finalized outputs (read them with
    /// [`Supervisor::take_outputs`]).  This is also the liveness probe:
    /// dead workers are discovered and recovered here.
    ///
    /// # Errors
    ///
    /// Only unrecoverable failures (a slot that can neither restart nor
    /// degrade).
    pub fn poll(&mut self) -> Result<()> {
        for slot in 0..self.slots.len() {
            self.poll_slot(slot)?;
        }
        Ok(())
    }

    /// Everything finalized since the last take, keyed and in order,
    /// sorted by key.  Each step appears exactly once across the life of
    /// the supervisor, crashes included.
    pub fn take_outputs(&mut self) -> Vec<(u64, Vec<FinalizedStep>)> {
        let mut out: Vec<(u64, Vec<FinalizedStep>)> = self
            .outputs
            .drain()
            .filter(|(_, v)| !v.is_empty())
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Pings every remote worker; a slot that stays silent past the
    /// heartbeat timeout is declared dead and recovered.
    ///
    /// # Errors
    ///
    /// Only unrecoverable failures.
    pub fn heartbeat(&mut self) -> Result<()> {
        for slot in 0..self.slots.len() {
            if matches!(self.slots[slot].mode, Mode::Local(_)) {
                continue;
            }
            let sent = self.send_frame(slot, K_PING, &[]);
            let alive = match sent {
                Ok(()) => self
                    .pump_until(slot, self.cfg.heartbeat_timeout, |s| *s == Seen::Pong)
                    .is_ok(),
                Err(_) => false,
            };
            if !alive {
                kalman_obs::event("cluster.heartbeat_miss", slot as u64, 0);
                self.recover(slot)?;
            }
        }
        Ok(())
    }

    /// Finishes a stream: applies everything queued for it, returns every
    /// not-yet-taken finalized step (ending with the closing window) and
    /// the resumable checkpoint.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownKey`] for unregistered keys;
    /// [`ClusterError::Kalman`] when the stream's closing flush failed.
    pub fn finish(&mut self, key: u64) -> Result<(Vec<FinalizedStep>, Checkpoint)> {
        if !self.opts.contains_key(&key) {
            return Err(ClusterError::UnknownKey(key));
        }
        let slot = self.slot_of(key);
        self.log_and_deliver(slot, WalEntry::Finish { key })?;
        if !self.finished.contains_key(&key) {
            // Remote mode: the reply may not be in yet (recovery replay
            // pumps it internally; the direct path pumps here).
            if matches!(self.slots[slot].mode, Mode::Remote(_)) {
                let wanted = key;
                let pumped = self.pump_until(
                    slot,
                    self.cfg.reply_timeout,
                    move |s| matches!(s, Seen::Finished(k) | Seen::StreamError(k) if *k == wanted),
                );
                if let Err(e) = pumped {
                    if is_transport(&e) {
                        self.recover(slot)?;
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        self.opts.remove(&key);
        let Some(checkpoint) = self.finished.get(&key).cloned() else {
            let msg = self
                .stream_errors
                .iter()
                .rev()
                .find(|(k, _)| *k == key)
                .map(|(_, m)| m.clone())
                .unwrap_or_else(|| "worker reported no result".into());
            return Err(ClusterError::Kalman(KalmanError::Stream(format!(
                "finish({key}) failed: {msg}"
            ))));
        };
        let steps = self.outputs.remove(&key).unwrap_or_default();
        Ok((steps, checkpoint))
    }

    /// Stops every worker (clean shutdown frame, then force-kill after a
    /// grace period).  Dropping the supervisor kills workers too; this
    /// is the polite version.
    pub fn shutdown(mut self) {
        for slot in 0..self.slots.len() {
            let _ = self.send_frame(slot, K_SHUTDOWN, &[]);
            if let Mode::Remote(conn) = &mut self.slots[slot].mode {
                let deadline = Instant::now() + Duration::from_secs(2);
                loop {
                    match conn.child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        _ => {
                            let _ = conn.child.kill();
                            let _ = conn.child.wait();
                            break;
                        }
                    }
                }
            }
        }
    }

    // ---- internals ----------------------------------------------------

    /// Appends to the slot's log, then delivers (local slots apply
    /// directly; the log is only kept for remote slots).
    fn log_and_deliver(&mut self, slot: usize, entry: WalEntry) -> Result<()> {
        if matches!(self.slots[slot].mode, Mode::Remote(_)) {
            let seq = self.slots[slot].next_seq;
            self.slots[slot].next_seq += 1;
            self.slots[slot].wal.push_back((seq, entry.clone()));
        }
        self.deliver(slot, &entry)
    }

    /// Delivers one entry; a transport failure triggers recovery, whose
    /// replay re-delivers the (already logged) entry.
    fn deliver(&mut self, slot: usize, entry: &WalEntry) -> Result<()> {
        match &self.slots[slot].mode {
            Mode::Local(_) => self.apply_local(slot, entry),
            Mode::Remote(_) => {
                match self.send_entry(slot, entry) {
                    Ok(()) => {
                        if let WalEntry::Event { .. } = entry {
                            self.slots[slot].events_delivered += 1;
                            let n = self.slots[slot].events_delivered;
                            if self.fault.take_kill(slot, n) {
                                // Scripted kill -9: die now, be discovered
                                // by whatever interaction comes next.
                                if let Mode::Remote(conn) = &mut self.slots[slot].mode {
                                    let _ = conn.child.kill();
                                    let _ = conn.child.wait();
                                }
                            }
                        }
                        Ok(())
                    }
                    Err(_) => self.recover(slot),
                }
            }
        }
    }

    /// Encodes and sends one log entry as its protocol frame.
    fn send_entry(&mut self, slot: usize, entry: &WalEntry) -> kalman_wire::Result<()> {
        let mut payload = Writer::new();
        let kind = match entry {
            WalEntry::Insert { key, spec } => {
                payload.put_u64(*key);
                encode_spec(&mut payload, spec);
                K_INSERT
            }
            WalEntry::Event { key, event } => {
                payload.put_u64(*key);
                codec::encode_event(&mut payload, event);
                K_EVENT
            }
            WalEntry::Finish { key } => {
                payload.put_u64(*key);
                K_FINISH
            }
        };
        self.send_frame_wire(slot, kind, payload.as_slice())
    }

    /// Sends a raw frame to a remote slot (wire-level error).
    fn send_frame_wire(
        &mut self,
        slot: usize,
        kind: u8,
        payload: &[u8],
    ) -> kalman_wire::Result<()> {
        let Supervisor {
            slots,
            fault,
            metrics,
            ..
        } = self;
        match &mut slots[slot].mode {
            Mode::Remote(conn) => conn.send(metrics, fault, slot, kind, payload),
            Mode::Local(_) => Ok(()),
        }
    }

    /// Sends a raw frame, converting the error.
    fn send_frame(&mut self, slot: usize, kind: u8, payload: &[u8]) -> Result<()> {
        self.send_frame_wire(slot, kind, payload)
            .map_err(Into::into)
    }

    /// Polls one slot (drain + collect outputs), recovering it if dead.
    fn poll_slot(&mut self, slot: usize) -> Result<()> {
        // At most one recovery attempt per poll: recovery replay already
        // regenerates and banks pending outputs, so the re-poll after it
        // is ordinary.
        for attempt in 0..2 {
            if matches!(self.slots[slot].mode, Mode::Local(_)) {
                self.collect_local(slot);
                return Ok(());
            }
            let result = self.send_frame(slot, K_POLL, &[]).and_then(|()| {
                self.pump_until(slot, self.cfg.reply_timeout, |s| *s == Seen::Outputs)
            });
            match result {
                Ok(()) => return Ok(()),
                Err(e) if is_transport(&e) && attempt == 0 => self.recover(slot)?,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Requests a snapshot of every stream on the slot and, on ack,
    /// truncates the covered log prefix.
    fn checkpoint_slot(&mut self, slot: usize) -> Result<()> {
        if matches!(self.slots[slot].mode, Mode::Local(_)) {
            return Ok(());
        }
        self.slots[slot].events_since_ckpt = 0;
        let seq = self.slots[slot].next_seq.saturating_sub(1);
        let mut payload = Writer::new();
        payload.put_u64(seq);
        let result = self
            .send_frame(slot, K_SNAPSHOT_REQ, payload.as_slice())
            .and_then(|()| self.pump_until(slot, self.cfg.reply_timeout, |s| *s == Seen::Ack));
        match result {
            Ok(()) => Ok(()),
            Err(e) if is_transport(&e) => self.recover(slot),
            Err(e) => Err(e),
        }
    }

    /// Reads and applies worker frames until `want` is satisfied or the
    /// deadline passes.
    fn pump_until(
        &mut self,
        slot: usize,
        timeout: Duration,
        want: impl Fn(&Seen) -> bool,
    ) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let incoming = {
                let Supervisor { slots, metrics, .. } = &mut *self;
                let Mode::Remote(conn) = &mut slots[slot].mode else {
                    return Err(ClusterError::Protocol("pumping a degraded slot".into()));
                };
                read_incoming(conn, metrics, deadline, slot)?
            };
            let seen = self.apply_incoming(slot, incoming);
            if want(&seen) {
                return Ok(());
            }
        }
    }

    /// Applies one worker message to supervisor state.
    fn apply_incoming(&mut self, slot: usize, incoming: Incoming) -> Seen {
        match incoming {
            Incoming::Hello => Seen::Hello,
            Incoming::Pong => Seen::Pong,
            Incoming::Outputs(batch) => {
                for (key, step) in batch {
                    self.accept_output(key, step);
                }
                Seen::Outputs
            }
            Incoming::StreamError { key, message } => {
                self.stream_errors.push((key, message));
                Seen::StreamError(key)
            }
            Incoming::Finished {
                key,
                tail,
                checkpoint,
            } => {
                // Replays re-deliver this; the first delivery wins (they
                // are bitwise identical anyway).
                if !self.finished.contains_key(&key) {
                    for step in tail {
                        self.accept_output(key, step);
                    }
                    self.finished.insert(key, checkpoint);
                }
                Seen::Finished(key)
            }
            Incoming::SnapshotAck { seq, snapshots } => {
                if self.fault.take_ack_delay(slot) {
                    // Scripted ack loss: behave as if it never arrived —
                    // the log keeps growing and the next crash replays a
                    // longer suffix.
                    kalman_obs::event("cluster.ack_delayed", slot as u64, seq);
                    return Seen::Ack;
                }
                let s = &mut self.slots[slot];
                s.acked_seq = seq;
                s.snapshots.clear();
                for (key, snap) in snapshots {
                    if let Some(opts) = self.opts.get(&key) {
                        s.snapshots.push((key, *opts, snap));
                    }
                }
                while s.wal.front().is_some_and(|(q, _)| *q <= seq) {
                    s.wal.pop_front();
                }
                self.metrics.snapshots.inc();
                kalman_obs::event("cluster.snapshot_ack", slot as u64, seq);
                Seen::Ack
            }
        }
    }

    /// Accepts one finalized step through the exactly-once cursor.
    fn accept_output(&mut self, key: u64, step: FinalizedStep) {
        let Some(cursor) = self.next_emit.get_mut(&key) else {
            return; // unknown (already finished and taken): drop
        };
        if step.index < *cursor {
            return; // replayed duplicate
        }
        *cursor = step.index + 1;
        self.outputs.entry(key).or_default().push(step);
    }

    // ---- recovery -----------------------------------------------------

    /// Brings a dead slot back: restart + restore + replay, with bounded
    /// exponential backoff; past the crash budget, degrade in-process.
    fn recover(&mut self, slot: usize) -> Result<()> {
        loop {
            if let Mode::Remote(conn) = &mut self.slots[slot].mode {
                let _ = conn.child.kill();
                let _ = conn.child.wait();
            }
            self.slots[slot].restarts += 1;
            self.metrics.restarts.inc();
            let restarts = self.slots[slot].restarts;
            kalman_obs::event("cluster.worker_dead", slot as u64, restarts as u64);
            if restarts > self.cfg.crash_budget {
                return self.degrade(slot);
            }
            let backoff = backoff_for(&self.cfg, restarts);
            kalman_obs::event("cluster.restart", slot as u64, backoff.as_millis() as u64);
            std::thread::sleep(backoff);
            match self.respawn_and_replay(slot) {
                Ok(()) => return Ok(()),
                Err(_) => continue, // counts as another restart
            }
        }
    }

    /// One restart attempt: fresh worker, restore snapshots, replay the
    /// logged suffix.
    fn respawn_and_replay(&mut self, slot: usize) -> Result<()> {
        let conn = self.spawn_conn(slot)?;
        self.slots[slot].mode = Mode::Remote(conn);
        self.metrics
            .replay_len
            .record(self.slots[slot].wal.len() as u64);
        kalman_obs::event(
            "cluster.replay",
            slot as u64,
            self.slots[slot].wal.len() as u64,
        );

        // Restore every stream from the last acked snapshot.
        let snapshots = self.slots[slot].snapshots.clone();
        let mut payload = Writer::new();
        for (key, opts, snap) in &snapshots {
            payload.clear();
            payload.put_u64(*key);
            codec::encode_stream_options(&mut payload, opts);
            codec::encode_window_snapshot(&mut payload, snap);
            self.send_frame_wire(slot, K_RESTORE, payload.as_slice())?;
        }

        // Replay the suffix.  Finish entries prompt a reply; pump it so
        // socket buffers never back up, and so `finished` is repopulated
        // before the caller looks.
        let entries: Vec<WalEntry> = self.slots[slot]
            .wal
            .iter()
            .map(|(_, e)| e.clone())
            .collect();
        for entry in &entries {
            self.send_entry(slot, entry)?;
            if let WalEntry::Event { .. } = entry {
                self.slots[slot].events_delivered += 1;
            }
            if let WalEntry::Finish { key } = entry {
                let wanted = *key;
                self.pump_until(
                    slot,
                    self.cfg.reply_timeout,
                    move |s| matches!(s, Seen::Finished(k) | Seen::StreamError(k) if *k == wanted),
                )?;
            }
        }
        Ok(())
    }

    /// Rebuilds the shard in-process from snapshots + log suffix and
    /// serves it there from now on.  Queued history is fully replayed —
    /// degradation sheds the process boundary, not data.
    fn degrade(&mut self, slot: usize) -> Result<()> {
        self.metrics.degraded.inc();
        kalman_obs::event(
            "cluster.degraded",
            slot as u64,
            self.slots[slot].wal.len() as u64,
        );
        let (pool, ingress) = ShardedPool::new(ServeConfig {
            shards: 1,
            queue_capacity: self.cfg.queue_capacity,
            policy: self.cfg.policy,
        });
        let snapshots = std::mem::take(&mut self.slots[slot].snapshots);
        let mut local = LocalShard { pool, ingress };
        for (key, opts, snap) in snapshots {
            let stream = StreamingSmoother::restore(snap, opts)?;
            local.pool.insert(key, stream)?;
        }
        self.slots[slot].mode = Mode::Local(local);
        let entries: Vec<WalEntry> = self.slots[slot].wal.drain(..).map(|(_, e)| e).collect();
        for entry in &entries {
            self.apply_local(slot, entry)?;
        }
        self.collect_local(slot);
        Ok(())
    }

    /// Applies one entry to a degraded slot's in-process shard.
    fn apply_local(&mut self, slot: usize, entry: &WalEntry) -> Result<()> {
        // Split borrows: the shard lives in `slots`, the output cursor
        // maps on `self` — collect locally, then bank.
        let mut finished: Option<(u64, Vec<FinalizedStep>, Checkpoint)> = None;
        {
            let Mode::Local(local) = &mut self.slots[slot].mode else {
                return Err(ClusterError::Protocol("slot is not degraded".into()));
            };
            match entry {
                WalEntry::Insert { key, spec } => {
                    if let Err(e) = spec
                        .build()
                        .and_then(|stream| local.pool.insert(*key, stream).map(|_| ()))
                    {
                        self.stream_errors.push((*key, e.to_string()));
                    }
                }
                WalEntry::Event { key, event } => {
                    let submit = local.ingress.try_submit(*key, event.clone());
                    if let Err(e) = submit {
                        if e.is_would_block() {
                            local.pool.drain();
                            // Bank below; retry after the drain made room.
                            if local.ingress.try_submit(*key, e.into_event()).is_err() {
                                self.stream_errors
                                    .push((*key, "queue full after drain".into()));
                            }
                        } else {
                            self.stream_errors.push((*key, "ingress closed".into()));
                        }
                    }
                }
                WalEntry::Finish { .. } => {
                    local.pool.drain();
                    // Bank the drain's outputs before the tail (ordering).
                }
            }
        }
        self.collect_local(slot);
        if let WalEntry::Finish { key } = entry {
            let result = {
                let Mode::Local(local) = &mut self.slots[slot].mode else {
                    return Err(ClusterError::Protocol("slot is not degraded".into()));
                };
                local.pool.finish(*key)
            };
            match result {
                Ok((tail, ckpt)) => finished = Some((*key, tail, ckpt)),
                Err(e) => self.stream_errors.push((*key, e.to_string())),
            }
        }
        if let Some((key, tail, ckpt)) = finished {
            if !self.finished.contains_key(&key) {
                for step in tail {
                    self.accept_output(key, step);
                }
                self.finished.insert(key, ckpt);
            }
        }
        Ok(())
    }

    /// Drains a degraded slot and banks its outputs.
    fn collect_local(&mut self, slot: usize) {
        let mut banked: Vec<(u64, FinalizedStep)> = Vec::new();
        let mut errors: Vec<(u64, String)> = Vec::new();
        {
            let Mode::Local(local) = &mut self.slots[slot].mode else {
                return;
            };
            local.pool.drain();
            for (key, entry) in local.pool.outputs() {
                match entry.result() {
                    Ok(steps) => banked.extend(steps.iter().cloned().map(|s| (key, s))),
                    Err(e) => errors.push((key, e.to_string())),
                }
            }
            for (key, err) in local.pool.last_errors() {
                errors.push((*key, err.to_string()));
            }
        }
        for (key, step) in banked {
            self.accept_output(key, step);
        }
        self.stream_errors.extend(errors);
    }

    // ---- process management -------------------------------------------

    /// Spawns one worker process and completes the handshake (listen,
    /// exec, accept, `Hello`, config).
    fn spawn_conn(&mut self, slot: usize) -> Result<Conn> {
        let nonce = self.spawn_nonce;
        self.spawn_nonce += 1;
        let path = std::env::temp_dir().join(format!(
            "kalman-cluster-{}-{slot}-{nonce}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)
            .map_err(|e| ClusterError::Spawn(format!("bind {}: {e}", path.display())))?;
        listener.set_nonblocking(true)?;
        let exe = std::env::current_exe()
            .map_err(|e| ClusterError::Spawn(format!("current_exe: {e}")))?;
        let mut child = Command::new(exe)
            .args(&self.cfg.worker_args)
            .env(SOCKET_ENV, &path)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| ClusterError::Spawn(format!("exec worker: {e}")))?;
        kalman_obs::event("cluster.worker_spawn", slot as u64, child.id() as u64);

        let deadline = Instant::now() + self.cfg.spawn_timeout;
        let stream = loop {
            match listener.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        let _ = std::fs::remove_file(&path);
                        return Err(ClusterError::Spawn(format!(
                            "worker {slot} did not connect within {:?}",
                            self.cfg.spawn_timeout
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e.into()),
            }
        };
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(self.cfg.heartbeat_timeout))?;
        let tx = FrameWriter::new(stream.try_clone()?);
        let rx = FrameReader::new(stream);
        let mut conn = Conn {
            child,
            tx,
            rx,
            socket_path: path,
            frames_sent: 0,
        };

        // Handshake: Hello in, config out.
        let deadline = Instant::now() + self.cfg.spawn_timeout;
        match read_incoming(&mut conn, &self.metrics, deadline, slot)? {
            Incoming::Hello => {}
            other => {
                return Err(ClusterError::Protocol(format!(
                    "expected Hello, got {other:?}"
                )))
            }
        }
        let mut payload = Writer::new();
        payload.put_u32(self.cfg.queue_capacity as u32);
        codec::encode_exec_policy(&mut payload, self.cfg.policy);
        conn.send(
            &self.metrics,
            &mut self.fault,
            slot,
            K_CONFIG,
            payload.as_slice(),
        )?;
        Ok(conn)
    }
}

/// Reads one worker frame, honoring the deadline across partial reads.
fn read_incoming(
    conn: &mut Conn,
    metrics: &Metrics,
    deadline: Instant,
    slot: usize,
) -> Result<Incoming> {
    loop {
        match conn.rx.poll() {
            Ok(Progress::Frame { kind, payload }) => {
                metrics.frames_recv.inc();
                return decode_incoming(kind, payload);
            }
            Ok(Progress::Pending) => {
                if Instant::now() > deadline {
                    return Err(ClusterError::ReplyTimeout { slot });
                }
            }
            Ok(Progress::Closed) => {
                return Err(ClusterError::Protocol(format!(
                    "worker {slot} hung up between frames"
                )))
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// `true` for failures the supervisor handles by recovering the slot.
fn is_transport(e: &ClusterError) -> bool {
    matches!(
        e,
        ClusterError::Wire(_)
            | ClusterError::Io(_)
            | ClusterError::ReplyTimeout { .. }
            | ClusterError::Protocol(_)
            | ClusterError::Spawn(_)
    )
}

/// Bounded exponential backoff: `base · 2^(restarts-1)`, capped.
fn backoff_for(cfg: &ClusterConfig, restarts: u32) -> Duration {
    let factor = 1u32 << (restarts.saturating_sub(1)).min(16);
    cfg.backoff_base.saturating_mul(factor).min(cfg.backoff_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_exponential() {
        let cfg = ClusterConfig {
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(100),
            ..ClusterConfig::default()
        };
        assert_eq!(backoff_for(&cfg, 1), Duration::from_millis(10));
        assert_eq!(backoff_for(&cfg, 2), Duration::from_millis(20));
        assert_eq!(backoff_for(&cfg, 3), Duration::from_millis(40));
        assert_eq!(backoff_for(&cfg, 4), Duration::from_millis(80));
        assert_eq!(backoff_for(&cfg, 5), Duration::from_millis(100));
        assert_eq!(backoff_for(&cfg, 40), Duration::from_millis(100));
    }

    #[test]
    fn config_is_validated() {
        let bad = ClusterConfig {
            workers: 0,
            ..ClusterConfig::default()
        };
        assert!(matches!(Supervisor::new(bad), Err(ClusterError::Config(_))));
        let bad = ClusterConfig {
            checkpoint_every: 0,
            ..ClusterConfig::default()
        };
        assert!(matches!(Supervisor::new(bad), Err(ClusterError::Config(_))));
    }
}

//! The worker side: a child process wrapping a single-shard
//! [`ShardedPool`] behind the framed protocol.
//!
//! A worker is spawned by the supervisor as a re-exec of the current
//! binary with [`SOCKET_ENV`] pointing at the supervisor's listening
//! Unix socket.  [`worker_entry_from_env`] is the gate: binaries (and
//! the test harness) call it at a known entry point; without the
//! environment variable it is a no-op, with it the process becomes a
//! worker and never returns.
//!
//! Because the single-shard pool applies events under the same canonical
//! flush cadence as any in-process [`ShardedPool`], the worker's outputs
//! are bitwise identical to in-process serving no matter how its drains
//! interleave with supervisor polls — the property the cluster's
//! recovery tests pin.
//!
//! Exit codes: `0` clean shutdown (or supervisor hang-up between
//! frames), `2` wire-protocol failure (truncation, corruption, version
//! mismatch — the supervisor sees the nonzero exit as a crash), `3`
//! internal serving failure.

use crate::proto::{
    decode_spec, K_CONFIG, K_EVENT, K_FINISH, K_FINISHED, K_HELLO, K_INSERT, K_OUTPUTS, K_PING,
    K_POLL, K_PONG, K_RESTORE, K_SHUTDOWN, K_SNAPSHOT_ACK, K_SNAPSHOT_REQ, K_STREAM_ERROR,
};
use kalman_serve::{ServeConfig, ShardedPool};
use kalman_stream::{FinalizedStep, StreamingSmoother};
use kalman_wire::{codec, FrameReader, FrameWriter, Reader, WireError, Writer};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Environment variable naming the Unix socket a worker connects back
/// to.  Its presence is what turns a process into a worker.
pub const SOCKET_ENV: &str = "KALMAN_CLUSTER_SOCKET";

/// Becomes a cluster worker if [`SOCKET_ENV`] is set: connects back to
/// the supervisor, serves frames until shutdown, and **exits the
/// process** (never returns).  Without the variable, returns `false`
/// immediately — safe to call unconditionally from a binary's `main` or
/// a test-harness entry point.
pub fn worker_entry_from_env() -> bool {
    let Some(path) = std::env::var_os(SOCKET_ENV) else {
        return false;
    };
    let code = match run_worker(Path::new(&path)) {
        Ok(()) => 0,
        Err(WorkerError::Wire(e)) => {
            eprintln!("cluster worker: wire failure: {e}");
            2
        }
        Err(WorkerError::Internal(msg)) => {
            eprintln!("cluster worker: {msg}");
            3
        }
    };
    std::process::exit(code);
}

/// Why a worker run ended abnormally.
#[derive(Debug)]
enum WorkerError {
    /// The byte stream itself failed (corruption, truncation, transport).
    Wire(WireError),
    /// The serving layer failed in a way the protocol cannot express.
    Internal(String),
}

impl From<WireError> for WorkerError {
    fn from(e: WireError) -> Self {
        WorkerError::Wire(e)
    }
}

struct Worker {
    pool: ShardedPool,
    ingress: kalman_serve::Ingress,
    tx: FrameWriter<UnixStream>,
    /// Reusable payload buffer for every outbound frame.
    payload: Writer,
    /// Outputs drained but not yet shipped (sent on the next poll,
    /// snapshot, or finish).
    pending: Vec<(u64, FinalizedStep)>,
    /// Stream-level errors drained but not yet shipped.
    errors: Vec<(u64, String)>,
}

fn run_worker(path: &Path) -> Result<(), WorkerError> {
    let sock = UnixStream::connect(path).map_err(WireError::Io)?;
    let tx_sock = sock.try_clone().map_err(WireError::Io)?;
    let mut rx = FrameReader::new(sock);
    let mut tx = FrameWriter::new(tx_sock);
    tx.send(K_HELLO, &[])?;

    // The first frame must be the serving configuration.
    let (queue_capacity, policy) = match rx.next_frame()? {
        Some((K_CONFIG, payload)) => {
            let mut r = Reader::new(payload);
            let cap = r.get_u32()? as usize;
            let policy = codec::decode_exec_policy(&mut r)?;
            r.finish()?;
            (cap, policy)
        }
        Some((kind, _)) => {
            return Err(WorkerError::Internal(format!(
                "expected config frame first, got kind {kind:#04x}"
            )))
        }
        None => return Ok(()), // supervisor went away before configuring
    };
    let (pool, ingress) = ShardedPool::new(ServeConfig {
        shards: 1,
        queue_capacity,
        policy,
    });
    let mut worker = Worker {
        pool,
        ingress,
        tx,
        payload: Writer::new(),
        pending: Vec::new(),
        errors: Vec::new(),
    };

    loop {
        let Some((kind, payload)) = rx.next_frame()? else {
            // Clean hang-up between frames: the supervisor is gone.
            return Ok(());
        };
        match kind {
            K_INSERT => worker.on_insert(payload)?,
            K_EVENT => worker.on_event(payload)?,
            K_POLL => worker.on_poll()?,
            K_SNAPSHOT_REQ => worker.on_snapshot(payload)?,
            K_RESTORE => worker.on_restore(payload)?,
            K_FINISH => worker.on_finish(payload)?,
            K_PING => worker.tx.send(K_PONG, &[])?,
            K_SHUTDOWN => return Ok(()),
            other => {
                return Err(WorkerError::Internal(format!(
                    "unexpected frame kind {other:#04x} from supervisor"
                )))
            }
        }
    }
}

impl Worker {
    /// Drains the pool and banks outputs/errors for the next shipment.
    fn drain_collect(&mut self) {
        self.pool.drain();
        for (key, entry) in self.pool.outputs() {
            match entry.result() {
                Ok(steps) => self.pending.extend(steps.iter().cloned().map(|s| (key, s))),
                Err(e) => self.errors.push((key, e.to_string())),
            }
        }
        for (key, err) in self.pool.last_errors() {
            self.errors.push((*key, err.to_string()));
        }
    }

    /// Ships banked stream errors, then banked outputs, as frames.
    fn ship_pending(&mut self) -> Result<(), WorkerError> {
        for (key, message) in std::mem::take(&mut self.errors) {
            self.payload.clear();
            self.payload.put_u64(key);
            codec::encode_str(&mut self.payload, &message);
            self.tx.send(K_STREAM_ERROR, self.payload.as_slice())?;
        }
        self.payload.clear();
        self.payload.put_u32(self.pending.len() as u32);
        for (key, step) in &self.pending {
            self.payload.put_u64(*key);
            codec::encode_finalized_step(&mut self.payload, step);
        }
        self.pending.clear();
        self.tx.send(K_OUTPUTS, self.payload.as_slice())?;
        Ok(())
    }

    fn on_insert(&mut self, payload: &[u8]) -> Result<(), WorkerError> {
        let mut r = Reader::new(payload);
        let key = r.get_u64().map_err(WorkerError::from)?;
        let spec = decode_spec(&mut r)?;
        r.finish().map_err(WorkerError::from)?;
        let result = spec
            .build()
            .and_then(|stream| self.pool.insert(key, stream).map(|_| ()));
        if let Err(e) = result {
            self.errors.push((key, e.to_string()));
        }
        Ok(())
    }

    fn on_event(&mut self, payload: &[u8]) -> Result<(), WorkerError> {
        let mut r = Reader::new(payload);
        let key = r.get_u64().map_err(WorkerError::from)?;
        let event = codec::decode_event(&mut r)?;
        r.finish().map_err(WorkerError::from)?;
        match self.ingress.try_submit(key, event) {
            Ok(()) => Ok(()),
            Err(e) if e.is_would_block() => {
                // Backpressure: apply the queue, then retry once (the
                // queue is empty after a drain).
                self.drain_collect();
                self.ingress
                    .try_submit(key, e.into_event())
                    .map_err(|_| WorkerError::Internal("queue full after drain".into()))
            }
            Err(_) => Err(WorkerError::Internal("ingress closed".into())),
        }
    }

    fn on_poll(&mut self) -> Result<(), WorkerError> {
        self.drain_collect();
        self.ship_pending()
    }

    fn on_snapshot(&mut self, payload: &[u8]) -> Result<(), WorkerError> {
        let mut r = Reader::new(payload);
        let seq = r.get_u64().map_err(WorkerError::from)?;
        r.finish().map_err(WorkerError::from)?;
        // Apply everything queued first: the supervisor truncates its log
        // up to `seq` on this ack, so the snapshot must cover every event
        // delivered before the request — and every output finalized on
        // the way must reach the supervisor no later than the ack.
        self.drain_collect();
        self.ship_pending()?;
        let keys: Vec<u64> = self.pool.keys().collect();
        self.payload.clear();
        self.payload.put_u64(seq);
        self.payload.put_u32(keys.len() as u32);
        for key in keys {
            let stream = self
                .pool
                .stream(key)
                .ok_or_else(|| WorkerError::Internal(format!("key {key} vanished")))?;
            let snap = stream
                .snapshot()
                .map_err(|e| WorkerError::Internal(e.to_string()))?;
            self.payload.put_u64(key);
            codec::encode_window_snapshot(&mut self.payload, &snap);
        }
        self.tx.send(K_SNAPSHOT_ACK, self.payload.as_slice())?;
        Ok(())
    }

    fn on_restore(&mut self, payload: &[u8]) -> Result<(), WorkerError> {
        let mut r = Reader::new(payload);
        let key = r.get_u64().map_err(WorkerError::from)?;
        let opts = codec::decode_stream_options(&mut r)?;
        let snap = codec::decode_window_snapshot(&mut r)?;
        r.finish().map_err(WorkerError::from)?;
        let result = StreamingSmoother::restore(snap, opts)
            .and_then(|stream| self.pool.insert(key, stream).map(|_| ()));
        if let Err(e) = result {
            self.errors.push((key, e.to_string()));
        }
        Ok(())
    }

    fn on_finish(&mut self, payload: &[u8]) -> Result<(), WorkerError> {
        let mut r = Reader::new(payload);
        let key = r.get_u64().map_err(WorkerError::from)?;
        r.finish().map_err(WorkerError::from)?;
        // Apply everything queued (the stream's last events may still be
        // in the queue), shipping outputs so the tail follows them.
        self.drain_collect();
        self.ship_pending()?;
        match self.pool.finish(key) {
            Ok((tail, checkpoint)) => {
                self.payload.clear();
                self.payload.put_u64(key);
                self.payload.put_u32(tail.len() as u32);
                for step in &tail {
                    codec::encode_finalized_step(&mut self.payload, step);
                }
                codec::encode_checkpoint(&mut self.payload, &checkpoint);
                self.tx.send(K_FINISHED, self.payload.as_slice())?;
            }
            Err(e) => {
                self.payload.clear();
                self.payload.put_u64(key);
                codec::encode_str(&mut self.payload, &e.to_string());
                self.tx.send(K_STREAM_ERROR, self.payload.as_slice())?;
            }
        }
        Ok(())
    }
}

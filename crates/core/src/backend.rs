//! Backend abstraction over the symbolic-plan → numeric-execute lifecycle.
//!
//! The odd-even QR smoother (this crate) and the associative-scan smoother
//! (`kalman-associative`) are two parallelizations of the same posterior;
//! both follow the same serving lifecycle: build a symbolic plan from the
//! window's shape signature, execute the numeric pipeline into plan-owned
//! scratch (zero steady-state allocations), read means and covariance
//! diagonals out of reused slots.  [`SmootherBackend`] captures that
//! lifecycle so the streaming/serving layers can dispatch per plan:
//! `kalman-stream` keys its MRU plan slots and the pool's [`crate::PlanCache`]
//! by `(backend, shape)` and picks the backend per flush from a
//! [`BackendPolicy`].
//!
//! Selection ([`resolve_backend`]) is a pure function of the window shape
//! and a [`PhaseProfile`] of measured flush medians, so the `Auto` policy
//! is unit-testable without timers; the stream layer feeds it real
//! measurements.  Dispatch decisions are counted process-wide and exported
//! as `dense.backend.dispatch.*` gauges (see
//! [`register_backend_dispatch_gauges`]), next to the
//! `dense.kernel.dispatch.*` ladder.

use kalman_model::{Result, WhitenedStep};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which numeric engine executes a planned window.
///
/// Unlike [`BackendPolicy`] (what the caller *asked for*), a kind is what a
/// flush actually ran: policy resolution never yields `Auto`, and a scan
/// request on an ineligible window resolves (or falls back) to `OddEven`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The paper's odd-even orthogonal-transformation smoother.
    OddEven,
    /// The associative-scan smoother (TAC-2021), parallel fixed-tree sweeps.
    Scan,
    /// The scan executor's sequential fold — a classic forward-filter /
    /// backward-RTS pass with no tree overhead.
    SequentialRts,
}

impl BackendKind {
    /// Stable label used in gauges, journal events, and test output.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::OddEven => "odd_even",
            BackendKind::Scan => "scan",
            BackendKind::SequentialRts => "rts",
        }
    }
}

/// Per-stream backend selection policy (`StreamOptions::backend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendPolicy {
    /// Always the odd-even QR smoother (the default: it supports every
    /// window shape, including mixed dimensions and rank-deficient heads).
    #[default]
    OddEven,
    /// Prefer the associative scan; windows it cannot represent (mixed
    /// state dimensions, non-square whitened evolutions, underdetermined
    /// step-0 posterior) fall back to odd-even.
    Scan,
    /// Prefer the sequential RTS fold of the scan elements; same fallback
    /// rules as [`BackendPolicy::Scan`].
    SequentialRts,
    /// Choose per flush from the shape signature plus measured
    /// [`PhaseProfile`] medians (see [`resolve_backend`] for the rules).
    /// Timing-driven: the chosen backend — and therefore the exact bit
    /// pattern of the output — can differ run to run.
    Auto,
}

impl BackendPolicy {
    /// Parses the `KALMAN_BACKEND` environment variable (`odd-even`,
    /// `scan`, `rts`, `auto`; unset or unrecognized → `OddEven`), which is
    /// how CI runs the whole suite on the scan backend.
    pub fn from_env() -> BackendPolicy {
        match std::env::var("KALMAN_BACKEND").as_deref() {
            Ok("scan") => BackendPolicy::Scan,
            Ok("rts") | Ok("sequential-rts") => BackendPolicy::SequentialRts,
            Ok("auto") => BackendPolicy::Auto,
            _ => BackendPolicy::OddEven,
        }
    }
}

/// Windows at or below this step count resolve `Auto` to the sequential
/// RTS fold: both parallel backends pay per-level scheduling that a short
/// chain cannot amortize.
pub const AUTO_RTS_MAX_WINDOW: usize = 6;

/// Measured flush samples required per backend before `Auto` trusts the
/// medians instead of probing.
pub const AUTO_MIN_SAMPLES: usize = 3;

const PROFILE_WINDOW: usize = 8;

/// A sliding window of measured flush durations per backend — the
/// `phase_profile` data the `Auto` policy consumes.
///
/// Only the two parallel backends are profiled (the RTS fold is chosen by
/// shape alone).  The window is small on purpose: serving workloads drift
/// (cache warmth, co-tenants), and an 8-sample median adapts within a few
/// flushes while still rejecting single-flush outliers.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    samples: [[f64; PROFILE_WINDOW]; 2],
    len: [usize; 2],
    next: [usize; 2],
}

impl PhaseProfile {
    /// A profile with no measurements.
    pub fn new() -> PhaseProfile {
        PhaseProfile::default()
    }

    fn slot(kind: BackendKind) -> Option<usize> {
        match kind {
            BackendKind::OddEven => Some(0),
            BackendKind::Scan => Some(1),
            BackendKind::SequentialRts => None,
        }
    }

    /// Records one measured flush duration (seconds) for `kind`.
    /// Measurements for [`BackendKind::SequentialRts`] are ignored.
    pub fn record(&mut self, kind: BackendKind, seconds: f64) {
        let Some(s) = Self::slot(kind) else { return };
        self.samples[s][self.next[s]] = seconds;
        self.next[s] = (self.next[s] + 1) % PROFILE_WINDOW;
        self.len[s] = (self.len[s] + 1).min(PROFILE_WINDOW);
    }

    /// Number of samples recorded for `kind` (capped at the window size).
    pub fn samples(&self, kind: BackendKind) -> usize {
        Self::slot(kind).map_or(0, |s| self.len[s])
    }

    /// Median of the recorded samples for `kind`, if any.
    pub fn median(&self, kind: BackendKind) -> Option<f64> {
        let s = Self::slot(kind)?;
        let n = self.len[s];
        if n == 0 {
            return None;
        }
        let mut buf = [0.0f64; PROFILE_WINDOW];
        buf[..n].copy_from_slice(&self.samples[s][..n]);
        buf[..n].sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        Some(buf[n / 2])
    }
}

/// Structural eligibility for the scan backends: the associative elements
/// require one common state dimension across the window.  (Square whitened
/// evolutions and a well-determined step-0 posterior are *numeric*
/// conditions checked at execute time; failing them falls back.)
pub fn scan_supports_dims(dims: &[usize]) -> bool {
    !dims.is_empty() && dims.windows(2).all(|w| w[0] == w[1])
}

/// Resolves a [`BackendPolicy`] to the [`BackendKind`] a flush should run,
/// as a pure function of the window dimensions and the measured profile.
///
/// Rules:
/// * `OddEven` → `OddEven` unconditionally.
/// * `Scan` / `SequentialRts` → as requested when
///   [`scan_supports_dims`] holds, `OddEven` otherwise.
/// * `Auto` on an ineligible shape → `OddEven`.
/// * `Auto`, eligible, window ≤ [`AUTO_RTS_MAX_WINDOW`] steps →
///   `SequentialRts` (tree scheduling can't amortize on a short chain).
/// * `Auto`, both parallel backends carrying ≥ [`AUTO_MIN_SAMPLES`]
///   measurements → whichever has the smaller median (ties → `OddEven`).
/// * `Auto`, still under-sampled → probe: the backend with fewer samples
///   (ties → `OddEven`), so medians fill in alternately.
pub fn resolve_backend(
    policy: BackendPolicy,
    dims: &[usize],
    profile: &PhaseProfile,
) -> BackendKind {
    let eligible = scan_supports_dims(dims);
    match policy {
        BackendPolicy::OddEven => BackendKind::OddEven,
        BackendPolicy::Scan if eligible => BackendKind::Scan,
        BackendPolicy::SequentialRts if eligible => BackendKind::SequentialRts,
        BackendPolicy::Scan | BackendPolicy::SequentialRts => BackendKind::OddEven,
        BackendPolicy::Auto => {
            if !eligible {
                return BackendKind::OddEven;
            }
            if dims.len() <= AUTO_RTS_MAX_WINDOW {
                return BackendKind::SequentialRts;
            }
            let (oe, scan) = (
                profile.samples(BackendKind::OddEven),
                profile.samples(BackendKind::Scan),
            );
            if oe >= AUTO_MIN_SAMPLES && scan >= AUTO_MIN_SAMPLES {
                let oe_med = profile.median(BackendKind::OddEven).expect("sampled");
                let scan_med = profile.median(BackendKind::Scan).expect("sampled");
                if scan_med < oe_med {
                    BackendKind::Scan
                } else {
                    BackendKind::OddEven
                }
            } else if scan < oe {
                BackendKind::Scan
            } else {
                BackendKind::OddEven
            }
        }
    }
}

/// The symbolic-plan → numeric-execute lifecycle both smoother engines
/// implement.
///
/// The contract mirrors `SmoothPlan`'s (see DESIGN.md §"Backend trait +
/// dispatch"):
///
/// 1. `ensure_shape(dims)` re-targets the plan's symbolic schedule (true
///    when it had to rebuild);
/// 2. `execute(steps)` runs the numeric pipeline against whitened step
///    data into plan-owned scratch — steady state allocates nothing;
/// 3. `solve_into` / `selinv_into` read the posterior means and
///    covariance diagonal blocks out of that scratch into reused buffers.
///
/// Implementations report per-phase [`kalman_obs::span!`] spans under
/// their own prefix (`oe.*`, `scan.*`).
pub trait SmootherBackend {
    /// The engine this plan executes on.
    fn kind(&self) -> BackendKind;

    /// Per-step state dimensions of the planned shape.
    fn dims(&self) -> &[usize];

    /// Shape signature ([`crate::signature_of_dims`]) of the planned shape.
    fn signature(&self) -> u64;

    /// Re-targets the plan to `dims`, rebuilding the symbolic schedule if
    /// the shape changed.  Returns `true` if a rebuild happened.
    fn ensure_shape(&mut self, dims: &[usize]) -> bool;

    /// Executes the numeric pipeline against `steps`.
    ///
    /// On error the implementation must leave `steps` intact (readable by
    /// another backend), so a dispatcher can fall back — the odd-even
    /// engine consumes `steps` only on success.
    ///
    /// # Errors
    ///
    /// Shape mismatches and numeric failures (rank deficiency, non-SPD
    /// posteriors); scan backends also error on windows outside their
    /// structural domain.
    fn execute(&mut self, steps: &mut Vec<WhitenedStep>) -> Result<()>;

    /// Reads the posterior means into `means` (reused per-state buffers).
    ///
    /// # Errors
    ///
    /// [`kalman_model::KalmanError::PlanNotExecuted`]-style invariant
    /// errors when called before a successful [`SmootherBackend::execute`].
    fn solve_into(&mut self, means: &mut Vec<Vec<f64>>) -> Result<()>;

    /// Reads the posterior covariance diagonal blocks into `covs`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SmootherBackend::solve_into`], plus numeric
    /// failures of the covariance recovery.
    fn selinv_into(&mut self, covs: &mut Vec<kalman_dense::Matrix>) -> Result<()>;
}

static DISPATCH_ODD_EVEN: AtomicU64 = AtomicU64::new(0);
static DISPATCH_SCAN: AtomicU64 = AtomicU64::new(0);
static DISPATCH_RTS: AtomicU64 = AtomicU64::new(0);
static DISPATCH_FALLBACK: AtomicU64 = AtomicU64::new(0);

/// Counts one flush dispatched to `kind` (process-wide, all streams).
pub fn record_backend_dispatch(kind: BackendKind) {
    let c = match kind {
        BackendKind::OddEven => &DISPATCH_ODD_EVEN,
        BackendKind::Scan => &DISPATCH_SCAN,
        BackendKind::SequentialRts => &DISPATCH_RTS,
    };
    c.fetch_add(1, Ordering::Relaxed); // Relaxed: monotonic gauge counters.
}

/// Counts one scan-family execute that failed numerically and re-ran on
/// the odd-even engine.
pub fn record_backend_fallback() {
    DISPATCH_FALLBACK.fetch_add(1, Ordering::Relaxed); // Relaxed: monotonic gauge counter.
}

/// Cumulative dispatch counts `(odd_even, scan, rts, fallback)`.
pub fn backend_dispatch_counts() -> (u64, u64, u64, u64) {
    (
        DISPATCH_ODD_EVEN.load(Ordering::Relaxed), // Relaxed: monotonic gauge read, no ordering needed.
        DISPATCH_SCAN.load(Ordering::Relaxed),     // Relaxed: monotonic gauge read.
        DISPATCH_RTS.load(Ordering::Relaxed),      // Relaxed: monotonic gauge read.
        DISPATCH_FALLBACK.load(Ordering::Relaxed), // Relaxed: monotonic gauge read.
    )
}

/// Registers the dispatch counters as `dense.backend.dispatch.{odd_even,
/// scan,rts,fallback}` sampled gauges in the `kalman-obs` registry, next
/// to the `dense.kernel.dispatch.*` ladder.  Idempotent.
pub fn register_backend_dispatch_gauges() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        kalman_obs::register_sampler("dense.backend.dispatch.odd_even", || {
            backend_dispatch_counts().0 as f64
        });
        kalman_obs::register_sampler("dense.backend.dispatch.scan", || {
            backend_dispatch_counts().1 as f64
        });
        kalman_obs::register_sampler("dense.backend.dispatch.rts", || {
            backend_dispatch_counts().2 as f64
        });
        kalman_obs::register_sampler("dense.backend.dispatch.fallback", || {
            backend_dispatch_counts().3 as f64
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, k: usize) -> Vec<usize> {
        vec![n; k]
    }

    #[test]
    fn explicit_policies_resolve_directly_on_eligible_shapes() {
        let dims = uniform(3, 20);
        let p = PhaseProfile::new();
        assert_eq!(
            resolve_backend(BackendPolicy::OddEven, &dims, &p),
            BackendKind::OddEven
        );
        assert_eq!(
            resolve_backend(BackendPolicy::Scan, &dims, &p),
            BackendKind::Scan
        );
        assert_eq!(
            resolve_backend(BackendPolicy::SequentialRts, &dims, &p),
            BackendKind::SequentialRts
        );
    }

    #[test]
    fn scan_policies_fall_back_on_mixed_dimensions() {
        let dims = vec![3, 3, 2, 3];
        let p = PhaseProfile::new();
        for policy in [
            BackendPolicy::Scan,
            BackendPolicy::SequentialRts,
            BackendPolicy::Auto,
        ] {
            assert_eq!(resolve_backend(policy, &dims, &p), BackendKind::OddEven);
        }
        assert!(!scan_supports_dims(&dims));
        assert!(!scan_supports_dims(&[]));
        assert!(scan_supports_dims(&[5]));
    }

    /// Shape-signature threshold: short windows skip both parallel
    /// backends regardless of what the profile says.
    #[test]
    fn auto_picks_rts_for_short_windows() {
        let mut p = PhaseProfile::new();
        for _ in 0..PROFILE_WINDOW {
            p.record(BackendKind::Scan, 1e-6); // scan looks "fast"
            p.record(BackendKind::OddEven, 1.0);
        }
        assert_eq!(
            resolve_backend(BackendPolicy::Auto, &uniform(4, AUTO_RTS_MAX_WINDOW), &p),
            BackendKind::SequentialRts
        );
        assert_eq!(
            resolve_backend(
                BackendPolicy::Auto,
                &uniform(4, AUTO_RTS_MAX_WINDOW + 1),
                &p
            ),
            BackendKind::Scan
        );
    }

    /// Under-sampled profiles probe: dispatches alternate until both
    /// backends carry enough samples to trust the medians.
    #[test]
    fn auto_probes_alternately_until_sampled() {
        let dims = uniform(4, 32);
        let mut p = PhaseProfile::new();
        let mut seen = Vec::new();
        for _ in 0..2 * AUTO_MIN_SAMPLES {
            let kind = resolve_backend(BackendPolicy::Auto, &dims, &p);
            seen.push(kind);
            p.record(kind, 1e-3);
        }
        assert_eq!(
            seen,
            vec![
                BackendKind::OddEven,
                BackendKind::Scan,
                BackendKind::OddEven,
                BackendKind::Scan,
                BackendKind::OddEven,
                BackendKind::Scan,
            ]
        );
    }

    /// Profile-driven flips: once sampled, the decision tracks the medians
    /// — and flips when fresh measurements change which backend is faster.
    #[test]
    fn auto_follows_and_flips_with_the_measured_medians() {
        let dims = uniform(4, 32);
        let mut p = PhaseProfile::new();
        for _ in 0..AUTO_MIN_SAMPLES {
            p.record(BackendKind::OddEven, 2e-3);
            p.record(BackendKind::Scan, 1e-3);
        }
        assert_eq!(
            resolve_backend(BackendPolicy::Auto, &dims, &p),
            BackendKind::Scan
        );
        // The scan slows down (e.g. the window shape's constant changed);
        // the sliding window forgets the old samples and the choice flips.
        for _ in 0..PROFILE_WINDOW {
            p.record(BackendKind::Scan, 5e-3);
        }
        assert_eq!(
            resolve_backend(BackendPolicy::Auto, &dims, &p),
            BackendKind::OddEven
        );
    }

    #[test]
    fn profile_median_is_robust_to_one_outlier() {
        let mut p = PhaseProfile::new();
        for _ in 0..5 {
            p.record(BackendKind::Scan, 1.0);
        }
        p.record(BackendKind::Scan, 1000.0);
        assert_eq!(p.median(BackendKind::Scan), Some(1.0));
        assert_eq!(p.median(BackendKind::OddEven), None);
        // RTS measurements are ignored by design.
        p.record(BackendKind::SequentialRts, 7.0);
        assert_eq!(p.samples(BackendKind::SequentialRts), 0);
    }

    #[test]
    fn dispatch_counters_accumulate() {
        let before = backend_dispatch_counts();
        record_backend_dispatch(BackendKind::Scan);
        record_backend_dispatch(BackendKind::OddEven);
        record_backend_fallback();
        let after = backend_dispatch_counts();
        assert!(after.0 > before.0);
        assert!(after.1 > before.1);
        assert!(after.3 > before.3);
        register_backend_dispatch_gauges();
        register_backend_dispatch_gauges(); // idempotent
    }

    #[test]
    fn env_parse_recognizes_backend_names() {
        // Can't mutate the process environment safely under the parallel
        // test harness; pin the mapping via the match arms' inputs instead.
        assert_eq!(BackendPolicy::default(), BackendPolicy::OddEven);
        assert_eq!(BackendKind::Scan.label(), "scan");
        assert_eq!(BackendKind::OddEven.label(), "odd_even");
        assert_eq!(BackendKind::SequentialRts.label(), "rts");
    }
}

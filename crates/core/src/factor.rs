//! The recursive odd-even elimination (§3 of the paper).
//!
//! Each level of the recursion maintains a *chain* of block columns with the
//! invariant structure of `U·A`: every column `t` carries observation-like
//! rows `C_t` (support in column `t` only) and, for `t > 0`, evolution-like
//! rows `(E_t | D_t)` coupling columns `t−1` and `t`.  One level eliminates
//! all even columns concurrently:
//!
//! 1. QR-factor `[C_t; E_{t+1}]` against column `t`; applying `Qᵀ` to
//!    `[0; D_{t+1}]` creates the fill `X_t` and the remainder `D̃_{t+1}`.
//! 2. QR-factor `[D_t; R̂_t]`, finalizing the permanent row
//!    `(B̃_t, R_t, Y_t)` of `R` and leaving residual rows `(Z_t, X̃_t)` that
//!    couple the odd neighbours `t−1, t+1` — the next level's evolution rows.
//! 3. Compress each odd column's `[D̃; C]` stack back to at most `n` rows by
//!    one more QR (restoring the row-count invariant).
//!
//! All three batches are embarrassingly parallel across columns; the chain
//! halves each level, so the critical path is `Θ(log k)` batches.

use crate::rfactor::{OddEvenR, RRow};
use kalman_dense::{Matrix, QrFactor};
use kalman_model::{Result, WhitenedStep};
use kalman_par::{map_collect, ExecPolicy};

/// Evolution-like rows coupling a chain column to its predecessor.
#[derive(Debug, Clone)]
struct EvoRows {
    /// Block in the *previous* chain column (sign already absorbed: at level
    /// 0 this is `−B_i`).
    left: Matrix,
    /// Block in this chain column (`D_i` at level 0).
    right: Matrix,
    /// Right-hand-side segment for these rows.
    rhs: Matrix,
}

/// One column of the current level's chain.
#[derive(Debug)]
struct LevelCol {
    /// Original state index.
    orig: usize,
    /// State dimension `n`.
    dim: usize,
    /// Observation-like rows `(C, rhs)` with support only in this column.
    obs: Option<(Matrix, Matrix)>,
    /// Evolution-like rows coupling to the previous chain column.
    evo: Option<EvoRows>,
}

/// Everything one even-column elimination needs, borrowed out of the chain.
struct EvenTask {
    orig: usize,
    dim: usize,
    obs: Option<(Matrix, Matrix)>,
    /// This column's evolution rows (couple to chain neighbour `t−1`).
    evo: Option<EvoRows>,
    /// The next column's evolution rows (couple `t` and `t+1`).
    next_evo: Option<EvoRows>,
    left_orig: Option<usize>,
    left_dim: Option<usize>,
    right_orig: Option<usize>,
}

/// The products of eliminating one even column.
struct EvenOut {
    row: RRow,
    /// `D̃` rows left in column `t+1` after step 1 (feed the odd column's
    /// compression).
    dtilde: Option<(Matrix, Matrix)>,
    /// Residual rows coupling `(t−1, t+1)` — the next level's evolution rows.
    resid: Option<EvoRows>,
    /// Residual rows with support only in `t−1` (when `t` is the last column
    /// of the chain); appended to that odd column's observation stack.
    resid_left_only: Option<(Matrix, Matrix)>,
}

/// Pads `(m, rhs)` with zero rows (zero equations) up to `rows`.
fn pad_rows(m: Matrix, rhs: Matrix, rows: usize) -> (Matrix, Matrix) {
    if m.rows() >= rows {
        return (m, rhs);
    }
    let deficit = rows - m.rows();
    (
        Matrix::vstack(&[&m, &Matrix::zeros(deficit, m.cols())]),
        Matrix::vstack(&[&rhs, &Matrix::zeros(deficit, rhs.cols())]),
    )
}

fn vstack_opt(parts: &[(&Matrix, &Matrix)]) -> (Matrix, Matrix) {
    let mats: Vec<&Matrix> = parts.iter().map(|(m, _)| *m).collect();
    let rhss: Vec<&Matrix> = parts.iter().map(|(_, r)| *r).collect();
    (Matrix::vstack(&mats), Matrix::vstack(&rhss))
}

fn eliminate_even(task: &EvenTask, level: usize) -> EvenOut {
    let n = task.dim;

    // ---- Step 1: factor [C_t; E_{t+1}] against column t; transform [0; D_{t+1}].
    let obs_rows = task.obs.as_ref().map(|(c, _)| c.rows()).unwrap_or(0);
    let (stacked, mut rhs1) = {
        let mut parts: Vec<(&Matrix, &Matrix)> = Vec::with_capacity(2);
        if let Some((c, r)) = &task.obs {
            parts.push((c, r));
        }
        if let Some(ne) = &task.next_evo {
            parts.push((&ne.left, &ne.rhs));
        }
        if parts.is_empty() {
            (Matrix::zeros(0, n), Matrix::zeros(0, 1))
        } else {
            vstack_opt(&parts)
        }
    };
    let (stacked, rhs_padded) = pad_rows(stacked, rhs1, n);
    rhs1 = rhs_padded;
    let step1_rows = stacked.rows();

    // Companion block in column t+1 (zero where the obs rows are, D below).
    let mut companion = task.next_evo.as_ref().map(|ne| {
        let mut comp = Matrix::zeros(step1_rows, ne.right.cols());
        comp.set_block(obs_rows, 0, &ne.right);
        comp
    });

    let qr1 = QrFactor::new(stacked);
    let rhat = qr1.r();
    qr1.apply_qt(&mut rhs1);
    if let Some(comp) = companion.as_mut() {
        qr1.apply_qt(comp);
    }
    let rho = rhs1.sub_matrix(0, 0, n, 1);
    let x_fill = companion.as_ref().map(|c| c.sub_matrix(0, 0, n, c.cols()));
    let dtilde = companion.as_ref().and_then(|c| {
        let rows = c.rows() - n;
        if rows == 0 {
            None
        } else {
            Some((
                c.sub_matrix(n, 0, rows, c.cols()),
                rhs1.sub_matrix(n, 0, rows, 1),
            ))
        }
    });

    // ---- Step 2: absorb this column's evolution rows (if any).
    match &task.evo {
        None => {
            // First chain column: R̂ is final.
            let mut off = Vec::with_capacity(1);
            if let (Some(x), Some(ro)) = (&x_fill, task.right_orig) {
                off.push((ro, x.clone()));
            }
            EvenOut {
                row: RRow {
                    diag: rhat,
                    off,
                    rhs: rho,
                    level,
                },
                dtilde,
                resid: None,
                resid_left_only: None,
            }
        }
        Some(evo) => {
            let l = evo.right.rows();
            let left_dim = task.left_dim.expect("evo implies a left neighbour");
            let stacked2 = Matrix::vstack(&[&evo.right, &rhat]);
            let mut comp_left = Matrix::zeros(l + n, left_dim);
            comp_left.set_block(0, 0, &evo.left);
            let mut comp_right = x_fill.as_ref().map(|x| {
                let mut cr = Matrix::zeros(l + n, x.cols());
                cr.set_block(l, 0, x);
                cr
            });
            let mut rhs2 = Matrix::vstack(&[&evo.rhs, &rho]);

            let qr2 = QrFactor::new(stacked2);
            qr2.apply_qt(&mut comp_left);
            if let Some(cr) = comp_right.as_mut() {
                qr2.apply_qt(cr);
            }
            qr2.apply_qt(&mut rhs2);

            let mut off = Vec::with_capacity(2);
            off.push((
                task.left_orig.expect("evo implies a left neighbour"),
                comp_left.sub_matrix(0, 0, n, left_dim),
            ));
            if let (Some(cr), Some(ro)) = (&comp_right, task.right_orig) {
                off.push((ro, cr.sub_matrix(0, 0, n, cr.cols())));
            }
            let row = RRow {
                diag: qr2.r(),
                off,
                rhs: rhs2.sub_matrix(0, 0, n, 1),
                level,
            };

            let (resid, resid_left_only) = if l == 0 {
                (None, None)
            } else {
                let z = comp_left.sub_matrix(n, 0, l, left_dim);
                let r = rhs2.sub_matrix(n, 0, l, 1);
                match &comp_right {
                    Some(cr) => (
                        Some(EvoRows {
                            left: z,
                            right: cr.sub_matrix(n, 0, l, cr.cols()),
                            rhs: r,
                        }),
                        None,
                    ),
                    None => (None, Some((z, r))),
                }
            };
            EvenOut {
                row,
                dtilde,
                resid,
                resid_left_only,
            }
        }
    }
}

/// Eliminates all even columns of `cols`, emitting their permanent rows into
/// `emit` and returning the next level's (odd-column) chain.
fn eliminate_level(
    mut cols: Vec<LevelCol>,
    level: usize,
    policy: ExecPolicy,
    compress_odd: bool,
    emit: &mut [Option<RRow>],
    levels: &mut Vec<Vec<usize>>,
    trace: bool,
) -> Vec<LevelCol> {
    let t_start = std::time::Instant::now();
    let kk = cols.len();
    debug_assert!(kk >= 2, "base case handled by caller");
    let n_even = kk.div_ceil(2);
    let n_odd = kk / 2;

    // Extract each even task's inputs (pointer moves, no matrix copies).
    let mut tasks: Vec<EvenTask> = Vec::with_capacity(n_even);
    for s in 0..n_even {
        let t = 2 * s;
        let obs = cols[t].obs.take();
        let evo = cols[t].evo.take();
        let next_evo = if t + 1 < kk {
            cols[t + 1].evo.take()
        } else {
            None
        };
        tasks.push(EvenTask {
            orig: cols[t].orig,
            dim: cols[t].dim,
            obs,
            evo,
            next_evo,
            left_orig: t.checked_sub(1).map(|p| cols[p].orig),
            left_dim: t.checked_sub(1).map(|p| cols[p].dim),
            right_orig: (t + 1 < kk).then(|| cols[t + 1].orig),
        });
    }

    let t_extract = t_start.elapsed();

    // Batch 1+2: eliminate the even columns in parallel.
    let t0 = std::time::Instant::now();
    let mut outs: Vec<Option<EvenOut>> =
        map_collect(policy, n_even, |s| Some(eliminate_even(&tasks[s], level)));
    let t_batch = t0.elapsed();

    levels.push(tasks.iter().map(|t| t.orig).collect());
    let t0 = std::time::Instant::now();

    // Collect permanent rows and stage the next level's inputs.
    let mut next_inputs: Vec<(LevelCol, Vec<(Matrix, Matrix)>)> = Vec::with_capacity(n_odd);
    for s in 0..n_odd {
        let odd = &mut cols[2 * s + 1];
        let mut obs_parts: Vec<(Matrix, Matrix)> = Vec::with_capacity(3);
        let (dtilde, evo) = {
            let out_s = outs[s].as_mut().expect("filled above");
            (out_s.dtilde.take(), out_s.resid.take())
        };
        if let Some(dt) = dtilde {
            obs_parts.push(dt);
        }
        if let Some(o) = odd.obs.take() {
            obs_parts.push(o);
        }
        // Left-only residual from the *next* even column (the chain's last).
        if s + 1 < n_even {
            if let Some(z) = outs[s + 1]
                .as_mut()
                .expect("filled above")
                .resid_left_only
                .take()
            {
                obs_parts.push(z);
            }
        }
        next_inputs.push((
            LevelCol {
                orig: odd.orig,
                dim: odd.dim,
                obs: None, // filled by the compression batch below
                evo,
            },
            obs_parts,
        ));
    }
    for (s, out) in outs.into_iter().enumerate() {
        let out = out.expect("taken once");
        emit[tasks[s].orig] = Some(out.row);
    }

    let t_stage = t0.elapsed();

    // Batch 3: compress each odd column's observation stack in parallel.
    let t0 = std::time::Instant::now();
    let compressed: Vec<Option<(Matrix, Matrix)>> = map_collect(policy, next_inputs.len(), |s| {
        let (col, parts) = &next_inputs[s];
        if parts.is_empty() {
            return None;
        }
        let refs: Vec<(&Matrix, &Matrix)> = parts.iter().map(|(m, r)| (m, r)).collect();
        let (stack, mut rhs) = vstack_opt(&refs);
        if compress_odd && stack.rows() > col.dim {
            let r = kalman_dense::compress_rows(&stack, &mut rhs);
            let kept = r.rows();
            Some((r, rhs.sub_matrix(0, 0, kept, 1)))
        } else {
            Some((stack, rhs))
        }
    });

    let t_compress = t0.elapsed();
    if trace {
        eprintln!(
            "level {level:>2} (kk={kk:>7}): extract {t_extract:>9.1?} batch {t_batch:>9.1?} stage {t_stage:>9.1?} compress {t_compress:>9.1?}"
        );
    }

    next_inputs
        .into_iter()
        .zip(compressed)
        .map(|((mut col, _), obs)| {
            col.obs = obs;
            col
        })
        .collect()
}

/// Runs the odd-even QR factorization on borrowed whitened steps.
///
/// The level-0 chain is a copy of the whitened blocks (made in parallel);
/// callers that can give up ownership should prefer
/// [`factor_odd_even_owned`], which builds the chain with moves only.
///
/// `policy` controls the parallel batches; `compress_odd` enables the
/// row-count-invariant compression (step 3) — disabling it is an ablation
/// that lets the surviving columns' row counts grow by `Θ(n)` per level.
pub fn factor_odd_even(
    steps: &[WhitenedStep],
    policy: ExecPolicy,
    compress_odd: bool,
) -> Result<OddEvenR> {
    let owned: Vec<WhitenedStep> = map_collect(policy, steps.len(), |i| steps[i].clone());
    factor_odd_even_owned(owned, policy, compress_odd)
}

/// Runs the odd-even QR factorization, consuming the whitened steps (the
/// level-0 chain is built with pointer moves and an in-place negation of the
/// `B` blocks — no copies of the problem data).
pub fn factor_odd_even_owned(
    steps: Vec<WhitenedStep>,
    policy: ExecPolicy,
    compress_odd: bool,
) -> Result<OddEvenR> {
    let k1 = steps.len();
    // Level-0 chain straight from the whitened model.
    let mut cols: Vec<LevelCol> = steps
        .into_iter()
        .enumerate()
        .map(|(i, ws)| LevelCol {
            orig: i,
            dim: ws.state_dim,
            obs: ws.obs.map(|o| (o.c, o.rhs)),
            evo: ws.evo.map(|e| {
                let mut left = e.b;
                left.scale(-1.0);
                EvoRows {
                    left,
                    right: e.d,
                    rhs: e.rhs,
                }
            }),
        })
        .collect();

    let trace = std::env::var_os("KALMAN_OE_TRACE").is_some();
    let mut emit: Vec<Option<RRow>> = (0..k1).map(|_| None).collect();
    let mut levels: Vec<Vec<usize>> = Vec::new();
    let mut level = 0usize;
    while cols.len() > 1 {
        cols = eliminate_level(
            cols,
            level,
            policy,
            compress_odd,
            &mut emit,
            &mut levels,
            trace,
        );
        level += 1;
    }
    // Base case: a single column with observation rows only.
    let root = cols.pop().expect("non-empty model");
    debug_assert!(
        root.evo.is_none(),
        "first chain column cannot carry evolution rows"
    );
    let (stack, rhs) = root
        .obs
        .unwrap_or_else(|| (Matrix::zeros(0, root.dim), Matrix::zeros(0, 1)));
    let (stack, mut rhs) = pad_rows(stack, rhs, root.dim);
    let qr = QrFactor::new(stack);
    qr.apply_qt(&mut rhs);
    emit[root.orig] = Some(RRow {
        diag: qr.r(),
        off: Vec::new(),
        rhs: rhs.sub_matrix(0, 0, root.dim, 1),
        level,
    });
    levels.push(vec![root.orig]);

    Ok(OddEvenR {
        rows: emit
            .into_iter()
            .map(|r| r.expect("every state eliminated exactly once"))
            .collect(),
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalman_dense::{matmul_tn, Matrix};
    use kalman_model::{generators, whiten_model};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// The factorization applies orthogonal transforms to rows of U·A (plus
    /// zero-row padding and row permutations), so it must preserve the Gram
    /// matrix: (RPᵀ)ᵀ(RPᵀ) == (UA)ᵀ(UA), and likewise Rᵀ·rhs == (UA)ᵀ·Ub.
    #[test]
    fn gram_matrix_is_preserved() {
        for (k, seed) in [
            (1usize, 1u64),
            (2, 2),
            (3, 3),
            (4, 4),
            (7, 5),
            (12, 6),
            (17, 7),
        ] {
            let model = generators::paper_benchmark(&mut rng(seed), 3, k, false);
            let steps = whiten_model(&model).unwrap();
            let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
            let sys = kalman_model::assemble_dense(&model).unwrap();

            let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
            let rd = r.to_dense_original_order(&dims);
            let gram_r = matmul_tn(&rd, &rd);
            let gram_a = matmul_tn(&sys.a, &sys.a);
            assert!(
                gram_r.approx_eq(&gram_a, 1e-9 * (1.0 + gram_a.max_abs())),
                "gram mismatch at k={k}: {}",
                gram_r.max_abs_diff(&gram_a)
            );

            // Rᵀ rhs == (UA)ᵀ Ub.
            let order = r.elimination_order();
            let rhs_parts: Vec<&Matrix> = order.iter().map(|&j| &r.rows[j].rhs).collect();
            let rhs = Matrix::vstack(&rhs_parts);
            let lhs = matmul_tn(&rd, &rhs);
            let expect = matmul_tn(&sys.a, &sys.b);
            assert!(
                lhs.approx_eq(&expect, 1e-9 * (1.0 + expect.max_abs())),
                "rhs mismatch at k={k}"
            );
        }
    }

    #[test]
    fn parallel_and_sequential_factorizations_agree() {
        let model = generators::paper_benchmark(&mut rng(10), 4, 33, true);
        let steps = whiten_model(&model).unwrap();
        let rs = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let rp = factor_odd_even(&steps, ExecPolicy::par_with_grain(2), true).unwrap();
        assert_eq!(rs.levels, rp.levels);
        for (a, b) in rs.rows.iter().zip(&rp.rows) {
            assert!(a.diag.approx_eq(&b.diag, 1e-13));
            assert!(a.rhs.approx_eq(&b.rhs, 1e-13));
            assert_eq!(a.off.len(), b.off.len());
            for ((ta, ma), (tb, mb)) in a.off.iter().zip(&b.off) {
                assert_eq!(ta, tb);
                assert!(ma.approx_eq(mb, 1e-13));
            }
        }
    }

    #[test]
    fn level_structure_halves() {
        let model = generators::paper_benchmark(&mut rng(11), 2, 15, false); // 16 states
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        // 16 → evens 8, chain 8 → 4 → 2 → 1 → base 1.
        let sizes: Vec<usize> = r.levels.iter().map(|l| l.len()).collect();
        assert_eq!(sizes, vec![8, 4, 2, 1, 1]);
        assert_eq!(r.levels[0], vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(r.levels[1], vec![1, 5, 9, 13]);
        assert_eq!(r.levels[4], vec![15]);
    }

    #[test]
    fn off_targets_are_deeper_levels() {
        let model = generators::paper_benchmark(&mut rng(12), 2, 20, false);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let mut level_of = vec![0usize; r.num_states()];
        for (l, states) in r.levels.iter().enumerate() {
            for &s in states {
                level_of[s] = l;
            }
        }
        for (j, row) in r.rows.iter().enumerate() {
            assert!(
                row.off.len() <= 2,
                "row {j} has {} off blocks",
                row.off.len()
            );
            for (target, _) in &row.off {
                assert!(
                    level_of[*target] > row.level,
                    "row {j} (level {}) references {} (level {})",
                    row.level,
                    target,
                    level_of[*target]
                );
            }
        }
    }

    #[test]
    fn no_compression_still_preserves_gram() {
        let model = generators::paper_benchmark(&mut rng(13), 2, 9, false);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, false).unwrap();
        let sys = kalman_model::assemble_dense(&model).unwrap();
        let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
        let rd = r.to_dense_original_order(&dims);
        let gram_r = matmul_tn(&rd, &rd);
        let gram_a = matmul_tn(&sys.a, &sys.a);
        assert!(gram_r.approx_eq(&gram_a, 1e-9 * (1.0 + gram_a.max_abs())));
    }

    #[test]
    fn sparse_observations_and_prior_work() {
        let mut model = generators::sparse_observations(&mut rng(14), 2, 10, 3);
        model.set_prior(vec![0.0; 2], kalman_model::CovarianceSpec::Identity(2));
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let sys = kalman_model::assemble_dense(&model).unwrap();
        let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
        let rd = r.to_dense_original_order(&dims);
        assert!(matmul_tn(&rd, &rd).approx_eq(&matmul_tn(&sys.a, &sys.a), 1e-9));
    }

    #[test]
    fn dimension_changes_preserve_gram() {
        let model = generators::dimension_change(&mut rng(15), 2, 11);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let sys = kalman_model::assemble_dense(&model).unwrap();
        let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
        let rd = r.to_dense_original_order(&dims);
        let gram_r = matmul_tn(&rd, &rd);
        let gram_a = matmul_tn(&sys.a, &sys.a);
        assert!(gram_r.approx_eq(&gram_a, 1e-8 * (1.0 + gram_a.max_abs())));
    }
}

//! The recursive odd-even elimination (§3 of the paper).
//!
//! Each level of the recursion maintains a *chain* of block columns with the
//! invariant structure of `U·A`: every column `t` carries observation-like
//! rows `C_t` (support in column `t` only) and, for `t > 0`, evolution-like
//! rows `(E_t | D_t)` coupling columns `t−1` and `t`.  One level eliminates
//! all even columns concurrently:
//!
//! 1. QR-factor `[C_t; E_{t+1}]` against column `t`; applying `Qᵀ` to
//!    `[0; D_{t+1}]` creates the fill `X_t` and the remainder `D̃_{t+1}`.
//! 2. QR-factor `[D_t; R̂_t]`, finalizing the permanent row
//!    `(B̃_t, R_t, Y_t)` of `R` and leaving residual rows `(Z_t, X̃_t)` that
//!    couple the odd neighbours `t−1, t+1` — the next level's evolution rows.
//! 3. Compress each odd column's `[D̃; C]` stack back to at most `n` rows by
//!    one more QR (restoring the row-count invariant).
//!
//! All three batches are embarrassingly parallel across columns; the chain
//! halves each level, so the critical path is `Θ(log k)` batches.
//!
//! The QRs fuse factorization with the companion transforms
//! (`QrFactor::new_applying`), and every container the elimination needs
//! lives in a reusable [`FactorScratch`]; together with the workspace-pooled
//! matrices of `kalman-dense` this makes a steady-state caller (the
//! streaming smoother re-factoring a fixed-size window per flush) perform
//! zero heap allocations after warmup.

use crate::plan::{PlanLevel, PlanSchedule};
use crate::rfactor::{OddEvenR, RRow};
use kalman_dense::{KernelKind, Matrix, QrFactor};
use kalman_model::{Result, WhitenedStep};
use kalman_par::{for_each_mut, map_collect, ExecPolicy};
use std::sync::OnceLock;

/// Evolution-like rows coupling a chain column to its predecessor.
#[derive(Debug, Clone)]
struct EvoRows {
    /// Block in the *previous* chain column (sign already absorbed: at level
    /// 0 this is `−B_i`).
    left: Matrix,
    /// Block in this chain column (`D_i` at level 0).
    right: Matrix,
    /// Right-hand-side segment for these rows.
    rhs: Matrix,
}

/// One column of the current level's chain.
#[derive(Debug)]
struct LevelCol {
    /// Original state index.
    orig: usize,
    /// State dimension `n`.
    dim: usize,
    /// Observation-like rows `(C, rhs)` with support only in this column.
    obs: Option<(Matrix, Matrix)>,
    /// `obs` is the `n × n` upper-triangular block produced by the previous
    /// level's compression (enables the triangular-pentagonal fast path).
    obs_tri: bool,
    /// `obs` is a *short* (`m < n`) block the level-0 pre-pass reduced to
    /// upper-trapezoidal form (enables the trapezoidal-pentagonal step-1
    /// fast path).  Mutually exclusive with `obs_tri`.
    obs_trap: bool,
    /// Evolution-like rows coupling to the previous chain column.
    evo: Option<EvoRows>,
}

/// Everything one even-column elimination needs, borrowed out of the chain.
#[derive(Debug)]
struct EvenTask {
    orig: usize,
    dim: usize,
    obs: Option<(Matrix, Matrix)>,
    /// See [`LevelCol::obs_tri`].
    obs_tri: bool,
    /// See [`LevelCol::obs_trap`].
    obs_trap: bool,
    /// This column's evolution rows (couple to chain neighbour `t−1`).
    evo: Option<EvoRows>,
    /// The next column's evolution rows (couple `t` and `t+1`).
    next_evo: Option<EvoRows>,
    left_orig: Option<usize>,
    left_dim: Option<usize>,
    right_orig: Option<usize>,
    /// Filled by the parallel batch (`for_each_mut` writes each task's
    /// result next to its inputs, so the inputs are consumed by move —
    /// the batch clones nothing).
    out: Option<EvenOut>,
}

/// The products of eliminating one even column.  The permanent row is kept
/// as loose fields (not an [`RRow`]) so the sequential merge can move them
/// into the reused `OddEvenR` slots without creating per-row containers.
#[derive(Debug)]
struct EvenOut {
    diag: Matrix,
    off_left: Option<(usize, Matrix)>,
    off_right: Option<(usize, Matrix)>,
    rhs: Matrix,
    /// `D̃` rows left in column `t+1` after step 1 (feed the odd column's
    /// compression).
    dtilde: Option<(Matrix, Matrix)>,
    /// Residual rows coupling `(t−1, t+1)` — the next level's evolution rows.
    resid: Option<EvoRows>,
    /// Residual rows with support only in `t−1` (when `t` is the last column
    /// of the chain); appended to that odd column's observation stack.
    resid_left_only: Option<(Matrix, Matrix)>,
}

/// One odd column staged for the compression batch: the surviving column
/// plus up to three observation-like row stacks (inline — no heap).
#[derive(Debug)]
struct OddInput {
    orig: usize,
    dim: usize,
    evo: Option<EvoRows>,
    /// `parts[1]` (the surviving obs block) is a `dim × dim` triangle.
    obs_tri: bool,
    parts: [Option<(Matrix, Matrix)>; 3],
    /// Filled by the parallel compression batch (consumes `parts`).
    result: Option<(Matrix, Matrix, bool)>,
}

/// Reusable containers for [`factor_odd_even_into`]: every `Vec` the
/// elimination builds per call/level lives here and keeps its capacity, so
/// repeated factorizations of same-shaped problems allocate nothing.  The
/// scratch also caches the symbolic [`PlanSchedule`] of the last shape it
/// factored, so the one-shot entry points re-plan only when the shape
/// changes (a [`crate::SmoothPlan`] supplies its own, possibly shared,
/// schedule instead and leaves this one empty).
///
/// The scratch carries no results between calls; `Clone` intentionally
/// produces a fresh (cold) scratch.
#[derive(Debug, Default)]
pub struct FactorScratch {
    cols: Vec<LevelCol>,
    next_cols: Vec<LevelCol>,
    tasks: Vec<EvenTask>,
    odd_inputs: Vec<OddInput>,
    schedule: PlanSchedule,
}

impl Clone for FactorScratch {
    fn clone(&self) -> Self {
        FactorScratch::default()
    }
}

/// Stacks up to three `(rows, rhs)` pairs vertically, zero-padding to at
/// least `min_rows` rows (inline-array variant of `vstack` + `pad_rows`
/// fused into one allocation, so the hot path never re-copies a stack just
/// to append zero equations).
fn stack_parts(
    parts: [Option<(&Matrix, &Matrix)>; 3],
    ncols: usize,
    min_rows: usize,
) -> (Matrix, Matrix) {
    let rows: usize = parts.iter().flatten().map(|(m, _)| m.rows()).sum();
    let rows = rows.max(min_rows);
    let mut stack = Matrix::zeros(rows, ncols);
    let mut rhs = Matrix::zeros(rows, 1);
    let mut r0 = 0;
    for (m, r) in parts.iter().flatten() {
        stack.set_block(r0, 0, m);
        rhs.set_block(r0, 0, r);
        r0 += m.rows();
    }
    (stack, rhs)
}

fn eliminate_even(task: &mut EvenTask, kind: KernelKind) -> EvenOut {
    let n = task.dim;
    let obs = task.obs.take();
    let next_evo = task.next_evo.take();
    let evo = task.evo.take();

    // ---- Step 1: eliminate column t from [C_t; E_{t+1}]; carry the
    // transform onto [0; D_{t+1}] and the right-hand sides.  Outputs: the
    // triangular R̂ (n×n), its rhs ρ (n×1), the fill X (n×w) and the
    // leftover D̃ rows.
    let (rhat, rho, x_fill, dtilde) = if task.obs_tri {
        // The obs block is already a `n × n` triangle (level-0
        // pre-triangularization or a previous level's compression), so the
        // stack [C_tri; E] has the triangular-pentagonal shape: no
        // stacking, no padding, reflectors of length 1+l, inputs by move.
        let (mut r, mut rho) = obs.expect("obs_tri implies obs");
        debug_assert_eq!(r.rows(), n);
        match next_evo {
            None => (r, rho, None, None),
            Some(ne) => {
                let l2 = ne.left.rows();
                let mut d = ne.left;
                let mut x_top = Matrix::zeros(n, ne.right.cols());
                let mut x_bot = ne.right;
                let mut rhs_bot = ne.rhs;
                kalman_dense::qr_tri_stack_applying_with(
                    kind,
                    &mut r,
                    &mut d,
                    &mut [(&mut x_top, &mut x_bot), (&mut rho, &mut rhs_bot)],
                );
                let dtilde = (l2 > 0).then_some((x_bot, rhs_bot));
                (r, rho, Some(x_top), dtilde)
            }
        }
    } else if task.obs_trap {
        // Short observation block already reduced to an `m × n` upper
        // trapezoid (m < n) by the level-0 pre-pass: eliminate the
        // trapezoidal-pentagonal stack [C_trap; E] without padding C back
        // up to `n` rows, then scatter the staircase rows into the padded
        // `n × n` outputs the rest of the pipeline expects.
        let (mut t, mut rho_top) = obs.expect("obs_trap implies obs");
        let m = t.rows();
        debug_assert!(m < n, "obs_trap implies a short block");
        match next_evo {
            None => {
                let mut rhat = Matrix::zeros(n, n);
                rhat.set_block(0, 0, &t);
                let mut rho = Matrix::zeros(n, 1);
                rho.set_block(0, 0, &rho_top);
                (rhat, rho, None, None)
            }
            Some(ne) => {
                let l2 = ne.left.rows();
                let w = ne.right.cols();
                let mut d = ne.left;
                let mut x_top = Matrix::zeros(m, w);
                let mut x_bot = ne.right;
                let mut rhs_bot = ne.rhs;
                kalman_dense::qr_trap_stack_applying(
                    &mut t,
                    &mut d,
                    &mut [(&mut x_top, &mut x_bot), (&mut rho_top, &mut rhs_bot)],
                );
                // Staircase rows `m + i` of the result live in `D` row `i`
                // (columns ≥ m + i; below that are spent reflector tails).
                let steps = l2.min(n - m);
                let mut rhat = Matrix::zeros(n, n);
                let mut rho = Matrix::zeros(n, 1);
                let mut x = Matrix::zeros(n, w);
                rhat.set_block(0, 0, &t);
                rho.set_block(0, 0, &rho_top);
                x.set_block(0, 0, &x_top);
                for i in 0..steps {
                    for j in (m + i)..n {
                        rhat[(m + i, j)] = d[(i, j)];
                    }
                    rho[(m + i, 0)] = rhs_bot[(i, 0)];
                    for c in 0..w {
                        x[(m + i, c)] = x_bot[(i, c)];
                    }
                }
                let dtilde = (l2 > steps).then(|| {
                    (
                        x_bot.sub_matrix(steps, 0, l2 - steps, w),
                        rhs_bot.sub_matrix(steps, 0, l2 - steps, 1),
                    )
                });
                (rhat, rho, Some(x), dtilde)
            }
        }
    } else {
        // General shape (short observation blocks): dense QR of the
        // zero-padded stack, fused with the companion transforms.
        let obs_rows = obs.as_ref().map(|(c, _)| c.rows()).unwrap_or(0);
        let (stacked, mut rhs1) = stack_parts(
            [
                obs.as_ref().map(|(c, r)| (c, r)),
                next_evo.as_ref().map(|ne| (&ne.left, &ne.rhs)),
                None,
            ],
            n,
            n,
        );
        let step1_rows = stacked.rows();

        // Companion block in column t+1 (zero where the obs rows are, D below).
        let mut companion = next_evo.as_ref().map(|ne| {
            let mut comp = Matrix::zeros(step1_rows, ne.right.cols());
            comp.set_block(obs_rows, 0, &ne.right);
            comp
        });

        let qr1 = match companion.as_mut() {
            Some(comp) => QrFactor::new_applying(stacked, &mut [&mut rhs1, comp]),
            None => QrFactor::new_applying(stacked, &mut [&mut rhs1]),
        };
        let rhat = qr1.r();
        let rho = rhs1.sub_matrix(0, 0, n, 1);
        let x_fill = companion.as_ref().map(|c| c.sub_matrix(0, 0, n, c.cols()));
        let dtilde = companion.as_ref().and_then(|c| {
            let rows = c.rows() - n;
            if rows == 0 {
                None
            } else {
                Some((
                    c.sub_matrix(n, 0, rows, c.cols()),
                    rhs1.sub_matrix(n, 0, rows, 1),
                ))
            }
        });
        (rhat, rho, x_fill, dtilde)
    };

    // ---- Step 2: absorb this column's evolution rows (if any).  The stack
    // [D_t; R̂_t] always has the triangular-pentagonal shape, and the
    // companions live in their natural blocks — the transformed tops *are*
    // the permanent row's blocks and the bottoms the residual rows, so no
    // stacking or extraction copies remain.
    match evo {
        None => {
            // First chain column: R̂ is final.
            let off_right = match (x_fill, task.right_orig) {
                (Some(x), Some(ro)) => Some((ro, x)),
                _ => None,
            };
            EvenOut {
                diag: rhat,
                off_left: None,
                off_right,
                rhs: rho,
                dtilde,
                resid: None,
                resid_left_only: None,
            }
        }
        Some(evo) => {
            let l = evo.right.rows();
            let left_dim = task.left_dim.expect("evo implies a left neighbour");
            let left_orig = task.left_orig.expect("evo implies a left neighbour");
            let mut diag = rhat;
            let mut d = evo.right;
            let mut cl_top = Matrix::zeros(n, left_dim);
            let mut cl_bot = evo.left;
            let mut rhs_top = rho;
            let mut rhs_bot = evo.rhs;
            match x_fill {
                Some(mut x_top) => {
                    let mut cr_bot = Matrix::zeros(l, x_top.cols());
                    kalman_dense::qr_tri_stack_applying_with(
                        kind,
                        &mut diag,
                        &mut d,
                        &mut [
                            (&mut cl_top, &mut cl_bot),
                            (&mut x_top, &mut cr_bot),
                            (&mut rhs_top, &mut rhs_bot),
                        ],
                    );
                    let resid = (l > 0).then_some(EvoRows {
                        left: cl_bot,
                        right: cr_bot,
                        rhs: rhs_bot,
                    });
                    EvenOut {
                        diag,
                        off_left: Some((left_orig, cl_top)),
                        off_right: task.right_orig.map(|ro| (ro, x_top)),
                        rhs: rhs_top,
                        dtilde,
                        resid,
                        resid_left_only: None,
                    }
                }
                None => {
                    kalman_dense::qr_tri_stack_applying_with(
                        kind,
                        &mut diag,
                        &mut d,
                        &mut [(&mut cl_top, &mut cl_bot), (&mut rhs_top, &mut rhs_bot)],
                    );
                    let resid_left_only = (l > 0).then_some((cl_bot, rhs_bot));
                    EvenOut {
                        diag,
                        off_left: Some((left_orig, cl_top)),
                        off_right: None,
                        rhs: rhs_top,
                        dtilde,
                        resid: None,
                        resid_left_only,
                    }
                }
            }
        }
    }
}

/// Moves an [`EvenOut`]'s permanent row into the reused slot `row`,
/// retaining the slot's `off` capacity.
fn emit_row(row: &mut RRow, out: &mut EvenOut, level: usize) {
    row.diag = std::mem::replace(&mut out.diag, Matrix::zeros(0, 0));
    row.rhs = std::mem::replace(&mut out.rhs, Matrix::zeros(0, 0));
    row.level = level;
    row.off.clear();
    if let Some(pair) = out.off_left.take() {
        row.off.push(pair); // lint: allow(alloc, "off holds at most 2 pairs and retains its slot capacity; amortized to zero")
    }
    if let Some(pair) = out.off_right.take() {
        row.off.push(pair); // lint: allow(alloc, "off holds at most 2 pairs and retains its slot capacity; amortized to zero")
    }
}

/// Eliminates all even columns of `scratch.cols` following the symbolic
/// `plan` for this level, emitting their permanent rows into `out` and
/// leaving the next level's (odd-column) chain in `scratch.cols`.
#[allow(clippy::too_many_arguments)]
fn eliminate_level(
    plan: &PlanLevel,
    scratch: &mut FactorScratch,
    level: usize,
    policy: ExecPolicy,
    compress_odd: bool,
    kind: KernelKind,
    out: &mut OddEvenR,
    trace: bool,
) {
    let t_start = std::time::Instant::now();
    let FactorScratch {
        cols,
        next_cols,
        tasks,
        odd_inputs,
        ..
    } = scratch;
    let kk = cols.len();
    debug_assert!(kk >= 2, "base case handled by caller");
    debug_assert_eq!(kk, plan.evens.len() + plan.odds.len(), "plan mismatch");
    let n_even = plan.evens.len();
    let n_odd = plan.odds.len();

    // Extract each even task's inputs (pointer moves, no matrix copies);
    // the chain positions, dimensions and neighbour links come from the
    // symbolic plan instead of being re-derived from the chain.
    tasks.clear();
    for (s, slot) in plan.evens.iter().enumerate() {
        let t = 2 * s;
        debug_assert_eq!(cols[t].orig, slot.orig, "plan/chain divergence");
        debug_assert_eq!(cols[t].dim, slot.dim, "plan/chain divergence");
        let obs = cols[t].obs.take();
        let obs_tri = cols[t].obs_tri && obs.is_some();
        let obs_trap = cols[t].obs_trap && obs.is_some();
        let evo = cols[t].evo.take();
        let next_evo = if t + 1 < kk {
            cols[t + 1].evo.take()
        } else {
            None
        };
        // lint: allow(alloc, "push into cleared scratch that retains capacity across levels; amortized, steady-state alloc-free")
        tasks.push(EvenTask {
            orig: slot.orig,
            dim: slot.dim,
            obs,
            obs_tri,
            obs_trap,
            evo,
            next_evo,
            left_orig: slot.left_orig,
            left_dim: slot.left_orig.map(|_| slot.left_dim),
            right_orig: slot.right_orig,
            out: None,
        });
    }

    let t_extract = t_start.elapsed();

    // Batch 1+2: eliminate the even columns in parallel, each task
    // consuming its inputs by move and parking its result in place.
    let t0 = std::time::Instant::now();
    for_each_mut(policy, tasks, |_, task| {
        let result = eliminate_even(task, kind);
        task.out = Some(result);
    });
    let t_batch = t0.elapsed();

    let t0 = std::time::Instant::now();

    // Collect permanent rows and stage the next level's inputs.
    odd_inputs.clear();
    for s in 0..n_odd {
        let odd = &mut cols[2 * s + 1];
        debug_assert_eq!(odd.orig, plan.odds[s].orig, "plan/chain divergence");
        let mut parts: [Option<(Matrix, Matrix)>; 3] = [None, None, None];
        let (dtilde, evo) = {
            let out_s = tasks[s].out.as_mut().expect("filled above");
            (out_s.dtilde.take(), out_s.resid.take())
        };
        parts[0] = dtilde;
        parts[1] = odd.obs.take();
        let odd_obs_tri = odd.obs_tri && parts[1].is_some();
        // Left-only residual from the *next* even column (the chain's last).
        if s + 1 < n_even {
            parts[2] = tasks[s + 1]
                .out
                .as_mut()
                .expect("filled above")
                .resid_left_only
                .take();
        }
        // lint: allow(alloc, "push into cleared scratch that retains capacity across levels; amortized, steady-state alloc-free")
        odd_inputs.push(OddInput {
            orig: odd.orig,
            dim: odd.dim,
            evo,
            obs_tri: odd_obs_tri,
            parts,
            result: None,
        });
    }
    for task in tasks.iter_mut() {
        let out_s = task.out.as_mut().expect("filled above");
        emit_row(&mut out.rows[task.orig], out_s, level);
        task.out = None;
    }

    let t_stage = t0.elapsed();

    // Batch 3: compress each odd column's observation stack in parallel,
    // consuming the staged parts by move.
    let t0 = std::time::Instant::now();
    for_each_mut(policy, odd_inputs, |_, input| {
        if input.parts.iter().all(Option::is_none) {
            input.result = None;
            return;
        }
        if compress_odd && input.obs_tri {
            // The obs block is already a `dim × dim` triangle, so the
            // compression is one triangular-pentagonal elimination of the
            // dense rows (D̃ and any left-only residual) into it — and the
            // single-dense-part common case moves its block straight in.
            let (mut r, mut rhs_top) = input.parts[1].take().expect("obs_tri implies obs");
            debug_assert_eq!(r.rows(), input.dim);
            let dense0 = input.parts[0].take();
            let dense2 = input.parts[2].take();
            let dstack = match (dense0, dense2) {
                (Some(p), None) | (None, Some(p)) => Some(p),
                (Some(a), Some(b)) => Some(stack_parts(
                    [Some((&a.0, &a.1)), Some((&b.0, &b.1)), None],
                    input.dim,
                    0,
                )),
                (None, None) => None,
            };
            if let Some((mut dstack, mut drhs)) = dstack {
                kalman_dense::qr_tri_stack_applying_with(
                    kind,
                    &mut r,
                    &mut dstack,
                    &mut [(&mut rhs_top, &mut drhs)],
                );
            }
            input.result = Some((r, rhs_top, true));
            return;
        }
        let refs = [
            input.parts[0].as_ref().map(|(m, r)| (m, r)),
            input.parts[1].as_ref().map(|(m, r)| (m, r)),
            input.parts[2].as_ref().map(|(m, r)| (m, r)),
        ];
        let (stack, mut rhs) = stack_parts(refs, input.dim, 0);
        input.parts = [None, None, None];
        input.result = if compress_odd && stack.rows() > input.dim {
            let r = kalman_dense::compress_rows_owned(stack, &mut rhs);
            let kept = r.rows();
            Some((r, rhs.sub_matrix(0, 0, kept, 1), true))
        } else {
            Some((stack, rhs, false))
        };
    });

    let t_compress = t0.elapsed();
    if trace {
        eprintln!(
            "level {level:>2} (kk={kk:>7}): extract {t_extract:>9.1?} batch {t_batch:>9.1?} stage {t_stage:>9.1?} compress {t_compress:>9.1?}"
        );
    }

    next_cols.clear();
    for mut input in odd_inputs.drain(..) {
        let (obs, obs_tri) = match input.result.take() {
            Some((c, rhs, tri)) => (Some((c, rhs)), tri),
            None => (None, false),
        };
        // lint: allow(alloc, "push into cleared scratch that retains capacity across levels; amortized, steady-state alloc-free")
        next_cols.push(LevelCol {
            orig: input.orig,
            dim: input.dim,
            obs,
            obs_tri,
            obs_trap: false,
            evo: input.evo,
        });
    }
    std::mem::swap(cols, next_cols);
}

fn trace_enabled() -> bool {
    static TRACE: OnceLock<bool> = OnceLock::new();
    *TRACE.get_or_init(|| std::env::var_os("KALMAN_OE_TRACE").is_some())
}

/// Runs the odd-even QR factorization on borrowed whitened steps.
///
/// The level-0 chain is a copy of the whitened blocks (made in parallel);
/// callers that can give up ownership should prefer
/// [`factor_odd_even_owned`], which builds the chain with moves only.
///
/// `policy` controls the parallel batches; `compress_odd` enables the
/// row-count-invariant compression (step 3) — disabling it is an ablation
/// that lets the surviving columns' row counts grow by `Θ(n)` per level.
pub fn factor_odd_even(
    steps: &[WhitenedStep],
    policy: ExecPolicy,
    compress_odd: bool,
) -> Result<OddEvenR> {
    let owned: Vec<WhitenedStep> = map_collect(policy, steps.len(), |i| steps[i].clone());
    factor_odd_even_owned(owned, policy, compress_odd)
}

/// Runs the odd-even QR factorization, consuming the whitened steps (the
/// level-0 chain is built with pointer moves and an in-place negation of the
/// `B` blocks — no copies of the problem data).
pub fn factor_odd_even_owned(
    steps: Vec<WhitenedStep>,
    policy: ExecPolicy,
    compress_odd: bool,
) -> Result<OddEvenR> {
    let mut steps = steps;
    let mut scratch = FactorScratch::default();
    let mut out = OddEvenR::default();
    factor_odd_even_into(&mut steps, policy, compress_odd, &mut scratch, &mut out)?;
    Ok(out)
}

/// The reusable-everything form of the odd-even factorization: drains
/// `steps`, reuses `scratch`'s containers and `out`'s rows/levels storage.
/// In steady state (same window shape call after call — the streaming
/// smoother's situation) the factorization performs no heap allocations:
/// matrices cycle through the `kalman-dense` workspace pool and every
/// container retains its capacity here.
///
/// Internally this is plan-then-execute: the symbolic [`PlanSchedule`]
/// cached in `scratch` is rebuilt only when the shape changed, then the
/// numeric executor runs against it.  Callers that want to share or manage
/// plans explicitly use [`crate::SmoothPlan`] instead.
///
/// `steps` is left empty (capacity retained) so the caller can refill it.
pub fn factor_odd_even_into(
    steps: &mut Vec<WhitenedStep>,
    policy: ExecPolicy,
    compress_odd: bool,
    scratch: &mut FactorScratch,
    out: &mut OddEvenR,
) -> Result<()> {
    scratch.schedule.ensure_steps(steps);
    // The schedule moves out for the duration of the numeric phase so the
    // executor can borrow it and the scratch disjointly (a pointer-sized
    // shuffle, no allocation).
    let schedule = std::mem::take(&mut scratch.schedule);
    let result = execute_factor(&schedule, steps, policy, compress_odd, scratch, out);
    scratch.schedule = schedule;
    result
}

/// The numeric phase of the odd-even factorization: runs the elimination
/// recursion dictated by `schedule` over `steps` (which must match the
/// schedule's shape — callers have already re-planned if needed), reusing
/// `scratch`'s containers and `out`'s storage.
pub(crate) fn execute_factor(
    schedule: &PlanSchedule,
    steps: &mut Vec<WhitenedStep>,
    policy: ExecPolicy,
    compress_odd: bool,
    scratch: &mut FactorScratch,
    out: &mut OddEvenR,
) -> Result<()> {
    let k1 = steps.len();
    debug_assert!(schedule.matches_steps(steps), "unplanned shape");
    // Size the output: reuse existing row slots, add/remove as needed, and
    // copy the elimination-order level lists straight from the plan.
    out.rows.truncate(k1);
    while out.rows.len() < k1 {
        // lint: allow(alloc, "grows the reused output to window length once; repeat windows of the same length reuse the row slots")
        out.rows.push(RRow {
            diag: Matrix::zeros(0, 0),
            off: Vec::new(),
            rhs: Matrix::zeros(0, 0),
            level: 0,
        });
    }
    let elim = schedule.elim_levels();
    out.levels.truncate(elim.len());
    while out.levels.len() < elim.len() {
        out.levels.push(Vec::new()); // lint: allow(alloc, "grows the reused output once per new window depth; steady-state windows hit the truncate path")
    }
    for (dst, src) in out.levels.iter_mut().zip(elim) {
        dst.clear();
        dst.extend_from_slice(src);
    }

    // Level-0 chain straight from the whitened model.
    scratch.cols.clear();
    for (i, ws) in steps.drain(..).enumerate() {
        // lint: allow(alloc, "push into cleared scratch that retains capacity across windows; amortized, steady-state alloc-free")
        scratch.cols.push(LevelCol {
            orig: i,
            dim: ws.state_dim,
            obs: ws.obs.map(|o| (o.c, o.rhs)),
            obs_tri: false,
            obs_trap: false,
            evo: ws.evo.map(|e| {
                let mut left = e.b;
                left.scale(-1.0);
                EvoRows {
                    left,
                    right: e.d,
                    rhs: e.rhs,
                }
            }),
        });
    }

    // Plan-time kernel selection, resolved once per execute (demoted to
    // `Auto` under `KALMAN_REF_KERNELS`): every tri-stack below binds the
    // monomorphized body without per-call dispatch.
    let kind = schedule.kernels().active();
    let reference = kalman_dense::reference_kernels();

    // Pre-triangularize every tall-enough observation block (one parallel
    // batch): a QR of `C` alone costs a fraction of the stacked QR it
    // replaces, and afterwards *every* elimination step — not just levels
    // that went through a compression — runs the triangular-pentagonal
    // fast path with short reflectors and no stack/extract copies.  Short
    // blocks (`m < n`) get the trapezoidal reduction instead, so step 1
    // runs the structured [`kalman_dense::qr_trap_stack_applying`] rather
    // than a zero-padded full-height QR (skipped in reference mode, which
    // keeps the padded general path as the oracle).
    for_each_mut(policy.for_len(k1), &mut scratch.cols, |_, col| {
        if let Some((mut c, mut rhs)) = col.obs.take() {
            if c.rows() >= col.dim && col.dim > 0 {
                let qr = QrFactor::new_applying(c, &mut [&mut rhs]);
                let r = qr.r();
                let rhs_top = rhs.sub_matrix(0, 0, col.dim, 1);
                col.obs = Some((r, rhs_top));
                col.obs_tri = true;
            } else if !reference && c.rows() > 0 && c.rows() < col.dim {
                kalman_dense::trapezoidalize_applying(&mut c, &mut [&mut rhs]);
                col.obs = Some((c, rhs));
                col.obs_trap = true;
            } else {
                col.obs = Some((c, rhs));
            }
        }
    });

    let trace = trace_enabled();
    for (level, plan) in schedule.plan_levels().iter().enumerate() {
        let _span = kalman_obs::span!("oe.factor.level");
        // The plan's per-level execution decision: levels that fit in one
        // grain run sequentially (no scheduler overhead; bitwise equal).
        let level_policy = policy.for_len(plan.evens.len());
        eliminate_level(
            plan,
            scratch,
            level,
            level_policy,
            compress_odd,
            kind,
            out,
            trace,
        );
    }
    // Base case: a single column with observation rows only.
    let root = scratch.cols.pop().expect("non-empty model");
    debug_assert_eq!((root.orig, root.dim), schedule.root(), "plan divergence");
    debug_assert!(
        root.evo.is_none(),
        "first chain column cannot carry evolution rows"
    );
    let (stack, mut rhs) = stack_parts(
        [root.obs.as_ref().map(|(m, r)| (m, r)), None, None],
        root.dim,
        root.dim,
    );
    let qr = QrFactor::new_applying(stack, &mut [&mut rhs]);
    let row = &mut out.rows[root.orig];
    row.diag = qr.r();
    row.off.clear();
    row.rhs = rhs.sub_matrix(0, 0, root.dim, 1);
    row.level = schedule.plan_levels().len();

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalman_dense::{matmul_tn, Matrix};
    use kalman_model::{generators, whiten_model};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// The factorization applies orthogonal transforms to rows of U·A (plus
    /// zero-row padding and row permutations), so it must preserve the Gram
    /// matrix: (RPᵀ)ᵀ(RPᵀ) == (UA)ᵀ(UA), and likewise Rᵀ·rhs == (UA)ᵀ·Ub.
    #[test]
    fn gram_matrix_is_preserved() {
        for (k, seed) in [
            (1usize, 1u64),
            (2, 2),
            (3, 3),
            (4, 4),
            (7, 5),
            (12, 6),
            (17, 7),
        ] {
            let model = generators::paper_benchmark(&mut rng(seed), 3, k, false);
            let steps = whiten_model(&model).unwrap();
            let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
            let sys = kalman_model::assemble_dense(&model).unwrap();

            let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
            let rd = r.to_dense_original_order(&dims);
            let gram_r = matmul_tn(&rd, &rd);
            let gram_a = matmul_tn(&sys.a, &sys.a);
            assert!(
                gram_r.approx_eq(&gram_a, 1e-9 * (1.0 + gram_a.max_abs())),
                "gram mismatch at k={k}: {}",
                gram_r.max_abs_diff(&gram_a)
            );

            // Rᵀ rhs == (UA)ᵀ Ub.
            let order = r.elimination_order();
            let rhs_parts: Vec<&Matrix> = order.iter().map(|&j| &r.rows[j].rhs).collect();
            let rhs = Matrix::vstack(&rhs_parts);
            let lhs = matmul_tn(&rd, &rhs);
            let expect = matmul_tn(&sys.a, &sys.b);
            assert!(
                lhs.approx_eq(&expect, 1e-9 * (1.0 + expect.max_abs())),
                "rhs mismatch at k={k}"
            );
        }
    }

    #[test]
    fn parallel_and_sequential_factorizations_agree() {
        let model = generators::paper_benchmark(&mut rng(10), 4, 33, true);
        let steps = whiten_model(&model).unwrap();
        let rs = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let rp = factor_odd_even(&steps, ExecPolicy::par_with_grain(2), true).unwrap();
        assert_eq!(rs.levels, rp.levels);
        for (a, b) in rs.rows.iter().zip(&rp.rows) {
            assert!(a.diag.approx_eq(&b.diag, 1e-13));
            assert!(a.rhs.approx_eq(&b.rhs, 1e-13));
            assert_eq!(a.off.len(), b.off.len());
            for ((ta, ma), (tb, mb)) in a.off.iter().zip(&b.off) {
                assert_eq!(ta, tb);
                assert!(ma.approx_eq(mb, 1e-13));
            }
        }
    }

    /// Re-running the factorization through the same scratch and output
    /// (the streaming pattern) must give results identical to a fresh run,
    /// including when the problem shrinks between calls.
    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_state() {
        let mut scratch = FactorScratch::default();
        let mut out = OddEvenR::default();
        for (k, seed) in [(21usize, 61u64), (21, 62), (9, 63), (30, 64)] {
            let model = generators::paper_benchmark(&mut rng(seed), 3, k, true);
            let steps = whiten_model(&model).unwrap();
            let fresh = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
            let mut owned = steps.clone();
            factor_odd_even_into(&mut owned, ExecPolicy::Seq, true, &mut scratch, &mut out)
                .unwrap();
            assert!(owned.is_empty());
            assert_eq!(out.levels, fresh.levels);
            assert_eq!(out.rows.len(), fresh.rows.len());
            for (a, b) in out.rows.iter().zip(&fresh.rows) {
                assert!(a.diag.approx_eq(&b.diag, 0.0));
                assert!(a.rhs.approx_eq(&b.rhs, 0.0));
                assert_eq!(a.level, b.level);
                assert_eq!(a.off.len(), b.off.len());
                for ((ta, ma), (tb, mb)) in a.off.iter().zip(&b.off) {
                    assert_eq!(ta, tb);
                    assert!(ma.approx_eq(mb, 0.0));
                }
            }
        }
    }

    #[test]
    fn level_structure_halves() {
        let model = generators::paper_benchmark(&mut rng(11), 2, 15, false); // 16 states
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        // 16 → evens 8, chain 8 → 4 → 2 → 1 → base 1.
        let sizes: Vec<usize> = r.levels.iter().map(|l| l.len()).collect();
        assert_eq!(sizes, vec![8, 4, 2, 1, 1]);
        assert_eq!(r.levels[0], vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(r.levels[1], vec![1, 5, 9, 13]);
        assert_eq!(r.levels[4], vec![15]);
    }

    #[test]
    fn off_targets_are_deeper_levels() {
        let model = generators::paper_benchmark(&mut rng(12), 2, 20, false);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let mut level_of = vec![0usize; r.num_states()];
        for (l, states) in r.levels.iter().enumerate() {
            for &s in states {
                level_of[s] = l;
            }
        }
        for (j, row) in r.rows.iter().enumerate() {
            assert!(
                row.off.len() <= 2,
                "row {j} has {} off blocks",
                row.off.len()
            );
            for (target, _) in &row.off {
                assert!(
                    level_of[*target] > row.level,
                    "row {j} (level {}) references {} (level {})",
                    row.level,
                    target,
                    level_of[*target]
                );
            }
        }
    }

    #[test]
    fn no_compression_still_preserves_gram() {
        let model = generators::paper_benchmark(&mut rng(13), 2, 9, false);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, false).unwrap();
        let sys = kalman_model::assemble_dense(&model).unwrap();
        let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
        let rd = r.to_dense_original_order(&dims);
        let gram_r = matmul_tn(&rd, &rd);
        let gram_a = matmul_tn(&sys.a, &sys.a);
        assert!(gram_r.approx_eq(&gram_a, 1e-9 * (1.0 + gram_a.max_abs())));
    }

    /// Short (`m < n`) observation blocks take the trapezoidal step-1 path;
    /// it is an orthogonal transformation like the padded general path, so
    /// the Gram matrix is preserved — and the result must agree with the
    /// reference (padded, scalar) path at solve level.
    #[test]
    fn short_observations_trap_path_preserves_gram() {
        for (n, m, k, seed) in [
            (4usize, 2usize, 9usize, 40u64),
            (6, 3, 14, 41),
            (3, 1, 5, 42),
        ] {
            let model = generators::short_observations(&mut rng(seed), n, k, m);
            let steps = whiten_model(&model).unwrap();
            let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
            let sys = kalman_model::assemble_dense(&model).unwrap();
            let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
            let rd = r.to_dense_original_order(&dims);
            let gram_r = matmul_tn(&rd, &rd);
            let gram_a = matmul_tn(&sys.a, &sys.a);
            assert!(
                gram_r.approx_eq(&gram_a, 1e-9 * (1.0 + gram_a.max_abs())),
                "gram mismatch n={n} m={m} k={k}: {}",
                gram_r.max_abs_diff(&gram_a)
            );
        }
    }

    /// The structured trapezoidal path end-to-end against the independent
    /// dense oracle (under `KALMAN_REF_KERNELS=1` the same test pins the
    /// padded reference path instead — the CI matrix runs both).
    #[test]
    fn short_observations_match_dense_oracle() {
        let model = generators::short_observations(&mut rng(43), 5, 16, 2);
        let dense = kalman_model::solve_dense(&model).unwrap();
        let opts = crate::OddEvenOptions {
            covariances: true,
            ..Default::default()
        };
        let smoothed = crate::odd_even_smooth(&model, opts).unwrap();
        assert!(
            smoothed.max_mean_diff(&dense) < 1e-8,
            "trap-path means diverged from dense oracle: {}",
            smoothed.max_mean_diff(&dense)
        );
        assert!(smoothed.max_cov_diff(&dense).unwrap() < 1e-8);
    }

    #[test]
    fn sparse_observations_and_prior_work() {
        let mut model = generators::sparse_observations(&mut rng(14), 2, 10, 3);
        model.set_prior(vec![0.0; 2], kalman_model::CovarianceSpec::Identity(2));
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let sys = kalman_model::assemble_dense(&model).unwrap();
        let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
        let rd = r.to_dense_original_order(&dims);
        assert!(matmul_tn(&rd, &rd).approx_eq(&matmul_tn(&sys.a, &sys.a), 1e-9));
    }

    #[test]
    fn dimension_changes_preserve_gram() {
        let model = generators::dimension_change(&mut rng(15), 2, 11);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let sys = kalman_model::assemble_dense(&model).unwrap();
        let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
        let rd = r.to_dense_original_order(&dims);
        let gram_r = matmul_tn(&rd, &rd);
        let gram_a = matmul_tn(&sys.a, &sys.a);
        assert!(gram_r.approx_eq(&gram_a, 1e-8 * (1.0 + gram_a.max_abs())));
    }
}

//! The Odd-Even parallel-in-time Kalman smoother — the paper's contribution.
//!
//! The smoother computes the generalized least-squares estimate
//! `û = argmin ‖U(Au − b)‖₂` via a specialized sparse QR factorization of a
//! *column permutation* of `U·A` (§3 of the paper).  A recursive odd-even
//! permutation of block columns — inspired by block cyclic reduction —
//! exposes parallelism: at every level all even block columns are eliminated
//! concurrently by small Householder QR factorizations, the odd columns form
//! the next level's chain, and the recursion bottoms out at a single column.
//!
//! * Work: `Θ(k n³)` — same asymptotic work as the sequential
//!   Paige–Saunders algorithm, with a small constant-factor overhead
//!   (measured at 1.8–2.5× in the paper and in this reproduction's
//!   benchmarks).
//! * Critical path: `Θ(log k · n log n)` versus `Θ(k · n log n)`
//!   sequentially.
//!
//! Covariances `cov(û_i)` are the diagonal blocks of `(RᵀR)⁻¹`, computed by
//! a parallel adaptation of the SelInv selected-inversion algorithm
//! specialized to the odd-even structure (the paper's Algorithm 2, §4);
//! this phase is separable and can be skipped (the "NC" variant).
//!
//! The engine is built as a plan/execute split in the style of sparse
//! direct solvers: a symbolic [`PlanSchedule`] captures everything that
//! depends only on the problem *shape* (the odd-even level schedule, block
//! dimensions, chain neighbours), and a [`SmoothPlan`] executes the numeric
//! pipeline against it through plan-owned scratch — build once, execute
//! many, bitwise identical to the one-shot entry points below (which are
//! thin wrappers building a transient plan).  See DESIGN.md §"Plan/execute
//! lifecycle".
//!
//! # Example
//!
//! ```
//! use kalman_odd_even::{odd_even_smooth, OddEvenOptions};
//! use kalman_model::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let model = generators::paper_benchmark(&mut rng, 4, 100, false);
//! let smoothed = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
//! assert_eq!(smoothed.len(), 101);
//! assert!(smoothed.covariances.is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod factor;
mod plan;
mod rfactor;
mod scan;
mod selinv;
mod smoother;

pub use backend::{
    backend_dispatch_counts, record_backend_dispatch, record_backend_fallback,
    register_backend_dispatch_gauges, resolve_backend, scan_supports_dims, BackendKind,
    BackendPolicy, PhaseProfile, SmootherBackend, AUTO_MIN_SAMPLES, AUTO_RTS_MAX_WINDOW,
};
pub use factor::{factor_odd_even, factor_odd_even_into, factor_odd_even_owned, FactorScratch};
pub use plan::{signature_of_dims, PlanCache, PlanSchedule, SmoothPlan};
pub use rfactor::{OddEvenR, RRow, SolveScratch};
pub use scan::{ScanLevel, ScanSchedule};
pub use selinv::{selinv_diag, selinv_diag_into, selinv_diag_into_with, SelinvScratch};
pub use smoother::{odd_even_smooth, OddEvenOptions};

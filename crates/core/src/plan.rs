//! Plan/execute split for the odd-even smoother.
//!
//! The odd-even elimination's *structure* — which columns are eliminated at
//! which level, against which chain neighbours, with which block dimensions
//! — is determined entirely by the problem shape (step count and per-step
//! state dimensions), not by the numeric data.  Classic sparse direct
//! solvers exploit exactly this with a symbolic/numeric split, and the
//! serving workload here (a streaming smoother re-factoring a same-shaped
//! window every flush, a pool doing so for thousands of streams) repeats
//! one shape indefinitely.  This module separates the two phases:
//!
//! * [`PlanSchedule`] — the immutable symbolic plan: the odd-even level
//!   schedule (per level: even columns with their dimensions and chain
//!   neighbours, surviving odd columns), the elimination-order level lists,
//!   and a shape signature.  Build once per shape; share freely behind an
//!   `Arc` (a [`PlanCache`] does this for a pool of streams).
//! * [`SmoothPlan`] — one consumer's executable plan: a shared schedule
//!   plus the plan-owned numeric state (factor/solve/SelInv scratch, the
//!   reusable `R` factor, whitening buffers) and the execution-policy
//!   decisions.  `execute`/`solve_into`/`selinv_into` run the numeric
//!   pipeline against borrowed step data; in steady state (same schedule
//!   call after call) they perform **zero heap allocations** — containers
//!   retain capacity here and every matrix cycles through the
//!   `kalman-dense` workspace.  For batch-scale shapes whose working set
//!   exceeds the workspace's per-class retention budgets, the plan
//!   additionally holds an arena scope ([`kalman_dense::arena_scope`])
//!   across each numeric phase, so even `k = 20 000` recursions keep their
//!   working set pooled (see [`SmoothPlan::set_arena`]).
//!
//! The one-shot entry points ([`crate::odd_even_smooth`],
//! [`crate::factor_odd_even`]) are thin wrappers that build a transient
//! plan and execute it once.

use crate::factor::{execute_factor, FactorScratch};
use crate::rfactor::{OddEvenR, SolveScratch};
use crate::smoother::OddEvenOptions;
use crate::SelinvScratch;
use kalman_dense::{KernelKind, Matrix};
use kalman_model::{KalmanError, LinearModel, Result, Smoothed, WhitenedStep};
use kalman_par::map_collect_into;
use std::sync::Arc;

/// One even column scheduled for elimination: its original state index,
/// dimension, and the chain neighbours it couples to at this level.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EvenSlot {
    pub orig: usize,
    pub dim: usize,
    /// Chain neighbour `t−1` (absent for the first chain column).
    pub left_orig: Option<usize>,
    /// Dimension of the left neighbour (0 when there is none).
    pub left_dim: usize,
    /// Chain neighbour `t+1` (absent for the last chain column).
    pub right_orig: Option<usize>,
}

/// One odd column surviving into the next level.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OddSlot {
    pub orig: usize,
    pub dim: usize,
}

/// The symbolic plan of one elimination level.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlanLevel {
    pub evens: Vec<EvenSlot>,
    pub odds: Vec<OddSlot>,
}

/// A shape signature: an FNV-1a hash of the per-step state dimensions.
/// Equal shapes hash equal; a [`PlanCache`] uses it as the lookup key
/// (always confirming with a full dimension comparison).
pub fn signature_of_dims<I: IntoIterator<Item = usize>>(dims: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut len: u64 = 0;
    for d in dims {
        let mut v = d as u64;
        for _ in 0..8 {
            h ^= v & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            v >>= 8;
        }
        len += 1;
    }
    h ^= len;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

/// The symbolic phase of the odd-even factorization: everything about the
/// elimination that depends only on the problem *shape*.
///
/// A schedule is immutable once built and carries no numeric state, so one
/// schedule can back any number of concurrently executing [`SmoothPlan`]s
/// (`Arc`-shared across a `SmootherPool`'s streams).
#[derive(Debug, Clone, Default)]
pub struct PlanSchedule {
    dims: Vec<usize>,
    signature: u64,
    /// Plan-time kernel selection: the monomorphized small-`n` kernel family
    /// when every block dimension is one supported size, `Auto` otherwise.
    kernels: KernelKind,
    /// One entry per elimination level (chain length > 1).
    levels: Vec<PlanLevel>,
    /// `(orig, dim)` of the base-case root column.
    root: (usize, usize),
    /// The elimination-order level lists [`OddEvenR::levels`] will hold
    /// (including the final root level).
    elim_levels: Vec<Vec<usize>>,
    /// Scratch for `rebuild`'s chain simulation (kept so rebuilding a
    /// same-length schedule allocates nothing).
    chain: Vec<(usize, usize)>,
    next_chain: Vec<(usize, usize)>,
}

impl PlanSchedule {
    /// Builds the schedule for a problem with the given per-step state
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape (a model always has at least one state).
    pub fn build(dims: &[usize]) -> PlanSchedule {
        let mut s = PlanSchedule::default();
        s.rebuild(dims);
        s
    }

    /// Re-derives the schedule for a new shape in place, reusing every
    /// container's capacity (how a streaming smoother's plan follows a
    /// window whose shape changes between flushes without churn).
    ///
    /// # Panics
    ///
    /// Panics on an empty shape.
    pub fn rebuild(&mut self, dims: &[usize]) {
        self.rebuild_from(dims.iter().copied());
    }

    /// Re-plans for the shape of `steps` if it changed; returns `true` when
    /// a rebuild happened.
    pub fn ensure_steps(&mut self, steps: &[WhitenedStep]) -> bool {
        if self.matches_steps(steps) && !self.dims.is_empty() {
            return false;
        }
        self.rebuild_from(steps.iter().map(|s| s.state_dim));
        true
    }

    // lint: allow(alloc, "cold region: re-planning runs once per window-shape change and is amortized across every subsequent flush of that shape")
    fn rebuild_from<I: Iterator<Item = usize>>(&mut self, dims: I) {
        self.dims.clear();
        self.dims.extend(dims);
        assert!(
            !self.dims.is_empty(),
            "a smoothing plan needs at least one state"
        );
        self.signature = signature_of_dims(self.dims.iter().copied());
        self.kernels = KernelKind::for_dims(self.dims.iter().copied());

        // Simulate the odd-even chain: each level eliminates the even
        // columns and keeps the odd ones, halving the chain.
        self.chain.clear();
        self.chain.extend(self.dims.iter().copied().enumerate());
        let mut used = 0usize;
        while self.chain.len() > 1 {
            if self.levels.len() == used {
                self.levels.push(PlanLevel::default());
            }
            let level = &mut self.levels[used];
            level.evens.clear();
            level.odds.clear();
            let kk = self.chain.len();
            for (t, &(orig, dim)) in self.chain.iter().enumerate() {
                if t % 2 == 0 {
                    let left = t.checked_sub(1).map(|p| self.chain[p]);
                    level.evens.push(EvenSlot {
                        orig,
                        dim,
                        left_orig: left.map(|(o, _)| o),
                        left_dim: left.map(|(_, d)| d).unwrap_or(0),
                        right_orig: (t + 1 < kk).then(|| self.chain[t + 1].0),
                    });
                } else {
                    level.odds.push(OddSlot { orig, dim });
                }
            }
            self.next_chain.clear();
            self.next_chain
                .extend(level.odds.iter().map(|o| (o.orig, o.dim)));
            std::mem::swap(&mut self.chain, &mut self.next_chain);
            used += 1;
        }
        self.levels.truncate(used);
        self.root = self.chain[0];

        // Elimination-order level lists: each level's evens, then the root.
        let n_lists = self.levels.len() + 1;
        self.elim_levels.truncate(n_lists);
        while self.elim_levels.len() < n_lists {
            self.elim_levels.push(Vec::new());
        }
        for (list, level) in self.elim_levels.iter_mut().zip(&self.levels) {
            list.clear();
            list.extend(level.evens.iter().map(|e| e.orig));
        }
        let root_list = self.elim_levels.last_mut().expect("root level exists");
        root_list.clear();
        root_list.push(self.root.0);
    }

    /// The per-step state dimensions this schedule plans for.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The shape signature ([`signature_of_dims`] of [`PlanSchedule::dims`]).
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// The plan-time kernel selection for this shape: a const-generic
    /// monomorphized kernel family ([`KernelKind::Mono4`]/`Mono8`/`Mono16`)
    /// when every block is that dimension, [`KernelKind::Auto`] (runtime
    /// dispatch) otherwise.  Executors resolve it once per numeric phase via
    /// [`KernelKind::active`], which demotes to `Auto` in reference mode.
    pub fn kernels(&self) -> KernelKind {
        self.kernels
    }

    /// Number of states (block columns) in the planned problem.
    pub fn num_states(&self) -> usize {
        self.dims.len()
    }

    /// Number of elimination levels, including the base-case root level.
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// `true` when `steps` has exactly the planned shape.
    pub fn matches_steps(&self, steps: &[WhitenedStep]) -> bool {
        steps.len() == self.dims.len()
            && steps.iter().zip(&self.dims).all(|(s, &d)| s.state_dim == d)
    }

    pub(crate) fn plan_levels(&self) -> &[PlanLevel] {
        &self.levels
    }

    pub(crate) fn root(&self) -> (usize, usize) {
        self.root
    }

    pub(crate) fn elim_levels(&self) -> &[Vec<usize>] {
        &self.elim_levels
    }
}

/// An executable smoothing plan: a shared [`PlanSchedule`] plus this
/// consumer's numeric state (scratch arenas, the reusable `R` factor,
/// whitening buffers) and execution-policy decisions.
///
/// Typical lifecycle:
///
/// ```
/// use kalman_odd_even::{OddEvenOptions, SmoothPlan};
/// use kalman_model::generators;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let model = generators::paper_benchmark(&mut rng, 3, 40, true);
/// let mut plan = SmoothPlan::for_model(&model, OddEvenOptions::default()).unwrap();
/// let first = plan.smooth_model(&model).unwrap();   // plan built above, executed here
/// let again = plan.smooth_model(&model).unwrap();   // pure re-execution: no re-planning
/// assert_eq!(first.max_mean_diff(&again), 0.0);
/// ```
///
/// Executing through a reused plan is **bitwise identical** to a fresh
/// one-shot call: the schedule only pre-computes structure the numeric
/// phase would otherwise re-derive, and all scratch is overwritten before
/// use.
#[derive(Debug)]
pub struct SmoothPlan {
    schedule: Arc<PlanSchedule>,
    options: OddEvenOptions,
    factor: FactorScratch,
    r: OddEvenR,
    solve: SolveScratch,
    selinv: SelinvScratch,
    /// Whitening buffers for the model-level entry points.
    steps: Vec<WhitenedStep>,
    whiten_tmp: Vec<Option<Result<WhitenedStep>>>,
    /// `r` holds the factorization of the most recent `execute`.
    factored: bool,
    /// Hold a workspace [`kalman_dense::arena_scope`] across the numeric
    /// phases (see [`SmoothPlan::set_arena`]).
    arena: bool,
}

/// `true` when repeated executes of `schedule` would overflow the
/// thread-local workspace budgets into the allocator — the plan's steady
/// state holds roughly one diagonal block, up to two off-diagonal blocks,
/// and one right-hand-side segment per state in its `R` factor alone, so
/// once ~3·k buffers of the diagonal's size class exceed that class's
/// budget, only lifting the budgets (the plan-owned arena) keeps
/// re-executes allocation-free.
fn arena_pays_off(schedule: &PlanSchedule) -> bool {
    let k = schedule.num_states();
    let n_max = schedule.dims().iter().copied().max().unwrap_or(0);
    3 * k > kalman_dense::budget_for_len((n_max * n_max).max(1)).max(1)
}

impl SmoothPlan {
    /// A plan executing `schedule` under `options`.
    pub fn new(schedule: Arc<PlanSchedule>, options: OddEvenOptions) -> SmoothPlan {
        let arena = arena_pays_off(&schedule);
        SmoothPlan {
            schedule,
            options,
            factor: FactorScratch::default(),
            r: OddEvenR::default(),
            solve: SolveScratch::default(),
            selinv: SelinvScratch::default(),
            steps: Vec::new(),
            whiten_tmp: Vec::new(),
            factored: false,
            arena,
        }
    }

    /// Builds a fresh (unshared) schedule for `dims` and wraps it in a plan.
    pub fn for_dims(dims: &[usize], options: OddEvenOptions) -> SmoothPlan {
        SmoothPlan::new(Arc::new(PlanSchedule::build(dims)), options)
    }

    /// A plan for the shape of an already-whitened step array.
    pub fn for_steps(steps: &[WhitenedStep], options: OddEvenOptions) -> SmoothPlan {
        let dims: Vec<usize> = steps.iter().map(|s| s.state_dim).collect();
        SmoothPlan::for_dims(&dims, options)
    }

    /// A plan for a model's shape (validates the model first).
    ///
    /// # Errors
    ///
    /// Model validation errors.
    pub fn for_model(model: &LinearModel, options: OddEvenOptions) -> Result<SmoothPlan> {
        model.validate()?;
        let dims: Vec<usize> = model.steps.iter().map(|s| s.state_dim).collect();
        Ok(SmoothPlan::for_dims(&dims, options))
    }

    /// The shared schedule backing this plan.
    pub fn schedule(&self) -> &Arc<PlanSchedule> {
        &self.schedule
    }

    /// Shorthand for `self.schedule().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.schedule.dims()
    }

    /// Shorthand for `self.schedule().signature()`.
    pub fn signature(&self) -> u64 {
        self.schedule.signature()
    }

    /// The options the plan executes under.
    pub fn options(&self) -> &OddEvenOptions {
        &self.options
    }

    /// Swaps in an externally shared schedule (a [`PlanCache`] hit) and
    /// invalidates any held factorization.
    pub fn set_schedule(&mut self, schedule: Arc<PlanSchedule>) {
        self.schedule = schedule;
        self.factored = false;
        self.arena = arena_pays_off(&self.schedule);
    }

    /// Re-plans for `dims` if the shape changed; returns `true` when a
    /// rebuild happened.  An unshared schedule is rebuilt in place (no
    /// allocation churn); a shared one is replaced by a fresh `Arc` so
    /// sibling plans keep theirs.
    pub fn ensure_shape(&mut self, dims: &[usize]) -> bool {
        if self.schedule.dims() == dims {
            return false;
        }
        match Arc::get_mut(&mut self.schedule) {
            Some(s) => s.rebuild(dims),
            None => self.schedule = Arc::new(PlanSchedule::build(dims)),
        }
        kalman_obs::event(
            "oe.plan_rebuild",
            signature_of_dims(dims.iter().copied()),
            dims.len() as u64,
        );
        self.factored = false;
        self.arena = arena_pays_off(&self.schedule);
        true
    }

    /// Overrides the plan-owned arena decision.  By default the plan holds
    /// a workspace [`kalman_dense::arena_scope`] across its numeric phases
    /// exactly when its steady-state working set exceeds the thread-local
    /// workspace budgets (batch-scale shapes, `k ≳ 10³` at small `n`) —
    /// that retention is what makes *repeated* executes allocation-free.
    /// Callers that will execute a batch-scale plan only once (the one-shot
    /// [`crate::odd_even_smooth`] wrapper) turn it off: retention they never
    /// harvest costs memory-locality on later, unrelated work.
    pub fn set_arena(&mut self, on: bool) {
        self.arena = on;
    }

    /// `true` when the plan holds the workspace arena during executes.
    pub fn arena(&self) -> bool {
        self.arena
    }

    fn arena_guard(&self) -> Option<kalman_dense::ArenaScope> {
        self.arena.then(kalman_dense::arena_scope)
    }

    /// Numeric factorization: runs the odd-even elimination for the plan's
    /// schedule over `steps` (drained; capacity retained for the caller to
    /// refill).  The resulting factor is held by the plan ([`SmoothPlan::factor`])
    /// for the solve/SelInv phases.
    ///
    /// # Errors
    ///
    /// [`KalmanError::InvalidModel`] when `steps` does not have the planned
    /// shape (callers re-plan via [`SmoothPlan::ensure_shape`]).
    pub fn execute(&mut self, steps: &mut Vec<WhitenedStep>) -> Result<()> {
        if !self.schedule.matches_steps(steps) {
            // lint: allow(alloc, "error path: allocates only when the caller handed an unplanned shape")
            return Err(KalmanError::InvalidModel(format!(
                "plan shape mismatch: plan covers {} states but was given {}",
                self.schedule.num_states(),
                steps.len()
            )));
        }
        let _arena = self.arena_guard();
        let _span = kalman_obs::span!("oe.factor");
        self.factored = false;
        execute_factor(
            &self.schedule,
            steps,
            self.options.policy,
            self.options.compress_odd,
            &mut self.factor,
            &mut self.r,
        )?;
        self.factored = true;
        Ok(())
    }

    /// The `R` factor produced by the most recent [`SmoothPlan::execute`].
    pub fn factor(&self) -> Option<&OddEvenR> {
        self.factored.then_some(&self.r)
    }

    fn require_factor(&self) -> Result<&OddEvenR> {
        if self.factored {
            Ok(&self.r)
        } else {
            Err(KalmanError::InvalidModel(
                "plan has no factorization: call execute() first".into(),
            ))
        }
    }

    /// Back substitution against the held factor, into reused storage.
    ///
    /// # Errors
    ///
    /// No prior [`SmoothPlan::execute`], or
    /// [`KalmanError::RankDeficient`] naming the first singular state.
    pub fn solve_into(&mut self, means: &mut Vec<Vec<f64>>) -> Result<()> {
        self.require_factor()?;
        let _arena = self.arena_guard();
        let _span = kalman_obs::span!("oe.solve");
        self.r
            .solve_into(self.options.policy, means, &mut self.solve)
    }

    /// SelInv covariance phase against the held factor, into reused storage.
    ///
    /// # Errors
    ///
    /// No prior [`SmoothPlan::execute`], or
    /// [`KalmanError::RankDeficient`] naming the first singular state.
    pub fn selinv_into(&mut self, covs: &mut Vec<Matrix>) -> Result<()> {
        self.require_factor()?;
        let _arena = self.arena_guard();
        let _span = kalman_obs::span!("oe.selinv");
        // The schedule's plan-time kernel selection binds SelInv's GEMM
        // entry once for the whole phase.
        crate::selinv::selinv_diag_into_with(
            self.schedule.kernels(),
            &self.r,
            self.options.policy,
            covs,
            &mut self.selinv,
        )
    }

    /// Full pipeline over pre-whitened steps: execute → solve →
    /// (optionally, per [`OddEvenOptions::covariances`]) SelInv, writing the
    /// estimates into `out` (reused storage; zero allocations in steady
    /// state).
    ///
    /// # Errors
    ///
    /// As [`SmoothPlan::execute`] / [`SmoothPlan::solve_into`] /
    /// [`SmoothPlan::selinv_into`].
    pub fn smooth_steps_into(
        &mut self,
        steps: &mut Vec<WhitenedStep>,
        out: &mut Smoothed,
    ) -> Result<()> {
        self.execute(steps)?;
        self.solve_into(&mut out.means)?;
        if self.options.covariances {
            let covs = out.covariances.get_or_insert_with(Vec::new);
            self.selinv_into(covs)?;
        } else {
            out.covariances = None;
        }
        Ok(())
    }

    /// Whitens `model` (in parallel, through plan-owned buffers) and runs
    /// [`SmoothPlan::smooth_steps_into`].  The model must have the planned
    /// shape; its numeric content is free to change between calls — this is
    /// the "plan once, execute many" entry point for repeated batch solves.
    ///
    /// # Errors
    ///
    /// Model validation/whitening errors, plus everything
    /// [`SmoothPlan::smooth_steps_into`] can raise.
    pub fn smooth_model_into(&mut self, model: &LinearModel, out: &mut Smoothed) -> Result<()> {
        model.validate()?;
        let _arena = self.arena_guard();
        let k1 = model.num_states();
        {
            let _span = kalman_obs::span!("oe.whiten");
            map_collect_into(
                self.options.policy.for_len(k1),
                k1,
                &mut self.whiten_tmp,
                |i| WhitenedStep::from_model_step(model, i),
            );
            self.steps.clear();
            for slot in self.whiten_tmp.iter_mut() {
                self.steps.push(slot.take().expect("filled above")?);
            }
        }
        let mut steps = std::mem::take(&mut self.steps);
        let result = self.smooth_steps_into(&mut steps, out);
        self.steps = steps;
        result
    }

    /// Allocating convenience form of [`SmoothPlan::smooth_model_into`].
    ///
    /// # Errors
    ///
    /// As [`SmoothPlan::smooth_model_into`].
    pub fn smooth_model(&mut self, model: &LinearModel) -> Result<Smoothed> {
        let mut out = Smoothed {
            means: Vec::new(),
            covariances: None,
        };
        self.smooth_model_into(model, &mut out)?;
        Ok(out)
    }
}

impl crate::SmootherBackend for SmoothPlan {
    fn kind(&self) -> crate::BackendKind {
        crate::BackendKind::OddEven
    }

    fn dims(&self) -> &[usize] {
        SmoothPlan::dims(self)
    }

    fn signature(&self) -> u64 {
        SmoothPlan::signature(self)
    }

    fn ensure_shape(&mut self, dims: &[usize]) -> bool {
        SmoothPlan::ensure_shape(self, dims)
    }

    fn execute(&mut self, steps: &mut Vec<WhitenedStep>) -> Result<()> {
        SmoothPlan::execute(self, steps)
    }

    fn solve_into(&mut self, means: &mut Vec<Vec<f64>>) -> Result<()> {
        SmoothPlan::solve_into(self, means)
    }

    fn selinv_into(&mut self, covs: &mut Vec<Matrix>) -> Result<()> {
        SmoothPlan::selinv_into(self, covs)
    }
}

/// A small cache of symbolic schedules keyed on the shape signature — how a
/// `SmootherPool` shares one symbolic plan across every stream with the
/// same window shape.  Odd-even [`PlanSchedule`]s and scan
/// [`crate::ScanSchedule`]s are cached independently (the two backends'
/// symbolic structures differ), so entries are effectively keyed by
/// `(backend, shape)`.  Lookup is a linear scan (serving pools see a
/// handful of distinct shapes); hits clone an `Arc` and allocate nothing.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: Vec<(u64, Arc<PlanSchedule>)>,
    scan_entries: Vec<(u64, Arc<crate::ScanSchedule>)>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The odd-even schedule for `dims`, building and caching it on first
    /// sight.
    pub fn get_or_build(&mut self, dims: &[usize]) -> Arc<PlanSchedule> {
        let sig = signature_of_dims(dims.iter().copied());
        for (s, sched) in &self.entries {
            if *s == sig && sched.dims() == dims {
                self.hits += 1;
                return Arc::clone(sched);
            }
        }
        self.misses += 1;
        let sched = Arc::new(PlanSchedule::build(dims));
        kalman_obs::event("oe.plan_build", sig, dims.len() as u64);
        self.entries.push((sig, Arc::clone(&sched))); // lint: allow(alloc, "cache-miss path: one entry per distinct window shape, never in steady state")
        sched
    }

    /// The scan schedule for `dims`, building and caching it on first
    /// sight.  Cached separately from the odd-even entries — one window
    /// shape served on both backends occupies two cache slots.
    ///
    /// # Panics
    ///
    /// Panics on shapes outside the scan's structural domain
    /// ([`crate::scan_supports_dims`]); dispatchers resolve those to the
    /// odd-even backend before reaching the cache.
    pub fn get_or_build_scan(&mut self, dims: &[usize]) -> Arc<crate::ScanSchedule> {
        let sig = signature_of_dims(dims.iter().copied());
        for (s, sched) in &self.scan_entries {
            if *s == sig && sched.dims() == dims {
                self.hits += 1;
                return Arc::clone(sched);
            }
        }
        self.misses += 1;
        let sched = crate::ScanSchedule::build_shared(dims);
        kalman_obs::event("scan.plan_build", sig, dims.len() as u64);
        self.scan_entries.push((sig, Arc::clone(&sched))); // lint: allow(alloc, "cache-miss path: one entry per distinct window shape, never in steady state")
        sched
    }

    /// Number of distinct `(backend, shape)` entries cached.
    pub fn len(&self) -> usize {
        self.entries.len() + self.scan_entries.len()
    }

    /// `true` when no shape has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.scan_entries.is_empty()
    }

    /// `(hits, misses)` across both backends' lookups.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops every cached schedule (in-flight `Arc`s stay valid).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.scan_entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalman_model::{generators, solve_dense, whiten_model};
    use kalman_par::ExecPolicy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn schedule_matches_chain_halving() {
        let s = PlanSchedule::build(&[2; 16]);
        let sizes: Vec<usize> = s.elim_levels().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![8, 4, 2, 1, 1]);
        assert_eq!(s.elim_levels()[0], vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(s.elim_levels()[1], vec![1, 5, 9, 13]);
        assert_eq!(s.elim_levels()[4], vec![15]);
        assert_eq!(s.root(), (15, 2));
        assert_eq!(s.num_levels(), 5);
    }

    #[test]
    fn schedule_neighbours_are_chain_neighbours() {
        let dims = [3usize, 4, 3, 4, 3, 4, 3];
        let s = PlanSchedule::build(&dims);
        let l0 = &s.plan_levels()[0];
        assert_eq!(l0.evens.len(), 4);
        assert_eq!(l0.odds.len(), 3);
        let e1 = l0.evens[1]; // state 2
        assert_eq!(e1.orig, 2);
        assert_eq!(e1.dim, 3);
        assert_eq!(e1.left_orig, Some(1));
        assert_eq!(e1.left_dim, 4);
        assert_eq!(e1.right_orig, Some(3));
        // Level 1 chain is [1, 3, 5]: its evens are states 1 and 5, and
        // state 5's left neighbour in that chain is state 3.
        let l1 = &s.plan_levels()[1];
        assert_eq!(l1.evens.len(), 2);
        let e = l1.evens[1];
        assert_eq!(e.orig, 5);
        assert_eq!(e.dim, 4);
        assert_eq!(e.left_orig, Some(3));
        assert_eq!(e.left_dim, 4);
        assert_eq!(e.right_orig, None);
    }

    #[test]
    fn single_state_schedule_is_root_only() {
        let s = PlanSchedule::build(&[5]);
        assert!(s.plan_levels().is_empty());
        assert_eq!(s.root(), (0, 5));
        assert_eq!(s.elim_levels(), &[vec![0]]);
    }

    #[test]
    fn rebuild_reaches_the_same_schedule_as_fresh() {
        let mut s = PlanSchedule::build(&[2; 31]);
        s.rebuild(&[3, 4, 3, 4, 3]);
        let fresh = PlanSchedule::build(&[3, 4, 3, 4, 3]);
        assert_eq!(s.dims(), fresh.dims());
        assert_eq!(s.signature(), fresh.signature());
        assert_eq!(s.elim_levels(), fresh.elim_levels());
        assert_eq!(s.root(), fresh.root());
    }

    #[test]
    fn signatures_distinguish_shapes() {
        let a = signature_of_dims([2usize, 2, 2]);
        let b = signature_of_dims([2usize, 2]);
        let c = signature_of_dims([2usize, 3, 2]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, signature_of_dims([2usize, 2, 2]));
    }

    #[test]
    fn plan_smooth_matches_dense_oracle_and_reuses() {
        let model = generators::paper_benchmark(&mut rng(81), 3, 21, true);
        let dense = solve_dense(&model).unwrap();
        let mut plan = SmoothPlan::for_model(&model, OddEvenOptions::default()).unwrap();
        let first = plan.smooth_model(&model).unwrap();
        assert!(first.max_mean_diff(&dense) < 1e-8);
        assert!(first.max_cov_diff(&dense).unwrap() < 1e-8);
        for _ in 0..3 {
            let again = plan.smooth_model(&model).unwrap();
            assert_eq!(first.max_mean_diff(&again), 0.0);
            assert_eq!(first.max_cov_diff(&again), Some(0.0));
        }
    }

    #[test]
    fn ensure_shape_rebuilds_only_on_change() {
        let mut plan = SmoothPlan::for_dims(&[2, 2, 2], OddEvenOptions::default());
        assert!(!plan.ensure_shape(&[2, 2, 2]));
        assert!(plan.ensure_shape(&[2, 2, 2, 2]));
        assert_eq!(plan.dims(), &[2, 2, 2, 2]);
    }

    #[test]
    fn execute_rejects_mismatched_steps() {
        let model = generators::paper_benchmark(&mut rng(82), 2, 8, false);
        let mut steps = whiten_model(&model).unwrap();
        let mut plan = SmoothPlan::for_dims(&[2; 4], OddEvenOptions::default());
        assert!(matches!(
            plan.execute(&mut steps),
            Err(KalmanError::InvalidModel(_))
        ));
        assert!(plan.factor().is_none());
        assert!(plan.solve_into(&mut Vec::new()).is_err());
        // Re-planning for the right shape fixes it.
        plan.ensure_shape(&[2; 9]);
        plan.execute(&mut steps).unwrap();
        assert!(plan.factor().is_some());
    }

    #[test]
    fn plan_cache_shares_and_counts() {
        let mut cache = PlanCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_build(&[2, 2, 2]);
        let b = cache.get_or_build(&[2, 2, 2]);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get_or_build(&[2, 2]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (1, 2));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(a.dims(), &[2, 2, 2]); // in-flight Arcs stay valid
    }

    #[test]
    fn plan_cache_keys_by_backend() {
        // One window shape served on both backends occupies two entries:
        // the odd-even and scan symbolic structures are unrelated, so a
        // scan lookup must never hit an odd-even entry (or vice versa).
        let mut cache = PlanCache::new();
        let oe = cache.get_or_build(&[3, 3, 3, 3]);
        let scan = cache.get_or_build_scan(&[3, 3, 3, 3]);
        assert_eq!(cache.len(), 2, "same shape, two backends, two entries");
        assert_eq!(cache.stats(), (0, 2));
        // Re-lookups hit their own backend's entry.
        assert!(Arc::ptr_eq(&oe, &cache.get_or_build(&[3, 3, 3, 3])));
        assert!(Arc::ptr_eq(&scan, &cache.get_or_build_scan(&[3, 3, 3, 3])));
        assert_eq!(cache.stats(), (2, 2));
        assert_eq!(cache.len(), 2);
        assert_eq!(scan.dims(), oe.dims());
    }

    #[test]
    fn plan_reuse_is_bitwise_across_policies() {
        for policy in [ExecPolicy::Seq, ExecPolicy::par_with_grain(2)] {
            let model = generators::dimension_change(&mut rng(83), 3, 17);
            let opts = OddEvenOptions {
                covariances: true,
                policy,
                compress_odd: true,
            };
            let one_shot = crate::odd_even_smooth(&model, opts).unwrap();
            let mut plan = SmoothPlan::for_model(&model, opts).unwrap();
            for _ in 0..2 {
                let planned = plan.smooth_model(&model).unwrap();
                assert_eq!(one_shot.max_mean_diff(&planned), 0.0);
                assert_eq!(one_shot.max_cov_diff(&planned), Some(0.0));
            }
        }
    }
}

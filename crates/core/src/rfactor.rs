//! The sparse `R` factor produced by the odd-even QR factorization.

use kalman_dense::{tri, Matrix};
use kalman_model::{KalmanError, Result};
use kalman_par::{map_collect_into, ExecPolicy};

/// One permanent block row of `R`, belonging to the state that was
/// eliminated when the row was produced.
#[derive(Debug, Clone)]
pub struct RRow {
    /// The square upper-triangular diagonal block `R_jj`.
    pub diag: Matrix,
    /// Off-diagonal blocks `(target state, R_{j,target})`.  Targets are the
    /// chain neighbours at elimination time; they are always eliminated at
    /// deeper levels, which makes `R` upper triangular under the odd-even
    /// permutation.  At most 2 entries.
    pub off: Vec<(usize, Matrix)>,
    /// Transformed right-hand-side segment `(QᵀUb)_j` (`n_j × 1`).
    pub rhs: Matrix,
    /// Elimination level (0 = first round of even columns; the root of the
    /// recursion has the largest level).
    pub level: usize,
}

/// The complete odd-even `R` factor: one [`RRow`] per state plus the
/// level structure that drives the parallel solve and SelInv phases.
///
/// An `OddEvenR` is reusable output storage: `factor_odd_even_into`
/// overwrites the row slots and level lists in place, so a caller that
/// factors same-shaped problems repeatedly (the streaming smoother) churns
/// no containers.  `Default` is the empty factor to start from.
#[derive(Debug, Clone, Default)]
pub struct OddEvenR {
    /// Block rows indexed by original state index.
    pub rows: Vec<RRow>,
    /// `levels[l]` lists the states eliminated at level `l`, in chain order.
    pub levels: Vec<Vec<usize>>,
}

/// Reusable containers for [`OddEvenR::solve_into`] (per-level batch
/// results).  Carries no state between calls; `Clone` yields a fresh one.
#[derive(Debug, Default)]
pub struct SolveScratch {
    solved: Vec<Option<Result<Matrix>>>,
}

impl Clone for SolveScratch {
    fn clone(&self) -> Self {
        SolveScratch::default()
    }
}

impl OddEvenR {
    /// Number of states (block columns).
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// The states in elimination (permuted) order: level 0's evens first,
    /// then level 1's, …, ending with the root column.  This is the column
    /// order under which `R` is upper triangular (the order of the paper's
    /// Figure 1).
    pub fn elimination_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.num_states());
        for level in &self.levels {
            order.extend_from_slice(level);
        }
        order
    }

    /// Back substitution: solves `R Pᵀ û = QᵀUb` level by level, starting at
    /// the root (eliminated last) and moving toward level 0, with all
    /// columns inside a level solved in parallel.
    ///
    /// # Errors
    ///
    /// [`KalmanError::RankDeficient`] naming the first state whose diagonal
    /// block is singular.
    pub fn solve(&self, policy: ExecPolicy) -> Result<Vec<Vec<f64>>> {
        let mut y: Vec<Vec<f64>> = Vec::new(); // lint: allow(alloc, "allocating convenience wrapper; hot paths call solve_into — the scan-element edge is a name-graph artifact of Cholesky::solve sharing the name")
        let mut scratch = SolveScratch::default();
        self.solve_into(policy, &mut y, &mut scratch)?;
        Ok(y)
    }

    /// [`OddEvenR::solve`] into reused storage: `y` (one vector per state)
    /// and `scratch` retain their capacity across calls, so repeated solves
    /// of same-shaped systems allocate nothing.  On error `y`'s contents
    /// are unspecified.
    ///
    /// # Errors
    ///
    /// [`KalmanError::RankDeficient`] naming the first state whose diagonal
    /// block is singular.
    pub fn solve_into(
        &self,
        policy: ExecPolicy,
        y: &mut Vec<Vec<f64>>,
        scratch: &mut SolveScratch,
    ) -> Result<()> {
        y.truncate(self.num_states());
        while y.len() < self.num_states() {
            y.push(Vec::new()); // lint: allow(alloc, "grows the reused output to window length once; repeat windows reuse the slots")
        }
        for v in y.iter_mut() {
            v.clear();
        }
        for level in self.levels.iter().rev() {
            // Columns in this level only reference deeper-level solutions,
            // which are already present in `y`.  Deep levels are tiny (the
            // chain halves per level), so batches that fit in one grain run
            // sequentially — the same per-level decision the factorization
            // executor makes (bitwise identical either way).
            let level_policy = policy.for_len(level.len());
            {
                let y_ref = &*y;
                map_collect_into(level_policy, level.len(), &mut scratch.solved, |idx| {
                    let j = level[idx];
                    let row = &self.rows[j];
                    // lint: allow(alloc, "the parallel map must produce an owned per-column solution; bounded by one state's rhs (n_j x 1)")
                    let mut b = row.rhs.clone();
                    for (target, block) in &row.off {
                        let yt = &y_ref[*target];
                        debug_assert!(!yt.is_empty(), "solve order violated");
                        block.sub_mul_vec_into(yt, b.col_mut(0));
                    }
                    tri::solve_upper_in_place(&row.diag, &mut b)
                        .map_err(|_| KalmanError::RankDeficient { state: j })?;
                    Ok(b)
                });
            }
            for (idx, slot) in scratch.solved.iter_mut().enumerate() {
                let b = slot.take().expect("filled above")?;
                let yj = &mut y[level[idx]];
                yj.extend_from_slice(b.col(0));
            }
        }
        Ok(())
    }

    /// The block sparsity structure of `R` in permuted order, for
    /// regenerating the paper's Figure 1: returns `(row, col)` pairs of
    /// nonzero blocks, where indices are positions in
    /// [`OddEvenR::elimination_order`].
    pub fn structure(&self) -> Vec<(usize, usize)> {
        let order = self.elimination_order();
        let mut pos = vec![0usize; self.num_states()];
        for (p, &j) in order.iter().enumerate() {
            pos[j] = p;
        }
        let mut blocks = Vec::new();
        for (j, row) in self.rows.iter().enumerate() {
            blocks.push((pos[j], pos[j]));
            for (target, _) in &row.off {
                blocks.push((pos[j], pos[*target]));
            }
        }
        blocks.sort_unstable();
        blocks
    }

    /// Materializes `R Pᵀ`-style dense matrix in *original* column order and
    /// permuted row order (test helper; `Θ((kn)²)` memory).
    ///
    /// The rows are orthogonal-transform images of `U·A`'s rows, so
    /// `(RPᵀ)ᵀ(RPᵀ) = (UA)ᵀ(UA)` — the invariant the tests check.
    pub fn to_dense_original_order(&self, state_dims: &[usize]) -> Matrix {
        let total: usize = state_dims.iter().sum();
        let mut offsets = Vec::with_capacity(state_dims.len() + 1);
        let mut acc = 0;
        for &d in state_dims {
            offsets.push(acc);
            acc += d;
        }
        offsets.push(acc);
        let mut out = Matrix::zeros(total, total);
        let mut r0 = 0usize;
        for &j in &self.elimination_order() {
            let row = &self.rows[j];
            out.set_block(r0, offsets[j], &row.diag);
            for (target, block) in &row.off {
                out.set_block(r0, offsets[*target], block);
            }
            r0 += row.diag.rows();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OddEvenR {
        // Two states; state 0 eliminated at level 0 with coupling to state 1.
        OddEvenR {
            rows: vec![
                RRow {
                    diag: Matrix::from_rows(&[&[2.0]]),
                    off: vec![(1, Matrix::from_rows(&[&[1.0]]))],
                    rhs: Matrix::col_from_slice(&[4.0]),
                    level: 0,
                },
                RRow {
                    diag: Matrix::from_rows(&[&[4.0]]),
                    off: vec![],
                    rhs: Matrix::col_from_slice(&[8.0]),
                    level: 1,
                },
            ],
            levels: vec![vec![0], vec![1]],
        }
    }

    #[test]
    fn solve_tiny_by_hand() {
        // y1 = 8/4 = 2; y0 = (4 − 1·2)/2 = 1.
        let y = tiny().solve(ExecPolicy::Seq).unwrap();
        assert_eq!(y[1], vec![2.0]);
        assert_eq!(y[0], vec![1.0]);
        let y_par = tiny().solve(ExecPolicy::par()).unwrap();
        assert_eq!(y, y_par);
    }

    #[test]
    fn elimination_order_and_structure() {
        let r = tiny();
        assert_eq!(r.elimination_order(), vec![0, 1]);
        assert_eq!(r.structure(), vec![(0, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn singular_diag_reports_state() {
        let mut r = tiny();
        r.rows[1].diag = Matrix::from_rows(&[&[0.0]]);
        match r.solve(ExecPolicy::Seq) {
            Err(KalmanError::RankDeficient { state }) => assert_eq!(state, 1),
            other => panic!("expected rank deficiency, got {other:?}"),
        }
    }

    #[test]
    fn dense_reconstruction_layout() {
        let r = tiny();
        let d = r.to_dense_original_order(&[1, 1]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(0, 1)], 1.0);
        assert_eq!(d[(1, 1)], 4.0);
        assert_eq!(d[(1, 0)], 0.0);
    }
}

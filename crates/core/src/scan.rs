//! Symbolic schedule for the associative-scan backend.
//!
//! The scan smoother's structure — which element pairs combine at which
//! sweep level — depends only on the window length, exactly as the
//! odd-even [`crate::PlanSchedule`]'s even/odd column lists depend only on
//! the per-step dimensions.  [`ScanSchedule`] precomputes the pairings of
//! a work-efficient (Brent–Kung) fixed-tree inclusive scan: an up-sweep
//! reducing power-of-two blocks followed by a down-sweep distributing the
//! partial prefixes.  Two properties matter to the executor:
//!
//! * **Fixed association order.**  The tree's combine order is a function
//!   of the length alone — never of thread count, grain, or steal timing —
//!   so `ExecPolicy::Seq` and `ExecPolicy::par()` perform the *identical*
//!   floating-point operations and the scan backend stays bitwise
//!   deterministic across policies (unlike `kalman_par::inclusive_scan_in_place`,
//!   whose block-and-carry association varies with the grain).
//! * **Disjoint pairs per level.**  Within one level every `(src, dst)`
//!   pair touches distinct slots, so a level can combine in parallel into
//!   pre-assigned output slots and write back serially.
//!
//! The same pair lists drive the backward (suffix) sweep by mirroring
//! indices (`i ↦ len−1−i`) and flipping the combine's operand order.

use std::sync::Arc;

/// One sweep level: disjoint `(src, dst)` pairs, each combining
/// `slot[dst] = slot[src] ⊗ slot[dst]` (with `src < dst` in scan order).
#[derive(Debug, Clone, Default)]
pub struct ScanLevel {
    pairs: Vec<(u32, u32)>,
}

impl ScanLevel {
    /// The `(src, dst)` pairs combined at this level.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }
}

/// The symbolic plan of a fixed-tree associative scan over `len` slots:
/// up-sweep levels followed by down-sweep levels, in execution order.
///
/// Like [`crate::PlanSchedule`], a schedule is immutable once built,
/// carries no numeric state, and is shared behind an [`Arc`] by the plan
/// cache (`kalman-stream` keys its cache entries by `(backend, shape)`).
#[derive(Debug, Clone, Default)]
pub struct ScanSchedule {
    dims: Vec<usize>,
    signature: u64,
    levels: Vec<ScanLevel>,
}

impl ScanSchedule {
    /// Builds the schedule for a window with the given per-step state
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or mixes state dimensions — the scan
    /// elements require one uniform dimension
    /// ([`crate::scan_supports_dims`]); dispatchers resolve ineligible
    /// shapes to the odd-even backend instead of building a scan plan.
    pub fn build(dims: &[usize]) -> ScanSchedule {
        let mut schedule = ScanSchedule::default();
        schedule.rebuild(dims);
        schedule
    }

    /// Rebuilds this schedule in place for a new shape, retaining the
    /// level/pair allocations where possible.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ScanSchedule::build`].
    pub fn rebuild(&mut self, dims: &[usize]) {
        assert!(
            crate::scan_supports_dims(dims),
            "ScanSchedule requires a non-empty uniform-dimension window"
        );
        self.dims.clear();
        self.dims.extend_from_slice(dims);
        self.signature = crate::signature_of_dims(dims.iter().copied());
        let len = dims.len();

        let mut used = 0;
        // Up-sweep: stride doubles; combine (i − stride) into i for
        // i = 2·stride − 1, step 2·stride.
        let mut stride = 1usize;
        while stride < len {
            let level = self.level_slot(&mut used);
            let mut dst = 2 * stride - 1;
            while dst < len {
                level.pairs.push(((dst - stride) as u32, dst as u32)); // lint: allow(alloc, "cold region: re-planning runs once per window-shape change and is amortized across every subsequent flush of that shape")
                dst += 2 * stride;
            }
            if level.pairs.is_empty() {
                used -= 1;
            }
            stride *= 2;
        }
        // Down-sweep: stride halves; combine i into (i + stride) for
        // i = 2·stride − 1, step 2·stride.
        stride /= 2;
        while stride >= 1 {
            let level = self.level_slot(&mut used);
            let mut src = 2 * stride - 1;
            while src + stride < len {
                level.pairs.push((src as u32, (src + stride) as u32)); // lint: allow(alloc, "cold region: re-planning, as above")
                src += 2 * stride;
            }
            if level.pairs.is_empty() {
                used -= 1;
            }
            stride /= 2;
        }
        self.levels.truncate(used);
    }

    fn level_slot(&mut self, used: &mut usize) -> &mut ScanLevel {
        if self.levels.len() == *used {
            self.levels.push(ScanLevel::default()); // lint: allow(alloc, "cold region: re-planning, as above; rebuilds reuse existing level slots")
        }
        let level = &mut self.levels[*used];
        level.pairs.clear();
        *used += 1;
        level
    }

    /// Per-step state dimensions of the planned shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The uniform state dimension.
    pub fn state_dim(&self) -> usize {
        self.dims[0]
    }

    /// Shape signature ([`crate::signature_of_dims`]).
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Number of scan slots (window steps).
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// `true` for a zero-step schedule (never built; see
    /// [`ScanSchedule::build`]).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The sweep levels in execution order (up-sweep then down-sweep).
    pub fn levels(&self) -> &[ScanLevel] {
        &self.levels
    }

    /// Shared-schedule constructor used by the plan cache.
    pub fn build_shared(dims: &[usize]) -> Arc<ScanSchedule> {
        Arc::new(ScanSchedule::build(dims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: run the schedule's pairs over an array of vectors with
    /// list concatenation as the (associative, non-commutative) operation;
    /// every slot must end up holding the exact prefix in order.
    fn check_prefix(len: usize) {
        let schedule = ScanSchedule::build(&vec![1; len]);
        let mut slots: Vec<Vec<usize>> = (0..len).map(|i| vec![i]).collect();
        for level in schedule.levels() {
            // Pairs must be disjoint within a level (parallel-safety).
            let mut touched = std::collections::HashSet::new();
            for &(src, dst) in level.pairs() {
                assert!(touched.insert(src), "len={len}: src {src} reused");
                assert!(touched.insert(dst), "len={len}: dst {dst} reused");
                assert!(src < dst);
            }
            for &(src, dst) in level.pairs() {
                let mut combined = slots[src as usize].clone();
                combined.extend_from_slice(&slots[dst as usize]);
                slots[dst as usize] = combined;
            }
        }
        for (i, slot) in slots.iter().enumerate() {
            let expect: Vec<usize> = (0..=i).collect();
            assert_eq!(slot, &expect, "len={len}, slot {i}");
        }
    }

    #[test]
    fn prefix_scan_is_exact_for_all_small_lengths() {
        for len in 1..=65 {
            check_prefix(len);
        }
        check_prefix(100);
        check_prefix(128);
        check_prefix(1000);
    }

    /// The mirrored interpretation (suffix sweep) must produce exact
    /// suffixes: mirror indices and flip the operand order.
    #[test]
    fn mirrored_pairs_form_an_exact_suffix_scan() {
        for len in [1usize, 2, 3, 7, 8, 9, 31, 33, 100] {
            let schedule = ScanSchedule::build(&vec![2; len]);
            let mut slots: Vec<Vec<usize>> = (0..len).map(|i| vec![i]).collect();
            for level in schedule.levels() {
                for &(src, dst) in level.pairs() {
                    let (msrc, mdst) = (len - 1 - src as usize, len - 1 - dst as usize);
                    // earlier ⊗ later with the mirrored dst as the earlier slot.
                    let mut combined = slots[mdst].clone();
                    combined.extend_from_slice(&slots[msrc]);
                    slots[mdst] = combined;
                }
            }
            for (i, slot) in slots.iter().enumerate() {
                let expect: Vec<usize> = (i..len).collect();
                assert_eq!(slot, &expect, "len={len}, slot {i}");
            }
        }
    }

    #[test]
    fn rebuild_reuses_and_signature_tracks_shape() {
        let mut s = ScanSchedule::build(&[3; 16]);
        assert_eq!(s.state_dim(), 3);
        assert_eq!(s.len(), 16);
        assert_eq!(s.signature(), crate::signature_of_dims(vec![3; 16]));
        let sig16 = s.signature();
        s.rebuild(&[3; 9]);
        assert_eq!(s.len(), 9);
        assert_ne!(s.signature(), sig16);
        // Still a correct scan after the in-place rebuild.
        let mut slots: Vec<Vec<usize>> = (0..9).map(|i| vec![i]).collect();
        for level in s.levels() {
            for &(src, dst) in level.pairs() {
                let mut combined = slots[src as usize].clone();
                combined.extend_from_slice(&slots[dst as usize]);
                slots[dst as usize] = combined;
            }
        }
        assert_eq!(slots[8], (0..=8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "uniform")]
    fn mixed_dimensions_are_rejected() {
        ScanSchedule::build(&[2, 3]);
    }

    #[test]
    fn single_slot_schedule_has_no_levels() {
        let s = ScanSchedule::build(&[4]);
        assert!(s.levels().is_empty());
        assert!(!s.is_empty());
    }
}

//! Parallel odd-even block SelInv (the paper's Algorithm 2, §4).
//!
//! Computes the blocks of `S = (RᵀR)⁻¹` that are nonzero in `R` — in
//! particular the diagonal blocks, which are the covariances `cov(û_i)` of
//! the smoothed states.  `R` maps onto the `LDLᵀ` form SelInv expects via
//! `D_ii = R_iiᵀR_ii`, `L_ij = R_jiᵀR_jj⁻ᵀ`; in terms of `R` the recurrences
//! become
//!
//! ```text
//! S_{j,I} = −R_jj⁻¹ R_{j,I} S_{I,I}
//! S_jj    =  R_jj⁻¹R_jj⁻ᵀ − S_{j,I} (R_jj⁻¹R_{j,I})ᵀ
//! ```
//!
//! where `I` indexes the (at most two) off-diagonal blocks of block row `j`.
//! Processing runs level by level from the recursion's root back to level 0
//! — the reverse of elimination — with all columns of a level handled in
//! parallel: their `I` sets only reference deeper (already processed)
//! columns.  `|I| ≤ 2` makes each step a constant number of small
//! triangular solves and multiplications, so the arithmetic stays `Θ(kn³)`
//! and the critical path `Θ(log k · n log n)`.

use crate::rfactor::OddEvenR;
use kalman_dense::{matmul, matmul_nt, tri, Matrix};
use kalman_model::{KalmanError, Result};
use kalman_par::{map_collect, ExecPolicy};

/// The computed selected-inverse blocks for one block row.
#[derive(Debug, Clone)]
struct SRow {
    /// `S_jj` (symmetric).
    diag: Matrix,
    /// `S_{j,a}` for each off-diagonal target `a` of row `j`, in the same
    /// order as `OddEvenR::rows[j].off`.
    off: Vec<(usize, Matrix)>,
}

/// Looks up `S_{a,b}` from already-computed rows (`a != b`): stored either
/// on row `a` (as `(b, S_ab)`) or on row `b` (as `(a, S_ba)`, transposed).
fn lookup_cross(s: &[Option<SRow>], a: usize, b: usize) -> Matrix {
    if let Some(row) = &s[a] {
        for (t, m) in &row.off {
            if *t == b {
                return m.clone();
            }
        }
    }
    if let Some(row) = &s[b] {
        for (t, m) in &row.off {
            if *t == a {
                return m.transpose();
            }
        }
    }
    panic!("SelInv invariant violated: S[{a},{b}] not in the sparsity pattern");
}

/// Computes the diagonal blocks `cov(û_i) = S_ii` of `S = (RᵀR)⁻¹`.
///
/// # Errors
///
/// [`KalmanError::RankDeficient`] naming the first singular diagonal block.
pub fn selinv_diag(r: &OddEvenR, policy: ExecPolicy) -> Result<Vec<Matrix>> {
    let k1 = r.num_states();
    let mut s: Vec<Option<SRow>> = (0..k1).map(|_| None).collect();

    // Root-to-level-0: reverse elimination order.
    for level in r.levels.iter().rev() {
        let computed: Vec<Result<(usize, SRow)>> = {
            let s_ref = &s;
            map_collect(policy, level.len(), |idx| {
                let j = level[idx];
                let row = &r.rows[j];
                // X_a = R_jj⁻¹ R_{j,a} for each target a.
                let mut xs: Vec<(usize, Matrix)> = Vec::with_capacity(row.off.len());
                for (a, block) in &row.off {
                    let mut x = block.clone();
                    tri::solve_upper_in_place(&row.diag, &mut x)
                        .map_err(|_| KalmanError::RankDeficient { state: j })?;
                    xs.push((*a, x));
                }
                // S_{j,a} = −Σ_b X_b S_{b,a}.
                let mut s_off: Vec<(usize, Matrix)> = Vec::with_capacity(xs.len());
                for (a, _) in &xs {
                    let na = r.rows[*a].diag.cols();
                    let mut acc = Matrix::zeros(row.diag.cols(), na);
                    for (b, xb) in &xs {
                        let s_ba = if b == a {
                            s_ref[*b]
                                .as_ref()
                                .expect("deeper level already processed")
                                .diag
                                .clone()
                        } else {
                            lookup_cross(s_ref, *b, *a)
                        };
                        acc += &matmul(xb, &s_ba);
                    }
                    acc.scale(-1.0);
                    s_off.push((*a, acc));
                }
                // S_jj = R_jj⁻¹R_jj⁻ᵀ − Σ_a S_{j,a} X_aᵀ.
                let mut diag = tri::inv_gram_upper(&row.diag)
                    .map_err(|_| KalmanError::RankDeficient { state: j })?;
                for ((_, s_ja), (_, xa)) in s_off.iter().zip(&xs) {
                    diag -= &matmul_nt(s_ja, xa);
                }
                diag.symmetrize();
                Ok((j, SRow { diag, off: s_off }))
            })
        };
        for res in computed {
            let (j, row) = res?;
            s[j] = Some(row);
        }
    }

    Ok(s.into_iter()
        .map(|row| row.expect("all states processed").diag)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::factor_odd_even;
    use kalman_model::{generators, whiten_model};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn dense_cov_blocks(model: &kalman_model::LinearModel) -> Vec<Matrix> {
        kalman_model::solve_dense(model)
            .unwrap()
            .covariances
            .unwrap()
    }

    #[test]
    fn matches_dense_inverse_blocks_small() {
        for (k, seed) in [
            (1usize, 20u64),
            (2, 21),
            (3, 22),
            (5, 23),
            (8, 24),
            (13, 25),
        ] {
            let model = generators::paper_benchmark(&mut rng(seed), 3, k, false);
            let steps = whiten_model(&model).unwrap();
            let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
            let covs = selinv_diag(&r, ExecPolicy::Seq).unwrap();
            let expect = dense_cov_blocks(&model);
            for (i, (a, b)) in covs.iter().zip(&expect).enumerate() {
                assert!(
                    a.approx_eq(b, 1e-8 * (1.0 + b.max_abs())),
                    "cov block {i} mismatch at k={k}: {}",
                    a.max_abs_diff(b)
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let model = generators::paper_benchmark(&mut rng(30), 4, 29, true);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::par(), true).unwrap();
        let seq = selinv_diag(&r, ExecPolicy::Seq).unwrap();
        let par = selinv_diag(&r, ExecPolicy::par_with_grain(1)).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert!(a.approx_eq(b, 1e-14));
        }
    }

    #[test]
    fn works_with_dimension_changes() {
        let model = generators::dimension_change(&mut rng(31), 2, 9);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let covs = selinv_diag(&r, ExecPolicy::Seq).unwrap();
        let expect = dense_cov_blocks(&model);
        for (a, b) in covs.iter().zip(&expect) {
            assert!(a.approx_eq(b, 1e-8 * (1.0 + b.max_abs())));
        }
    }

    #[test]
    fn covariances_are_symmetric_positive() {
        let model = generators::paper_benchmark(&mut rng(32), 3, 40, false);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let covs = selinv_diag(&r, ExecPolicy::Seq).unwrap();
        for c in &covs {
            assert!(c.approx_eq(&c.transpose(), 1e-12));
            // Positive diagonal (necessary for PD).
            for (i, d) in c.diag().iter().enumerate() {
                assert!(*d > 0.0, "non-positive variance at {i}");
            }
        }
    }

    #[test]
    fn singular_r_is_reported() {
        let model = generators::paper_benchmark(&mut rng(33), 2, 5, false);
        let steps = whiten_model(&model).unwrap();
        let mut r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let root = *r.levels.last().unwrap().first().unwrap();
        r.rows[root].diag.fill(0.0);
        match selinv_diag(&r, ExecPolicy::Seq) {
            Err(KalmanError::RankDeficient { state }) => assert_eq!(state, root),
            other => panic!("expected rank deficiency, got {other:?}"),
        }
    }
}

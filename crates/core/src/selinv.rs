//! Parallel odd-even block SelInv (the paper's Algorithm 2, §4).
//!
//! Computes the blocks of `S = (RᵀR)⁻¹` that are nonzero in `R` — in
//! particular the diagonal blocks, which are the covariances `cov(û_i)` of
//! the smoothed states.  `R` maps onto the `LDLᵀ` form SelInv expects via
//! `D_ii = R_iiᵀR_ii`, `L_ij = R_jiᵀR_jj⁻ᵀ`; in terms of `R` the recurrences
//! become
//!
//! ```text
//! S_{j,I} = −R_jj⁻¹ R_{j,I} S_{I,I}
//! S_jj    =  R_jj⁻¹R_jj⁻ᵀ − S_{j,I} (R_jj⁻¹R_{j,I})ᵀ
//! ```
//!
//! where `I` indexes the (at most two) off-diagonal blocks of block row `j`.
//! Processing runs level by level from the recursion's root back to level 0
//! — the reverse of elimination — with all columns of a level handled in
//! parallel: their `I` sets only reference deeper (already processed)
//! columns.  `|I| ≤ 2` makes each step a constant number of small
//! triangular solves and multiplications, so the arithmetic stays `Θ(kn³)`
//! and the critical path `Θ(log k · n log n)`.

use crate::rfactor::OddEvenR;
use kalman_dense::{tri, KernelKind, Matrix, Trans};
use kalman_model::{KalmanError, Result};
use kalman_par::{map_collect_into, ExecPolicy};

/// The computed selected-inverse blocks for one block row.  The off blocks
/// are inline (`|I| ≤ 2` structurally), so an `SRow` owns no containers and
/// overwriting one in the reused table churns nothing but pooled matrices.
#[derive(Debug, Clone)]
struct SRow {
    /// `S_jj` (symmetric).
    diag: Matrix,
    /// `S_{j,a}` for each off-diagonal target `a` of row `j`, in the same
    /// order as `OddEvenR::rows[j].off`.
    off: [Option<(usize, Matrix)>; 2],
}

/// Reusable containers for [`selinv_diag_into`]: the selected-inverse row
/// table and per-level batch results.  Carries no state between calls;
/// `Clone` yields a fresh one.
#[derive(Debug, Default)]
pub struct SelinvScratch {
    s: Vec<Option<SRow>>,
    computed: Vec<Option<Result<SRow>>>,
}

impl Clone for SelinvScratch {
    fn clone(&self) -> Self {
        SelinvScratch::default()
    }
}

/// Looks up `S_{a,b}` from already-computed rows (`a != b`): stored either
/// on row `a` (as `(b, S_ab)`) or on row `b` (as `(a, S_ba)`, which the
/// caller consumes transposed via the returned [`Trans`] flag — no copy).
fn lookup_cross(s: &[Option<SRow>], a: usize, b: usize) -> (&Matrix, Trans) {
    if let Some(row) = &s[a] {
        for (t, m) in row.off.iter().flatten() {
            if *t == b {
                return (m, Trans::No);
            }
        }
    }
    if let Some(row) = &s[b] {
        for (t, m) in row.off.iter().flatten() {
            if *t == a {
                return (m, Trans::Yes);
            }
        }
    }
    panic!("SelInv invariant violated: S[{a},{b}] not in the sparsity pattern");
}

/// Computes the diagonal blocks `cov(û_i) = S_ii` of `S = (RᵀR)⁻¹`.
///
/// # Errors
///
/// [`KalmanError::RankDeficient`] naming the first singular diagonal block.
pub fn selinv_diag(r: &OddEvenR, policy: ExecPolicy) -> Result<Vec<Matrix>> {
    let mut out = Vec::new();
    let mut scratch = SelinvScratch::default();
    selinv_diag_into(r, policy, &mut out, &mut scratch)?;
    Ok(out)
}

/// [`selinv_diag`] into reused storage: `out` receives one covariance block
/// per state; `scratch` keeps the row table and batch buffers warm, so
/// repeated runs over same-shaped factors allocate nothing beyond pooled
/// matrices.
///
/// # Errors
///
/// [`KalmanError::RankDeficient`] naming the first singular diagonal block.
pub fn selinv_diag_into(
    r: &OddEvenR,
    policy: ExecPolicy,
    out: &mut Vec<Matrix>,
    scratch: &mut SelinvScratch,
) -> Result<()> {
    selinv_diag_into_with(KernelKind::Auto, r, policy, out, scratch)
}

/// [`selinv_diag_into`] with plan-time kernel selection: `kind` binds the
/// GEMM entry once per call (a [`kalman_dense::GemmFn`] pointer), so a
/// monomorphized plan's accumulation updates skip per-call shape dispatch.
///
/// # Errors
///
/// [`KalmanError::RankDeficient`] naming the first singular diagonal block.
pub fn selinv_diag_into_with(
    kind: KernelKind,
    r: &OddEvenR,
    policy: ExecPolicy,
    out: &mut Vec<Matrix>,
    scratch: &mut SelinvScratch,
) -> Result<()> {
    let gemm = kind.gemm();
    let k1 = r.num_states();
    let s = &mut scratch.s;
    s.clear();
    s.resize_with(k1, || None);

    // Root-to-level-0: reverse elimination order.  As in the solve phase,
    // levels that fit in one grain run sequentially (bitwise identical).
    for level in r.levels.iter().rev() {
        let level_policy = policy.for_len(level.len());
        {
            let s_ref = &*s;
            map_collect_into(level_policy, level.len(), &mut scratch.computed, |idx| {
                let j = level[idx];
                let row = &r.rows[j];
                // X_a = R_jj⁻¹ R_{j,a} for each target a (|off| ≤ 2 is a
                // structural invariant of the odd-even factorization; the
                // inline arrays below rely on it).
                debug_assert!(
                    row.off.len() <= 2,
                    "row {j} has {} off blocks",
                    row.off.len()
                );
                let mut xs: [Option<(usize, Matrix)>; 2] = [None, None];
                for (slot, (a, block)) in xs.iter_mut().zip(&row.off) {
                    // lint: allow(alloc, "owned input to the in-place triangular solve; bounded by one off-diagonal block (n_j x n_a)")
                    let mut x = block.clone();
                    tri::solve_upper_in_place(&row.diag, &mut x)
                        .map_err(|_| KalmanError::RankDeficient { state: j })?;
                    *slot = Some((*a, x));
                }
                // S_{j,a} = −Σ_b X_b S_{b,a}, accumulated in place through
                // `gemm` (no temporaries, transposed lookups read directly).
                let mut s_off: [Option<(usize, Matrix)>; 2] = [None, None];
                for (slot, (a, _)) in s_off.iter_mut().zip(xs.iter().flatten()) {
                    let na = r.rows[*a].diag.cols();
                    let mut acc = Matrix::zeros(row.diag.cols(), na);
                    for (b, xb) in xs.iter().flatten() {
                        let (s_ba, trans) = if b == a {
                            let diag = &s_ref[*b]
                                .as_ref()
                                .expect("deeper level already processed")
                                .diag;
                            (diag, Trans::No)
                        } else {
                            lookup_cross(s_ref, *b, *a)
                        };
                        gemm(-1.0, xb, Trans::No, s_ba, trans, 1.0, &mut acc);
                    }
                    *slot = Some((*a, acc));
                }
                // S_jj = R_jj⁻¹R_jj⁻ᵀ − Σ_a S_{j,a} X_aᵀ.
                let mut diag = tri::inv_gram_upper(&row.diag)
                    .map_err(|_| KalmanError::RankDeficient { state: j })?;
                for ((_, s_ja), (_, xa)) in s_off.iter().flatten().zip(xs.iter().flatten()) {
                    gemm(-1.0, s_ja, Trans::No, xa, Trans::Yes, 1.0, &mut diag);
                }
                diag.symmetrize();
                Ok(SRow { diag, off: s_off })
            });
        }
        for (idx, slot) in scratch.computed.iter_mut().enumerate() {
            let row = slot.take().expect("filled above")?;
            s[level[idx]] = Some(row);
        }
    }

    out.clear();
    for row in s.iter_mut() {
        out.push(row.take().expect("all states processed").diag); // lint: allow(alloc, "push into cleared output that retains capacity across windows; amortized, steady-state alloc-free")
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::factor_odd_even;
    use kalman_model::{generators, whiten_model};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn dense_cov_blocks(model: &kalman_model::LinearModel) -> Vec<Matrix> {
        kalman_model::solve_dense(model)
            .unwrap()
            .covariances
            .unwrap()
    }

    #[test]
    fn matches_dense_inverse_blocks_small() {
        for (k, seed) in [
            (1usize, 20u64),
            (2, 21),
            (3, 22),
            (5, 23),
            (8, 24),
            (13, 25),
        ] {
            let model = generators::paper_benchmark(&mut rng(seed), 3, k, false);
            let steps = whiten_model(&model).unwrap();
            let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
            let covs = selinv_diag(&r, ExecPolicy::Seq).unwrap();
            let expect = dense_cov_blocks(&model);
            for (i, (a, b)) in covs.iter().zip(&expect).enumerate() {
                assert!(
                    a.approx_eq(b, 1e-8 * (1.0 + b.max_abs())),
                    "cov block {i} mismatch at k={k}: {}",
                    a.max_abs_diff(b)
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let model = generators::paper_benchmark(&mut rng(30), 4, 29, true);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::par(), true).unwrap();
        let seq = selinv_diag(&r, ExecPolicy::Seq).unwrap();
        let par = selinv_diag(&r, ExecPolicy::par_with_grain(1)).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert!(a.approx_eq(b, 1e-14));
        }
    }

    #[test]
    fn works_with_dimension_changes() {
        let model = generators::dimension_change(&mut rng(31), 2, 9);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let covs = selinv_diag(&r, ExecPolicy::Seq).unwrap();
        let expect = dense_cov_blocks(&model);
        for (a, b) in covs.iter().zip(&expect) {
            assert!(a.approx_eq(b, 1e-8 * (1.0 + b.max_abs())));
        }
    }

    #[test]
    fn covariances_are_symmetric_positive() {
        let model = generators::paper_benchmark(&mut rng(32), 3, 40, false);
        let steps = whiten_model(&model).unwrap();
        let r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let covs = selinv_diag(&r, ExecPolicy::Seq).unwrap();
        for c in &covs {
            assert!(c.approx_eq(&c.transpose(), 1e-12));
            // Positive diagonal (necessary for PD).
            for (i, d) in c.diag().iter().enumerate() {
                assert!(*d > 0.0, "non-positive variance at {i}");
            }
        }
    }

    #[test]
    fn singular_r_is_reported() {
        let model = generators::paper_benchmark(&mut rng(33), 2, 5, false);
        let steps = whiten_model(&model).unwrap();
        let mut r = factor_odd_even(&steps, ExecPolicy::Seq, true).unwrap();
        let root = *r.levels.last().unwrap().first().unwrap();
        r.rows[root].diag.fill(0.0);
        match selinv_diag(&r, ExecPolicy::Seq) {
            Err(KalmanError::RankDeficient { state }) => assert_eq!(state, root),
            other => panic!("expected rank deficiency, got {other:?}"),
        }
    }
}

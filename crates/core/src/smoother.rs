//! High-level driver: whiten → factor → solve → (optionally) SelInv.

use crate::plan::SmoothPlan;
use kalman_model::{LinearModel, Result, Smoothed};
use kalman_par::ExecPolicy;

/// Options for the odd-even smoother.
#[derive(Debug, Clone, Copy)]
pub struct OddEvenOptions {
    /// Compute `cov(û_i)` in the separate SelInv phase.  `false` is the
    /// paper's "Odd-Even NC" variant (§5.4), the right choice inside
    /// Levenberg–Marquardt nonlinear smoothers.
    pub covariances: bool,
    /// Execution policy for every parallel batch (factorization levels,
    /// back substitution, SelInv).  [`ExecPolicy::Seq`] gives the compiled
    /// sequential twin the paper benchmarks as the 1-core reference.
    pub policy: ExecPolicy,
    /// Keep the odd-column compression (step 3 of each level).  Disabling
    /// it is an ablation knob: correctness is unaffected but surviving
    /// columns accumulate `Θ(n)` extra rows per level.
    pub compress_odd: bool,
}

impl Default for OddEvenOptions {
    fn default() -> Self {
        OddEvenOptions {
            covariances: true,
            policy: ExecPolicy::par(),
            compress_odd: true,
        }
    }
}

impl OddEvenOptions {
    /// The "NC" (no covariance) variant with the given policy.
    pub fn nc(policy: ExecPolicy) -> Self {
        OddEvenOptions {
            covariances: false,
            policy,
            compress_odd: true,
        }
    }

    /// Full variant with the given policy.
    pub fn with_policy(policy: ExecPolicy) -> Self {
        OddEvenOptions {
            covariances: true,
            policy,
            compress_odd: true,
        }
    }
}

/// Smooths `model` with the odd-even parallel-in-time algorithm.
///
/// Phases (all respecting `options.policy`):
///
/// 1. whiten the model into the blocks of `U·A` (parallel over steps),
/// 2. odd-even QR factorization (`Θ(log k)` parallel level batches),
/// 3. back substitution (parallel within levels, root to level 0),
/// 4. SelInv covariance phase (skipped for the NC variant).
///
/// This is the one-shot wrapper around the plan/execute split: it builds a
/// transient [`SmoothPlan`] for the model's shape and executes it once.
/// Callers that smooth the same shape repeatedly hold a plan themselves —
/// [`SmoothPlan::for_model`] then [`SmoothPlan::smooth_model_into`] — which
/// amortizes planning and makes steady-state re-solves allocation-free,
/// with bitwise-identical results.
///
/// # Errors
///
/// Model validation errors, covariance failures, and
/// [`kalman_model::KalmanError::RankDeficient`] for underdetermined data.
pub fn odd_even_smooth(model: &LinearModel, options: OddEvenOptions) -> Result<Smoothed> {
    let mut plan = SmoothPlan::for_model(model, options)?;
    // One-shot: this plan is never re-executed, so arena retention would
    // only cost later callers locality without ever being harvested.
    plan.set_arena(false);
    plan.smooth_model(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalman_model::{generators, solve_dense, CovarianceSpec, KalmanError};
    use kalman_seq::{paige_saunders_smooth, rts_smooth, SmootherOptions};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn matches_dense_oracle_across_sizes() {
        for (k, seed) in [
            (0usize, 40u64),
            (1, 41),
            (2, 42),
            (5, 43),
            (16, 44),
            (31, 45),
            (64, 46),
        ] {
            let model = generators::paper_benchmark(&mut rng(seed), 3, k, false);
            let oe = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
            let dense = solve_dense(&model).unwrap();
            assert!(
                oe.max_mean_diff(&dense) < 1e-8,
                "k={k} mean diff {}",
                oe.max_mean_diff(&dense)
            );
            assert!(
                oe.max_cov_diff(&dense).unwrap() < 1e-8,
                "k={k} cov diff {:?}",
                oe.max_cov_diff(&dense)
            );
        }
    }

    #[test]
    fn matches_paige_saunders_on_larger_problem() {
        let model = generators::paper_benchmark(&mut rng(50), 6, 200, false);
        let oe = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        let ps = paige_saunders_smooth(&model, SmootherOptions::default()).unwrap();
        assert!(
            oe.max_mean_diff(&ps) < 1e-8,
            "mean diff {}",
            oe.max_mean_diff(&ps)
        );
        assert!(oe.max_cov_diff(&ps).unwrap() < 1e-8);
    }

    #[test]
    fn matches_rts_with_prior() {
        let model = generators::paper_benchmark(&mut rng(51), 4, 75, true);
        let oe = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        let rts = rts_smooth(&model).unwrap();
        assert!(oe.max_mean_diff(&rts) < 1e-8);
        assert!(oe.max_cov_diff(&rts).unwrap() < 1e-8);
    }

    #[test]
    fn nc_variant_skips_covariances() {
        let model = generators::paper_benchmark(&mut rng(52), 3, 20, false);
        let full = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        let nc = odd_even_smooth(&model, OddEvenOptions::nc(ExecPolicy::par())).unwrap();
        assert!(nc.covariances.is_none());
        assert_eq!(full.max_mean_diff(&nc), 0.0);
    }

    #[test]
    fn seq_and_par_policies_agree_bitwise() {
        let model = generators::paper_benchmark(&mut rng(53), 4, 63, true);
        let seq = odd_even_smooth(
            &model,
            OddEvenOptions {
                covariances: true,
                policy: ExecPolicy::Seq,
                compress_odd: true,
            },
        )
        .unwrap();
        let par = odd_even_smooth(
            &model,
            OddEvenOptions {
                covariances: true,
                policy: ExecPolicy::par_with_grain(3),
                compress_odd: true,
            },
        )
        .unwrap();
        // Same arithmetic in the same order → identical results.
        assert_eq!(seq.max_mean_diff(&par), 0.0);
        assert_eq!(seq.max_cov_diff(&par), Some(0.0));
    }

    #[test]
    fn handles_no_prior_and_sparse_observations() {
        let model = generators::sparse_observations(&mut rng(54), 3, 40, 2);
        let oe = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        let dense = solve_dense(&model).unwrap();
        assert!(oe.max_mean_diff(&dense) < 1e-8);
        assert!(oe.max_cov_diff(&dense).unwrap() < 1e-7);
    }

    #[test]
    fn handles_dimension_changes() {
        let model = generators::dimension_change(&mut rng(55), 3, 21);
        let oe = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        let dense = solve_dense(&model).unwrap();
        assert!(oe.max_mean_diff(&dense) < 1e-8);
        assert!(oe.max_cov_diff(&dense).unwrap() < 1e-7);
    }

    #[test]
    fn handles_tracking_problem_with_dense_covs() {
        let p = generators::tracking_2d(&mut rng(56), 50, 0.1, 0.5, 0.25);
        let oe = odd_even_smooth(&p.model, OddEvenOptions::default()).unwrap();
        let dense = solve_dense(&p.model).unwrap();
        assert!(oe.max_mean_diff(&dense) < 1e-7);
        assert!(oe.max_cov_diff(&dense).unwrap() < 1e-7);
    }

    #[test]
    fn compression_ablation_gives_same_answer() {
        let model = generators::paper_benchmark(&mut rng(57), 3, 50, false);
        let on = odd_even_smooth(
            &model,
            OddEvenOptions {
                compress_odd: true,
                ..OddEvenOptions::default()
            },
        )
        .unwrap();
        let off = odd_even_smooth(
            &model,
            OddEvenOptions {
                compress_odd: false,
                ..OddEvenOptions::default()
            },
        )
        .unwrap();
        assert!(on.max_mean_diff(&off) < 1e-9);
        assert!(on.max_cov_diff(&off).unwrap() < 1e-9);
    }

    #[test]
    fn rank_deficiency_is_detected_not_garbage() {
        let mut model = generators::paper_benchmark(&mut rng(58), 2, 6, false);
        // Disconnect state 3 from every equation.
        model.steps[3].evolution.as_mut().unwrap().h = Some(kalman_dense::Matrix::zeros(2, 2));
        model.steps[3].observation = None;
        model.steps[4].evolution.as_mut().unwrap().f = kalman_dense::Matrix::zeros(2, 2);
        match odd_even_smooth(&model, OddEvenOptions::default()) {
            Err(KalmanError::RankDeficient { state }) => assert_eq!(state, 3),
            other => panic!("expected rank deficiency, got {other:?}"),
        }
    }

    #[test]
    fn prior_only_state0_is_determined() {
        // Prior but zero observations anywhere: chain still determined.
        let mut model = generators::sparse_observations(&mut rng(59), 2, 8, 1_000_000);
        model.steps[0].observation = None;
        model.set_prior(vec![0.5, -0.5], CovarianceSpec::Identity(2));
        let oe = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        let dense = solve_dense(&model).unwrap();
        assert!(oe.max_mean_diff(&dense) < 1e-9);
    }
}

//! Property tests for the odd-even smoother: on *randomly shaped* problems
//! (random chain lengths, dimensions, observation patterns, priors), the
//! smoother must agree with the dense least-squares oracle, and the parallel
//! execution must be bitwise-deterministic.

use kalman_model::{
    generators, solve_dense, CovarianceSpec, Evolution, LinearModel, LinearStep, Observation,
};
use kalman_odd_even::{odd_even_smooth, OddEvenOptions};
use kalman_par::ExecPolicy;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A random well-posed model: every state observed with probability
/// `obs_prob` (state 0 always, to anchor the chain when there is no prior).
fn random_model(seed: u64, n: usize, k: usize, obs_prob: f64, with_prior: bool) -> LinearModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut model = LinearModel::new();
    for i in 0..=k {
        let mut step = if i == 0 {
            LinearStep::initial(n)
        } else {
            LinearStep::evolving(Evolution {
                f: kalman_dense::random::orthonormal(&mut rng, n),
                h: None,
                c: kalman_dense::random::gaussian_vec(&mut rng, n),
                noise: CovarianceSpec::ScaledIdentity(n, 0.5),
            })
        };
        let observe =
            i == 0 || kalman_dense::random::standard_normal(&mut rng).abs() < obs_prob * 2.0;
        if observe {
            step = step.with_observation(Observation {
                g: kalman_dense::random::orthonormal(&mut rng, n),
                o: kalman_dense::random::gaussian_vec(&mut rng, n),
                noise: CovarianceSpec::Identity(n),
            });
        }
        model.push_step(step);
    }
    if with_prior {
        model.set_prior(vec![0.1; n], CovarianceSpec::ScaledIdentity(n, 2.0));
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn odd_even_matches_dense_oracle(
        seed in 0u64..10_000,
        n in 1usize..5,
        k in 0usize..40,
        with_prior: bool,
    ) {
        let model = random_model(seed, n, k, 0.7, with_prior);
        let oracle = solve_dense(&model).unwrap();
        let oe = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        prop_assert!(
            oe.max_mean_diff(&oracle) < 1e-7,
            "means diverge: {}", oe.max_mean_diff(&oracle)
        );
        prop_assert!(
            oe.max_cov_diff(&oracle).unwrap() < 1e-7,
            "covs diverge: {:?}", oe.max_cov_diff(&oracle)
        );
    }

    #[test]
    fn policies_are_bitwise_deterministic(
        seed in 0u64..10_000,
        k in 0usize..60,
        grain in 1usize..20,
    ) {
        let model = random_model(seed, 3, k, 0.8, true);
        let a = odd_even_smooth(
            &model,
            OddEvenOptions::with_policy(ExecPolicy::Seq),
        ).unwrap();
        let b = odd_even_smooth(
            &model,
            OddEvenOptions::with_policy(ExecPolicy::par_with_grain(grain)),
        ).unwrap();
        prop_assert_eq!(a.max_mean_diff(&b), 0.0);
        prop_assert_eq!(a.max_cov_diff(&b), Some(0.0));
    }

    #[test]
    fn compression_ablation_equivalent(
        seed in 0u64..10_000,
        k in 0usize..40,
    ) {
        let model = random_model(seed, 2, k, 0.6, true);
        let on = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        let off = odd_even_smooth(
            &model,
            OddEvenOptions { compress_odd: false, ..OddEvenOptions::default() },
        ).unwrap();
        prop_assert!(on.max_mean_diff(&off) < 1e-8);
        prop_assert!(on.max_cov_diff(&off).unwrap() < 1e-8);
    }

    #[test]
    fn sparse_observation_patterns(
        seed in 0u64..10_000,
        k in 1usize..30,
        every in 1usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = generators::sparse_observations(&mut rng, 2, k, every);
        let oracle = solve_dense(&model).unwrap();
        let oe = odd_even_smooth(&model, OddEvenOptions::default()).unwrap();
        prop_assert!(oe.max_mean_diff(&oracle) < 1e-7);
    }
}

use crate::gemm::matmul_nt;
use crate::tri;
use crate::{DenseError, Matrix, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive definite matrix.
///
/// Covariance matrices enter the smoothers through their *inverse factors*
/// (`WᵀW = C⁻¹`, see the paper's §2.1); [`Cholesky::inverse_factor`] computes
/// exactly that: `W = L⁻¹` is lower triangular and satisfies
/// `WᵀW = L⁻ᵀL⁻¹ = C⁻¹`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// The lower-triangular factor (upper triangle is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the SPD matrix `a` (only its lower triangle is read).
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::NotPositiveDefinite`] if a non-positive pivot
    /// appears.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self> {
        assert!(a.is_square(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if d <= 0.0 {
                return Err(DenseError::NotPositiveDefinite { index: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` for each column of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.dim()`.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        let mut x = b.clone(); // lint: allow(alloc, "pooled Matrix clone: buffers come from the thread-local workspace; the scan's steady-state flushes through here are heap-alloc-free (tests/alloc_steady_state.rs)")
                               // L is produced with strictly positive diagonal, so these cannot fail.
        tri::solve_lower_in_place(&self.l, &mut x).expect("positive diagonal");
        tri::solve_lower_transpose_in_place(&self.l, &mut x).expect("positive diagonal");
        x
    }

    /// Returns `A⁻¹` (symmetric).
    pub fn inverse(&self) -> Matrix {
        let mut inv = self.solve(&Matrix::identity(self.dim()));
        inv.symmetrize();
        inv
    }

    /// Returns the lower-triangular inverse factor `W = L⁻¹` with
    /// `WᵀW = A⁻¹`.
    pub fn inverse_factor(&self) -> Matrix {
        tri::invert_lower(&self.l).expect("positive diagonal")
    }

    /// Log-determinant of `A` (useful for likelihood evaluation).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Reconstructs `L Lᵀ` (test helper and covariance round-tripping).
pub fn llt(l: &Matrix) -> Matrix {
    matmul_nt(l, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};

    fn spd() -> Matrix {
        // AᵀA + I for a random-ish A is SPD.
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.5, -1.0], &[2.0, 0.0, 1.0]]);
        let mut g = matmul_tn(&a, &a);
        for i in 0..3 {
            g[(i, i)] += 1.0;
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd();
        let ch = Cholesky::new(&a).unwrap();
        assert!(llt(ch.l()).approx_eq(&a, 1e-12));
    }

    #[test]
    fn solve_is_correct() {
        let a = spd();
        let b = Matrix::from_fn(3, 2, |i, j| (i as f64) - (j as f64));
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&b);
        assert!(matmul(&a, &x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn inverse_is_correct() {
        let a = spd();
        let inv = Cholesky::new(&a).unwrap().inverse();
        assert!(matmul(&a, &inv).approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn inverse_factor_property() {
        let a = spd();
        let w = Cholesky::new(&a).unwrap().inverse_factor();
        // WᵀW == A⁻¹  ⇔  WᵀW A == I
        let wtw = matmul_tn(&w, &w);
        assert!(matmul(&wtw, &a).approx_eq(&Matrix::identity(3), 1e-10));
        // W is lower triangular.
        assert_eq!(w[(0, 1)], 0.0);
        assert_eq!(w[(0, 2)], 0.0);
        assert_eq!(w[(1, 2)], 0.0);
    }

    #[test]
    fn not_spd_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match Cholesky::new(&a) {
            Err(DenseError::NotPositiveDefinite { .. }) => {}
            other => panic!("expected not-SPD, got {other:?}"),
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - (24.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn identity_factorizes_to_identity() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        assert!(ch.l().approx_eq(&Matrix::identity(4), 0.0));
        assert!(ch.inverse_factor().approx_eq(&Matrix::identity(4), 0.0));
    }
}

use std::fmt;

/// Errors produced by dense factorizations and solves.
///
/// Dimension mismatches are programmer errors and panic instead; these
/// variants report *data-dependent* failures that callers must handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenseError {
    /// A pivot (or triangular diagonal entry) at the given index was exactly
    /// zero, or small enough that the factorization cannot continue.
    Singular {
        /// Zero-based index of the offending pivot/diagonal entry.
        index: usize,
    },
    /// A matrix that was required to be symmetric positive definite was not;
    /// the leading minor of the given order is not positive.
    NotPositiveDefinite {
        /// Zero-based index of the failing diagonal entry.
        index: usize,
    },
    /// A least-squares coefficient matrix did not have full column rank.
    RankDeficient {
        /// Zero-based index of the column where rank deficiency was detected.
        column: usize,
    },
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::Singular { index } => {
                write!(f, "matrix is singular (zero pivot at index {index})")
            }
            DenseError::NotPositiveDefinite { index } => {
                write!(
                    f,
                    "matrix is not positive definite (failure at diagonal index {index})"
                )
            }
            DenseError::RankDeficient { column } => {
                write!(f, "matrix is rank deficient (detected at column {column})")
            }
        }
    }
}

impl std::error::Error for DenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DenseError::Singular { index: 3 }.to_string().contains("3"));
        assert!(DenseError::NotPositiveDefinite { index: 1 }
            .to_string()
            .contains("positive definite"));
        assert!(DenseError::RankDeficient { column: 2 }
            .to_string()
            .contains("rank"));
    }
}

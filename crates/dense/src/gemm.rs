//! General matrix multiply: a cache-blocked, register-tiled microkernel
//! path plus the original loop-nest kernel, retained as `gemm_ref` — the
//! reference oracle the property tests compare against.  The register tile
//! itself dispatches once more: an explicit-width AVX2/FMA SIMD microtile
//! ([`crate::simd`]) when active, the original scalar accumulators
//! otherwise, and const-generic monomorphized whole-GEMM kernels for
//! `n ∈ {4, 8, 16}` bound at plan time through [`KernelKind::gemm`].

use crate::simd::{self, KernelKind};
use crate::{workspace, Matrix};

/// Transpose option for [`gemm`] operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as-is.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    #[inline]
    fn dims(self, m: &Matrix) -> (usize, usize) {
        match self {
            Trans::No => (m.rows(), m.cols()),
            Trans::Yes => (m.cols(), m.rows()),
        }
    }

    /// Reads `op(m)[i, j]`.
    #[inline]
    fn at(self, m: &Matrix, i: usize, j: usize) -> f64 {
        match self {
            Trans::No => m[(i, j)],
            Trans::Yes => m[(j, i)],
        }
    }
}

/// Microkernel tile height (rows of `C` per register tile).
const MR: usize = 4;
/// Microkernel tile width (columns of `C` per register tile).
const NR: usize = 4;
/// Rows of `op(A)` packed per cache block.
const MC: usize = 128;
/// Inner (`k`) depth packed per cache block.
const KC: usize = 256;
/// Problems below this `m·k·n` volume skip packing and use the reference
/// loops (packing overhead dominates for tiny blocks; threshold picked from
/// the `fig4 --smoke` kernel sweep on the 1-core container).
const BLOCK_MIN_VOLUME: usize = 2048;

fn check_dims(a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, c: &Matrix) -> (usize, usize, usize) {
    let (am, ak) = ta.dims(a);
    let (bk, bn) = tb.dims(b);
    assert_eq!(ak, bk, "gemm inner dimension mismatch: {ak} vs {bk}");
    assert_eq!(c.rows(), am, "gemm output row mismatch");
    assert_eq!(c.cols(), bn, "gemm output col mismatch");
    (am, ak, bn)
}

#[inline]
fn scale_c(beta: f64, c: &mut Matrix) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
}

/// General matrix multiply: `c = alpha * op(a) * op(b) + beta * c`.
///
/// `op(x)` is `x` or `xᵀ` according to the [`Trans`] flags.  Large-enough
/// products run through a cache-blocked path: `op(A)` panels are packed
/// column-major in `MR`-row strips (with `alpha` folded in), `op(B)`
/// panels in `NR`-column strips — the packing buffers double as the
/// small-transpose staging area, so every transpose combination (including
/// the formerly strided `Tᵀ·Bᵀ` case) feeds the same unrolled
/// `MR``×``NR` register-tile microkernel with contiguous reads.  Small
/// products use [`gemm_ref`].  Both paths are deterministic: results are
/// bitwise identical run-to-run and across `ExecPolicy` choices.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemm(alpha: f64, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, beta: f64, c: &mut Matrix) {
    let (am, ak, bn) = check_dims(a, ta, b, tb, c);
    scale_c(beta, c);
    if alpha == 0.0 || am == 0 || bn == 0 || ak == 0 {
        return;
    }
    if workspace::reference_kernels() || am * ak * bn < BLOCK_MIN_VOLUME {
        simd::note_scalar();
        accumulate_ref(alpha, a, ta, b, tb, c);
    } else {
        if simd::simd_active() {
            simd::note_simd();
        } else {
            simd::note_scalar();
        }
        accumulate_blocked(alpha, a, ta, b, tb, c);
    }
}

/// Signature shared by [`gemm`] and the monomorphized entries returned by
/// [`KernelKind::gemm`] — what a plan binds once per solve.
pub type GemmFn = fn(f64, &Matrix, Trans, &Matrix, Trans, f64, &mut Matrix);

/// The monomorphized `N×N` entry behind [`KernelKind::gemm`]: runs the
/// register-resident [`simd::gemm_mono`] kernel when the operands match the
/// specialized square shape (and `op(A) = A`, the only case the smoother's
/// plan-bound call sites produce), and falls through to the general
/// [`gemm`] ladder for anything else — rectangular right-hand-side blocks
/// keep working through the same fn-pointer.
fn gemm_mono_entry<const N: usize>(
    alpha: f64,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    beta: f64,
    c: &mut Matrix,
) {
    if alpha != 0.0
        && ta == Trans::No
        && a.rows() == N
        && a.cols() == N
        && b.rows() == N
        && b.cols() == N
        && c.rows() == N
        && c.cols() == N
    {
        simd::note_mono();
        simd::gemm_mono::<N>(
            alpha,
            a.as_slice(),
            b.as_slice(),
            tb == Trans::Yes,
            beta,
            c.as_mut_slice(),
        );
        return;
    }
    gemm(alpha, a, ta, b, tb, beta, c);
}

impl KernelKind {
    /// Binds the GEMM entry for this plan-time selection: the monomorphized
    /// `N×N` kernel for `Mono4/8/16`, the runtime-dispatched [`gemm`] for
    /// `Auto`.  Resolved against the process-wide switches once, at bind
    /// time ([`KernelKind::active`]) — execution then calls one fn pointer
    /// with no further dispatch.
    pub fn gemm(self) -> GemmFn {
        match self.active() {
            KernelKind::Auto => gemm,
            KernelKind::Mono4 => gemm_mono_entry::<4>,
            KernelKind::Mono8 => gemm_mono_entry::<8>,
            KernelKind::Mono16 => gemm_mono_entry::<16>,
        }
    }
}

/// The blocked GEMM path unconditionally (packed panels + microkernel),
/// regardless of problem volume — for callers that know their sizes and
/// for property tests pinning the blocked path against [`gemm_ref`] on
/// every shape, including ones below the dispatch threshold.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemm_blocked(
    alpha: f64,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    beta: f64,
    c: &mut Matrix,
) {
    let (am, ak, bn) = check_dims(a, ta, b, tb, c);
    scale_c(beta, c);
    if alpha == 0.0 || am == 0 || bn == 0 || ak == 0 {
        return;
    }
    accumulate_blocked(alpha, a, ta, b, tb, c);
}

/// The unblocked reference GEMM (`c = alpha * op(a) * op(b) + beta * c`):
/// simple loop nests ordered for contiguous column-major access.  This is
/// the oracle the blocked path is property-tested against, and the kernel
/// the benchmarks call when `KALMAN_REF_KERNELS` is set.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemm_ref(
    alpha: f64,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    beta: f64,
    c: &mut Matrix,
) {
    let (am, ak, bn) = check_dims(a, ta, b, tb, c);
    scale_c(beta, c);
    if alpha == 0.0 || am == 0 || bn == 0 || ak == 0 {
        return;
    }
    accumulate_ref(alpha, a, ta, b, tb, c);
}

/// `c += alpha * op(a) * op(b)` with the original loop nests.
fn accumulate_ref(alpha: f64, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, c: &mut Matrix) {
    let (am, ak) = ta.dims(a);
    let bn = tb.dims(b).1;
    match (ta, tb) {
        (Trans::No, Trans::No) => {
            // c[:,j] += alpha * b[l,j] * a[:,l]  — all accesses contiguous.
            for j in 0..bn {
                let bj = b.col(j);
                for (l, &bl) in bj.iter().enumerate().take(ak) {
                    let w = alpha * bl;
                    if w != 0.0 {
                        let al = a.col(l);
                        let cj = c.col_mut(j);
                        for (ci, &ai) in cj.iter_mut().zip(al) {
                            *ci += w * ai;
                        }
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // c[i,j] += alpha * dot(a[:,i], b[:,j]) — contiguous dot products.
            for j in 0..bn {
                let bj = b.col(j);
                for i in 0..am {
                    let ai = a.col(i);
                    let mut acc = 0.0;
                    for (&x, &y) in ai.iter().zip(bj) {
                        acc += x * y;
                    }
                    c[(i, j)] += alpha * acc;
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // c[:,j] += alpha * b[j,l] * a[:,l]
            for l in 0..ak {
                let al = a.col(l);
                let bl = b.col(l); // b[j, l] over j: column l of b.
                for (j, &bjl) in bl.iter().enumerate() {
                    let w = alpha * bjl;
                    if w != 0.0 {
                        let cj = c.col_mut(j);
                        for (ci, &ai) in cj.iter_mut().zip(al) {
                            *ci += w * ai;
                        }
                    }
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // c[i,j] += alpha * dot(a[:,i], b[j,:]); the b access is strided.
            for j in 0..bn {
                for i in 0..am {
                    let ai = a.col(i);
                    let mut acc = 0.0;
                    for (l, &x) in ai.iter().enumerate() {
                        acc += x * b[(j, l)];
                    }
                    c[(i, j)] += alpha * acc;
                }
            }
        }
    }
}

/// `c += alpha * op(a) * op(b)` through packed panels and the MR×NR
/// microkernel.
fn accumulate_blocked(alpha: f64, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, c: &mut Matrix) {
    let (am, ak) = ta.dims(a);
    let bn = tb.dims(b).1;
    // Hoisted: one SIMD-layer check per GEMM call, not per microtile.
    let use_simd = simd::simd_active();

    let b_panels = bn.div_ceil(NR);
    let a_panels_max = am.min(MC).div_ceil(MR);
    let mut bpack = workspace::take_f64(b_panels * NR * KC.min(ak));
    let mut apack = workspace::take_f64(a_panels_max * MR * KC.min(ak));

    let mut pc = 0;
    while pc < ak {
        let kc = KC.min(ak - pc);
        // Pack op(B)[pc..pc+kc, :] into NR-column strips (zero-padded), so
        // the microkernel reads NR consecutive values per k step no matter
        // how op(B) is strided in the original storage.
        for jp in 0..b_panels {
            let j0 = jp * NR;
            let panel = &mut bpack[jp * NR * kc..(jp + 1) * NR * kc];
            for (p, row) in panel.chunks_exact_mut(NR).enumerate() {
                for (jr, slot) in row.iter_mut().enumerate() {
                    let j = j0 + jr;
                    *slot = if j < bn { tb.at(b, pc + p, j) } else { 0.0 };
                }
            }
        }

        let mut ic = 0;
        while ic < am {
            let mc = MC.min(am - ic);
            let a_panels = mc.div_ceil(MR);
            // Pack alpha·op(A)[ic..ic+mc, pc..pc+kc] into MR-row strips.
            for ip in 0..a_panels {
                let i0 = ic + ip * MR;
                let panel = &mut apack[ip * MR * kc..(ip + 1) * MR * kc];
                for (p, row) in panel.chunks_exact_mut(MR).enumerate() {
                    for (ir, slot) in row.iter_mut().enumerate() {
                        let i = i0 + ir;
                        *slot = if i < ic + mc {
                            alpha * ta.at(a, i, pc + p)
                        } else {
                            0.0
                        };
                    }
                }
            }

            // Register-tiled sweep over the packed block.
            for jp in 0..b_panels {
                let j0 = jp * NR;
                let nr = NR.min(bn - j0);
                let b_panel = &bpack[jp * NR * kc..(jp + 1) * NR * kc];
                for ip in 0..a_panels {
                    let i0 = ic + ip * MR;
                    let mr = MR.min(ic + mc - i0);
                    let a_panel = &apack[ip * MR * kc..(ip + 1) * MR * kc];

                    // Unrolled 4×4 inner kernel: an explicit-width AVX2/FMA
                    // tile when the SIMD layer is active, otherwise the
                    // original 16 scalar accumulators with contiguous MR/NR
                    // loads per k step.
                    let mut acc = [[0.0f64; NR]; MR];
                    if use_simd {
                        simd::gemm_microkernel_4x4(a_panel, b_panel, &mut acc);
                    } else {
                        for (ap, bp) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
                            for ir in 0..MR {
                                let av = ap[ir];
                                for jr in 0..NR {
                                    acc[ir][jr] += av * bp[jr];
                                }
                            }
                        }
                    }
                    for jr in 0..nr {
                        let cj = &mut c.col_mut(j0 + jr)[i0..i0 + mr];
                        for (ci, acc_row) in cj.iter_mut().zip(&acc) {
                            *ci += acc_row[jr];
                        }
                    }
                }
            }
            ic += mc;
        }
        pc += kc;
    }

    workspace::put_f64(apack);
    workspace::put_f64(bpack);
}

/// `a * b` as a new matrix.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, Trans::No, b, Trans::No, 0.0, &mut c);
    c
}

/// `aᵀ * b` as a new matrix.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    gemm(1.0, a, Trans::Yes, b, Trans::No, 0.0, &mut c);
    c
}

/// `a * bᵀ` as a new matrix.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm(1.0, a, Trans::No, b, Trans::Yes, 0.0, &mut c);
    c
}

/// `aᵀ * bᵀ` as a new matrix.
pub fn matmul_tt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.rows());
    gemm(1.0, a, Trans::Yes, b, Trans::Yes, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]])
    }

    #[test]
    fn matmul_nn() {
        let c = matmul(&a(), &b());
        let expect = Matrix::from_rows(&[
            &[27.0, 30.0, 33.0],
            &[61.0, 68.0, 75.0],
            &[95.0, 106.0, 117.0],
        ]);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let c = matmul_tn(&a(), &a());
        let expect = matmul(&a().transpose(), &a());
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let c = matmul_nt(&a(), &a());
        let expect = matmul(&a(), &a().transpose());
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_tt_matches_explicit_transpose() {
        let c = matmul_tt(&a(), &b());
        let expect = matmul(&a().transpose(), &b().transpose());
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn gemm_accumulates_with_beta() {
        let mut c = Matrix::identity(3);
        gemm(2.0, &a(), Trans::No, &b(), Trans::No, 3.0, &mut c);
        // c = 2*a*b + 3*I
        let ab = matmul(&a(), &b());
        let mut expect = ab.scaled(2.0);
        expect += &Matrix::identity(3).scaled(3.0);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn gemm_alpha_zero_only_scales() {
        let mut c = a();
        gemm(
            0.0,
            &a(),
            Trans::No,
            &Matrix::zeros(2, 2),
            Trans::No,
            0.5,
            &mut c,
        );
        assert!(c.approx_eq(&a().scaled(0.5), 1e-15));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_dim_mismatch_panics() {
        let mut c = Matrix::zeros(3, 3);
        gemm(1.0, &a(), Trans::No, &a(), Trans::No, 0.0, &mut c);
    }

    #[test]
    fn empty_matrices_are_fine() {
        let e = Matrix::zeros(0, 0);
        let c = matmul(&e, &e);
        assert!(c.is_empty());
        let left = Matrix::zeros(2, 0);
        let right = Matrix::zeros(0, 3);
        let c2 = matmul(&left, &right);
        assert_eq!(c2.rows(), 2);
        assert_eq!(c2.cols(), 3);
        assert_eq!(c2.max_abs(), 0.0);
    }

    /// The plan-bound monomorphized entries must agree with the reference
    /// loops on their specialized shapes (both `op(B)` cases, accumulate and
    /// overwrite), and fall through to the general ladder on mismatched
    /// shapes instead of misbehaving.
    #[test]
    fn mono_entries_match_reference() {
        fn check(n: usize, f: GemmFn) {
            let x = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 5) as f64).sin());
            let y = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 11) as f64).cos());
            for tb in [Trans::No, Trans::Yes] {
                for beta in [0.0, 1.0, 0.5] {
                    let mut c_mono = Matrix::from_fn(n, n, |i, j| (i * n + j) as f64);
                    let mut c_ref = c_mono.clone();
                    f(1.5, &x, Trans::No, &y, tb, beta, &mut c_mono);
                    gemm_ref(1.5, &x, Trans::No, &y, tb, beta, &mut c_ref);
                    assert!(
                        c_mono.approx_eq(&c_ref, 1e-12 * (1.0 + c_ref.max_abs())),
                        "mono n={n} tb={tb:?} beta={beta}: {}",
                        c_mono.max_abs_diff(&c_ref)
                    );
                }
            }
            // Mismatched shape: the entry must route through the general
            // ladder and still be correct.
            let tall = Matrix::from_fn(2 * n, n, |i, j| (i + 2 * j) as f64);
            let mut c_mono = Matrix::zeros(2 * n, n);
            let mut c_ref = Matrix::zeros(2 * n, n);
            f(1.0, &tall, Trans::No, &y, Trans::No, 0.0, &mut c_mono);
            gemm_ref(1.0, &tall, Trans::No, &y, Trans::No, 0.0, &mut c_ref);
            assert!(c_mono.approx_eq(&c_ref, 1e-11 * (1.0 + c_ref.max_abs())));
        }
        // Bind the entries directly (not through `KernelKind::active`) so
        // the test exercises the mono kernels regardless of process-global
        // switch state.
        check(4, gemm_mono_entry::<4>);
        check(8, gemm_mono_entry::<8>);
        check(16, gemm_mono_entry::<16>);
    }

    /// The blocked path must agree with the reference loops on every
    /// transpose combination and on shapes that exercise every packing edge
    /// (non-multiples of MR/NR/KC, tall, wide, deep).
    #[test]
    fn blocked_path_matches_reference_all_transposes() {
        let shapes = [(17, 13, 19), (33, 5, 64), (4, 100, 4), (65, 65, 1)];
        for (m, k, n) in shapes {
            let x = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) as f64).sin());
            let y = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 3) as f64).cos());
            let xt = x.transpose();
            let yt = y.transpose();
            for (aa, ta, bb, tb) in [
                (&x, Trans::No, &y, Trans::No),
                (&xt, Trans::Yes, &y, Trans::No),
                (&x, Trans::No, &yt, Trans::Yes),
                (&xt, Trans::Yes, &yt, Trans::Yes),
            ] {
                let mut c_blocked = Matrix::from_fn(m, n, |i, j| (i + j) as f64);
                let mut c_ref = c_blocked.clone();
                accumulate_blocked(1.5, aa, ta, bb, tb, &mut c_blocked);
                gemm_ref(1.5, aa, ta, bb, tb, 1.0, &mut c_ref);
                assert!(
                    c_blocked.approx_eq(&c_ref, 1e-11 * (1.0 + c_ref.max_abs())),
                    "mismatch at ({m},{k},{n}) {ta:?}/{tb:?}: {}",
                    c_blocked.max_abs_diff(&c_ref)
                );
            }
        }
    }
}

use crate::Matrix;

/// Transpose option for [`gemm`] operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as-is.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    #[inline]
    fn dims(self, m: &Matrix) -> (usize, usize) {
        match self {
            Trans::No => (m.rows(), m.cols()),
            Trans::Yes => (m.cols(), m.rows()),
        }
    }
}

/// General matrix multiply: `c = alpha * op(a) * op(b) + beta * c`.
///
/// `op(x)` is `x` or `xᵀ` according to the [`Trans`] flags.  The loops are
/// ordered so that the innermost accesses are contiguous in the column-major
/// storage for every transpose combination except `Tᵀ·Bᵀ` (rare; handled with
/// a strided loop).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn gemm(alpha: f64, a: &Matrix, ta: Trans, b: &Matrix, tb: Trans, beta: f64, c: &mut Matrix) {
    let (am, ak) = ta.dims(a);
    let (bk, bn) = tb.dims(b);
    assert_eq!(ak, bk, "gemm inner dimension mismatch: {ak} vs {bk}");
    assert_eq!(c.rows(), am, "gemm output row mismatch");
    assert_eq!(c.cols(), bn, "gemm output col mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if alpha == 0.0 || am == 0 || bn == 0 || ak == 0 {
        return;
    }

    match (ta, tb) {
        (Trans::No, Trans::No) => {
            // c[:,j] += alpha * b[l,j] * a[:,l]  — all accesses contiguous.
            for j in 0..bn {
                let bj = b.col(j);
                for (l, &bl) in bj.iter().enumerate().take(ak) {
                    let w = alpha * bl;
                    if w != 0.0 {
                        let al = a.col(l);
                        let cj = c.col_mut(j);
                        for (ci, &ai) in cj.iter_mut().zip(al) {
                            *ci += w * ai;
                        }
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // c[i,j] += alpha * dot(a[:,i], b[:,j]) — contiguous dot products.
            for j in 0..bn {
                let bj = b.col(j);
                for i in 0..am {
                    let ai = a.col(i);
                    let mut acc = 0.0;
                    for (&x, &y) in ai.iter().zip(bj) {
                        acc += x * y;
                    }
                    c[(i, j)] += alpha * acc;
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // c[:,j] += alpha * b[j,l] * a[:,l]
            for l in 0..ak {
                let al = a.col(l);
                let bl = b.col(l); // b[j, l] over j: column l of b.
                for (j, &bjl) in bl.iter().enumerate() {
                    let w = alpha * bjl;
                    if w != 0.0 {
                        let cj = c.col_mut(j);
                        for (ci, &ai) in cj.iter_mut().zip(al) {
                            *ci += w * ai;
                        }
                    }
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // c[i,j] += alpha * dot(a[:,i], b[j,:]); the b access is strided.
            for j in 0..bn {
                for i in 0..am {
                    let ai = a.col(i);
                    let mut acc = 0.0;
                    for (l, &x) in ai.iter().enumerate() {
                        acc += x * b[(j, l)];
                    }
                    c[(i, j)] += alpha * acc;
                }
            }
        }
    }
}

/// `a * b` as a new matrix.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, Trans::No, b, Trans::No, 0.0, &mut c);
    c
}

/// `aᵀ * b` as a new matrix.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    gemm(1.0, a, Trans::Yes, b, Trans::No, 0.0, &mut c);
    c
}

/// `a * bᵀ` as a new matrix.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm(1.0, a, Trans::No, b, Trans::Yes, 0.0, &mut c);
    c
}

/// `aᵀ * bᵀ` as a new matrix.
pub fn matmul_tt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.rows());
    gemm(1.0, a, Trans::Yes, b, Trans::Yes, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])
    }

    fn b() -> Matrix {
        Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]])
    }

    #[test]
    fn matmul_nn() {
        let c = matmul(&a(), &b());
        let expect = Matrix::from_rows(&[
            &[27.0, 30.0, 33.0],
            &[61.0, 68.0, 75.0],
            &[95.0, 106.0, 117.0],
        ]);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let c = matmul_tn(&a(), &a());
        let expect = matmul(&a().transpose(), &a());
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let c = matmul_nt(&a(), &a());
        let expect = matmul(&a(), &a().transpose());
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn matmul_tt_matches_explicit_transpose() {
        let c = matmul_tt(&a(), &b());
        let expect = matmul(&a().transpose(), &b().transpose());
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn gemm_accumulates_with_beta() {
        let mut c = Matrix::identity(3);
        gemm(2.0, &a(), Trans::No, &b(), Trans::No, 3.0, &mut c);
        // c = 2*a*b + 3*I
        let ab = matmul(&a(), &b());
        let mut expect = ab.scaled(2.0);
        expect += &Matrix::identity(3).scaled(3.0);
        assert!(c.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn gemm_alpha_zero_only_scales() {
        let mut c = a();
        gemm(
            0.0,
            &a(),
            Trans::No,
            &Matrix::zeros(2, 2),
            Trans::No,
            0.5,
            &mut c,
        );
        assert!(c.approx_eq(&a().scaled(0.5), 1e-15));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_dim_mismatch_panics() {
        let mut c = Matrix::zeros(3, 3);
        gemm(1.0, &a(), Trans::No, &a(), Trans::No, 0.0, &mut c);
    }

    #[test]
    fn empty_matrices_are_fine() {
        let e = Matrix::zeros(0, 0);
        let c = matmul(&e, &e);
        assert!(c.is_empty());
        let left = Matrix::zeros(2, 0);
        let right = Matrix::zeros(0, 3);
        let c2 = matmul(&left, &right);
        assert_eq!(c2.rows(), 2);
        assert_eq!(c2.cols(), 3);
        assert_eq!(c2.max_abs(), 0.0);
    }
}

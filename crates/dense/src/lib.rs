//! Dense linear-algebra kernels for the odd-even parallel Kalman smoother.
//!
//! This crate is the reproduction's substitute for the vendor BLAS/LAPACK
//! libraries (MKL, ARM Performance Libraries) that the paper's C
//! implementation calls for its Θ(n³) block operations.  It provides exactly
//! the kernels the smoothers need:
//!
//! * [`Matrix`] — a column-major `f64` matrix with block get/set helpers,
//! * [`gemm`] — general matrix multiply with transpose options,
//! * [`QrFactor`] — Householder QR with application of `Qᵀ`/`Q` to
//!   right-hand-side blocks (the workhorse of the odd-even factorization),
//! * [`LuFactor`] — LU with partial pivoting (used by the associative
//!   smoother's combination formulas),
//! * [`Cholesky`] — for SPD covariance matrices and inverse factors,
//! * triangular solves and inverses ([`tri`]),
//! * random matrix generators ([`random`]) for the paper's synthetic
//!   benchmark problems (random orthonormal evolution/observation matrices).
//!
//! All matrices are dense and owned; the smoothers operate on many small
//! blocks (the paper uses n = 6, 48 and 500).  The kernels are tuned for
//! that regime — a blocked, register-tiled GEMM microkernel, four-column
//! Householder applications, a compact-WY blocked QR for large blocks, a
//! triangular-pentagonal stack elimination ([`qr_tri_stack_applying`]),
//! explicit-width AVX2/FMA SIMD tiles with const-generic monomorphized
//! small-`n` kernels ([`simd`], selected at plan time via [`KernelKind`]),
//! and a thread-local buffer-recycling [`workspace`] that makes
//! steady-state loops allocation-free — while staying dependency-free (see
//! DESIGN.md §"Dense kernels").
//!
//! # Example
//!
//! ```
//! use kalman_dense::{Matrix, QrFactor};
//!
//! // Solve a small least-squares problem min ||Ax - b||.
//! let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
//! let b = Matrix::col_from_slice(&[6.0, 0.0, 0.0]);
//! let qr = QrFactor::new(a);
//! let x = qr.solve_ls(&b).unwrap();
//! assert_eq!(x.rows(), 2);
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the `simd` module is the crate's single audited
// exemption (`#[allow(unsafe_code)]` + kalman-lint `forbid_exempt`, see
// docs/LINTS.md §Unsafe) — it holds the `core::arch` AVX2/FMA intrinsic
// tiles.  Every other module still rejects `unsafe` at compile time.
#![deny(unsafe_code)]

mod chol;
mod error;
mod gemm;
mod lu;
mod matrix;
mod qr;
pub mod random;
pub mod simd;
pub mod tri;
pub mod workspace;

pub use chol::{llt, Cholesky};
pub use error::DenseError;
pub use gemm::{
    gemm, gemm_blocked, gemm_ref, matmul, matmul_nt, matmul_tn, matmul_tt, GemmFn, Trans,
};
pub use lu::{solve, LuFactor};
pub use matrix::Matrix;
pub use qr::{
    compress_rows, compress_rows_owned, qr_stacked, qr_trap_stack_applying, qr_tri_stack_applying,
    qr_tri_stack_applying_with, trapezoidalize_applying, ColPivQr, QrFactor,
};
pub use simd::{
    kernel_dispatch_counts, set_portable_kernels, set_simd_kernels, simd_backend, simd_kernels,
    KernelKind,
};
pub use workspace::{
    arena_active, arena_scope, budget_for_len, pooling_enabled, reference_kernels,
    register_workspace_gauges, set_pooling, set_reference_kernels, ArenaScope, Workspace,
};

/// Result type for fallible dense operations (singular / not-SPD inputs).
pub type Result<T> = std::result::Result<T, DenseError>;

use crate::{DenseError, Matrix, Result};

/// LU factorization with partial pivoting: `P A = L U`.
///
/// Used by the associative smoother's combination formulas, which need to
/// solve small general (non-symmetric, non-triangular) systems such as
/// `(I + C₁ J₂) X = B`.
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Packed factors: `U` on and above the diagonal, unit-`L` below.
    packed: Matrix,
    /// Row permutation as an `n × 1` column of exact small integers: row `i`
    /// of the factored matrix is row `perm[i]` of `A`.  Stored in a [`Matrix`]
    /// rather than a `Vec<usize>` so the pivots cycle through the workspace
    /// pool like every other buffer — the associative-scan backend factors
    /// two of these per element combine in its steady state, which must stay
    /// allocation-free.
    perm: Matrix,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl LuFactor {
    /// Factorizes the square matrix `a` (consumed).
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::Singular`] if a zero pivot is encountered.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(mut a: Matrix) -> Result<Self> {
        assert!(a.is_square(), "LU requires a square matrix");
        let n = a.rows();
        let mut perm = Matrix::zeros(n, 1);
        for (i, p) in perm.col_mut(0).iter_mut().enumerate() {
            *p = i as f64;
        }
        let mut sign = 1.0;
        for j in 0..n {
            // Find pivot in column j at or below the diagonal.
            let mut piv = j;
            let mut max = a[(j, j)].abs();
            for i in (j + 1)..n {
                let v = a[(i, j)].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            if max == 0.0 {
                return Err(DenseError::Singular { index: j });
            }
            if piv != j {
                // Swap rows piv and j across all columns.
                for k in 0..n {
                    let ck = a.col_mut(k);
                    ck.swap(piv, j);
                }
                perm.col_mut(0).swap(piv, j);
                sign = -sign;
            }
            let pivot = a[(j, j)];
            // Eliminate below the pivot; store multipliers in place.
            for i in (j + 1)..n {
                let m = a[(i, j)] / pivot;
                a[(i, j)] = m;
                if m != 0.0 {
                    for k in (j + 1)..n {
                        let v = a[(j, k)];
                        a[(i, k)] -= m * v;
                    }
                }
            }
        }
        Ok(LuFactor {
            packed: a,
            perm,
            sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A x = b` for each column of `b`, returning the solution.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.dim()`.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.rows(), n, "LU solve rhs row mismatch");
        let mut x = Matrix::zeros(n, b.cols());
        for k in 0..b.cols() {
            let bk = b.col(k);
            let xk = x.col_mut(k);
            // Apply permutation.
            let perm = self.perm.col(0);
            for i in 0..n {
                xk[i] = bk[perm[i] as usize];
            }
            // Forward solve with unit lower factor.
            for i in 0..n {
                let mut acc = xk[i];
                for (j, &xj) in xk.iter().enumerate().take(i) {
                    acc -= self.packed[(i, j)] * xj;
                }
                xk[i] = acc;
            }
            // Back solve with upper factor.
            for i in (0..n).rev() {
                let mut acc = xk[i];
                for (j, &xj) in xk.iter().enumerate().take(n).skip(i + 1) {
                    acc -= self.packed[(i, j)] * xj;
                }
                xk[i] = acc / self.packed[(i, i)];
            }
        }
        x
    }

    /// Returns `A⁻¹`.
    pub fn inverse(&self) -> Matrix {
        self.solve(&Matrix::identity(self.dim()))
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.packed[(i, i)];
        }
        d
    }
}

/// Solves `A x = b` for square `A` (convenience wrapper).
///
/// # Errors
///
/// Returns [`DenseError::Singular`] if `a` is singular.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    Ok(LuFactor::new(a.clone())?.solve(b)) // lint: allow(alloc, "allocating convenience wrapper; hot paths hold a LuFactor — the scan-element edge is a name-graph artifact of Cholesky::solve sharing the name")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 0.0], &[3.0, 0.0, -2.0]])
    }

    #[test]
    fn solve_reproduces_rhs() {
        let a = sample();
        let b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let lu = LuFactor::new(a.clone()).unwrap();
        let x = lu.solve(&b);
        assert!(matmul(&a, &x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // a[(0,0)] == 0 requires pivoting on the first step.
        let a = sample();
        assert_eq!(a[(0, 0)], 0.0);
        assert!(LuFactor::new(a).is_ok());
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = sample();
        let inv = LuFactor::new(a.clone()).unwrap().inverse();
        assert!(matmul(&a, &inv).approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn determinant() {
        // det of sample: expand -> 0*(2-0) - 2*(-2-0) + 1*(0+3) = 4 + 3 = 7.
        let lu = LuFactor::new(sample()).unwrap();
        assert!((lu.det() - 7.0).abs() < 1e-12);
        let id = LuFactor::new(Matrix::identity(4)).unwrap();
        assert!((id.det() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match LuFactor::new(a) {
            Err(DenseError::Singular { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn convenience_solve() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = Matrix::col_from_slice(&[2.0, 8.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[5.0]]);
        let lu = LuFactor::new(a).unwrap();
        let x = lu.solve(&Matrix::col_from_slice(&[10.0]));
        assert!((x[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((lu.det() - 5.0).abs() < 1e-15);
    }
}

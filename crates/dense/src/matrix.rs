use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A dense, column-major, `f64` matrix.
///
/// Storage is a single `Vec<f64>` of length `rows * cols`; entry `(i, j)`
/// lives at `data[i + j * rows]`.  Column-major layout matches the access
/// pattern of the Householder QR and triangular-solve kernels, which sweep
/// down columns.
///
/// Vectors are represented as `rows × 1` matrices; see
/// [`Matrix::col_from_slice`].
///
/// Storage is checked out of the thread-local [`crate::workspace`] pool and
/// returned on drop, so matrix-heavy loops stop allocating once the pool
/// has warmed up.  `Clone` goes through the same pool.
#[derive(PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        let mut data = crate::workspace::take_f64(self.data.len());
        data.copy_from_slice(&self.data);
        Matrix {
            data,
            rows: self.rows,
            cols: self.cols,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.data.clear();
        self.data.extend_from_slice(&source.data);
        self.rows = source.rows;
        self.cols = source.cols;
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        crate::workspace::put_f64(std::mem::take(&mut self.data));
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: crate::workspace::take_f64(rows * cols),
            rows,
            cols,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row slices (convenient for literals in tests).
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "row {i} has length {} != {c}", row.len());
        }
        Matrix::from_fn(r, c, |i, j| rows[i][j])
    }

    /// Creates a column vector (an `n × 1` matrix) from a slice.
    pub fn col_from_slice(v: &[f64]) -> Self {
        let mut data = crate::workspace::take_f64(v.len());
        data.copy_from_slice(v);
        Matrix {
            data,
            rows: v.len(),
            cols: 1,
        }
    }

    /// Creates a matrix from raw column-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix has zero rows or zero columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable view of column `j` as a contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Raw column-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw column-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its column-major data.
    ///
    /// The returned vector leaves the workspace pool for good (it is
    /// deallocated normally when dropped); hot paths should prefer reading
    /// through [`Matrix::col`] and letting the matrix recycle itself.
    pub fn into_vec(mut self) -> Vec<f64> {
        std::mem::take(&mut self.data)
    }

    /// Two mutable column views `(j1, j2)` with `j1 != j2`.
    ///
    /// Used by kernels that combine a pair of columns in place.
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [f64], &mut [f64]) {
        assert!(j1 != j2, "columns must be distinct");
        let r = self.rows;
        if j1 < j2 {
            let (lo, hi) = self.data.split_at_mut(j2 * r);
            (&mut lo[j1 * r..(j1 + 1) * r], &mut hi[..r])
        } else {
            let (lo, hi) = self.data.split_at_mut(j1 * r);
            let c2 = &mut lo[j2 * r..(j2 + 1) * r];
            (&mut hi[..r], c2)
        }
    }

    /// Splits the column-major storage at column `j`: returns the raw data
    /// of columns `0..j` (shared) and `j..cols` (mutable).  Both slices use
    /// this matrix's row count as their column stride.  Used by the blocked
    /// QR to apply a factored panel to the trailing columns in place.
    ///
    /// # Panics
    ///
    /// Panics if `j > self.cols()`.
    pub fn split_at_col_mut(&mut self, j: usize) -> (&[f64], &mut [f64]) {
        assert!(j <= self.cols, "split_at_col_mut column out of bounds");
        let r = self.rows;
        let (lo, hi) = self.data.split_at_mut(j * r);
        (lo, hi)
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            let cj = self.col(j);
            for i in 0..self.rows {
                t[(j, i)] = cj[i];
            }
        }
        t
    }

    /// Extracts the `nrows × ncols` sub-matrix whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the requested block extends beyond the matrix.
    pub fn sub_matrix(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> Matrix {
        assert!(
            r0 + nrows <= self.rows && c0 + ncols <= self.cols,
            "sub-matrix ({r0}+{nrows}, {c0}+{ncols}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let mut s = Matrix::zeros(nrows, ncols);
        for j in 0..ncols {
            let src = &self.col(c0 + j)[r0..r0 + nrows];
            s.col_mut(j).copy_from_slice(src);
        }
        s
    }

    /// Copies `block` into `self` with top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends beyond the matrix.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block ({r0}+{}, {c0}+{}) out of bounds for {}x{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for j in 0..block.cols {
            let src = block.col(j);
            self.col_mut(c0 + j)[r0..r0 + block.rows].copy_from_slice(src);
        }
    }

    /// Stacks `blocks` vertically.  All blocks must have the same column count.
    ///
    /// # Panics
    ///
    /// Panics if the blocks have inconsistent column counts or `blocks` is empty.
    pub fn vstack(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "vstack of zero blocks");
        let cols = blocks[0].cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r0 = 0;
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack blocks must have equal column counts");
            out.set_block(r0, 0, b);
            r0 += b.rows;
        }
        out
    }

    /// Stacks `blocks` horizontally.  All blocks must have the same row count.
    ///
    /// # Panics
    ///
    /// Panics if the blocks have inconsistent row counts or `blocks` is empty.
    pub fn hstack(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "hstack of zero blocks");
        let rows = blocks[0].rows;
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut c0 = 0;
        for b in blocks {
            assert_eq!(b.rows, rows, "hstack blocks must have equal row counts");
            out.set_block(0, c0, b);
            c0 += b.cols;
        }
        out
    }

    /// Sets every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    // lint: allow(alloc, "by-value API allocates by contract; flush-path callers invoke it once per forget step, not per state")
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale(s);
        m
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "axpy row mismatch");
        assert_eq!(self.cols, other.cols, "axpy col mismatch");
        for (x, y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += alpha * y;
        }
    }

    /// Matrix-vector product `y = self * x` (allocating; hot paths use
    /// [`Matrix::mul_vec_into`] / [`Matrix::sub_mul_vec_into`] instead).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// In-place matrix-vector product `y = self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec output length mismatch");
        y.fill(0.0);
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                for (yi, &aij) in y.iter_mut().zip(self.col(j)) {
                    *yi += aij * xj;
                }
            }
        }
    }

    /// In-place product-subtract `y -= self * x` (the back-substitution
    /// kernel: subtract an off-diagonal block's contribution without any
    /// temporary).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn sub_mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "sub_mul_vec dimension mismatch");
        assert_eq!(y.len(), self.rows, "sub_mul_vec output length mismatch");
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                for (yi, &aij) in y.iter_mut().zip(self.col(j)) {
                    *yi -= aij * xj;
                }
            }
        }
    }

    /// Transposed matrix-vector product `y = selfᵀ * x` (allocating; hot
    /// paths use [`Matrix::mul_vec_t_into`] instead).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn mul_vec_t(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.mul_vec_t_into(x, &mut y);
        y
    }

    /// In-place transposed matrix-vector product `y = selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()` or `y.len() != self.cols()`.
    pub fn mul_vec_t_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "mul_vec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "mul_vec_t output length mismatch");
        for (j, yj) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (&aij, &xi) in self.col(j).iter().zip(x) {
                acc += aij * xi;
            }
            *yj = acc;
        }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (the max norm); 0 for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Maximum absolute difference from `other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "max_abs_diff row mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff col mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// `true` when all entries differ from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.max_abs_diff(other) <= tol
    }

    /// Symmetrizes the matrix in place: `self = (self + selfᵀ) / 2`.
    ///
    /// Used to keep covariance blocks symmetric in the presence of rounding.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Returns the main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Keeps only the upper triangle (entries with `i <= j`), zeroing the rest.
    pub fn upper_triangular_part(&self) -> Matrix {
        let mut m = self.clone();
        for j in 0..m.cols {
            for i in (j + 1)..m.rows {
                m[(i, j)] = 0.0;
            }
        }
        m
    }

    /// Iterator over `(i, j, value)` of all entries, column by column.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.cols).flat_map(move |j| (0..self.rows).map(move |i| (i, j, self[(i, j)])))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i + j * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i + j * self.rows]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        // lint: allow(alloc, "by-value operator impl allocates its output by contract; the hot-path edge is a name-graph artifact of raw-pointer `.add(i)` in the SIMD kernels, which never call this")
        let mut out = self.clone();
        out.axpy(1.0, rhs);
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.axpy(-1.0, rhs);
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs);
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        crate::gemm::matmul(self, rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(12) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if self.cols > 12 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 12 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(2, 1)], 6.0);
        // Column-major storage: first column contiguous.
        assert_eq!(m.col(0), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diag(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 0)], 3.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn sub_matrix_and_set_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.sub_matrix(1, 2, 2, 2);
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        assert_eq!(s[(1, 1)], m[(2, 3)]);

        let mut z = Matrix::zeros(4, 4);
        z.set_block(1, 2, &s);
        assert_eq!(z[(1, 2)], m[(1, 2)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sub_matrix_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.sub_matrix(1, 1, 2, 2);
    }

    #[test]
    fn vstack_hstack() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.rows(), 3);
        assert_eq!(v[(2, 1)], 6.0);

        let c = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let d = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let h = Matrix::hstack(&[&c, &d]);
        assert_eq!(h.cols(), 3);
        assert_eq!(h[(1, 2)], 6.0);
    }

    #[test]
    fn mul_vec_and_transposed() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.mul_vec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn in_place_matvec_variants_match() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[3.0, 4.0, 0.5]]);
        let x = [1.0, -2.0, 4.0];
        let mut y = [99.0, 99.0]; // stale contents must be overwritten
        m.mul_vec_into(&x, &mut y);
        assert_eq!(y.to_vec(), m.mul_vec(&x));

        let xt = [2.0, -1.0];
        let mut yt = [0.0; 3];
        m.mul_vec_t_into(&xt, &mut yt);
        assert_eq!(yt.to_vec(), m.mul_vec_t(&xt));

        // y -= A x on top of existing contents.
        let mut acc = [10.0, 20.0];
        m.sub_mul_vec_into(&x, &mut acc);
        let prod = m.mul_vec(&x);
        assert_eq!(acc[0], 10.0 - prod[0]);
        assert_eq!(acc[1], 20.0 - prod[1]);
    }

    #[test]
    fn clone_and_drop_roundtrip_through_workspace() {
        // A dropped matrix's buffer is reused by the next same-class
        // allocation on this thread (steady-state loops stop allocating).
        let before = crate::workspace::Workspace::with(|ws| ws.stats());
        {
            let a = Matrix::zeros(8, 8);
            let b = a.clone();
            assert!(b.approx_eq(&a, 0.0));
        }
        let after = crate::workspace::Workspace::with(|ws| ws.stats());
        if crate::workspace::pooling_enabled() {
            assert!(after.pooled_elems >= before.pooled_elems);
            let c = Matrix::zeros(8, 8);
            let hits = crate::workspace::Workspace::with(|ws| ws.stats()).hits;
            assert!(hits > before.hits, "pool should have served this");
            assert_eq!(c.max_abs(), 0.0, "recycled buffer must be zeroed");
        }
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((m.frob_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert!(diff.approx_eq(&a, 0.0));
        let neg = -&a;
        assert_eq!(neg[(1, 0)], -3.0);
    }

    #[test]
    fn symmetrize_averages() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn two_cols_mut_disjoint() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        {
            let (c0, c2) = m.two_cols_mut(0, 2);
            c0[0] = 10.0;
            c2[1] = 60.0;
        }
        assert_eq!(m[(0, 0)], 10.0);
        assert_eq!(m[(1, 2)], 60.0);
        // Reversed order works too.
        {
            let (c2, c0) = m.two_cols_mut(2, 0);
            assert_eq!(c2[1], 60.0);
            assert_eq!(c0[0], 10.0);
        }
    }

    #[test]
    fn upper_triangular_part_zeroes_lower() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let u = m.upper_triangular_part();
        assert_eq!(u[(1, 0)], 0.0);
        assert_eq!(u[(0, 1)], 2.0);
    }

    #[test]
    fn entries_iterates_all() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let total: f64 = m.entries().map(|(_, _, v)| v).sum();
        assert_eq!(total, 10.0);
    }
}

use crate::{DenseError, Matrix, Result};

/// Householder QR factorization `A = Q R` of an `m × n` matrix with `m >= n`
/// (tall or square).
///
/// `Q` is kept in factored form — the Householder vectors live below the
/// diagonal of the packed factor and are applied with [`QrFactor::apply_qt`]
/// / [`QrFactor::apply_q`]; it is never formed explicitly unless
/// [`QrFactor::q_thin`] is requested.  This mirrors how the smoother uses QR:
/// factor a stacked pair of blocks, then apply the same `Qᵀ` to neighbouring
/// blocks and right-hand-side segments.
///
/// The factorization itself never fails; rank deficiency surfaces as a zero
/// diagonal entry of `R` and is reported by the solve routines.
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Packed factor: `R` on and above the diagonal, Householder vectors
    /// (with implicit unit leading entry) below it.
    packed: Matrix,
    /// Householder coefficients, one per reflected column.
    tau: Vec<f64>,
}

/// Computes the Householder reflector for `x` in place.
///
/// On return `x[0]` holds `beta` (the new leading entry, `Hx = beta·e₁`) and
/// `x[1..]` holds the reflector tail `v[1..]` (with `v[0] = 1` implicit).
/// Returns the scalar `tau`; `tau == 0` means "no reflection needed".
fn make_householder(x: &mut [f64]) -> f64 {
    let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm == 0.0 {
        return 0.0;
    }
    let alpha = x[0];
    // Choose the sign that avoids cancellation.
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in &mut x[1..] {
        *v *= scale;
    }
    x[0] = beta;
    tau
}

/// Applies `H = I - tau·v·vᵀ` (with `v[0] = 1` implicit, tail `vtail`) to the
/// vector segment `c` of the same length as `v`.
#[inline]
fn apply_householder(vtail: &[f64], tau: f64, c: &mut [f64]) {
    if tau == 0.0 {
        return;
    }
    // w = tau * (vᵀ c)
    let mut w = c[0];
    for (vi, ci) in vtail.iter().zip(&c[1..]) {
        w += vi * ci;
    }
    w *= tau;
    c[0] -= w;
    for (vi, ci) in vtail.iter().zip(&mut c[1..]) {
        *ci -= w * vi;
    }
}

/// One Householder elimination step shared by [`QrFactor`] and
/// [`ColPivQr`]: reflects column `j` below the diagonal (packing the
/// reflector tail in place) and applies the reflector to the trailing
/// columns.  Returns `tau`.
fn eliminate_column(a: &mut Matrix, j: usize) -> f64 {
    let tau = {
        let col = &mut a.col_mut(j)[j..];
        make_householder(col)
    };
    if tau != 0.0 {
        for k in (j + 1)..a.cols() {
            let (cj, ck) = a.two_cols_mut(j, k);
            apply_householder(&cj[j + 1..], tau, &mut ck[j..]);
        }
    }
    tau
}

impl QrFactor {
    /// Factorizes `a` (consumed; `m × n` with `m >= n`).
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() < a.cols()`.
    pub fn new(mut a: Matrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QrFactor requires rows >= cols, got {m}x{n}");
        let mut tau = vec![0.0; n];
        for (j, t) in tau.iter_mut().enumerate() {
            *t = eliminate_column(&mut a, j);
        }
        QrFactor { packed: a, tau }
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.packed.cols()
    }

    /// The square upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        let mut r = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// Applies `Qᵀ` to `b` in place (`b` must have the same row count as the
    /// factored matrix).
    ///
    /// After this call, the top `n` rows of `b` are the "kept" part and the
    /// remaining rows the "residual" part of the transformed block.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn apply_qt(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.rows(), "apply_qt row mismatch");
        let n = self.cols();
        for j in 0..n {
            if self.tau[j] == 0.0 {
                continue;
            }
            let vtail = &self.packed.col(j)[j + 1..];
            for k in 0..b.cols() {
                apply_householder(vtail, self.tau[j], &mut b.col_mut(k)[j..]);
            }
        }
    }

    /// Applies `Q` to `b` in place (reflections in reverse order).
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn apply_q(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.rows(), "apply_q row mismatch");
        let n = self.cols();
        for j in (0..n).rev() {
            if self.tau[j] == 0.0 {
                continue;
            }
            let vtail = &self.packed.col(j)[j + 1..];
            for k in 0..b.cols() {
                // Householder reflections are symmetric: H = Hᵀ.
                apply_householder(vtail, self.tau[j], &mut b.col_mut(k)[j..]);
            }
        }
    }

    /// The thin orthonormal factor `Q₁` (`m × n`, `A = Q₁ R`).
    pub fn q_thin(&self) -> Matrix {
        let (m, n) = (self.rows(), self.cols());
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        self.apply_q(&mut q);
        q
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` for each column of
    /// `b`, returning the `n × p` solution.
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::RankDeficient`] if `R` has a zero diagonal entry.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn solve_ls(&self, b: &Matrix) -> Result<Matrix> {
        let mut qtb = b.clone();
        self.apply_qt(&mut qtb);
        let n = self.cols();
        let mut x = qtb.sub_matrix(0, 0, n, b.cols());
        self.solve_r_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `R x = y` in place on `y` using the packed `R` factor.
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::RankDeficient`] if a diagonal entry of `R` is
    /// negligible relative to the largest one (an effective rank test, like
    /// LAPACK's `xTRTRS` callers use for least-squares problems).
    pub fn solve_r_in_place(&self, y: &mut Matrix) -> Result<()> {
        let n = self.cols();
        assert_eq!(y.rows(), n, "solve_r row mismatch");
        let max_diag = (0..n).fold(0.0_f64, |m, j| m.max(self.packed[(j, j)].abs()));
        let tol = max_diag * (self.rows().max(n) as f64) * f64::EPSILON;
        for j in 0..n {
            if self.packed[(j, j)].abs() <= tol {
                return Err(DenseError::RankDeficient { column: j });
            }
        }
        for k in 0..y.cols() {
            let yk = y.col_mut(k);
            for i in (0..n).rev() {
                let mut acc = yk[i];
                for (j, &yj) in yk.iter().enumerate().take(n).skip(i + 1) {
                    acc -= self.packed[(i, j)] * yj;
                }
                yk[i] = acc / self.packed[(i, i)];
            }
        }
        Ok(())
    }

    /// Residual norm contribution `‖(Qᵀb)[n..]‖₂` of a least-squares solve.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn ls_residual_norm(&self, b: &Matrix) -> f64 {
        let mut qtb = b.clone();
        self.apply_qt(&mut qtb);
        let n = self.cols();
        let mut acc = 0.0;
        for k in 0..qtb.cols() {
            for &v in &qtb.col(k)[n..] {
                acc += v * v;
            }
        }
        acc.sqrt()
    }
}

/// Householder QR with greedy column pivoting, `A P = Q R` — a
/// rank-revealing factorization accepting any shape (wide, tall, or empty).
///
/// At every step the column with the largest remaining norm is swapped into
/// pivot position, so the diagonal of `R` is non-increasing in magnitude
/// and the numerical rank is the number of diagonal entries above a
/// tolerance ([`ColPivQr::rank`]).  The leading `rank × rank` block of `R`
/// is nonsingular, which is what exact marginalization of a possibly
/// rank-deficient block column relies on (see `InfoHead::advance` in
/// `kalman-model`): after [`ColPivQr::apply_qt`], the top `rank` rows of a
/// companion block are exactly satisfiable by the eliminated variables and
/// the rows below are untouched by them.
///
/// Column norms are recomputed at each step rather than downdated; the
/// workspace only pivots state-dimension-sized blocks, where the `O(mn·r)`
/// recomputation is noise and immune to downdating cancellation.
#[derive(Debug, Clone)]
pub struct ColPivQr {
    /// Packed factor of the pivoted matrix: `R` on and above the diagonal,
    /// Householder tails below it.
    packed: Matrix,
    /// Householder coefficients, one per eliminated column.
    tau: Vec<f64>,
    /// `perm[j]` = original index of the column now in position `j`.
    perm: Vec<usize>,
}

impl ColPivQr {
    /// Factorizes `a` (consumed; any shape).
    pub fn new(mut a: Matrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        let steps = m.min(n);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut tau = vec![0.0; steps];
        for (j, t) in tau.iter_mut().enumerate() {
            // Pivot: bring the column with the largest residual norm to j.
            let mut best = j;
            let mut best_norm = 0.0f64;
            for k in j..n {
                let norm: f64 = a.col(k)[j..].iter().map(|v| v * v).sum();
                if norm > best_norm {
                    best_norm = norm;
                    best = k;
                }
            }
            if best != j {
                let (cj, cb) = a.two_cols_mut(j, best);
                cj.swap_with_slice(cb);
                perm.swap(j, best);
            }
            *t = eliminate_column(&mut a, j);
        }
        ColPivQr {
            packed: a,
            tau,
            perm,
        }
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.packed.cols()
    }

    /// The column permutation: position `j` of the factor holds original
    /// column `perm()[j]`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The (trapezoidal) factor `R`, `min(m, n) × n`, of the *pivoted*
    /// matrix.
    pub fn r(&self) -> Matrix {
        let steps = self.tau.len();
        let mut r = Matrix::zeros(steps, self.cols());
        for j in 0..self.cols() {
            for i in 0..steps.min(j + 1) {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// Numerical rank: the number of leading diagonal entries of `R` above
    /// `max|R_jj| · max(m, n) · ε` (the pivoting makes the diagonal
    /// magnitudes non-increasing, so this is a prefix count).
    pub fn rank(&self) -> usize {
        let steps = self.tau.len();
        let max_diag = (0..steps).fold(0.0_f64, |acc, j| acc.max(self.packed[(j, j)].abs()));
        let tol = max_diag * (self.rows().max(self.cols()) as f64) * f64::EPSILON;
        (0..steps)
            .take_while(|&j| self.packed[(j, j)].abs() > tol)
            .count()
    }

    /// Applies `Qᵀ` to `b` in place (`b` must have the same row count as
    /// the factored matrix).
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn apply_qt(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.rows(), "apply_qt row mismatch");
        for j in 0..self.tau.len() {
            if self.tau[j] == 0.0 {
                continue;
            }
            let vtail = &self.packed.col(j)[j + 1..];
            for k in 0..b.cols() {
                apply_householder(vtail, self.tau[j], &mut b.col_mut(k)[j..]);
            }
        }
    }
}

/// Convenience: QR-factor the vertical stack `[a; b]` and transform the
/// stacked companion blocks with the same `Qᵀ`.
///
/// This is the primitive the odd-even elimination uses at every step: factor
/// a 2×1 block column and carry the transformation onto neighbouring block
/// columns and right-hand sides.  `companions` are stacked in the same row
/// order as `[a; b]`.
///
/// Returns the factorization of the stack.
pub fn qr_stacked(blocks: &[&Matrix]) -> QrFactor {
    QrFactor::new(Matrix::vstack(blocks))
}

/// Computes a (possibly rectangular) "R compression" of `a`: the
/// upper-triangular `min(m, n) × n` factor of a QR factorization of `a`,
/// used to restore the row-count invariant of the odd-even recursion.
///
/// Unlike [`QrFactor::new`], this accepts wide matrices (`m < n`); in that
/// case the result is `m × n` upper trapezoidal.  The same transformation is
/// applied to `rhs` (in place), whose top `min(m, n)` rows are kept.
pub fn compress_rows(a: &Matrix, rhs: &mut Matrix) -> Matrix {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(rhs.rows(), m, "compress_rows rhs row mismatch");
    if m <= n {
        // Nothing to compress: already at most n rows.
        return a.clone();
    }
    let qr = QrFactor::new(a.clone());
    qr.apply_qt(rhs);
    // R is n x n upper triangular; keep those rows of the rhs.
    qr.r()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[1.0, 3.0, -2.0],
            &[0.0, 1.0, 1.0],
            &[4.0, 0.0, 2.0],
            &[-1.0, 2.0, 0.0],
        ])
    }

    #[test]
    fn reconstruction_a_equals_qr() {
        let a = sample();
        let qr = QrFactor::new(a.clone());
        let q = qr.q_thin();
        let r = qr.r();
        let qr_prod = matmul(&q, &r);
        assert!(qr_prod.approx_eq(&a, 1e-12), "QR != A");
    }

    #[test]
    fn q_is_orthonormal() {
        let qr = QrFactor::new(sample());
        let q = qr.q_thin();
        let qtq = matmul_tn(&q, &q);
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn apply_qt_then_q_roundtrips() {
        let qr = QrFactor::new(sample());
        let b = Matrix::from_fn(5, 2, |i, j| (i + 2 * j) as f64);
        let mut t = b.clone();
        qr.apply_qt(&mut t);
        qr.apply_q(&mut t);
        assert!(t.approx_eq(&b, 1e-12));
    }

    #[test]
    fn apply_qt_matches_explicit_q() {
        let a = sample();
        let qr = QrFactor::new(a.clone());
        // Build full Q by applying Q to the 5x5 identity.
        let mut full_q = Matrix::identity(5);
        qr.apply_q(&mut full_q);
        let b = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).sin());
        let mut qt_b = b.clone();
        qr.apply_qt(&mut qt_b);
        let expect = matmul_tn(&full_q, &b);
        assert!(qt_b.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn solve_ls_matches_normal_equations() {
        let a = sample();
        let b = Matrix::col_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let qr = QrFactor::new(a.clone());
        let x = qr.solve_ls(&b).unwrap();
        // Check normal equations: Aᵀ(Ax − b) = 0.
        let ax = matmul(&a, &x);
        let resid = &ax - &b;
        let grad = matmul_tn(&a, &resid);
        assert!(grad.max_abs() < 1e-12, "gradient {:?}", grad);
    }

    #[test]
    fn square_exact_solve() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let b = Matrix::col_from_slice(&[9.0, 13.0]);
        let qr = QrFactor::new(a);
        let x = qr.solve_ls(&b).unwrap();
        assert!((x[(0, 0)] - 1.4).abs() < 1e-12);
        assert!((x[(1, 0)] - 3.4).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_reports_column() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = QrFactor::new(a);
        let b = Matrix::col_from_slice(&[1.0, 1.0, 1.0]);
        match qr.solve_ls(&b) {
            Err(DenseError::RankDeficient { column }) => assert_eq!(column, 1),
            other => panic!("expected rank deficiency, got {other:?}"),
        }
    }

    #[test]
    fn residual_norm_is_ls_residual() {
        let a = sample();
        let b = Matrix::col_from_slice(&[1.0, -1.0, 2.0, 0.0, 1.0]);
        let qr = QrFactor::new(a.clone());
        let x = qr.solve_ls(&b).unwrap();
        let resid = &matmul(&a, &x) - &b;
        assert!((qr.ls_residual_norm(&b) - resid.frob_norm()).abs() < 1e-12);
    }

    #[test]
    fn zero_column_gives_zero_tau_not_nan() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]);
        let qr = QrFactor::new(a);
        let r = qr.r();
        assert_eq!(r[(0, 0)], 0.0);
        assert!(r.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn compress_rows_tall_gives_triangular_same_gram() {
        let a = sample(); // 5x3
        let mut rhs = Matrix::from_fn(5, 1, |i, _| i as f64 + 1.0);
        let orig_rhs = rhs.clone();
        let r = compress_rows(&a, &mut rhs);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.cols(), 3);
        // RᵀR == AᵀA (the compression preserves the Gram matrix).
        let gram_r = matmul_tn(&r, &r);
        let gram_a = matmul_tn(&a, &a);
        assert!(gram_r.approx_eq(&gram_a, 1e-10));
        // And the rhs norm is preserved by the orthogonal transform.
        assert!((rhs.frob_norm() - orig_rhs.frob_norm()).abs() < 1e-12);
    }

    #[test]
    fn compress_rows_wide_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut rhs = Matrix::col_from_slice(&[5.0]);
        let r = compress_rows(&a, &mut rhs);
        assert!(r.approx_eq(&a, 0.0));
        assert_eq!(rhs[(0, 0)], 5.0);
    }

    #[test]
    fn colpiv_full_rank_preserves_gram_and_reports_rank() {
        let a = sample(); // 5x3, full rank
        let qr = ColPivQr::new(a.clone());
        assert_eq!(qr.rank(), 3);
        // RᵀR equals the Gram of the *pivoted* matrix.
        let r = qr.r();
        let mut pivoted = Matrix::zeros(5, 3);
        for (j, &orig) in qr.perm().iter().enumerate() {
            for i in 0..5 {
                pivoted[(i, j)] = a[(i, orig)];
            }
        }
        assert!(matmul_tn(&r, &r).approx_eq(&matmul_tn(&pivoted, &pivoted), 1e-10));
        // Diagonal magnitudes are non-increasing (the rank-revealing
        // property the prefix count relies on).
        for j in 1..3 {
            assert!(r[(j, j)].abs() <= r[(j - 1, j - 1)].abs() + 1e-12);
        }
    }

    #[test]
    fn colpiv_detects_rank_deficiency() {
        // Rank 1: every column a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[2.0, 4.0, -2.0], &[3.0, 6.0, -3.0]]);
        assert_eq!(ColPivQr::new(a).rank(), 1);
        // The zero matrix has rank 0; a zero-row matrix factors trivially.
        assert_eq!(ColPivQr::new(Matrix::zeros(3, 2)).rank(), 0);
        assert_eq!(ColPivQr::new(Matrix::zeros(0, 4)).rank(), 0);
        // Wide matrices are accepted (unlike QrFactor).
        let wide = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[1.0, 0.0, 2.0]]);
        assert_eq!(ColPivQr::new(wide).rank(), 1);
    }

    #[test]
    fn colpiv_apply_qt_is_orthogonal() {
        // Qᵀ preserves column norms and maps the pivoted matrix onto R.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 0.0], &[2.0, 0.0]]);
        let qr = ColPivQr::new(a.clone());
        assert_eq!(qr.rank(), 1);
        let b = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let mut qtb = b.clone();
        qr.apply_qt(&mut qtb);
        for k in 0..2 {
            let n0: f64 = b.col(k).iter().map(|v| v * v).sum();
            let n1: f64 = qtb.col(k).iter().map(|v| v * v).sum();
            assert!((n0 - n1).abs() < 1e-12);
        }
        // Rows below the rank of the transformed matrix itself are zero.
        let mut ta = a.clone();
        qr.apply_qt(&mut ta);
        for i in qr.rank()..4 {
            for j in 0..2 {
                assert!(ta[(i, j)].abs() < 1e-12, "({i},{j}) = {}", ta[(i, j)]);
            }
        }
    }

    #[test]
    fn qr_stacked_equals_qr_of_vstack() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let qr1 = qr_stacked(&[&a, &b]);
        let qr2 = QrFactor::new(Matrix::vstack(&[&a, &b]));
        assert!(qr1.r().approx_eq(&qr2.r(), 0.0));
    }
}

use crate::simd::{self, KernelKind};
use crate::{workspace, DenseError, Matrix, Result};

/// Householder QR factorization `A = Q R` of an `m × n` matrix with `m >= n`
/// (tall or square).
///
/// `Q` is kept in factored form — the Householder vectors live below the
/// diagonal of the packed factor and are applied with [`QrFactor::apply_qt`]
/// / [`QrFactor::apply_q`]; it is never formed explicitly unless
/// [`QrFactor::q_thin`] is requested.  This mirrors how the smoother uses QR:
/// factor a stacked pair of blocks, then apply the same `Qᵀ` to neighbouring
/// blocks and right-hand-side segments.
///
/// Wide-enough factors (`n >=` `QR_BLOCK_MIN_COLS`) are computed *blocked*
/// in panels of `QR_NB` columns with the compact-WY representation
/// (`Q_panel = I − V T Vᵀ`, LAPACK's `dgeqrt`/`dlarfb` scheme): the trailing
/// matrix and every `Qᵀ`/`Q` application then move whole block right-hand
/// sides per panel — `2·n/NB` passes over the data instead of `2·n` — with
/// the `T` factors stored alongside the packed reflectors.  Narrow factors
/// use the per-reflector path ([`QrFactor::new_unblocked`]), which also
/// serves as the reference oracle for the blocked kernels and is forced
/// process-wide by [`crate::set_reference_kernels`].
///
/// The factorization itself never fails; rank deficiency surfaces as a zero
/// diagonal entry of `R` and is reported by the solve routines.
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Packed factor: `R` on and above the diagonal, Householder vectors
    /// (with implicit unit leading entry) below it.
    packed: Matrix,
    /// Householder coefficients, one per reflected column.
    tau: Vec<f64>,
    /// Compact-WY `T` factors: `QR_NB`` × n`, where the columns of panel
    /// `j0` hold that panel's upper-triangular `T`.  `None` for unblocked
    /// factors.
    t: Option<Matrix>,
}

impl Drop for QrFactor {
    fn drop(&mut self) {
        workspace::put_f64(std::mem::take(&mut self.tau));
    }
}

/// Compact-WY panel width of the blocked QR.
pub const QR_NB: usize = 8;
/// Column count from which [`QrFactor::new`] switches to the blocked
/// compact-WY factorization.  Measured on the 1-core container
/// (`fig4 --smoke` crossover sweep, SIMD panel kernels on): the unblocked
/// path wins below n ≈ 128 — every working set fits in cache, so WY's
/// traffic savings don't bite and its `T`/`W` overhead does — while from
/// 128 up the SIMD-ized panel application (`dot_quad`/`axpy_quad` over
/// four companion columns at a time) pulls ahead (1.06x at 128, 1.17x at
/// 192) and the trend favors WY for the paper-scale blocks (n = 500).
pub const QR_BLOCK_MIN_COLS: usize = 128;
/// Column count from which [`QrFactor::new_applying`] stops applying each
/// reflector to the companions *during* the factorization and instead
/// factors first, then sweeps each companion once with
/// [`QrFactor::apply_qt`].  The two orders are bitwise identical (same
/// reflectors, same per-column application order — pinned by
/// `new_applying_is_bitwise_factor_then_apply`); the choice is purely a
/// locality trade.  Measured on the 1-core container (`fig4 --smoke`
/// crossover sweep): below ~n = 32 the factor's working set and the
/// companions fit in cache together, so the fused update is free (1.38x
/// at n = 8); from n = 48 up, interleaving companion columns into the
/// factorization loop evicts the trailing-matrix working set and the
/// fused path loses up to 10% (the `qr/n48`..`qr/n96` regression this
/// constant fixes) — there, factor-then-apply streams each companion in
/// one cache-friendly pass.
pub const QR_FUSED_MAX_COLS: usize = 32;

/// Computes the Householder reflector for `x` in place.
///
/// On return `x[0]` holds `beta` (the new leading entry, `Hx = beta·e₁`) and
/// `x[1..]` holds the reflector tail `v[1..]` (with `v[0] = 1` implicit).
/// Returns the scalar `tau`; `tau == 0` means "no reflection needed".
fn make_householder(x: &mut [f64]) -> f64 {
    let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm == 0.0 {
        return 0.0;
    }
    let alpha = x[0];
    // Choose the sign that avoids cancellation.
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in &mut x[1..] {
        *v *= scale;
    }
    x[0] = beta;
    tau
}

/// Applies `H = I - tau·v·vᵀ` (with `v[0] = 1` implicit, tail `vtail`) to the
/// vector segment `c` of the same length as `v`.
#[inline]
fn apply_householder(vtail: &[f64], tau: f64, c: &mut [f64]) {
    if tau == 0.0 {
        return;
    }
    // w = tau * (vᵀ c)
    let mut w = c[0];
    for (vi, ci) in vtail.iter().zip(&c[1..]) {
        w += vi * ci;
    }
    w *= tau;
    c[0] -= w;
    for (vi, ci) in vtail.iter().zip(&mut c[1..]) {
        *ci -= w * vi;
    }
}

/// Applies one reflector to a contiguous column-major block of columns
/// (`b.len()` is a multiple of `brows`), touching rows `row0..brows` of
/// each, four columns per pass: the reflector tail is loaded once per quad
/// and the four accumulators are independent, so the dot products vectorize
/// across columns instead of forming one serial chain each.
fn apply_reflector_raw(vtail: &[f64], tau: f64, b: &mut [f64], brows: usize, row0: usize) {
    if tau == 0.0 || b.is_empty() {
        return;
    }
    debug_assert_eq!(b.len() % brows, 0);
    debug_assert_eq!(vtail.len(), brows - row0 - 1);
    let tail = vtail.len();
    // One SIMD-layer check per reflector application, not per quad.
    let use_simd = simd::simd_active();
    let mut quads = b.chunks_exact_mut(4 * brows);
    for quad in quads.by_ref() {
        let (c0, rest) = quad.split_at_mut(brows);
        let (c1, rest) = rest.split_at_mut(brows);
        let (c2, c3) = rest.split_at_mut(brows);
        let c0 = &mut c0[row0..];
        let c1 = &mut c1[row0..];
        let c2 = &mut c2[row0..];
        let c3 = &mut c3[row0..];
        if use_simd {
            // Explicit-width tile: pivots travel in `w`, the tails are the
            // four column slices past the pivot row.
            let mut w = [c0[0], c1[0], c2[0], c3[0]];
            let (p0, t0) = c0.split_at_mut(1);
            let (p1, t1) = c1.split_at_mut(1);
            let (p2, t2) = c2.split_at_mut(1);
            let (p3, t3) = c3.split_at_mut(1);
            simd::reflector_quad(vtail, tau, &mut w, [t0, t1, t2, t3]);
            p0[0] -= w[0];
            p1[0] -= w[1];
            p2[0] -= w[2];
            p3[0] -= w[3];
            continue;
        }
        let (mut w0, mut w1, mut w2, mut w3) = (c0[0], c1[0], c2[0], c3[0]);
        {
            let t0 = &c0[1..1 + tail];
            let t1 = &c1[1..1 + tail];
            let t2 = &c2[1..1 + tail];
            let t3 = &c3[1..1 + tail];
            for i in 0..tail {
                let vi = vtail[i];
                w0 += vi * t0[i];
                w1 += vi * t1[i];
                w2 += vi * t2[i];
                w3 += vi * t3[i];
            }
        }
        w0 *= tau;
        w1 *= tau;
        w2 *= tau;
        w3 *= tau;
        c0[0] -= w0;
        c1[0] -= w1;
        c2[0] -= w2;
        c3[0] -= w3;
        let t0 = &mut c0[1..1 + tail];
        let t1 = &mut c1[1..1 + tail];
        let t2 = &mut c2[1..1 + tail];
        let t3 = &mut c3[1..1 + tail];
        for i in 0..tail {
            let vi = vtail[i];
            t0[i] -= w0 * vi;
            t1[i] -= w1 * vi;
            t2[i] -= w2 * vi;
            t3[i] -= w3 * vi;
        }
    }
    for col in quads.into_remainder().chunks_exact_mut(brows) {
        let c = &mut col[row0..];
        if use_simd {
            let (piv, t) = c.split_at_mut(1);
            let mut w = piv[0];
            simd::reflector_one(vtail, tau, &mut w, t);
            piv[0] -= w;
        } else {
            apply_householder(vtail, tau, c);
        }
    }
}

/// Applies one reflector to every column of `b` starting at `row0` (the
/// multi-column hoist of the unblocked fallback: one pass over the packed
/// factor per reflector, not per column).
fn apply_householder_panel(vtail: &[f64], tau: f64, b: &mut Matrix, row0: usize) {
    let brows = b.rows();
    apply_reflector_raw(vtail, tau, b.as_mut_slice(), brows, row0);
}

/// One Householder elimination step shared by [`QrFactor`] and
/// [`ColPivQr`]: reflects column `j` below the diagonal (packing the
/// reflector tail in place) and applies the reflector to the trailing
/// columns up to `col_end`.  Returns `tau`.
fn eliminate_column_within(a: &mut Matrix, j: usize, col_end: usize) -> f64 {
    let rows = a.rows();
    let tau = {
        let col = &mut a.col_mut(j)[j..];
        make_householder(col)
    };
    if tau != 0.0 && col_end > j + 1 {
        let (left, right) = a.split_at_col_mut(j + 1);
        let vtail = &left[j * rows + j + 1..(j + 1) * rows];
        let trailing = &mut right[..(col_end - j - 1) * rows];
        apply_reflector_raw(vtail, tau, trailing, rows, j);
    }
    tau
}

fn eliminate_column(a: &mut Matrix, j: usize) -> f64 {
    eliminate_column_within(a, j, a.cols())
}

/// Applies one compact-WY panel (`I − V T Vᵀ` or its transpose) to the
/// rows `j0..` of a column-major block `b`.
///
/// * `vcols`: column-major storage holding the `V` columns (the packed
///   factor, or its leading columns during the trailing update), with row
///   stride `vrows`; `V` column `jj` of the panel lives in storage column
///   `j0 + jj`, with implicit unit diagonal at row `j0 + jj`.
/// * `t`: the `T` store; this panel's `jb × jb` upper-triangular block sits
///   in columns `j0..j0+jb` (rows `0..jb`).
/// * `forward`: `true` applies `I − V Tᵀ Vᵀ` (that is `Qᵀ_panel`), `false`
///   applies `I − V T Vᵀ` (`Q_panel`).
/// * `b`: raw column-major data with `brows` rows per column and `bcols`
///   columns; rows `j0..brows` of every column are transformed.
#[allow(clippy::too_many_arguments)]
fn panel_apply(
    vcols: &[f64],
    vrows: usize,
    j0: usize,
    jb: usize,
    t: &Matrix,
    forward: bool,
    b: &mut [f64],
    brows: usize,
    bcols: usize,
) {
    debug_assert!(brows >= j0 + jb);
    if bcols == 0 || jb == 0 {
        return;
    }
    let seg = brows - j0;
    // One SIMD-layer check per panel application, not per quad.
    let use_simd = simd::simd_active();
    let mut w = workspace::take_f64(jb * bcols);

    // Phase 1: W = V̂ᵀ B̂, four B columns per pass (independent accumulators
    // vectorize across columns; V stays cache-hot for the whole quad).
    {
        let mut quads = b.chunks_exact(4 * brows);
        let mut k = 0;
        for quad in quads.by_ref() {
            let b0 = &quad[j0..brows];
            let b1 = &quad[brows + j0..2 * brows];
            let b2 = &quad[2 * brows + j0..3 * brows];
            let b3 = &quad[3 * brows + j0..4 * brows];
            for jj in 0..jb {
                let vcol = &vcols[(j0 + jj) * vrows..(j0 + jj + 1) * vrows];
                let vtail = &vcol[j0 + jj + 1..];
                let tail = vtail.len();
                let mut acc = [b0[jj], b1[jj], b2[jj], b3[jj]];
                let t0 = &b0[jj + 1..jj + 1 + tail];
                let t1 = &b1[jj + 1..jj + 1 + tail];
                let t2 = &b2[jj + 1..jj + 1 + tail];
                let t3 = &b3[jj + 1..jj + 1 + tail];
                if use_simd {
                    simd::dot_quad(vtail, [t0, t1, t2, t3], &mut acc);
                } else {
                    for i in 0..tail {
                        let vi = vtail[i];
                        acc[0] += vi * t0[i];
                        acc[1] += vi * t1[i];
                        acc[2] += vi * t2[i];
                        acc[3] += vi * t3[i];
                    }
                }
                w[k * jb + jj] = acc[0];
                w[(k + 1) * jb + jj] = acc[1];
                w[(k + 2) * jb + jj] = acc[2];
                w[(k + 3) * jb + jj] = acc[3];
            }
            k += 4;
        }
        for bk in quads.remainder().chunks_exact(brows) {
            let bk = &bk[j0..];
            let wk = &mut w[k * jb..(k + 1) * jb];
            for (jj, wslot) in wk.iter_mut().enumerate() {
                let vcol = &vcols[(j0 + jj) * vrows..(j0 + jj + 1) * vrows];
                let vtail = &vcol[j0 + jj + 1..];
                let mut acc = bk[jj];
                if use_simd {
                    acc += simd::dot(vtail, &bk[jj + 1..seg]);
                } else {
                    for (vi, bi) in vtail.iter().zip(&bk[jj + 1..seg]) {
                        acc += vi * bi;
                    }
                }
                *wslot = acc;
            }
            k += 1;
        }
    }

    // Phase 2: W ← Tᵀ W (forward) or T W (backward); T is upper triangular.
    for k in 0..bcols {
        let wk = &mut w[k * jb..(k + 1) * jb];
        if forward {
            // (Tᵀ W)[jj] = Σ_{p ≤ jj} T[p, jj]·W[p]: descending keeps the
            // needed W[p] (p < jj) unmodified until read.
            for jj in (0..jb).rev() {
                let mut acc = t[(jj, j0 + jj)] * wk[jj];
                for (p, wp) in wk.iter().enumerate().take(jj) {
                    acc += t[(p, j0 + jj)] * wp;
                }
                wk[jj] = acc;
            }
        } else {
            // (T W)[jj] = Σ_{p ≥ jj} T[jj, p]·W[p]: ascending keeps the
            // needed W[p] (p > jj) unmodified until read.
            for jj in 0..jb {
                let mut acc = t[(jj, j0 + jj)] * wk[jj];
                for p in (jj + 1)..jb {
                    acc += t[(jj, j0 + p)] * wk[p];
                }
                wk[jj] = acc;
            }
        }
    }

    // Phase 3: B̂ −= V̂ W, again four columns per pass.
    {
        let mut quads = b.chunks_exact_mut(4 * brows);
        let mut k = 0;
        for quad in quads.by_ref() {
            let (c0, rest) = quad.split_at_mut(brows);
            let (c1, rest) = rest.split_at_mut(brows);
            let (c2, c3) = rest.split_at_mut(brows);
            let b0 = &mut c0[j0..];
            let b1 = &mut c1[j0..];
            let b2 = &mut c2[j0..];
            let b3 = &mut c3[j0..];
            for jj in 0..jb {
                let (w0, w1, w2, w3) = (
                    w[k * jb + jj],
                    w[(k + 1) * jb + jj],
                    w[(k + 2) * jb + jj],
                    w[(k + 3) * jb + jj],
                );
                let vcol = &vcols[(j0 + jj) * vrows..(j0 + jj + 1) * vrows];
                let vtail = &vcol[j0 + jj + 1..];
                let tail = vtail.len();
                b0[jj] -= w0;
                b1[jj] -= w1;
                b2[jj] -= w2;
                b3[jj] -= w3;
                let t0 = &mut b0[jj + 1..jj + 1 + tail];
                let t1 = &mut b1[jj + 1..jj + 1 + tail];
                let t2 = &mut b2[jj + 1..jj + 1 + tail];
                let t3 = &mut b3[jj + 1..jj + 1 + tail];
                if use_simd {
                    simd::axpy_quad([w0, w1, w2, w3], vtail, [t0, t1, t2, t3]);
                } else {
                    for i in 0..tail {
                        let vi = vtail[i];
                        t0[i] -= w0 * vi;
                        t1[i] -= w1 * vi;
                        t2[i] -= w2 * vi;
                        t3[i] -= w3 * vi;
                    }
                }
            }
            k += 4;
        }
        for bk in quads.into_remainder().chunks_exact_mut(brows) {
            let bk = &mut bk[j0..];
            let wk = &w[k * jb..(k + 1) * jb];
            for (jj, &wv) in wk.iter().enumerate() {
                if wv != 0.0 {
                    let vcol = &vcols[(j0 + jj) * vrows..(j0 + jj + 1) * vrows];
                    let vtail = &vcol[j0 + jj + 1..];
                    bk[jj] -= wv;
                    if use_simd {
                        simd::axpy(-wv, vtail, &mut bk[jj + 1..seg]);
                    } else {
                        for (vi, bi) in vtail.iter().zip(&mut bk[jj + 1..seg]) {
                            *bi -= wv * vi;
                        }
                    }
                }
            }
            k += 1;
        }
    }

    workspace::put_f64(w);
}

/// Builds the compact-WY `T` block for the panel `j0..j0+jb` of `packed`
/// into columns `j0..j0+jb` of `t` (forward accumulation, LAPACK `dlarft`):
/// `T ← [[T_prev, −τ·T_prev·(Vᵀv)], [0, τ]]`.
fn build_t_block(packed: &Matrix, tau: &[f64], j0: usize, jb: usize, t: &mut Matrix) {
    let m = packed.rows();
    let use_simd = simd::simd_active();
    let mut tmp = workspace::take_f64(jb);
    for jj in 0..jb {
        let tj = tau[j0 + jj];
        // Zero this T column first (the store is reused across panels).
        for p in 0..t.rows() {
            t[(p, j0 + jj)] = 0.0;
        }
        t[(jj, j0 + jj)] = tj;
        if jj > 0 && tj != 0.0 {
            // tmp[p] = v_pᵀ v_jj over the shared rows (unit diagonals
            // implicit): v_p[j0+jj]·1 + Σ_{r > j0+jj} v_p[r]·v_jj[r].
            let vjj = &packed.col(j0 + jj)[j0 + jj + 1..];
            for (p, slot) in tmp.iter_mut().enumerate().take(jj) {
                let vp = packed.col(j0 + p);
                let mut acc = vp[j0 + jj];
                if use_simd {
                    acc += simd::dot(&vp[j0 + jj + 1..m], vjj);
                } else {
                    for (x, y) in vp[j0 + jj + 1..m].iter().zip(vjj) {
                        acc += x * y;
                    }
                }
                *slot = acc;
            }
            // T[0..jj, jj] = −τ · T_prev · tmp (T_prev upper triangular).
            for p in 0..jj {
                let mut acc = 0.0;
                for (q, tq) in tmp.iter().enumerate().take(jj).skip(p) {
                    acc += t[(p, j0 + q)] * tq;
                }
                t[(p, j0 + jj)] = -tj * acc;
            }
        }
    }
    workspace::put_f64(tmp);
}

impl QrFactor {
    /// Factorizes `a` (consumed; `m × n` with `m >= n`), choosing the
    /// blocked compact-WY path for wide factors.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() < a.cols()`.
    pub fn new(a: Matrix) -> Self {
        Self::new_applying(a, &mut [])
    }

    /// Factorizes `a` and applies `Qᵀ` to each companion block **during**
    /// the factorization — each reflector (or compact-WY panel) transforms
    /// the companions while it is still cache-hot, instead of re-walking the
    /// packed factor in a separate [`QrFactor::apply_qt`] pass.  The result
    /// is bitwise identical to `QrFactor::new` followed by `apply_qt` on
    /// each companion.
    ///
    /// This is the primitive of the odd-even elimination: factor a stacked
    /// block column, carry the transformation onto the neighbouring block
    /// columns and right-hand sides.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() < a.cols()` or any companion's row count differs
    /// from `a.rows()`.
    pub fn new_applying(mut a: Matrix, companions: &mut [&mut Matrix]) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QrFactor requires rows >= cols, got {m}x{n}");
        for c in companions.iter() {
            assert_eq!(c.rows(), m, "companion row mismatch");
        }
        if n >= QR_BLOCK_MIN_COLS && !workspace::reference_kernels() {
            Self::new_blocked(a, companions)
        } else {
            // Mid-size regime choice (see `QR_FUSED_MAX_COLS`): fuse the
            // companion updates into the factorization for small factors,
            // factor-then-apply for mid-size ones.  The reference oracle
            // keeps the original fused order.
            let fused =
                companions.is_empty() || n < QR_FUSED_MAX_COLS || workspace::reference_kernels();
            let mut tau = workspace::take_f64(n);
            for (j, tj) in tau.iter_mut().enumerate() {
                *tj = eliminate_column(&mut a, j);
                if fused && *tj != 0.0 {
                    let vtail = &a.col(j)[j + 1..];
                    for comp in companions.iter_mut() {
                        apply_householder_panel(vtail, *tj, comp, j);
                    }
                }
            }
            let factor = QrFactor {
                packed: a,
                tau,
                t: None,
            };
            if !fused {
                for comp in companions.iter_mut() {
                    factor.apply_qt(comp);
                }
            }
            factor
        }
    }

    /// The compact-WY blocked factorization unconditionally, regardless of
    /// the `QR_BLOCK_MIN_COLS` dispatch threshold — for callers that know
    /// their blocks are large and for property tests pinning the WY path
    /// against [`QrFactor::new_unblocked`] on every shape.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() < a.cols()` or `a.cols() == 0`.
    pub fn new_compact_wy(a: Matrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QrFactor requires rows >= cols, got {m}x{n}");
        assert!(
            n > 0,
            "compact-WY factorization requires at least one column"
        );
        Self::new_blocked(a, &mut [])
    }

    /// The unblocked reference factorization (per-reflector application),
    /// regardless of size — the oracle the blocked path is tested against.
    pub fn new_unblocked(mut a: Matrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QrFactor requires rows >= cols, got {m}x{n}");
        let mut tau = workspace::take_f64(n);
        for (j, tj) in tau.iter_mut().enumerate() {
            *tj = eliminate_column(&mut a, j);
        }
        QrFactor {
            packed: a,
            tau,
            t: None,
        }
    }

    fn new_blocked(mut a: Matrix, companions: &mut [&mut Matrix]) -> Self {
        let (m, n) = (a.rows(), a.cols());
        let mut tau = workspace::take_f64(n);
        let mut t = Matrix::zeros(QR_NB, n);
        let mut j0 = 0;
        while j0 < n {
            let jb = QR_NB.min(n - j0);
            // Panel factorization: reflectors applied within the panel only.
            for (j, tj) in tau.iter_mut().enumerate().take(j0 + jb).skip(j0) {
                *tj = eliminate_column_within(&mut a, j, j0 + jb);
            }
            build_t_block(&a, &tau, j0, jb, &mut t);
            // Trailing update: one compact-WY application per panel.
            if j0 + jb < n {
                let (vcols, trailing) = a.split_at_col_mut(j0 + jb);
                panel_apply(vcols, m, j0, jb, &t, true, trailing, m, n - (j0 + jb));
            }
            for comp in companions.iter_mut() {
                let bcols = comp.cols();
                panel_apply(
                    a.as_slice(),
                    m,
                    j0,
                    jb,
                    &t,
                    true,
                    comp.as_mut_slice(),
                    m,
                    bcols,
                );
            }
            j0 += jb;
        }
        QrFactor {
            packed: a,
            tau,
            t: Some(t),
        }
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.packed.cols()
    }

    /// The square upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        let mut r = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// Applies `Qᵀ` to `b` in place (`b` must have the same row count as the
    /// factored matrix).  Blocked factors apply whole compact-WY panels
    /// (level-3); unblocked factors sweep reflectors over the full
    /// right-hand-side panel.
    ///
    /// After this call, the top `n` rows of `b` are the "kept" part and the
    /// remaining rows the "residual" part of the transformed block.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn apply_qt(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.rows(), "apply_qt row mismatch");
        let (m, n) = (self.rows(), self.cols());
        if let Some(t) = &self.t {
            let bcols = b.cols();
            let mut j0 = 0;
            while j0 < n {
                let jb = QR_NB.min(n - j0);
                panel_apply(
                    self.packed.as_slice(),
                    m,
                    j0,
                    jb,
                    t,
                    true,
                    b.as_mut_slice(),
                    m,
                    bcols,
                );
                j0 += jb;
            }
        } else {
            for j in 0..n {
                if self.tau[j] == 0.0 {
                    continue;
                }
                let vtail = &self.packed.col(j)[j + 1..];
                apply_householder_panel(vtail, self.tau[j], b, j);
            }
        }
    }

    /// Applies `Q` to `b` in place (reflections in reverse order).
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn apply_q(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.rows(), "apply_q row mismatch");
        let (m, n) = (self.rows(), self.cols());
        if let Some(t) = &self.t {
            let bcols = b.cols();
            // Panels in reverse order, each applying I − V T Vᵀ.
            debug_assert!(n > 0);
            let mut j0 = ((n - 1) / QR_NB) * QR_NB;
            loop {
                let jb = QR_NB.min(n - j0);
                panel_apply(
                    self.packed.as_slice(),
                    m,
                    j0,
                    jb,
                    t,
                    false,
                    b.as_mut_slice(),
                    m,
                    bcols,
                );
                if j0 == 0 {
                    break;
                }
                j0 -= QR_NB;
            }
        } else {
            for j in (0..n).rev() {
                if self.tau[j] == 0.0 {
                    continue;
                }
                let vtail = &self.packed.col(j)[j + 1..];
                // Householder reflections are symmetric: H = Hᵀ.
                apply_householder_panel(vtail, self.tau[j], b, j);
            }
        }
    }

    /// The thin orthonormal factor `Q₁` (`m × n`, `A = Q₁ R`).
    pub fn q_thin(&self) -> Matrix {
        let (m, n) = (self.rows(), self.cols());
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        self.apply_q(&mut q);
        q
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` for each column of
    /// `b`, returning the `n × p` solution.
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::RankDeficient`] if `R` has a zero diagonal entry.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn solve_ls(&self, b: &Matrix) -> Result<Matrix> {
        let mut qtb = b.clone();
        self.apply_qt(&mut qtb);
        let n = self.cols();
        let mut x = qtb.sub_matrix(0, 0, n, b.cols());
        self.solve_r_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `R x = y` in place on `y` using the packed `R` factor.
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::RankDeficient`] if a diagonal entry of `R` is
    /// negligible relative to the largest one (an effective rank test, like
    /// LAPACK's `xTRTRS` callers use for least-squares problems).
    pub fn solve_r_in_place(&self, y: &mut Matrix) -> Result<()> {
        let n = self.cols();
        assert_eq!(y.rows(), n, "solve_r row mismatch");
        let max_diag = (0..n).fold(0.0_f64, |m, j| m.max(self.packed[(j, j)].abs()));
        let tol = max_diag * (self.rows().max(n) as f64) * f64::EPSILON;
        for j in 0..n {
            if self.packed[(j, j)].abs() <= tol {
                return Err(DenseError::RankDeficient { column: j });
            }
        }
        for k in 0..y.cols() {
            let yk = y.col_mut(k);
            for i in (0..n).rev() {
                let mut acc = yk[i];
                for (j, &yj) in yk.iter().enumerate().take(n).skip(i + 1) {
                    acc -= self.packed[(i, j)] * yj;
                }
                yk[i] = acc / self.packed[(i, i)];
            }
        }
        Ok(())
    }

    /// Residual norm contribution `‖(Qᵀb)[n..]‖₂` of a least-squares solve.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn ls_residual_norm(&self, b: &Matrix) -> f64 {
        let mut qtb = b.clone();
        self.apply_qt(&mut qtb);
        let n = self.cols();
        let mut acc = 0.0;
        for k in 0..qtb.cols() {
            for &v in &qtb.col(k)[n..] {
                acc += v * v;
            }
        }
        acc.sqrt()
    }
}

/// Householder QR with greedy column pivoting, `A P = Q R` — a
/// rank-revealing factorization accepting any shape (wide, tall, or empty).
///
/// At every step the column with the largest remaining norm is swapped into
/// pivot position, so the diagonal of `R` is non-increasing in magnitude
/// and the numerical rank is the number of diagonal entries above a
/// tolerance ([`ColPivQr::rank`]).  The leading `rank × rank` block of `R`
/// is nonsingular, which is what exact marginalization of a possibly
/// rank-deficient block column relies on (see `InfoHead::advance` in
/// `kalman-model`): after [`ColPivQr::apply_qt`], the top `rank` rows of a
/// companion block are exactly satisfiable by the eliminated variables and
/// the rows below are untouched by them.
///
/// Column norms are recomputed at each step rather than downdated; the
/// workspace only pivots state-dimension-sized blocks, where the `O(mn·r)`
/// recomputation is noise and immune to downdating cancellation.
#[derive(Debug, Clone)]
pub struct ColPivQr {
    /// Packed factor of the pivoted matrix: `R` on and above the diagonal,
    /// Householder tails below it.
    packed: Matrix,
    /// Householder coefficients, one per eliminated column.
    tau: Vec<f64>,
    /// `perm[j]` = original index of the column now in position `j`.
    perm: Vec<usize>,
}

impl Drop for ColPivQr {
    fn drop(&mut self) {
        workspace::put_f64(std::mem::take(&mut self.tau));
        workspace::put_usize(std::mem::take(&mut self.perm));
    }
}

impl ColPivQr {
    /// Factorizes `a` (consumed; any shape).
    pub fn new(mut a: Matrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        let steps = m.min(n);
        let mut perm = workspace::take_usize(n);
        for (j, p) in perm.iter_mut().enumerate() {
            *p = j;
        }
        let mut tau = workspace::take_f64(steps);
        #[allow(clippy::needless_range_loop)]
        for j in 0..steps {
            // Pivot: bring the column with the largest residual norm to j.
            let mut best = j;
            let mut best_norm = 0.0f64;
            for k in j..n {
                let norm: f64 = a.col(k)[j..].iter().map(|v| v * v).sum();
                if norm > best_norm {
                    best_norm = norm;
                    best = k;
                }
            }
            if best != j {
                let (cj, cb) = a.two_cols_mut(j, best);
                cj.swap_with_slice(cb);
                perm.swap(j, best);
            }
            tau[j] = eliminate_column(&mut a, j);
        }
        ColPivQr {
            packed: a,
            tau,
            perm,
        }
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.packed.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.packed.cols()
    }

    /// The column permutation: position `j` of the factor holds original
    /// column `perm()[j]`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// The (trapezoidal) factor `R`, `min(m, n) × n`, of the *pivoted*
    /// matrix.
    pub fn r(&self) -> Matrix {
        let steps = self.tau.len();
        let mut r = Matrix::zeros(steps, self.cols());
        for j in 0..self.cols() {
            for i in 0..steps.min(j + 1) {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// Numerical rank: the number of leading diagonal entries of `R` above
    /// `max|R_jj| · max(m, n) · ε` (the pivoting makes the diagonal
    /// magnitudes non-increasing, so this is a prefix count).
    pub fn rank(&self) -> usize {
        let steps = self.tau.len();
        let max_diag = (0..steps).fold(0.0_f64, |acc, j| acc.max(self.packed[(j, j)].abs()));
        let tol = max_diag * (self.rows().max(self.cols()) as f64) * f64::EPSILON;
        (0..steps)
            .take_while(|&j| self.packed[(j, j)].abs() > tol)
            .count()
    }

    /// Applies `Qᵀ` to `b` in place (`b` must have the same row count as
    /// the factored matrix).
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.rows()`.
    pub fn apply_qt(&self, b: &mut Matrix) {
        assert_eq!(b.rows(), self.rows(), "apply_qt row mismatch");
        for j in 0..self.tau.len() {
            if self.tau[j] == 0.0 {
                continue;
            }
            let vtail = &self.packed.col(j)[j + 1..];
            apply_householder_panel(vtail, self.tau[j], b, j);
        }
    }
}

/// QR-eliminates the structured stack `[R; D]` — `R` upper triangular
/// (`n × n`), `D` dense (`l × n`) — **in place**: on return `R` holds the
/// new triangular factor and `D` is consumed as reflector storage.  The
/// same orthogonal transformation is applied to each companion, given as a
/// `(top, bottom)` pair of blocks with `n` and `l` rows (a companion whose
/// top block starts at zero receives the fill there; the bottom blocks
/// carry the residual rows).
///
/// This is LAPACK's triangular-pentagonal shape (`tpqrt`): because rows
/// `j+1..n` of stacked column `j` are structurally zero and stay zero, each
/// reflector has length `1 + l` instead of `n + l − j`, cutting the flops
/// of the odd-even elimination's second step by ~40% at `l = n` and
/// skipping the stack/extract copies entirely.  `Qᵀ` is applied during the
/// factorization, so no reflector bookkeeping survives the call.
///
/// # Panics
///
/// Panics on block dimension mismatches.
pub fn qr_tri_stack_applying(
    r: &mut Matrix,
    d: &mut Matrix,
    companions: &mut [(&mut Matrix, &mut Matrix)],
) {
    tri_stack_check(r, d, companions);
    if simd::simd_active() {
        simd::note_simd();
    } else {
        simd::note_scalar();
    }
    tri_stack_body::<0>(r, d, companions);
}

/// [`qr_tri_stack_applying`] with plan-time kernel selection: when `kind`
/// names a monomorphized dimension matching the actual blocks
/// (`n = l = 4, 8 or 16` — the serving hot path's square evolution stacks),
/// the elimination runs the const-generic body, whose fixed trip counts the
/// compiler unrolls and bounds-check-eliminates.  Anything else (including
/// `KernelKind::Auto`, mismatched shapes, or reference mode) falls through
/// to the runtime-dispatched path — the call is always correct, the kind is
/// only a specialization hint bound once at plan time.
pub fn qr_tri_stack_applying_with(
    kind: KernelKind,
    r: &mut Matrix,
    d: &mut Matrix,
    companions: &mut [(&mut Matrix, &mut Matrix)],
) {
    let n = r.rows();
    if kind.active().dim() == Some(n) && d.rows() == n {
        tri_stack_check(r, d, companions);
        simd::note_mono();
        match n {
            4 => tri_stack_body::<4>(r, d, companions),
            8 => tri_stack_body::<8>(r, d, companions),
            _ => tri_stack_body::<16>(r, d, companions),
        }
        return;
    }
    qr_tri_stack_applying(r, d, companions);
}

/// Shared shape validation for the tri-stack entry points.
fn tri_stack_check(r: &Matrix, d: &Matrix, companions: &[(&mut Matrix, &mut Matrix)]) {
    let n = r.rows();
    assert_eq!(r.cols(), n, "qr_tri_stack: R must be square");
    assert_eq!(d.cols(), n, "qr_tri_stack: D column mismatch");
    let l = d.rows();
    for (top, bottom) in companions.iter() {
        assert_eq!(top.rows(), n, "qr_tri_stack: companion top row mismatch");
        assert_eq!(bottom.rows(), l, "qr_tri_stack: companion bottom rows");
        assert_eq!(
            top.cols(),
            bottom.cols(),
            "qr_tri_stack: companion column mismatch"
        );
    }
}

/// The tri-stack elimination body.  `N == 0` is the dynamic shape; `N > 0`
/// monomorphizes the pivot count, column count and `D` row count to `N`
/// (the wrappers guarantee `r` is `N×N` and `d` is `N×N` in that case), so
/// every trip count below is a compile-time constant.
///
/// The dynamic shape also accepts an upper-*trapezoidal* `r` (`m ≤ n` with
/// rows below the diagonal zero): the pivot loop runs over the `m` rows and
/// the trailing updates span all `n` columns, which is exactly phase A of
/// [`qr_trap_stack_applying`].
fn tri_stack_body<const N: usize>(
    r: &mut Matrix,
    d: &mut Matrix,
    companions: &mut [(&mut Matrix, &mut Matrix)],
) {
    let m = if N == 0 { r.rows() } else { N };
    let n = if N == 0 { r.cols() } else { N };
    let l = if N == 0 { d.rows() } else { N };
    // One SIMD-layer check per elimination, not per reflector.
    let use_simd = simd::simd_active();

    for j in 0..m {
        // Reflector from the virtual column [R[j,j]; D[:,j]] (length 1+l).
        let alpha = r[(j, j)];
        let norm2: f64 = alpha * alpha + d.col(j).iter().map(|v| v * v).sum::<f64>();
        if norm2 == 0.0 {
            continue;
        }
        let norm = norm2.sqrt();
        let beta = if alpha >= 0.0 { -norm } else { norm };
        let tau = (beta - alpha) / beta;
        let scale = 1.0 / (alpha - beta);
        r[(j, j)] = beta;
        {
            let dj = d.col_mut(j);
            for v in dj.iter_mut() {
                *v *= scale;
            }
        }

        // Trailing columns of [R; D]: w = R[j,k] + vᵀD[:,k], quads of four
        // columns per pass (independent accumulators, shared v loads).
        if l == 0 {
            // Empty D: the reflector is the scalar flip H = −1.
            for k in (j + 1)..n {
                let w = r[(j, k)] * tau;
                r[(j, k)] -= w;
            }
            for (top, _) in companions.iter_mut() {
                for c in 0..top.cols() {
                    let w = top[(j, c)] * tau;
                    top[(j, c)] -= w;
                }
            }
            continue;
        }
        {
            let (dleft, dright) = d.split_at_col_mut(j + 1);
            let vtail = &dleft[j * l..(j + 1) * l];
            let mut quads = dright.chunks_exact_mut(4 * l);
            let mut k = j + 1;
            for quad in quads.by_ref() {
                let (c0, rest) = quad.split_at_mut(l);
                let (c1, rest) = rest.split_at_mut(l);
                let (c2, c3) = rest.split_at_mut(l);
                if use_simd {
                    let mut w = [r[(j, k)], r[(j, k + 1)], r[(j, k + 2)], r[(j, k + 3)]];
                    simd::reflector_quad(vtail, tau, &mut w, [c0, c1, c2, c3]);
                    r[(j, k)] -= w[0];
                    r[(j, k + 1)] -= w[1];
                    r[(j, k + 2)] -= w[2];
                    r[(j, k + 3)] -= w[3];
                    k += 4;
                    continue;
                }
                let (mut w0, mut w1, mut w2, mut w3) =
                    (r[(j, k)], r[(j, k + 1)], r[(j, k + 2)], r[(j, k + 3)]);
                for i in 0..l {
                    let vi = vtail[i];
                    w0 += vi * c0[i];
                    w1 += vi * c1[i];
                    w2 += vi * c2[i];
                    w3 += vi * c3[i];
                }
                w0 *= tau;
                w1 *= tau;
                w2 *= tau;
                w3 *= tau;
                r[(j, k)] -= w0;
                r[(j, k + 1)] -= w1;
                r[(j, k + 2)] -= w2;
                r[(j, k + 3)] -= w3;
                for i in 0..l {
                    let vi = vtail[i];
                    c0[i] -= w0 * vi;
                    c1[i] -= w1 * vi;
                    c2[i] -= w2 * vi;
                    c3[i] -= w3 * vi;
                }
                k += 4;
            }
            for ck in quads.into_remainder().chunks_exact_mut(l) {
                if use_simd {
                    let mut w = r[(j, k)];
                    simd::reflector_one(vtail, tau, &mut w, ck);
                    r[(j, k)] -= w;
                    k += 1;
                    continue;
                }
                let mut w = 0.0;
                for (vi, xi) in vtail.iter().zip(ck.iter()) {
                    w += vi * xi;
                }
                w = (w + r[(j, k)]) * tau;
                r[(j, k)] -= w;
                for (vi, xi) in vtail.iter().zip(ck.iter_mut()) {
                    *xi -= w * vi;
                }
                k += 1;
            }
        }

        // Companions: same update on (top row j, bottom block), quaded.
        for (top, bottom) in companions.iter_mut() {
            let vtail = d.col(j);
            let bot = bottom.as_mut_slice();
            let mut quads = bot.chunks_exact_mut(4 * l);
            let mut c = 0;
            for quad in quads.by_ref() {
                let (c0, rest) = quad.split_at_mut(l);
                let (c1, rest) = rest.split_at_mut(l);
                let (c2, c3) = rest.split_at_mut(l);
                if use_simd {
                    let mut w = [
                        top[(j, c)],
                        top[(j, c + 1)],
                        top[(j, c + 2)],
                        top[(j, c + 3)],
                    ];
                    simd::reflector_quad(vtail, tau, &mut w, [c0, c1, c2, c3]);
                    top[(j, c)] -= w[0];
                    top[(j, c + 1)] -= w[1];
                    top[(j, c + 2)] -= w[2];
                    top[(j, c + 3)] -= w[3];
                    c += 4;
                    continue;
                }
                let (mut w0, mut w1, mut w2, mut w3) = (
                    top[(j, c)],
                    top[(j, c + 1)],
                    top[(j, c + 2)],
                    top[(j, c + 3)],
                );
                for i in 0..l {
                    let vi = vtail[i];
                    w0 += vi * c0[i];
                    w1 += vi * c1[i];
                    w2 += vi * c2[i];
                    w3 += vi * c3[i];
                }
                w0 *= tau;
                w1 *= tau;
                w2 *= tau;
                w3 *= tau;
                top[(j, c)] -= w0;
                top[(j, c + 1)] -= w1;
                top[(j, c + 2)] -= w2;
                top[(j, c + 3)] -= w3;
                for i in 0..l {
                    let vi = vtail[i];
                    c0[i] -= w0 * vi;
                    c1[i] -= w1 * vi;
                    c2[i] -= w2 * vi;
                    c3[i] -= w3 * vi;
                }
                c += 4;
            }
            for bc in quads.into_remainder().chunks_exact_mut(l) {
                if use_simd {
                    let mut w = top[(j, c)];
                    simd::reflector_one(vtail, tau, &mut w, bc);
                    top[(j, c)] -= w;
                    c += 1;
                    continue;
                }
                let mut w = 0.0;
                for (vi, xi) in vtail.iter().zip(bc.iter()) {
                    w += vi * xi;
                }
                w = (w + top[(j, c)]) * tau;
                top[(j, c)] -= w;
                for (vi, xi) in vtail.iter().zip(bc.iter_mut()) {
                    *xi -= w * vi;
                }
                c += 1;
            }
        }
    }
}

/// Reduces a general `m × n` block to upper-trapezoidal form in place,
/// carrying the same orthogonal transformation onto each companion block
/// (all with `m` rows).
///
/// This is the structured step-1 entry for *short* observation blocks
/// (`m < n`): a full [`QrFactor::new_applying`] would insist on `m ≥ n`
/// (and pad), while the level-0 pre-triangularization only needs the
/// `min(m, n) × n` trapezoid `R̂` and `Qᵀ·rhs`.  On exit the sub-diagonal
/// of `a` is zeroed (the reflector tails are consumed, not returned), so
/// `a` holds the clean trapezoid directly.
pub fn trapezoidalize_applying(a: &mut Matrix, companions: &mut [&mut Matrix]) {
    let (m, n) = (a.rows(), a.cols());
    for comp in companions.iter() {
        assert_eq!(comp.rows(), m, "trapezoidalize: companion row mismatch");
    }
    let steps = m.min(n);
    for j in 0..steps {
        let tau = eliminate_column(a, j);
        if tau == 0.0 {
            continue;
        }
        let acol = a.col(j);
        let vtail = &acol[j + 1..];
        for comp in companions.iter_mut() {
            apply_householder_panel(vtail, tau, comp, j);
        }
    }
    for j in 0..steps {
        for v in &mut a.col_mut(j)[j + 1..] {
            *v = 0.0;
        }
    }
}

/// QR-eliminates the structured stack `[T; D]` where `T` is `m × n` upper
/// *trapezoidal* (`m ≤ n`) and `D` is a dense `l × n` block, transforming
/// companion pairs `(top: m × w, bottom: l × w)` by the same `Qᵀ`.
///
/// This is the step-1 elimination for short observation blocks: after
/// [`trapezoidalize_applying`] compresses an `m < n` observation block to a
/// trapezoid, the odd-even step 1 stacks it on the evolution block without
/// padding `T` back up to `n` rows.  Phase A mirrors
/// [`qr_tri_stack_applying`] — each of the `m` pivots pairs `T[j,j]` with
/// the full `D` column `j` (the trapezoid keeps `T`'s sub-diagonal zero, so
/// those rows never enter a reflector).  Phase B finishes columns
/// `m..min(m+l, n)` *inside* `D` with ordinary Householder steps.
///
/// On exit the triangular factor of the stack is split across the inputs:
/// rows `0..m` of `R̂` are in `T`, and row `m + i` lives in `D` row `i`
/// (columns `≥ m + i` only — entries of `D` below that staircase are spent
/// reflector tails the caller must mask when extracting).  Companion rows
/// follow the same split.
pub fn qr_trap_stack_applying(
    t: &mut Matrix,
    d: &mut Matrix,
    companions: &mut [(&mut Matrix, &mut Matrix)],
) {
    let (m, n) = (t.rows(), t.cols());
    assert!(
        m <= n,
        "qr_trap_stack: T must be upper trapezoidal (m <= n)"
    );
    assert_eq!(d.cols(), n, "qr_trap_stack: D column mismatch");
    let l = d.rows();
    for (top, bottom) in companions.iter() {
        assert_eq!(top.rows(), m, "qr_trap_stack: companion top row mismatch");
        assert_eq!(bottom.rows(), l, "qr_trap_stack: companion bottom rows");
        assert_eq!(
            top.cols(),
            bottom.cols(),
            "qr_trap_stack: companion column mismatch"
        );
    }
    if simd::simd_active() {
        simd::note_simd();
    } else {
        simd::note_scalar();
    }

    // Phase A: one tri-stack pivot per T row.
    tri_stack_body::<0>(t, d, companions);

    // Phase B: eliminate the remaining staircase inside D.  Reflector for
    // column m + jj starts at D row jj; T and the companion tops have no
    // rows at that depth, so only D and the companion bottoms update.
    for jj in 0..l.min(n.saturating_sub(m)) {
        let j = m + jj;
        let tau = {
            let col = &mut d.col_mut(j)[jj..];
            make_householder(col)
        };
        if tau == 0.0 {
            continue;
        }
        {
            let (dleft, dright) = d.split_at_col_mut(j + 1);
            let vtail = &dleft[j * l + jj + 1..(j + 1) * l];
            apply_reflector_raw(vtail, tau, dright, l, jj);
        }
        let dcol = d.col(j);
        let vtail = &dcol[jj + 1..];
        for (_, bottom) in companions.iter_mut() {
            apply_householder_panel(vtail, tau, bottom, jj);
        }
    }
}

/// Convenience: QR-factor the vertical stack `[a; b]` and transform the
/// stacked companion blocks with the same `Qᵀ`.
///
/// This is the primitive the odd-even elimination uses at every step: factor
/// a 2×1 block column and carry the transformation onto neighbouring block
/// columns and right-hand sides.  `companions` are stacked in the same row
/// order as `[a; b]`.
///
/// Returns the factorization of the stack.
pub fn qr_stacked(blocks: &[&Matrix]) -> QrFactor {
    QrFactor::new(Matrix::vstack(blocks))
}

/// Computes a (possibly rectangular) "R compression" of `a`: the
/// upper-triangular `min(m, n) × n` factor of a QR factorization of `a`,
/// used to restore the row-count invariant of the odd-even recursion.
///
/// Unlike [`QrFactor::new`], this accepts wide matrices (`m < n`); in that
/// case the result is `m × n` upper trapezoidal.  The same transformation is
/// applied to `rhs` (in place), whose top `min(m, n)` rows are kept.
pub fn compress_rows(a: &Matrix, rhs: &mut Matrix) -> Matrix {
    compress_rows_owned(a.clone(), rhs)
}

/// [`compress_rows`] taking ownership of `a` (no defensive copy — the hot
/// odd-even compression batch hands over its freshly stacked block).
pub fn compress_rows_owned(a: Matrix, rhs: &mut Matrix) -> Matrix {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(rhs.rows(), m, "compress_rows rhs row mismatch");
    if m <= n {
        // Nothing to compress: already at most n rows.
        return a;
    }
    let qr = QrFactor::new_applying(a, &mut [rhs]);
    // R is n x n upper triangular; keep those rows of the rhs.
    qr.r()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[1.0, 3.0, -2.0],
            &[0.0, 1.0, 1.0],
            &[4.0, 0.0, 2.0],
            &[-1.0, 2.0, 0.0],
        ])
    }

    /// A tall matrix wide enough to exercise the blocked compact-WY path
    /// (several panels, including a partial last one).
    fn wide_sample(m: usize, n: usize) -> Matrix {
        crate::random::deterministic_well_conditioned(m, n)
    }

    #[test]
    fn reconstruction_a_equals_qr() {
        let a = sample();
        let qr = QrFactor::new(a.clone());
        let q = qr.q_thin();
        let r = qr.r();
        let qr_prod = matmul(&q, &r);
        assert!(qr_prod.approx_eq(&a, 1e-12), "QR != A");
    }

    #[test]
    fn q_is_orthonormal() {
        let qr = QrFactor::new(sample());
        let q = qr.q_thin();
        let qtq = matmul_tn(&q, &q);
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn apply_qt_then_q_roundtrips() {
        let qr = QrFactor::new(sample());
        let b = Matrix::from_fn(5, 2, |i, j| (i + 2 * j) as f64);
        let mut t = b.clone();
        qr.apply_qt(&mut t);
        qr.apply_q(&mut t);
        assert!(t.approx_eq(&b, 1e-12));
    }

    #[test]
    fn apply_qt_matches_explicit_q() {
        let a = sample();
        let qr = QrFactor::new(a.clone());
        // Build full Q by applying Q to the 5x5 identity.
        let mut full_q = Matrix::identity(5);
        qr.apply_q(&mut full_q);
        let b = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).sin());
        let mut qt_b = b.clone();
        qr.apply_qt(&mut qt_b);
        let expect = matmul_tn(&full_q, &b);
        assert!(qt_b.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn solve_ls_matches_normal_equations() {
        let a = sample();
        let b = Matrix::col_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let qr = QrFactor::new(a.clone());
        let x = qr.solve_ls(&b).unwrap();
        // Check normal equations: Aᵀ(Ax − b) = 0.
        let ax = matmul(&a, &x);
        let resid = &ax - &b;
        let grad = matmul_tn(&a, &resid);
        assert!(grad.max_abs() < 1e-12, "gradient {:?}", grad);
    }

    #[test]
    fn square_exact_solve() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
        let b = Matrix::col_from_slice(&[9.0, 13.0]);
        let qr = QrFactor::new(a);
        let x = qr.solve_ls(&b).unwrap();
        assert!((x[(0, 0)] - 1.4).abs() < 1e-12);
        assert!((x[(1, 0)] - 3.4).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_reports_column() {
        // Second column is a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = QrFactor::new(a);
        let b = Matrix::col_from_slice(&[1.0, 1.0, 1.0]);
        match qr.solve_ls(&b) {
            Err(DenseError::RankDeficient { column }) => assert_eq!(column, 1),
            other => panic!("expected rank deficiency, got {other:?}"),
        }
    }

    #[test]
    fn residual_norm_is_ls_residual() {
        let a = sample();
        let b = Matrix::col_from_slice(&[1.0, -1.0, 2.0, 0.0, 1.0]);
        let qr = QrFactor::new(a.clone());
        let x = qr.solve_ls(&b).unwrap();
        let resid = &matmul(&a, &x) - &b;
        assert!((qr.ls_residual_norm(&b) - resid.frob_norm()).abs() < 1e-12);
    }

    #[test]
    fn zero_column_gives_zero_tau_not_nan() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0], &[0.0, 3.0]]);
        let qr = QrFactor::new(a);
        let r = qr.r();
        assert_eq!(r[(0, 0)], 0.0);
        assert!(r.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn compress_rows_tall_gives_triangular_same_gram() {
        let a = sample(); // 5x3
        let mut rhs = Matrix::from_fn(5, 1, |i, _| i as f64 + 1.0);
        let orig_rhs = rhs.clone();
        let r = compress_rows(&a, &mut rhs);
        assert_eq!(r.rows(), 3);
        assert_eq!(r.cols(), 3);
        // RᵀR == AᵀA (the compression preserves the Gram matrix).
        let gram_r = matmul_tn(&r, &r);
        let gram_a = matmul_tn(&a, &a);
        assert!(gram_r.approx_eq(&gram_a, 1e-10));
        // And the rhs norm is preserved by the orthogonal transform.
        assert!((rhs.frob_norm() - orig_rhs.frob_norm()).abs() < 1e-12);
    }

    #[test]
    fn compress_rows_wide_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let mut rhs = Matrix::col_from_slice(&[5.0]);
        let r = compress_rows(&a, &mut rhs);
        assert!(r.approx_eq(&a, 0.0));
        assert_eq!(rhs[(0, 0)], 5.0);
    }

    // ---- Blocked compact-WY vs unblocked reference -------------------------

    /// Blocked and unblocked factors of the same matrix agree to rounding,
    /// and the blocked Q is orthogonal with Q·R reconstructing A, across
    /// sizes covering one panel, several panels, and partial panels.
    #[test]
    fn blocked_factor_matches_unblocked_reference() {
        for (m, n) in [(16, 16), (40, 17), (48, 24), (96, 41), (33, 32), (300, 260)] {
            let a = wide_sample(m, n);
            // Construct the blocked factor directly (the production
            // dispatch in `new` only engages it above QR_BLOCK_MIN_COLS).
            let blocked = QrFactor::new_blocked(a.clone(), &mut []);
            assert!(blocked.t.is_some(), "expected a compact-WY factor at n={n}");
            let reference = QrFactor::new_unblocked(a.clone());
            let scale = 1.0 + reference.r().max_abs();
            assert!(
                blocked.r().approx_eq(&reference.r(), 1e-12 * scale),
                "R mismatch at {m}x{n}: {}",
                blocked.r().max_abs_diff(&reference.r())
            );

            // Q orthonormal + reconstruction through the blocked applies.
            let q = blocked.q_thin();
            assert!(matmul_tn(&q, &q).approx_eq(&Matrix::identity(n), 1e-12));
            assert!(matmul(&q, &blocked.r()).approx_eq(&a, 1e-11 * scale));

            // apply_qt agrees with the reference factor's apply_qt.
            let b = Matrix::from_fn(m, 5, |i, j| ((i * 3 + j * 11) as f64).cos());
            let mut tb = b.clone();
            blocked.apply_qt(&mut tb);
            let mut rb = b.clone();
            reference.apply_qt(&mut rb);
            assert!(
                tb.approx_eq(&rb, 1e-11 * (1.0 + rb.max_abs())),
                "apply_qt mismatch at {m}x{n}"
            );

            // Round-trip through the blocked apply_q.
            blocked.apply_q(&mut tb);
            assert!(tb.approx_eq(&b, 1e-11 * (1.0 + b.max_abs())));
        }
    }

    /// `new_applying` must equal factor-then-apply bitwise, in both the
    /// unblocked and blocked regimes.
    #[test]
    fn new_applying_is_bitwise_factor_then_apply() {
        for (m, n) in [(7, 3), (40, 20)] {
            let a = wide_sample(m, n);
            let b1 = Matrix::from_fn(m, 4, |i, j| (i * 5 + j) as f64 * 0.25);
            let b2 = Matrix::from_fn(m, 1, |i, _| (i as f64).sqrt());

            let qr_ref = QrFactor::new(a.clone());
            let mut c1 = b1.clone();
            let mut c2 = b2.clone();
            qr_ref.apply_qt(&mut c1);
            qr_ref.apply_qt(&mut c2);

            let mut d1 = b1.clone();
            let mut d2 = b2.clone();
            let qr_fused = QrFactor::new_applying(a.clone(), &mut [&mut d1, &mut d2]);
            assert!(qr_fused.r().approx_eq(&qr_ref.r(), 0.0), "{m}x{n} R");
            assert!(d1.approx_eq(&c1, 0.0), "{m}x{n} companion 1");
            assert!(d2.approx_eq(&c2, 0.0), "{m}x{n} companion 2");

            // Same contract in the compact-WY regime (forced directly).
            let wy_ref = QrFactor::new_blocked(a.clone(), &mut []);
            let mut e1 = b1.clone();
            let mut e2 = b2.clone();
            wy_ref.apply_qt(&mut e1);
            wy_ref.apply_qt(&mut e2);
            let mut f1 = b1.clone();
            let mut f2 = b2.clone();
            let wy_fused = QrFactor::new_blocked(a.clone(), &mut [&mut f1, &mut f2]);
            assert!(wy_fused.r().approx_eq(&wy_ref.r(), 0.0), "{m}x{n} WY R");
            assert!(f1.approx_eq(&e1, 0.0), "{m}x{n} WY companion 1");
            assert!(f2.approx_eq(&e2, 0.0), "{m}x{n} WY companion 2");
        }
    }

    #[test]
    fn blocked_handles_rank_deficient_columns() {
        // Columns 3..6 duplicate 0..3: tau hits 0 inside a panel.
        let base = wide_sample(40, 8);
        let mut a = Matrix::zeros(40, 16);
        for j in 0..8 {
            a.set_block(0, j, &base.sub_matrix(0, j, 40, 1));
            a.set_block(0, 8 + j, &base.sub_matrix(0, j, 40, 1));
        }
        let qr = QrFactor::new_blocked(a.clone(), &mut []);
        let q = qr.q_thin();
        assert!(matmul(&q, &qr.r()).approx_eq(&a, 1e-10 * (1.0 + a.max_abs())));
        let reference = QrFactor::new_unblocked(a.clone());
        assert!(qr
            .r()
            .approx_eq(&reference.r(), 1e-10 * (1.0 + reference.r().max_abs())));
    }

    #[test]
    fn colpiv_full_rank_preserves_gram_and_reports_rank() {
        let a = sample(); // 5x3, full rank
        let qr = ColPivQr::new(a.clone());
        assert_eq!(qr.rank(), 3);
        // RᵀR equals the Gram of the *pivoted* matrix.
        let r = qr.r();
        let mut pivoted = Matrix::zeros(5, 3);
        for (j, &orig) in qr.perm().iter().enumerate() {
            for i in 0..5 {
                pivoted[(i, j)] = a[(i, orig)];
            }
        }
        assert!(matmul_tn(&r, &r).approx_eq(&matmul_tn(&pivoted, &pivoted), 1e-10));
        // Diagonal magnitudes are non-increasing (the rank-revealing
        // property the prefix count relies on).
        for j in 1..3 {
            assert!(r[(j, j)].abs() <= r[(j - 1, j - 1)].abs() + 1e-12);
        }
    }

    #[test]
    fn colpiv_detects_rank_deficiency() {
        // Rank 1: every column a multiple of the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[2.0, 4.0, -2.0], &[3.0, 6.0, -3.0]]);
        assert_eq!(ColPivQr::new(a).rank(), 1);
        // The zero matrix has rank 0; a zero-row matrix factors trivially.
        assert_eq!(ColPivQr::new(Matrix::zeros(3, 2)).rank(), 0);
        assert_eq!(ColPivQr::new(Matrix::zeros(0, 4)).rank(), 0);
        // Wide matrices are accepted (unlike QrFactor).
        let wide = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[1.0, 0.0, 2.0]]);
        assert_eq!(ColPivQr::new(wide).rank(), 1);
    }

    #[test]
    fn colpiv_apply_qt_is_orthogonal() {
        // Qᵀ preserves column norms and maps the pivoted matrix onto R.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 0.0], &[2.0, 0.0]]);
        let qr = ColPivQr::new(a.clone());
        assert_eq!(qr.rank(), 1);
        let b = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let mut qtb = b.clone();
        qr.apply_qt(&mut qtb);
        for k in 0..2 {
            let n0: f64 = b.col(k).iter().map(|v| v * v).sum();
            let n1: f64 = qtb.col(k).iter().map(|v| v * v).sum();
            assert!((n0 - n1).abs() < 1e-12);
        }
        // Rows below the rank of the transformed matrix itself are zero.
        let mut ta = a.clone();
        qr.apply_qt(&mut ta);
        for i in qr.rank()..4 {
            for j in 0..2 {
                assert!(ta[(i, j)].abs() < 1e-12, "({i},{j}) = {}", ta[(i, j)]);
            }
        }
    }

    #[test]
    fn tri_stack_preserves_augmented_gram() {
        use crate::gemm::matmul_tn;
        for (n, l, w) in [(4usize, 3usize, 2usize), (8, 8, 5), (6, 0, 1), (5, 9, 4)] {
            let r0 = wide_sample(n, n).upper_triangular_part();
            let d0 = wide_sample(l.max(1), n).sub_matrix(0, 0, l, n);
            let top0 = wide_sample(n, w);
            let bot0 = wide_sample(l.max(1), w).sub_matrix(0, 0, l, w);

            let mut r = r0.clone();
            let mut d = d0.clone();
            let mut top = top0.clone();
            let mut bot = bot0.clone();
            qr_tri_stack_applying(&mut r, &mut d, &mut [(&mut top, &mut bot)]);

            // R' stays upper triangular.
            for j in 0..n {
                for i in (j + 1)..n {
                    assert_eq!(r[(i, j)], 0.0, "({i},{j}) filled at n={n} l={l}");
                }
            }
            let scale = 1.0 + r0.max_abs() + d0.max_abs();
            // R'ᵀR' == RᵀR + DᵀD (the transformed stack is [R'; 0]).
            let lhs = matmul_tn(&r, &r);
            let rhs = &matmul_tn(&r0, &r0) + &matmul_tn(&d0, &d0);
            assert!(lhs.approx_eq(&rhs, 1e-11 * scale), "stack gram n={n} l={l}");
            // R'ᵀ·top' == RᵀT + DᵀB.
            let lhs = matmul_tn(&r, &top);
            let rhs = &matmul_tn(&r0, &top0) + &matmul_tn(&d0, &bot0);
            assert!(lhs.approx_eq(&rhs, 1e-11 * scale), "cross gram n={n} l={l}");
            // top'ᵀtop' + bot'ᵀbot' == TᵀT + BᵀB (orthogonality).
            let lhs = &matmul_tn(&top, &top) + &matmul_tn(&bot, &bot);
            let rhs = &matmul_tn(&top0, &top0) + &matmul_tn(&bot0, &bot0);
            assert!(lhs.approx_eq(&rhs, 1e-11 * scale), "comp gram n={n} l={l}");
        }
    }

    #[test]
    fn mono_tri_stack_matches_dynamic_bitwise() {
        use crate::simd::KernelKind;
        for n in [4usize, 8, 16] {
            let r0 = wide_sample(n, n).upper_triangular_part();
            let d0 = wide_sample(n, n);
            let top0 = wide_sample(n, 3);
            let bot0 = wide_sample(n, 3);

            let (mut r_a, mut d_a) = (r0.clone(), d0.clone());
            let (mut top_a, mut bot_a) = (top0.clone(), bot0.clone());
            qr_tri_stack_applying(&mut r_a, &mut d_a, &mut [(&mut top_a, &mut bot_a)]);

            let (mut r_b, mut d_b) = (r0.clone(), d0.clone());
            let (mut top_b, mut bot_b) = (top0.clone(), bot0.clone());
            let kind = KernelKind::for_dim(n);
            assert_eq!(kind.dim(), Some(n));
            qr_tri_stack_applying_with(kind, &mut r_b, &mut d_b, &mut [(&mut top_b, &mut bot_b)]);

            // The monomorphized body runs the identical arithmetic sequence,
            // so the match is bitwise, whatever the SIMD layer is doing.
            assert!(r_a.approx_eq(&r_b, 0.0), "mono R n={n}");
            assert!(d_a.approx_eq(&d_b, 0.0), "mono D n={n}");
            assert!(top_a.approx_eq(&top_b, 0.0), "mono top n={n}");
            assert!(bot_a.approx_eq(&bot_b, 0.0), "mono bot n={n}");

            // A mismatched hint must fall back, not mis-specialize.
            let (mut r_c, mut d_c) = (r0.clone(), d0.clone());
            let wrong = if n == 4 {
                KernelKind::Mono8
            } else {
                KernelKind::Mono4
            };
            qr_tri_stack_applying_with(wrong, &mut r_c, &mut d_c, &mut []);
            let (mut r_d, mut d_d) = (r0.clone(), d0.clone());
            qr_tri_stack_applying(&mut r_d, &mut d_d, &mut []);
            assert!(r_c.approx_eq(&r_d, 0.0), "fallback R n={n}");
            assert!(d_c.approx_eq(&d_d, 0.0), "fallback D n={n}");
        }
    }

    #[test]
    fn trapezoidalize_preserves_gram_and_shape() {
        use crate::gemm::matmul_tn;
        for (m, n, w) in [(3usize, 5usize, 2usize), (4, 4, 3), (6, 3, 1), (1, 4, 2)] {
            let a0 = wide_sample(m, n);
            let rhs0 = wide_sample(m, w);
            let mut a = a0.clone();
            let mut rhs = rhs0.clone();
            trapezoidalize_applying(&mut a, &mut [&mut rhs]);

            for j in 0..m.min(n) {
                for i in (j + 1)..m {
                    assert_eq!(a[(i, j)], 0.0, "({i},{j}) not cleared m={m} n={n}");
                }
            }
            let scale = 1.0 + a0.max_abs() + rhs0.max_abs();
            // Orthogonal invariants: RᵀR == AᵀA, Rᵀ(Qᵀrhs) == Aᵀrhs,
            // and Qᵀ preserves companion norms.
            let lhs = matmul_tn(&a, &a);
            let rhs_g = matmul_tn(&a0, &a0);
            assert!(lhs.approx_eq(&rhs_g, 1e-11 * scale), "trap gram {m}x{n}");
            let lhs = matmul_tn(&a, &rhs);
            let rhs_g = matmul_tn(&a0, &rhs0);
            assert!(lhs.approx_eq(&rhs_g, 1e-11 * scale), "trap cross {m}x{n}");
            let lhs = matmul_tn(&rhs, &rhs);
            let rhs_g = matmul_tn(&rhs0, &rhs0);
            assert!(lhs.approx_eq(&rhs_g, 1e-11 * scale), "trap comp {m}x{n}");
        }
    }

    #[test]
    fn trap_stack_preserves_augmented_gram() {
        use crate::gemm::matmul_tn;
        for (m, l, w, n) in [
            (2usize, 4usize, 3usize, 5usize),
            (3, 2, 2, 6),
            (0, 4, 2, 3),
            (2, 0, 1, 4),
            (4, 4, 2, 4),
        ] {
            let t0 = {
                let mut t = wide_sample(m.max(1), n).sub_matrix(0, 0, m, n);
                for j in 0..m.min(n) {
                    for i in (j + 1)..m {
                        t[(i, j)] = 0.0;
                    }
                }
                t
            };
            let d0 = wide_sample(l.max(1), n).sub_matrix(0, 0, l, n);
            let top0 = wide_sample(m.max(1), w).sub_matrix(0, 0, m, w);
            let bot0 = wide_sample(l.max(1), w).sub_matrix(0, 0, l, w);

            let mut t = t0.clone();
            let mut d = d0.clone();
            let mut top = top0.clone();
            let mut bot = bot0.clone();
            qr_trap_stack_applying(&mut t, &mut d, &mut [(&mut top, &mut bot)]);

            // Assemble the k×n triangular factor: T rows, then the D
            // staircase rows (masked below their diagonal), and the matching
            // k×w companion rows.
            let steps = l.min(n.saturating_sub(m));
            let k = m + steps;
            let mut rhat = Matrix::zeros(k, n);
            let mut chat = Matrix::zeros(k, w);
            for j in 0..n {
                for i in 0..m.min(j + 1) {
                    rhat[(i, j)] = t[(i, j)];
                }
                if j >= m {
                    for i in 0..steps.min(j - m + 1) {
                        rhat[(m + i, j)] = d[(i, j)];
                    }
                }
            }
            for c in 0..w {
                for i in 0..m {
                    chat[(i, c)] = top[(i, c)];
                }
                for i in 0..steps {
                    chat[(m + i, c)] = bot[(i, c)];
                }
            }

            let scale = 1.0 + t0.max_abs() + d0.max_abs() + top0.max_abs() + bot0.max_abs();
            let lhs = matmul_tn(&rhat, &rhat);
            let rhs = &matmul_tn(&t0, &t0) + &matmul_tn(&d0, &d0);
            assert!(
                lhs.approx_eq(&rhs, 1e-11 * scale),
                "trapstack gram m={m} l={l} n={n}"
            );
            let lhs = matmul_tn(&rhat, &chat);
            let rhs = &matmul_tn(&t0, &top0) + &matmul_tn(&d0, &bot0);
            assert!(
                lhs.approx_eq(&rhs, 1e-11 * scale),
                "trapstack cross m={m} l={l} n={n}"
            );
            let lhs = &matmul_tn(&top, &top) + &matmul_tn(&bot, &bot);
            let rhs = &matmul_tn(&top0, &top0) + &matmul_tn(&bot0, &bot0);
            assert!(
                lhs.approx_eq(&rhs, 1e-11 * scale),
                "trapstack comp m={m} l={l} n={n}"
            );
        }
    }

    #[test]
    fn qr_stacked_equals_qr_of_vstack() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let qr1 = qr_stacked(&[&a, &b]);
        let qr2 = QrFactor::new(Matrix::vstack(&[&a, &b]));
        assert!(qr1.r().approx_eq(&qr2.r(), 0.0));
    }
}

//! Random matrix generators for synthetic benchmark problems.
//!
//! The paper's test problems (§5.2) use *random fixed orthonormal* evolution
//! and observation matrices (to avoid growth/shrinkage of the state, hence
//! overflow/underflow over millions of steps), random observations, and
//! identity covariances.  These generators provide exactly those building
//! blocks, plus ill-conditioned SPD matrices for the stability experiments.

use crate::{Cholesky, Matrix, QrFactor};
use rand::Rng;

/// Draws a standard-normal sample using the Box–Muller transform.
///
/// (The `rand` crate alone does not ship a normal distribution; this keeps
/// the dependency footprint to the crates blessed for this reproduction.)
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.random::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// An `m × n` matrix with i.i.d. standard-normal entries.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, m: usize, n: usize) -> Matrix {
    Matrix::from_fn(m, n, |_, _| standard_normal(rng))
}

/// A length-`n` vector with i.i.d. standard-normal entries.
pub fn gaussian_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

/// A Haar-distributed random `n × n` orthonormal matrix.
///
/// Computed as the `Q` factor of a Gaussian matrix with the sign fix
/// `Q ← Q·sign(diag(R))` that makes the distribution exactly Haar.
pub fn orthonormal<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    orthonormal_rect(rng, n, n)
}

/// A random `m × n` matrix with orthonormal columns (`m >= n`).
///
/// # Panics
///
/// Panics if `m < n`.
pub fn orthonormal_rect<R: Rng + ?Sized>(rng: &mut R, m: usize, n: usize) -> Matrix {
    assert!(m >= n, "orthonormal_rect requires m >= n");
    let g = gaussian(rng, m, n);
    let qr = QrFactor::new(g);
    let mut q = qr.q_thin();
    let r = qr.r();
    // Sign fix: multiply column j by sign(R[j,j]).
    for j in 0..n {
        if r[(j, j)] < 0.0 {
            for v in q.col_mut(j) {
                *v = -*v;
            }
        }
    }
    q
}

/// A random SPD matrix with 2-norm condition number approximately `cond`.
///
/// Built as `Q·D·Qᵀ` with `Q` Haar-orthonormal and `D` log-spaced between
/// `1` and `1/cond`.  Used by the stability experiment, which sweeps the
/// conditioning of the noise covariances.
///
/// # Panics
///
/// Panics if `cond < 1`.
pub fn spd_with_condition<R: Rng + ?Sized>(rng: &mut R, n: usize, cond: f64) -> Matrix {
    assert!(cond >= 1.0, "condition number must be >= 1");
    let q = orthonormal(rng, n);
    let diag: Vec<f64> = if n == 1 {
        vec![1.0]
    } else {
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1) as f64;
                // log-spaced from 1 down to 1/cond
                (-t * cond.ln()).exp()
            })
            .collect()
    };
    let d = Matrix::from_diag(&diag);
    let mut a = crate::gemm::matmul(&crate::gemm::matmul(&q, &d), &q.transpose());
    a.symmetrize();
    a
}

/// A random SPD matrix that is well conditioned (condition number ≤ ~10).
pub fn spd<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    spd_with_condition(rng, n, 10.0)
}

/// Draws a sample from `N(0, C)` given the Cholesky factor of `C`.
pub fn sample_gaussian_cov<R: Rng + ?Sized>(rng: &mut R, chol: &Cholesky) -> Vec<f64> {
    let z = gaussian_vec(rng, chol.dim());
    chol.l().mul_vec(&z)
}

/// A deterministic, well-conditioned test matrix (no RNG): hashed
/// pseudo-random entries in ≈[−0.5, 0.5] with a boosted diagonal.  Shared
/// by the kernel property tests and the benchmark harness so both exercise
/// the same distribution (a low-rank matrix would leave `Q` numerically
/// arbitrary outside the column space, voiding oracle comparisons).
pub fn deterministic_well_conditioned(rows: usize, cols: usize) -> crate::Matrix {
    crate::Matrix::from_fn(rows, cols, |i, j| {
        let h = (i
            .wrapping_mul(2654435761)
            .wrapping_add(j.wrapping_mul(97003999))
            % 10007) as f64;
        h / 10007.0 - 0.5 + if i == j { 2.0 } else { 0.0 }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_tn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn orthonormal_is_orthonormal() {
        let mut r = rng();
        for n in [1, 2, 6, 13] {
            let q = orthonormal(&mut r, n);
            let qtq = matmul_tn(&q, &q);
            assert!(
                qtq.approx_eq(&Matrix::identity(n), 1e-12),
                "QᵀQ != I for n={n}"
            );
        }
    }

    #[test]
    fn orthonormal_rect_columns() {
        let mut r = rng();
        let q = orthonormal_rect(&mut r, 8, 3);
        let qtq = matmul_tn(&q, &q);
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn spd_with_condition_is_spd_and_conditioned() {
        let mut r = rng();
        let a = spd_with_condition(&mut r, 5, 1e6);
        let ch = Cholesky::new(&a);
        assert!(ch.is_ok(), "not SPD");
        // Eigenvalue extremes are 1 and 1e-6 by construction; check via
        // Rayleigh-ish bounds: max diag of QDQᵀ ≤ λmax = 1 + eps.
        assert!(a.max_abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn sampling_with_covariance_runs() {
        let mut r = rng();
        let c = spd(&mut r, 4);
        let ch = Cholesky::new(&c).unwrap();
        let s = sample_gaussian_cov(&mut r, &ch);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gaussian(&mut rng(), 3, 3);
        let b = gaussian(&mut rng(), 3, 3);
        assert!(a.approx_eq(&b, 0.0));
    }
}

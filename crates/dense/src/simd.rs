//! Explicit-width SIMD microkernels and plan-time kernel selection.
//!
//! This module is the crate's one island of `unsafe`: f64×4 tiles written
//! against `core::arch` x86_64 AVX2/FMA intrinsics, with a portable 4-lane
//! fallback in plain Rust for every kernel.  The backend is runtime-dispatched
//! once (the first caller runs `is_x86_feature_detected!` and the verdict is
//! cached), so steady-state calls pay a single relaxed atomic load.
//!
//! Three layers of kernels coexist, and the scalar layer is the oracle:
//!
//! * **scalar** — the original loop nests in `gemm.rs` / `qr.rs` / `tri.rs`,
//!   always reachable via `KALMAN_REF_KERNELS` / `set_reference_kernels`,
//! * **SIMD** — the width-aware tiles in this module, used by the blocked
//!   GEMM microkernel, the four-column Householder applications and the
//!   triangular solves whenever [`simd_kernels`] is on and reference mode
//!   is off,
//! * **monomorphized** — const-generic `n ∈ {4, 8, 16}` kernels
//!   ([`gemm_mono`], and the tri-stack bodies in `qr.rs`), selected at plan
//!   time through [`KernelKind`] so a `SmoothPlan` binds the exact kernel
//!   once instead of re-dispatching per call.
//!
//! **Accuracy contract**: the FMA tiles fuse multiply and add into a single
//! rounding, so SIMD results are *not* bitwise-equal to the scalar oracle —
//! they agree to the usual `O(ε·‖·‖)` backward-error tolerance, which the
//! proptest suite pins (`crates/dense/tests/proptests.rs`).  What *is*
//! bitwise-stable is determinism: every kernel here is a pure function of
//! its operands, so sequential and parallel smoother runs stay bitwise
//! identical with SIMD active (pinned in `tests/determinism.rs`).
//!
//! Dispatch outcomes are counted ([`kernel_dispatch_counts`]) and exported
//! as `dense.kernel.dispatch.*` sampled gauges by
//! [`register_workspace_gauges`](crate::workspace::register_workspace_gauges).
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use crate::workspace;

// ---------------------------------------------------------------------------
// Switches and runtime dispatch
// ---------------------------------------------------------------------------

/// Process-wide SIMD switch: paired value/init flags, same lazy-env pattern
/// as `workspace::REFERENCE_KERNELS`.
static SIMD_KERNELS: AtomicBool = AtomicBool::new(true);
static SIMD_KERNELS_INIT: AtomicBool = AtomicBool::new(false);
/// Forces the portable 4-lane fallback even where AVX2 is available — lets
/// the test suite pin the portable lanes on AVX2 hosts.
static FORCE_PORTABLE: AtomicBool = AtomicBool::new(false);
/// Cached CPU verdict: 0 = undetected, 1 = no AVX2/FMA, 2 = AVX2+FMA.
static AVX2: AtomicU8 = AtomicU8::new(0);

/// Enables or disables the explicit-width SIMD kernels process-wide
/// (default: enabled unless the `KALMAN_SIMD` environment variable is set
/// to `0`).  With SIMD off, callers fall back to the tuned scalar loops —
/// the same paths `KALMAN_REF_KERNELS` exercises wholesale.  The benchmark
/// harness flips this to isolate the SIMD contribution within one process.
pub fn set_simd_kernels(on: bool) {
    // Relaxed on both: callers flip this during single-threaded setup (the
    // bench harness, or the lazy env-derived init below, which is
    // idempotent) — thread spawn/join provides the happens-before edge for
    // any worker that later reads the flags.
    SIMD_KERNELS.store(on, Ordering::Relaxed);
    SIMD_KERNELS_INIT.store(true, Ordering::Relaxed); // Relaxed: see the setup/happens-before argument above.
}

/// `true` when the explicit-width SIMD kernels are enabled.
pub fn simd_kernels() -> bool {
    // Relaxed: the lazy init is idempotent (every racer derives the same
    // value from the environment), so no ordering is needed.
    if !SIMD_KERNELS_INIT.load(Ordering::Relaxed) {
        let on = !std::env::var("KALMAN_SIMD").is_ok_and(|v| v == "0" || v == "off");
        set_simd_kernels(on);
        return on;
    }
    SIMD_KERNELS.load(Ordering::Relaxed) // Relaxed: same idempotent-init argument as above.
}

/// Forces the portable 4-lane fallback kernels even on AVX2 hardware.
/// Test-suite hook: lets the proptests pin the portable lanes against the
/// scalar oracle on machines where AVX2 would normally win dispatch.
pub fn set_portable_kernels(on: bool) {
    // Relaxed: independent on/off test hook flipped during single-threaded
    // setup; either value leaves every kernel correct.
    FORCE_PORTABLE.store(on, Ordering::Relaxed);
}

/// `true` while the portable fallback is forced via [`set_portable_kernels`].
pub fn portable_kernels() -> bool {
    // Relaxed: see `set_portable_kernels` — an independent flag, no other
    // memory is published under it.
    FORCE_PORTABLE.load(Ordering::Relaxed)
}

/// `true` when SIMD tiles should be used: the SIMD switch is on and the
/// scalar reference oracle is not forced.
#[inline]
pub(crate) fn simd_active() -> bool {
    simd_kernels() && !workspace::reference_kernels()
}

#[cfg(target_arch = "x86_64")]
fn detect_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// `true` when the AVX2/FMA implementations should run (CPU support
/// detected, portable fallback not forced).  The detection verdict is
/// cached after the first call.
#[inline]
fn use_avx2() -> bool {
    if portable_kernels() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // Relaxed loads/stores throughout: the cached verdict is an
        // idempotent pure function of the CPU, so racing initializers all
        // store the same value and no ordering is needed.
        match AVX2.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let on = detect_avx2();
                AVX2.store(if on { 2 } else { 1 }, Ordering::Relaxed); // Relaxed: same idempotent-detection argument.
                on
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Which backend the SIMD layer would run right now: `"avx2"`,
/// `"portable"`, or `"scalar"` when the SIMD layer is disabled (switch off
/// or reference oracle forced).  Surfaced by `phase_profile` and useful in
/// CI logs on runners without AVX2.
pub fn simd_backend() -> &'static str {
    if !simd_active() {
        "scalar"
    } else if use_avx2() {
        "avx2"
    } else {
        "portable"
    }
}

// ---------------------------------------------------------------------------
// Dispatch counters (exported as `dense.kernel.dispatch.*` gauges)
// ---------------------------------------------------------------------------

static SCALAR_HITS: AtomicU64 = AtomicU64::new(0);
static SIMD_HITS: AtomicU64 = AtomicU64::new(0);
static MONO_HITS: AtomicU64 = AtomicU64::new(0);

/// Records one kernel-entry dispatch to the scalar path.
#[inline]
pub(crate) fn note_scalar() {
    // Relaxed: statistical counter, never synchronizes anything.
    SCALAR_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records one kernel-entry dispatch to the SIMD tiles.
#[inline]
pub(crate) fn note_simd() {
    // Relaxed: statistical counter, never synchronizes anything.
    SIMD_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records one kernel-entry dispatch to a monomorphized kernel.
#[inline]
pub(crate) fn note_mono() {
    // Relaxed: statistical counter, never synchronizes anything.
    MONO_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Cumulative `(scalar, simd, mono)` kernel-entry dispatch counts for this
/// process.  Counted once per kernel *entry* (a GEMM call, a reflector
/// application, a stack factorization), not per tile, so the counters cost
/// one relaxed add each and still show exactly which ladder rung served the
/// workload.
pub fn kernel_dispatch_counts() -> (u64, u64, u64) {
    // Relaxed: statistical counters; a torn cross-counter snapshot is fine.
    (
        SCALAR_HITS.load(Ordering::Relaxed), // Relaxed: statistical counter.
        SIMD_HITS.load(Ordering::Relaxed),   // Relaxed: statistical counter.
        MONO_HITS.load(Ordering::Relaxed),   // Relaxed: statistical counter.
    )
}

// ---------------------------------------------------------------------------
// Plan-time kernel selection
// ---------------------------------------------------------------------------

/// Plan-time kernel selection for the monomorphized small-`n` kernels.
///
/// A `PlanSchedule`'s shape signature fixes every block dimension of the
/// smoothing recursion, so the plan can pick the kernel family **once**:
/// uniform state dimension `n ∈ {4, 8, 16}` selects the const-generic
/// monomorphized GEMM / tri-stack kernels, anything else runs the
/// runtime-dispatched ladder.  Execution then binds the monomorphic kernel
/// without per-call dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelKind {
    /// Runtime-dispatched kernels for arbitrary dimensions.
    #[default]
    Auto,
    /// Monomorphized kernels for state dimension 4.
    Mono4,
    /// Monomorphized kernels for state dimension 8.
    Mono8,
    /// Monomorphized kernels for state dimension 16.
    Mono16,
}

impl KernelKind {
    /// Selection for a single uniform block dimension.
    pub fn for_dim(n: usize) -> Self {
        match n {
            4 => KernelKind::Mono4,
            8 => KernelKind::Mono8,
            16 => KernelKind::Mono16,
            _ => KernelKind::Auto,
        }
    }

    /// Selection for a sequence of block dimensions: monomorphized only when
    /// every block shares one of the specialized sizes.
    pub fn for_dims<I: IntoIterator<Item = usize>>(dims: I) -> Self {
        let mut it = dims.into_iter();
        let Some(first) = it.next() else {
            return KernelKind::Auto;
        };
        if it.all(|d| d == first) {
            KernelKind::for_dim(first)
        } else {
            KernelKind::Auto
        }
    }

    /// The specialized dimension, or `None` for [`KernelKind::Auto`].
    pub fn dim(self) -> Option<usize> {
        match self {
            KernelKind::Auto => None,
            KernelKind::Mono4 => Some(4),
            KernelKind::Mono8 => Some(8),
            KernelKind::Mono16 => Some(16),
        }
    }

    /// Resolves the plan-time selection against the process-wide kernel
    /// switches: the scalar reference oracle (`KALMAN_REF_KERNELS`) demotes
    /// every selection to [`KernelKind::Auto`].  Executors call this once
    /// per solve, then bind the returned kind for the whole execution.
    pub fn active(self) -> Self {
        if workspace::reference_kernels() {
            KernelKind::Auto
        } else {
            self
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel: dot product
// ---------------------------------------------------------------------------

/// # Safety
///
/// Caller must ensure AVX2 and FMA are available on the executing CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let n = x.len();
    let (px, py) = (x.as_ptr(), y.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(px.add(i + 4)),
            _mm256_loadu_pd(py.add(i + 4)),
            acc1,
        );
        i += 8;
    }
    if i + 4 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)), acc0);
        i += 4;
    }
    let mut s = hsum4(_mm256_add_pd(acc0, acc1));
    while i < n {
        s += x[i] * y[i];
        i += 1;
    }
    s
}

/// Horizontal sum of a 4-lane f64 vector.
///
/// # Safety
///
/// Caller must ensure AVX2 is available on the executing CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum4(v: core::arch::x86_64::__m256d) -> f64 {
    use core::arch::x86_64::*;
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd::<1>(v);
    let s = _mm_add_pd(lo, hi);
    _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
}

fn dot_portable(x: &[f64], y: &[f64]) -> f64 {
    // Four explicit lanes so the summation order (and thus the result)
    // matches intent regardless of autovectorization.
    let mut lanes = [0.0f64; 4];
    let mut chunks = x.chunks_exact(4).zip(y.chunks_exact(4));
    for (xc, yc) in &mut chunks {
        for l in 0..4 {
            lanes[l] += xc[l] * yc[l];
        }
    }
    let mut s = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    let tail = x.len() - x.len() % 4;
    for (xi, yi) in x[tail..].iter().zip(&y[tail..]) {
        s += xi * yi;
    }
    s
}

/// SIMD dot product `x · y` (lengths must match).  Lane-parallel summation:
/// agrees with the scalar left-to-right sum to rounding, not bitwise.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` is true only after `is_x86_feature_detected!`
        // confirmed AVX2+FMA on this CPU.
        return unsafe { dot_avx2(x, y) };
    }
    dot_portable(x, y)
}

// ---------------------------------------------------------------------------
// Kernel: axpy
// ---------------------------------------------------------------------------

/// # Safety
///
/// Caller must ensure AVX2 and FMA are available on the executing CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    use core::arch::x86_64::*;
    let n = x.len();
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        let yv = _mm256_fmadd_pd(av, _mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)));
        _mm256_storeu_pd(py.add(i), yv);
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

/// SIMD axpy: `y += alpha·x` (lengths must match).  Elementwise, so lane
/// width changes rounding (FMA) but never ordering.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` is true only after `is_x86_feature_detected!`
        // confirmed AVX2+FMA on this CPU.
        return unsafe { axpy_avx2(alpha, x, y) };
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

// ---------------------------------------------------------------------------
// Kernel: blocked-GEMM 4×4 microtile
// ---------------------------------------------------------------------------

/// # Safety
///
/// Caller must ensure AVX2 and FMA are available on the executing CPU.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_microkernel_4x4_avx2(a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; 4]; 4]) {
    use core::arch::x86_64::*;
    let mut r0 = _mm256_loadu_pd(acc[0].as_ptr());
    let mut r1 = _mm256_loadu_pd(acc[1].as_ptr());
    let mut r2 = _mm256_loadu_pd(acc[2].as_ptr());
    let mut r3 = _mm256_loadu_pd(acc[3].as_ptr());
    let depth = a_panel.len() / 4;
    let (pa, pb) = (a_panel.as_ptr(), b_panel.as_ptr());
    for p in 0..depth {
        let ap = pa.add(4 * p);
        let bv = _mm256_loadu_pd(pb.add(4 * p));
        r0 = _mm256_fmadd_pd(_mm256_set1_pd(*ap), bv, r0);
        r1 = _mm256_fmadd_pd(_mm256_set1_pd(*ap.add(1)), bv, r1);
        r2 = _mm256_fmadd_pd(_mm256_set1_pd(*ap.add(2)), bv, r2);
        r3 = _mm256_fmadd_pd(_mm256_set1_pd(*ap.add(3)), bv, r3);
    }
    _mm256_storeu_pd(acc[0].as_mut_ptr(), r0);
    _mm256_storeu_pd(acc[1].as_mut_ptr(), r1);
    _mm256_storeu_pd(acc[2].as_mut_ptr(), r2);
    _mm256_storeu_pd(acc[3].as_mut_ptr(), r3);
}

fn gemm_microkernel_4x4_portable(a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; 4]; 4]) {
    for (ap, bp) in a_panel.chunks_exact(4).zip(b_panel.chunks_exact(4)) {
        for (acc_row, &av) in acc.iter_mut().zip(ap) {
            for (cij, &bv) in acc_row.iter_mut().zip(bp) {
                *cij += av * bv;
            }
        }
    }
}

/// The blocked GEMM's register microtile: `acc[i][j] += Σ_p a[p·4+i]·b[p·4+j]`
/// over packed `MR = NR = 4` panels (`a_panel` row-strips of `A`, `b_panel`
/// column-strips of `op(B)`, both zero-padded by the packer).  Panel lengths
/// must match; any non-multiple-of-4 remainder is ignored (the packer never
/// produces one).
pub fn gemm_microkernel_4x4(a_panel: &[f64], b_panel: &[f64], acc: &mut [[f64; 4]; 4]) {
    debug_assert_eq!(a_panel.len(), b_panel.len());
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` is true only after `is_x86_feature_detected!`
        // confirmed AVX2+FMA on this CPU.
        return unsafe { gemm_microkernel_4x4_avx2(a_panel, b_panel, acc) };
    }
    gemm_microkernel_4x4_portable(a_panel, b_panel, acc)
}

// ---------------------------------------------------------------------------
// Kernel: Householder reflector application (1 and 4 columns)
// ---------------------------------------------------------------------------

/// # Safety
///
/// Caller must ensure AVX2 and FMA are available on the executing CPU, and
/// that each column slice is at least `v.len()` long.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn reflector_quad_avx2(v: &[f64], tau: f64, w: &mut [f64; 4], cols: [&mut [f64]; 4]) {
    use core::arch::x86_64::*;
    let len = v.len();
    let pv = v.as_ptr();
    let [c0, c1, c2, c3] = cols;
    let (p0, p1, p2, p3) = (
        c0.as_mut_ptr(),
        c1.as_mut_ptr(),
        c2.as_mut_ptr(),
        c3.as_mut_ptr(),
    );
    // Phase 1: w_q ← τ·(w_q + v·c_q), sharing every load of v across the
    // four columns.
    let mut s0 = _mm256_setzero_pd();
    let mut s1 = _mm256_setzero_pd();
    let mut s2 = _mm256_setzero_pd();
    let mut s3 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= len {
        let vv = _mm256_loadu_pd(pv.add(i));
        s0 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(p0.add(i)), s0);
        s1 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(p1.add(i)), s1);
        s2 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(p2.add(i)), s2);
        s3 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(p3.add(i)), s3);
        i += 4;
    }
    let (mut w0, mut w1, mut w2, mut w3) = (hsum4(s0), hsum4(s1), hsum4(s2), hsum4(s3));
    while i < len {
        let vi = v[i];
        w0 += vi * *p0.add(i);
        w1 += vi * *p1.add(i);
        w2 += vi * *p2.add(i);
        w3 += vi * *p3.add(i);
        i += 1;
    }
    w[0] = tau * (w[0] + w0);
    w[1] = tau * (w[1] + w1);
    w[2] = tau * (w[2] + w2);
    w[3] = tau * (w[3] + w3);
    // Phase 2: c_q ← c_q − w_q·v.
    let (wv0, wv1, wv2, wv3) = (
        _mm256_set1_pd(w[0]),
        _mm256_set1_pd(w[1]),
        _mm256_set1_pd(w[2]),
        _mm256_set1_pd(w[3]),
    );
    let mut i = 0;
    while i + 4 <= len {
        let vv = _mm256_loadu_pd(pv.add(i));
        _mm256_storeu_pd(
            p0.add(i),
            _mm256_fnmadd_pd(wv0, vv, _mm256_loadu_pd(p0.add(i))),
        );
        _mm256_storeu_pd(
            p1.add(i),
            _mm256_fnmadd_pd(wv1, vv, _mm256_loadu_pd(p1.add(i))),
        );
        _mm256_storeu_pd(
            p2.add(i),
            _mm256_fnmadd_pd(wv2, vv, _mm256_loadu_pd(p2.add(i))),
        );
        _mm256_storeu_pd(
            p3.add(i),
            _mm256_fnmadd_pd(wv3, vv, _mm256_loadu_pd(p3.add(i))),
        );
        i += 4;
    }
    while i < len {
        let vi = v[i];
        *p0.add(i) -= w[0] * vi;
        *p1.add(i) -= w[1] * vi;
        *p2.add(i) -= w[2] * vi;
        *p3.add(i) -= w[3] * vi;
        i += 1;
    }
}

fn reflector_quad_portable(v: &[f64], tau: f64, w: &mut [f64; 4], cols: [&mut [f64]; 4]) {
    let len = v.len();
    let [c0, c1, c2, c3] = cols;
    let (mut w0, mut w1, mut w2, mut w3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..len {
        let vi = v[i];
        w0 += vi * c0[i];
        w1 += vi * c1[i];
        w2 += vi * c2[i];
        w3 += vi * c3[i];
    }
    w[0] = tau * (w[0] + w0);
    w[1] = tau * (w[1] + w1);
    w[2] = tau * (w[2] + w2);
    w[3] = tau * (w[3] + w3);
    for i in 0..len {
        let vi = v[i];
        c0[i] -= w[0] * vi;
        c1[i] -= w[1] * vi;
        c2[i] -= w[2] * vi;
        c3[i] -= w[3] * vi;
    }
}

/// Applies one Householder reflector `(v, τ)` to four column tails at once:
/// on entry `w[q]` holds the pivot entry of column `q`; on exit
/// `w[q] = τ·(pivot_q + v·c_q)` and `c_q ← c_q − w[q]·v`.  The caller
/// finishes the pivots (`pivot_q −= w[q]`) — they may live at arbitrary
/// strides (matrix rows), which is exactly why they travel in `w`.
/// Each `cols[q]` must be at least `v.len()` long; only the first `v.len()`
/// entries are touched.
pub fn reflector_quad(v: &[f64], tau: f64, w: &mut [f64; 4], cols: [&mut [f64]; 4]) {
    debug_assert!(cols.iter().all(|c| c.len() >= v.len()));
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` is true only after `is_x86_feature_detected!`
        // confirmed AVX2+FMA on this CPU; the debug assertion above (and the
        // callers' slice constructions) guarantee each column holds at least
        // `v.len()` elements.
        return unsafe { reflector_quad_avx2(v, tau, w, cols) };
    }
    reflector_quad_portable(v, tau, w, cols)
}

/// Single-column variant of [`reflector_quad`]: `*w = τ·(*w + v·col)` and
/// `col ← col − *w·v`, caller finishes the pivot.
pub fn reflector_one(v: &[f64], tau: f64, w: &mut f64, col: &mut [f64]) {
    debug_assert!(col.len() >= v.len());
    *w = tau * (*w + dot(v, &col[..v.len()]));
    axpy(-*w, v, &mut col[..v.len()]);
}

// ---------------------------------------------------------------------------
// Kernels: shared-vector quad dot / quad axpy (compact-WY panel phases)
// ---------------------------------------------------------------------------

/// # Safety
///
/// Caller must ensure AVX2 and FMA are available on the executing CPU, and
/// that each column slice is at least `v.len()` long.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_quad_avx2(v: &[f64], cols: [&[f64]; 4], acc: &mut [f64; 4]) {
    use core::arch::x86_64::*;
    let len = v.len();
    let pv = v.as_ptr();
    let [c0, c1, c2, c3] = cols;
    let (p0, p1, p2, p3) = (c0.as_ptr(), c1.as_ptr(), c2.as_ptr(), c3.as_ptr());
    let mut s0 = _mm256_setzero_pd();
    let mut s1 = _mm256_setzero_pd();
    let mut s2 = _mm256_setzero_pd();
    let mut s3 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= len {
        let vv = _mm256_loadu_pd(pv.add(i));
        s0 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(p0.add(i)), s0);
        s1 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(p1.add(i)), s1);
        s2 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(p2.add(i)), s2);
        s3 = _mm256_fmadd_pd(vv, _mm256_loadu_pd(p3.add(i)), s3);
        i += 4;
    }
    let (mut a0, mut a1, mut a2, mut a3) = (hsum4(s0), hsum4(s1), hsum4(s2), hsum4(s3));
    while i < len {
        let vi = v[i];
        a0 += vi * *p0.add(i);
        a1 += vi * *p1.add(i);
        a2 += vi * *p2.add(i);
        a3 += vi * *p3.add(i);
        i += 1;
    }
    acc[0] += a0;
    acc[1] += a1;
    acc[2] += a2;
    acc[3] += a3;
}

fn dot_quad_portable(v: &[f64], cols: [&[f64]; 4], acc: &mut [f64; 4]) {
    let [c0, c1, c2, c3] = cols;
    let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
    for (i, &vi) in v.iter().enumerate() {
        a0 += vi * c0[i];
        a1 += vi * c1[i];
        a2 += vi * c2[i];
        a3 += vi * c3[i];
    }
    acc[0] += a0;
    acc[1] += a1;
    acc[2] += a2;
    acc[3] += a3;
}

/// Four dot products against one shared vector: `acc[q] += v · cols[q]`,
/// loading `v` once per lane-quad for all four columns.  The compact-WY
/// panel's `W = V̂ᵀ B̂` phase is this shape.  Each `cols[q]` must be at least
/// `v.len()` long; only the first `v.len()` entries are read.
pub fn dot_quad(v: &[f64], cols: [&[f64]; 4], acc: &mut [f64; 4]) {
    debug_assert!(cols.iter().all(|c| c.len() >= v.len()));
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` is true only after `is_x86_feature_detected!`
        // confirmed AVX2+FMA on this CPU; the debug assertion above (and the
        // callers' slice constructions) guarantee each column holds at least
        // `v.len()` elements.
        return unsafe { dot_quad_avx2(v, cols, acc) };
    }
    dot_quad_portable(v, cols, acc)
}

/// # Safety
///
/// Caller must ensure AVX2 and FMA are available on the executing CPU, and
/// that each column slice is at least `v.len()` long.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_quad_avx2(w: [f64; 4], v: &[f64], cols: [&mut [f64]; 4]) {
    use core::arch::x86_64::*;
    let len = v.len();
    let pv = v.as_ptr();
    let [c0, c1, c2, c3] = cols;
    let (p0, p1, p2, p3) = (
        c0.as_mut_ptr(),
        c1.as_mut_ptr(),
        c2.as_mut_ptr(),
        c3.as_mut_ptr(),
    );
    let (wv0, wv1, wv2, wv3) = (
        _mm256_set1_pd(w[0]),
        _mm256_set1_pd(w[1]),
        _mm256_set1_pd(w[2]),
        _mm256_set1_pd(w[3]),
    );
    let mut i = 0;
    while i + 4 <= len {
        let vv = _mm256_loadu_pd(pv.add(i));
        _mm256_storeu_pd(
            p0.add(i),
            _mm256_fnmadd_pd(wv0, vv, _mm256_loadu_pd(p0.add(i))),
        );
        _mm256_storeu_pd(
            p1.add(i),
            _mm256_fnmadd_pd(wv1, vv, _mm256_loadu_pd(p1.add(i))),
        );
        _mm256_storeu_pd(
            p2.add(i),
            _mm256_fnmadd_pd(wv2, vv, _mm256_loadu_pd(p2.add(i))),
        );
        _mm256_storeu_pd(
            p3.add(i),
            _mm256_fnmadd_pd(wv3, vv, _mm256_loadu_pd(p3.add(i))),
        );
        i += 4;
    }
    while i < len {
        let vi = v[i];
        *p0.add(i) -= w[0] * vi;
        *p1.add(i) -= w[1] * vi;
        *p2.add(i) -= w[2] * vi;
        *p3.add(i) -= w[3] * vi;
        i += 1;
    }
}

fn axpy_quad_portable(w: [f64; 4], v: &[f64], cols: [&mut [f64]; 4]) {
    let [c0, c1, c2, c3] = cols;
    for (i, &vi) in v.iter().enumerate() {
        c0[i] -= w[0] * vi;
        c1[i] -= w[1] * vi;
        c2[i] -= w[2] * vi;
        c3[i] -= w[3] * vi;
    }
}

/// Four rank-1 updates against one shared vector: `cols[q] ← cols[q] −
/// w[q]·v`, loading `v` once per lane-quad for all four columns.  The
/// compact-WY panel's `B̂ −= V̂ W` phase is this shape.  Each `cols[q]` must
/// be at least `v.len()` long; only the first `v.len()` entries are touched.
pub fn axpy_quad(w: [f64; 4], v: &[f64], cols: [&mut [f64]; 4]) {
    debug_assert!(cols.iter().all(|c| c.len() >= v.len()));
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` is true only after `is_x86_feature_detected!`
        // confirmed AVX2+FMA on this CPU; the debug assertion above (and the
        // callers' slice constructions) guarantee each column holds at least
        // `v.len()` elements.
        return unsafe { axpy_quad_avx2(w, v, cols) };
    }
    axpy_quad_portable(w, v, cols)
}

// ---------------------------------------------------------------------------
// Kernel: const-generic monomorphized GEMM (n ∈ {4, 8, 16})
// ---------------------------------------------------------------------------

/// # Safety
///
/// Caller must ensure AVX2 and FMA are available on the executing CPU, and
/// that `a`, `b`, `c` each hold exactly `N·N` elements with `N % 4 == 0`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_mono_avx2<const N: usize>(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    b_trans: bool,
    beta: f64,
    c: &mut [f64],
) {
    use core::arch::x86_64::*;
    let nq = N / 4;
    let pa = a.as_ptr();
    for j in 0..N {
        let cj = c.as_mut_ptr().add(j * N);
        // N ≤ 16 so at most four 4-lane accumulators per column — the whole
        // C column stays in registers across the k loop.
        let mut acc = [_mm256_setzero_pd(); 4];
        if beta != 0.0 {
            let bv = _mm256_set1_pd(beta);
            for (q, lane) in acc.iter_mut().enumerate().take(nq) {
                *lane = _mm256_mul_pd(_mm256_loadu_pd(cj.add(4 * q)), bv);
            }
        }
        for k in 0..N {
            let bkj = if b_trans { b[j + k * N] } else { b[k + j * N] };
            let coeff = _mm256_set1_pd(alpha * bkj);
            let ak = pa.add(k * N);
            for (q, lane) in acc.iter_mut().enumerate().take(nq) {
                *lane = _mm256_fmadd_pd(coeff, _mm256_loadu_pd(ak.add(4 * q)), *lane);
            }
        }
        for (q, lane) in acc.iter().enumerate().take(nq) {
            _mm256_storeu_pd(cj.add(4 * q), *lane);
        }
    }
}

fn gemm_mono_portable<const N: usize>(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    b_trans: bool,
    beta: f64,
    c: &mut [f64],
) {
    for j in 0..N {
        let cj = &mut c[j * N..(j + 1) * N];
        if beta == 0.0 {
            cj.fill(0.0);
        } else if beta != 1.0 {
            for x in cj.iter_mut() {
                *x *= beta;
            }
        }
        for k in 0..N {
            let coeff = alpha * if b_trans { b[j + k * N] } else { b[k + j * N] };
            for (ci, &ai) in cj.iter_mut().zip(&a[k * N..(k + 1) * N]) {
                *ci += coeff * ai;
            }
        }
    }
}

/// Monomorphized `C ← β·C + α·A·op(B)` for `N×N` column-major blocks,
/// `N ∈ {4, 8, 16}` (any `N` with `N % 4 == 0`, `N ≤ 16`).  `b_trans`
/// selects `op(B) = Bᵀ`; `A` is never transposed (the smoother's SelInv and
/// combination formulas only need the `Trans::No × {No, Yes}` cases at
/// these sizes).  The whole operation is register-resident on AVX2.
pub fn gemm_mono<const N: usize>(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    b_trans: bool,
    beta: f64,
    c: &mut [f64],
) {
    assert!(
        N.is_multiple_of(4) && N <= 16,
        "gemm_mono: unsupported width"
    );
    assert_eq!(a.len(), N * N, "gemm_mono: A must be N×N");
    assert_eq!(b.len(), N * N, "gemm_mono: B must be N×N");
    assert_eq!(c.len(), N * N, "gemm_mono: C must be N×N");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2()` is true only after `is_x86_feature_detected!`
        // confirmed AVX2+FMA on this CPU; the shape assertions above pin the
        // N·N slice lengths the implementation indexes.
        return unsafe { gemm_mono_avx2::<N>(alpha, a, b, b_trans, beta, c) };
    }
    gemm_mono_portable::<N>(alpha, a, b, b_trans, beta, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot_ref(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn kernel_kind_selection() {
        assert_eq!(KernelKind::for_dim(4), KernelKind::Mono4);
        assert_eq!(KernelKind::for_dim(8), KernelKind::Mono8);
        assert_eq!(KernelKind::for_dim(16), KernelKind::Mono16);
        assert_eq!(KernelKind::for_dim(6), KernelKind::Auto);
        assert_eq!(KernelKind::for_dims([8, 8, 8]), KernelKind::Mono8);
        assert_eq!(KernelKind::for_dims([8, 4, 8]), KernelKind::Auto);
        assert_eq!(KernelKind::for_dims(std::iter::empty()), KernelKind::Auto);
        assert_eq!(KernelKind::Mono16.dim(), Some(16));
    }

    #[test]
    fn dot_axpy_match_reference() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 33] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64).cos() - 0.5).collect();
            let d = dot(&x, &y);
            assert!((d - dot_ref(&x, &y)).abs() <= 1e-12 * (1.0 + d.abs()));
            let mut z = y.clone();
            axpy(0.7, &x, &mut z);
            for i in 0..n {
                let want = y[i] + 0.7 * x[i];
                assert!((z[i] - want).abs() <= 1e-12 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn microtile_matches_scalar_accumulation() {
        let depth = 5;
        let a: Vec<f64> = (0..4 * depth).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..4 * depth).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut acc = [[0.25f64; 4]; 4];
        let mut want = acc;
        for p in 0..depth {
            for (ir, row) in want.iter_mut().enumerate() {
                for (jr, cij) in row.iter_mut().enumerate() {
                    *cij += a[4 * p + ir] * b[4 * p + jr];
                }
            }
        }
        gemm_microkernel_4x4(&a, &b, &mut acc);
        for (row, wrow) in acc.iter().zip(&want) {
            for (got, wanted) in row.iter().zip(wrow) {
                assert!((got - wanted).abs() <= 1e-12 * (1.0 + wanted.abs()));
            }
        }
    }
}

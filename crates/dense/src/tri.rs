//! Triangular solves and inverses.
//!
//! These kernels are used heavily by both SelInv variants (which need
//! `R_jj⁻¹ · B`, `R_jj⁻ᵀ · B`, and `R_jj⁻¹R_jj⁻ᵀ`) and by the
//! back-substitution phases of the QR smoothers.  All of them check for zero
//! diagonal entries and report [`DenseError::Singular`].

use crate::{simd, DenseError, Matrix, Result};

fn check_diag(u: &Matrix) -> Result<()> {
    assert!(u.is_square(), "triangular solve requires a square matrix");
    for i in 0..u.rows() {
        if u[(i, i)] == 0.0 {
            return Err(DenseError::Singular { index: i });
        }
    }
    Ok(())
}

/// Solves `U x = b` in place for each column of `b`, with `U` upper triangular.
///
/// Only the upper triangle of `u` is referenced.  Column-oriented (axpy)
/// back substitution: the inner updates sweep contiguous columns of `u`,
/// which vectorizes, unlike the classic strided row-dot formulation.
///
/// # Errors
///
/// [`DenseError::Singular`] if `U` has a zero diagonal entry.
pub fn solve_upper_in_place(u: &Matrix, b: &mut Matrix) -> Result<()> {
    check_diag(u)?;
    let n = u.rows();
    assert_eq!(b.rows(), n, "solve_upper rhs row mismatch");
    let use_simd = simd::simd_active();
    for k in 0..b.cols() {
        let bk = b.col_mut(k);
        for j in (0..n).rev() {
            let uj = u.col(j);
            let xj = bk[j] / uj[j];
            bk[j] = xj;
            if xj != 0.0 {
                if use_simd {
                    simd::axpy(-xj, &uj[..j], &mut bk[..j]);
                } else {
                    for (bi, &uij) in bk[..j].iter_mut().zip(uj) {
                        *bi -= uij * xj;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Solves `Uᵀ x = b` in place for each column of `b`, with `U` upper
/// triangular (so `Uᵀ` is lower triangular).  The dot against column `i`
/// of `u` is contiguous.
///
/// # Errors
///
/// [`DenseError::Singular`] if `U` has a zero diagonal entry.
pub fn solve_upper_transpose_in_place(u: &Matrix, b: &mut Matrix) -> Result<()> {
    check_diag(u)?;
    let n = u.rows();
    assert_eq!(b.rows(), n, "solve_upper_transpose rhs row mismatch");
    let use_simd = simd::simd_active();
    for k in 0..b.cols() {
        let bk = b.col_mut(k);
        for i in 0..n {
            let ui = u.col(i);
            let mut acc = bk[i];
            // (Uᵀ)[i][j] = U[j][i] for j < i — a contiguous column prefix.
            if use_simd {
                acc -= simd::dot(&ui[..i], &bk[..i]);
            } else {
                for (&uji, &bj) in ui[..i].iter().zip(bk.iter()) {
                    acc -= uji * bj;
                }
            }
            bk[i] = acc / ui[i];
        }
    }
    Ok(())
}

/// Solves `L x = b` in place for each column of `b`, with `L` lower triangular.
///
/// Only the lower triangle of `l` is referenced.  Column-oriented (axpy)
/// forward substitution with contiguous column updates.
///
/// # Errors
///
/// [`DenseError::Singular`] if `L` has a zero diagonal entry.
pub fn solve_lower_in_place(l: &Matrix, b: &mut Matrix) -> Result<()> {
    check_diag(l)?;
    let n = l.rows();
    assert_eq!(b.rows(), n, "solve_lower rhs row mismatch");
    let use_simd = simd::simd_active();
    for k in 0..b.cols() {
        let bk = b.col_mut(k);
        for j in 0..n {
            let lj = l.col(j);
            let xj = bk[j] / lj[j];
            bk[j] = xj;
            if xj != 0.0 {
                if use_simd {
                    simd::axpy(-xj, &lj[j + 1..], &mut bk[j + 1..]);
                } else {
                    for (bi, &lij) in bk[j + 1..].iter_mut().zip(&lj[j + 1..]) {
                        *bi -= lij * xj;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Solves `Lᵀ x = b` in place for each column of `b`, with `L` lower
/// triangular.  The dot against column `i` of `l` is contiguous.
///
/// # Errors
///
/// [`DenseError::Singular`] if `L` has a zero diagonal entry.
pub fn solve_lower_transpose_in_place(l: &Matrix, b: &mut Matrix) -> Result<()> {
    check_diag(l)?;
    let n = l.rows();
    assert_eq!(b.rows(), n, "solve_lower_transpose rhs row mismatch");
    let use_simd = simd::simd_active();
    for k in 0..b.cols() {
        let bk = b.col_mut(k);
        for i in (0..n).rev() {
            let li = l.col(i);
            let mut acc = bk[i];
            // (Lᵀ)[i][j] = L[j][i] for j > i — a contiguous column suffix.
            if use_simd {
                acc -= simd::dot(&li[i + 1..], &bk[i + 1..]);
            } else {
                for (&lji, &bj) in li[i + 1..].iter().zip(bk[i + 1..].iter()) {
                    acc -= lji * bj;
                }
            }
            bk[i] = acc / li[i];
        }
    }
    Ok(())
}

/// Solves `X U = B` in place on `b` (i.e. `X = B U⁻¹`), `U` upper triangular.
///
/// # Errors
///
/// [`DenseError::Singular`] if `U` has a zero diagonal entry.
pub fn solve_upper_right_in_place(u: &Matrix, b: &mut Matrix) -> Result<()> {
    check_diag(u)?;
    let n = u.rows();
    assert_eq!(b.cols(), n, "solve_upper_right rhs col mismatch");
    // Column j of X depends on earlier columns of X: X[:,j] = (B[:,j] − Σ_{l<j} X[:,l] U[l,j]) / U[j,j].
    for j in 0..n {
        for l in 0..j {
            let ulj = u[(l, j)];
            if ulj != 0.0 {
                let (xl, xj) = b.two_cols_mut(l, j);
                for (xji, &xli) in xj.iter_mut().zip(xl.iter()) {
                    *xji -= xli * ulj;
                }
            }
        }
        let inv = 1.0 / u[(j, j)];
        for v in b.col_mut(j) {
            *v *= inv;
        }
    }
    Ok(())
}

/// Returns `U⁻¹` for upper triangular `U` (result is upper triangular).
///
/// # Errors
///
/// [`DenseError::Singular`] if `U` has a zero diagonal entry.
pub fn invert_upper(u: &Matrix) -> Result<Matrix> {
    let mut inv = Matrix::identity(u.rows());
    solve_upper_in_place(u, &mut inv)?;
    Ok(inv)
}

/// Returns `L⁻¹` for lower triangular `L` (result is lower triangular).
///
/// # Errors
///
/// [`DenseError::Singular`] if `L` has a zero diagonal entry.
pub fn invert_lower(l: &Matrix) -> Result<Matrix> {
    let mut inv = Matrix::identity(l.rows());
    solve_lower_in_place(l, &mut inv)?;
    Ok(inv)
}

/// Computes `(UᵀU)⁻¹ = U⁻¹ U⁻ᵀ` for upper triangular `U`.
///
/// This is the `R_jj⁻¹R_jj⁻ᵀ` kernel from the SelInv recurrences; the result
/// is symmetric.  Both stages exploit the triangular structure: the inverse
/// `W = U⁻¹` is built column by column over its nonzero prefix only, and
/// the product `W Wᵀ` sums over the shared column suffix — together about
/// a third of the flops of a dense inverse-then-multiply.
///
/// # Errors
///
/// [`DenseError::Singular`] if `U` has a zero diagonal entry.
pub fn inv_gram_upper(u: &Matrix) -> Result<Matrix> {
    check_diag(u)?;
    let n = u.rows();
    // W = U⁻¹ (upper triangular): column j solves U x = e_j over rows 0..=j
    // by column-oriented back substitution (contiguous axpy updates).
    let use_simd = simd::simd_active();
    let mut w = Matrix::zeros(n, n);
    for j in 0..n {
        let wj = w.col_mut(j);
        wj[j] = 1.0;
        for k in (0..=j).rev() {
            let uk = u.col(k);
            let xk = wj[k] / uk[k];
            wj[k] = xk;
            if xk != 0.0 {
                if use_simd {
                    simd::axpy(-xk, &uk[..k], &mut wj[..k]);
                } else {
                    for (wi, &uik) in wj[..k].iter_mut().zip(uk) {
                        *wi -= uik * xk;
                    }
                }
            }
        }
    }
    // S = W Wᵀ: S[i,j] = Σ_{k ≥ j} W[i,k]·W[j,k] for i ≤ j (contiguous row
    // pairs would be strided; sum column-wise instead).
    let mut s = Matrix::zeros(n, n);
    for k in 0..n {
        let wk = w.col(k);
        for j in 0..=k {
            let wjk = wk[j];
            if wjk != 0.0 {
                let sj = s.col_mut(j);
                if use_simd {
                    simd::axpy(wjk, &wk[..=j], &mut sj[..=j]);
                } else {
                    for (si, &wik) in sj[..=j].iter_mut().zip(&wk[..=j]) {
                        *si += wik * wjk;
                    }
                }
            }
        }
    }
    // Mirror the lower triangle (accumulated in the upper part above).
    for j in 0..n {
        for i in 0..j {
            s[(j, i)] = s[(i, j)];
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tn};

    fn upper() -> Matrix {
        Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[0.0, 3.0, 0.5], &[0.0, 0.0, 1.5]])
    }

    fn lower() -> Matrix {
        upper().transpose()
    }

    #[test]
    fn solve_upper_residual() {
        let u = upper();
        let b = Matrix::from_fn(3, 2, |i, j| (i + j + 1) as f64);
        let mut x = b.clone();
        solve_upper_in_place(&u, &mut x).unwrap();
        assert!(matmul(&u, &x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_upper_transpose_residual() {
        let u = upper();
        let b = Matrix::from_fn(3, 2, |i, j| (2 * i + j) as f64);
        let mut x = b.clone();
        solve_upper_transpose_in_place(&u, &mut x).unwrap();
        assert!(matmul_tn(&u, &x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_lower_residual() {
        let l = lower();
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j + 1) as f64);
        let mut x = b.clone();
        solve_lower_in_place(&l, &mut x).unwrap();
        assert!(matmul(&l, &x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_lower_transpose_residual() {
        let l = lower();
        let b = Matrix::from_fn(3, 1, |i, _| (i + 1) as f64);
        let mut x = b.clone();
        solve_lower_transpose_in_place(&l, &mut x).unwrap();
        assert!(matmul(&l.transpose(), &x).approx_eq(&b, 1e-12));
    }

    #[test]
    fn solve_upper_right_residual() {
        let u = upper();
        let b = Matrix::from_fn(2, 3, |i, j| (i + 3 * j) as f64 + 0.5);
        let mut x = b.clone();
        solve_upper_right_in_place(&u, &mut x).unwrap();
        assert!(matmul(&x, &u).approx_eq(&b, 1e-12));
    }

    #[test]
    fn invert_upper_gives_inverse() {
        let u = upper();
        let inv = invert_upper(&u).unwrap();
        assert!(matmul(&u, &inv).approx_eq(&Matrix::identity(3), 1e-12));
        // Result stays upper triangular.
        assert_eq!(inv[(2, 0)], 0.0);
        assert_eq!(inv[(1, 0)], 0.0);
    }

    #[test]
    fn invert_lower_gives_inverse() {
        let l = lower();
        let inv = invert_lower(&l).unwrap();
        assert!(matmul(&l, &inv).approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn inv_gram_matches_dense_inverse() {
        let u = upper();
        let s = inv_gram_upper(&u).unwrap();
        // s * (UᵀU) == I
        let gram = matmul_tn(&u, &u);
        assert!(matmul(&s, &gram).approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn singular_diagonal_is_reported() {
        let mut u = upper();
        u[(1, 1)] = 0.0;
        let mut b = Matrix::col_from_slice(&[1.0, 2.0, 3.0]);
        match solve_upper_in_place(&u, &mut b) {
            Err(DenseError::Singular { index }) => assert_eq!(index, 1),
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn lower_ignores_upper_entries() {
        // Garbage above the diagonal must not affect solve_lower.
        let mut l = lower();
        l[(0, 2)] = 99.0;
        let b = Matrix::col_from_slice(&[2.0, 1.0, 3.0]);
        let mut x = b.clone();
        solve_lower_in_place(&l, &mut x).unwrap();
        let mut clean = lower();
        clean[(0, 2)] = 0.0;
        assert!(matmul(&clean, &x).approx_eq(&b, 1e-12));
    }
}

//! Per-worker scratch workspace: a size-classed buffer recycler that makes
//! the hot smoothing loops allocation-free in steady state.
//!
//! Every [`Matrix`](crate::Matrix) allocation in this crate is routed
//! through a thread-local [`Workspace`]: buffers are handed out from
//! power-of-two size-class free lists and returned when the matrix is
//! dropped (see `Drop for Matrix`), so a loop that repeatedly builds and
//! discards temporaries — the odd-even elimination tasks, SelInv rows,
//! `InfoHead::advance`, a streaming smoother's per-flush pipeline — performs
//! **zero heap allocations per iteration once the pool has warmed up**.
//! The same pool recycles the index/coefficient vectors of the QR
//! factorizations (`tau`, column-pivot permutations).
//!
//! Design rules (documented in DESIGN.md §"Dense kernels"):
//!
//! * **Per-worker**: the workspace is a `thread_local`, so parallel batches
//!   need no synchronization and recycling stays deterministic.  A buffer
//!   freed on a different thread than it was taken from simply warms that
//!   thread's pool instead (ownership of buffers is never shared).
//! * **Bounded**: each size class keeps at most `max(1, 2^15 >> class)`
//!   buffers and only lengths between 2^[`MIN_CLASS`] and 2^[`MAX_CLASS`]
//!   elements are pooled; everything beyond falls through to the global
//!   allocator, so the pool retains at most ≈ 7 MiB per thread.  Callers
//!   that execute a batch-scale working set repeatedly (a `SmoothPlan`)
//!   lift the per-class budgets for the duration with [`arena_scope`], so
//!   the pool sizes itself to the plan's recursion instead of the budgets.
//! * **Checkpoint/reset**: [`Workspace::checkpoint`] snapshots the pooled
//!   byte count and [`Workspace::reset`] trims the pool back to it —
//!   long-lived servers (e.g. a `SmootherPool`) use this to release warmup
//!   growth after a burst of unusually large windows.
//! * **Disableable**: [`set_pooling`] (or the `KALMAN_WS_DISABLE`
//!   environment variable) turns recycling off globally, which the
//!   benchmark harness uses to measure the allocator's contribution.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Element budget per size class (per thread): class `c` keeps at most
/// `max(1, MAX_CLASS_ELEMS >> c)` buffers, so tiny-block-heavy workloads
/// (state dimension 4 smoothers juggle hundreds of 16-element buffers at
/// once) stay pooled while each class is bounded to ~256 KiB (one buffer
/// for the largest classes).
pub const MAX_CLASS_ELEMS: usize = 1 << 15;
/// Largest pooled size class: buffers of up to `2^MAX_CLASS` elements
/// (256 Ki elements = 2 MiB of f64).  Bigger buffers go straight to the
/// global allocator — at that size the allocation cost is amortized by the
/// work done on the buffer, and pooling them would blow the retention
/// bound.  Worst-case retention across all classes is ≈ 7 MiB per thread.
pub const MAX_CLASS: usize = 18;
/// Smallest pooled size class (16 elements); tinier buffers are dropped —
/// `take` never requests below this, so they could never be served.
pub const MIN_CLASS: usize = 4;

/// Maximum pooled buffers for size class `class`.
#[inline]
fn class_capacity(class: usize) -> usize {
    (MAX_CLASS_ELEMS >> class).max(1)
}

/// Global switch: 0 = unset (read env), 1 = enabled, 2 = disabled.
static POOLING: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Live [`ArenaScope`] guards on this thread.  Thread-local on purpose:
    /// the budgets being lifted belong to the *thread's* pool, so one
    /// thread's batch-scale plan must not let unrelated threads retain
    /// without bound.
    static ARENA_SCOPES: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}
/// Global switch for the blocked kernels (GEMM microkernel, compact-WY QR).
/// `true` forces the unblocked/naive reference paths everywhere.
static REFERENCE_KERNELS: AtomicBool = AtomicBool::new(false);
static REFERENCE_KERNELS_INIT: AtomicBool = AtomicBool::new(false);

/// Enables or disables buffer pooling process-wide (default: enabled unless
/// the `KALMAN_WS_DISABLE` environment variable is set).  Used by benchmarks
/// to isolate the allocator's contribution; flipping it mid-computation is
/// safe (buffers taken under either setting are correctly dropped).
pub fn set_pooling(enabled: bool) {
    // Relaxed: an independent on/off flag — no other memory is published
    // under it, and either value leaves takers correct.
    POOLING.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// `true` when buffer pooling is active.
pub fn pooling_enabled() -> bool {
    // Relaxed: the lazy init is idempotent (every racer derives the same
    // value from the environment), so no ordering is needed.
    match POOLING.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let enabled = std::env::var_os("KALMAN_WS_DISABLE").is_none();
            POOLING.store(if enabled { 1 } else { 2 }, Ordering::Relaxed); // Relaxed: same idempotent-init argument as the load above.
            enabled
        }
    }
}

/// RAII guard returned by [`arena_scope`]; dropping it restores the normal
/// per-class retention budgets (once no other guard on this thread is
/// alive).  `!Send` by construction — the guard must drop on the thread
/// whose counter it incremented.
#[derive(Debug)]
pub struct ArenaScope(std::marker::PhantomData<*const ()>);

impl Drop for ArenaScope {
    fn drop(&mut self) {
        let _ = ARENA_SCOPES.try_with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Lifts the workspace's per-class retention budgets for the lifetime of the
/// returned guard — the "plan-owned arena" mode of the pool.
///
/// The default budgets (`max(1, 2^15 >> class)` buffers per class) bound a
/// long-running server's idle retention, but they are far smaller than the
/// working set of a batch-scale solve: an odd-even factorization of
/// `k = 20 000` steps keeps ~3 `n×n` blocks per step alive in its `R`
/// factor, so each repeated same-shape solve would push tens of thousands of
/// small buffers past the budget into the global allocator.  A
/// `SmoothPlan`-style caller that executes the same recursion many times
/// holds an `ArenaScope` across the numeric phases: every buffer the
/// recursion releases is retained (sizing the pool exactly to the plan's
/// working set), so steady-state re-executions perform zero heap
/// allocations.  The scope is per-thread (matching the pool it lifts) and
/// nestable; buffers retained under a scope stay pooled after it ends
/// ([`Workspace::checkpoint`] / [`Workspace::reset`] trim them when a
/// server wants the memory back).
pub fn arena_scope() -> ArenaScope {
    ARENA_SCOPES.with(|c| c.set(c.get() + 1));
    ArenaScope(std::marker::PhantomData)
}

/// `true` while any [`ArenaScope`] guard is alive on this thread.
#[inline]
pub fn arena_active() -> bool {
    ARENA_SCOPES.try_with(|c| c.get() > 0).unwrap_or(false)
}

/// The per-thread retention budget (in buffers) for pooled buffers of
/// `len` elements — what [`arena_scope`] lifts.  Callers sizing a reusable
/// working set (a `SmoothPlan` deciding whether it needs an arena at all)
/// compare their buffer counts against this.  Returns 0 for lengths the
/// pool never retains.
pub fn budget_for_len(len: usize) -> usize {
    class_of(len).map(class_capacity).unwrap_or(0)
}

/// Forces the unblocked/naive reference kernels (`gemm_ref`, per-reflector
/// Householder application) process-wide.  The default (`false`, unless the
/// `KALMAN_REF_KERNELS` environment variable is set to something other
/// than `""`/`"0"`/`"off"`) uses the blocked kernels.  The benchmark harness flips this to measure the blocked
/// kernels' speedup within one process.
pub fn set_reference_kernels(on: bool) {
    // Relaxed on both: callers flip this during single-threaded setup (the
    // bench harness, or the lazy env-derived init below, which is
    // idempotent) — thread spawn/join provides the happens-before edge for
    // any worker that later reads the flags.
    REFERENCE_KERNELS.store(on, Ordering::Relaxed);
    REFERENCE_KERNELS_INIT.store(true, Ordering::Relaxed); // Relaxed: see the setup/happens-before argument above.
}

/// `true` when the reference (unblocked) kernels are forced.
pub fn reference_kernels() -> bool {
    // Relaxed: the lazy init is idempotent (every racer derives the same
    // value from the environment), so no ordering is needed.
    if !REFERENCE_KERNELS_INIT.load(Ordering::Relaxed) {
        // `""`, `"0"`, and `"off"` count as unset so a CI matrix can pass
        // the variable through unconditionally (same idiom as KALMAN_SIMD).
        let on = std::env::var("KALMAN_REF_KERNELS")
            .is_ok_and(|v| !(v.is_empty() || v == "0" || v == "off"));
        set_reference_kernels(on);
        return on;
    }
    REFERENCE_KERNELS.load(Ordering::Relaxed) // Relaxed: same idempotent-init argument as above.
}

/// Pool usage counters (per thread), for benchmark reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// `take` calls served from the pool.
    pub hits: u64,
    /// `take` calls that fell through to the global allocator.
    pub misses: u64,
    /// f64 elements currently parked in the pool.
    pub pooled_elems: usize,
    /// `put` calls dropped because the buffer shape is not poolable.
    pub rejected_shape: u64,
    /// `put` calls dropped because the size class was full.
    pub rejected_full: u64,
}

/// Registers the workspace-pool counters as `dense.workspace.*` sampled
/// gauges in the `kalman-obs` registry (hits, misses, pooled_elems,
/// rejected_shape, rejected_full), plus the kernel-dispatch counters as
/// `dense.kernel.dispatch.{scalar,simd,mono}` (process-wide cumulative hit
/// counts for the three rungs of the dispatch ladder — see DESIGN.md
/// §"Dense kernels").  Idempotent — callers at every layer (the serving
/// front-end, benchmarks) may invoke it freely.
///
/// The workspace is **per-thread**: each sampler reads the pool of the
/// thread that takes the snapshot (normally the thread calling
/// `metrics_snapshot()` / the exporters), not a cross-thread aggregate.
/// The dispatch counters, by contrast, are process-global atomics.
pub fn register_workspace_gauges() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        kalman_obs::register_sampler("dense.kernel.dispatch.scalar", || {
            crate::simd::kernel_dispatch_counts().0 as f64
        });
        kalman_obs::register_sampler("dense.kernel.dispatch.simd", || {
            crate::simd::kernel_dispatch_counts().1 as f64
        });
        kalman_obs::register_sampler("dense.kernel.dispatch.mono", || {
            crate::simd::kernel_dispatch_counts().2 as f64
        });
        kalman_obs::register_sampler("dense.workspace.hits", || {
            Workspace::with(|w| w.stats().hits as f64)
        });
        kalman_obs::register_sampler("dense.workspace.misses", || {
            Workspace::with(|w| w.stats().misses as f64)
        });
        kalman_obs::register_sampler("dense.workspace.pooled_elems", || {
            Workspace::with(|w| w.stats().pooled_elems as f64)
        });
        kalman_obs::register_sampler("dense.workspace.rejected_shape", || {
            Workspace::with(|w| w.stats().rejected_shape as f64)
        });
        kalman_obs::register_sampler("dense.workspace.rejected_full", || {
            Workspace::with(|w| w.stats().rejected_full as f64)
        });
    });
}

/// A snapshot of pool occupancy, returned by [`Workspace::checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct WorkspaceMark {
    pooled_elems: usize,
}

/// The per-thread scratch arena: size-classed free lists of `Vec<f64>` and
/// `Vec<usize>` buffers.
///
/// Most code never touches this type directly — `Matrix` construction and
/// `Drop` go through it automatically — but hot loops that need raw scratch
/// (the blocked GEMM's packing panels, the WY `apply` kernels) check
/// buffers out and back in explicitly via [`Workspace::with`].
#[derive(Debug, Default)]
pub struct Workspace {
    /// `f64` buffers; class `c` holds buffers of capacity exactly `2^c`.
    f64_pool: Vec<Vec<Vec<f64>>>,
    /// `usize` buffers, same classing.
    usize_pool: Vec<Vec<Vec<usize>>>,
    hits: u64,
    misses: u64,
    pooled_elems: usize,
    rejected_shape: u64,
    rejected_full: u64,
}

fn class_of(len: usize) -> Option<usize> {
    if len == 0 {
        return None;
    }
    let class = usize::BITS as usize - (len - 1).leading_zeros() as usize;
    let class = class.max(MIN_CLASS); // round tiny buffers up to 16 elements
    (class <= MAX_CLASS).then_some(class)
}

impl Workspace {
    /// Runs `f` with the calling thread's workspace.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within another `with` closure
    /// (the crate's own kernels never do).
    pub fn with<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
        WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
    }

    /// Checks out a zero-filled `f64` buffer of length `len`.  The zeroing
    /// is part of the contract: `Matrix::zeros` (and through it nearly
    /// every matrix constructor) relies on it.
    pub fn take_f64(&mut self, len: usize) -> Vec<f64> {
        if pooling_enabled() {
            if let Some(class) = class_of(len) {
                if let Some(mut buf) = self.f64_pool.get_mut(class).and_then(Vec::pop) {
                    self.hits += 1;
                    self.pooled_elems -= buf.capacity();
                    buf.clear();
                    buf.resize(len, 0.0);
                    return buf;
                }
                self.misses += 1;
                let mut buf = Vec::with_capacity(1usize << class);
                buf.resize(len, 0.0);
                return buf;
            }
        }
        self.misses += 1;
        vec![0.0; len]
    }

    /// Returns an `f64` buffer to the pool (drops it if the pool is full,
    /// pooling is disabled, or the capacity is not one this pool manages).
    pub fn put_f64(&mut self, buf: Vec<f64>) {
        if !pooling_enabled() {
            return;
        }
        let cap = buf.capacity();
        if cap == 0 || !cap.is_power_of_two() {
            self.rejected_shape += 1;
            return;
        }
        let class = cap.trailing_zeros() as usize;
        if !(MIN_CLASS..=MAX_CLASS).contains(&class) {
            // Below MIN_CLASS no take ever asks for this capacity (requests
            // round up), so pooling it would only strand the buffer.
            self.rejected_shape += 1;
            return;
        }
        if self.f64_pool.len() <= class {
            self.f64_pool.resize_with(class + 1, Vec::new);
        }
        let bucket = &mut self.f64_pool[class];
        if bucket.capacity() == 0 {
            // One-time reservation so bucket growth never reallocates in
            // the steady state the pool exists to keep allocation-free.
            bucket.reserve_exact(class_capacity(class));
        }
        if bucket.len() < class_capacity(class) || arena_active() {
            self.pooled_elems += cap;
            bucket.push(buf);
        } else {
            self.rejected_full += 1;
        }
    }

    /// Checks out a `usize` buffer of length `len`, zero-filled.
    pub fn take_usize(&mut self, len: usize) -> Vec<usize> {
        if pooling_enabled() {
            if let Some(class) = class_of(len) {
                if let Some(mut buf) = self.usize_pool.get_mut(class).and_then(Vec::pop) {
                    self.hits += 1;
                    buf.clear();
                    buf.resize(len, 0);
                    return buf;
                }
                self.misses += 1;
                let mut buf = Vec::with_capacity(1usize << class);
                buf.resize(len, 0);
                return buf;
            }
        }
        self.misses += 1;
        vec![0; len]
    }

    /// Returns a `usize` buffer to the pool.
    pub fn put_usize(&mut self, buf: Vec<usize>) {
        if !pooling_enabled() {
            return;
        }
        let cap = buf.capacity();
        if cap == 0 || !cap.is_power_of_two() {
            return;
        }
        let class = cap.trailing_zeros() as usize;
        if !(MIN_CLASS..=MAX_CLASS).contains(&class) {
            return;
        }
        if self.usize_pool.len() <= class {
            self.usize_pool.resize_with(class + 1, Vec::new);
        }
        let bucket = &mut self.usize_pool[class];
        if bucket.capacity() == 0 {
            bucket.reserve_exact(class_capacity(class));
        }
        if bucket.len() < class_capacity(class) || arena_active() {
            bucket.push(buf);
        }
    }

    /// Current usage counters.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            hits: self.hits,
            misses: self.misses,
            pooled_elems: self.pooled_elems,
            rejected_shape: self.rejected_shape,
            rejected_full: self.rejected_full,
        }
    }

    /// Snapshots the pool occupancy for a later [`Workspace::reset`].
    pub fn checkpoint(&self) -> WorkspaceMark {
        WorkspaceMark {
            pooled_elems: self.pooled_elems,
        }
    }

    /// Trims pooled `f64` buffers (largest classes first) until occupancy is
    /// back at the checkpoint — releases growth from an unusually large
    /// transient working set without touching the warmed-up steady state.
    /// The (tiny, uncounted) `usize` pivot-buffer pool is drained entirely.
    pub fn reset(&mut self, mark: WorkspaceMark) {
        let mut class = self.f64_pool.len();
        while self.pooled_elems > mark.pooled_elems && class > 0 {
            class -= 1;
            let bucket = &mut self.f64_pool[class];
            while self.pooled_elems > mark.pooled_elems {
                match bucket.pop() {
                    Some(buf) => self.pooled_elems -= buf.capacity(),
                    None => break,
                }
            }
        }
        self.usize_pool.clear();
    }

    /// Drops every pooled buffer.
    pub fn clear(&mut self) {
        self.f64_pool.clear();
        self.usize_pool.clear();
        self.pooled_elems = 0;
    }
}

thread_local! {
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::default());
}

/// Checks out an `f64` buffer from the calling thread's workspace
/// (crate-internal shorthand used by `Matrix` construction).  Falls back to
/// a plain allocation if the workspace is busy (re-entrant use from inside
/// a [`Workspace::with`] closure).
#[inline]
pub(crate) fn take_f64(len: usize) -> Vec<f64> {
    WORKSPACE
        .try_with(|cell| match cell.try_borrow_mut() {
            Ok(mut ws) => ws.take_f64(len),
            Err(_) => vec![0.0; len],
        })
        .unwrap_or_else(|_| vec![0.0; len])
}

/// Returns an `f64` buffer to the calling thread's workspace.
#[inline]
pub(crate) fn put_f64(buf: Vec<f64>) {
    if buf.capacity() != 0 {
        let _ = WORKSPACE.try_with(|cell| {
            if let Ok(mut ws) = cell.try_borrow_mut() {
                ws.put_f64(buf);
            }
        });
    }
}

/// Checks out a `usize` buffer from the calling thread's workspace.
#[inline]
pub(crate) fn take_usize(len: usize) -> Vec<usize> {
    WORKSPACE
        .try_with(|cell| match cell.try_borrow_mut() {
            Ok(mut ws) => ws.take_usize(len),
            Err(_) => vec![0; len],
        })
        .unwrap_or_else(|_| vec![0; len])
}

/// Returns a `usize` buffer to the calling thread's workspace.
#[inline]
pub(crate) fn put_usize(buf: Vec<usize>) {
    if buf.capacity() != 0 {
        let _ = WORKSPACE.try_with(|cell| {
            if let Ok(mut ws) = cell.try_borrow_mut() {
                ws.put_usize(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_reuses_buffer() {
        let mut ws = Workspace::default();
        let a = ws.take_f64(100);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&x| x == 0.0));
        let cap = a.capacity();
        assert!(cap >= 100 && cap.is_power_of_two());
        ws.put_f64(a);
        assert_eq!(ws.stats().pooled_elems, cap);
        let b = ws.take_f64(70); // same class (128)
        assert_eq!(b.capacity(), cap);
        assert_eq!(ws.stats().hits, 1);
        assert!(b.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn classes_round_up_and_cap() {
        assert_eq!(class_of(0), None);
        assert_eq!(class_of(1), Some(4));
        assert_eq!(class_of(16), Some(4));
        assert_eq!(class_of(17), Some(5));
        assert_eq!(class_of(1 << MAX_CLASS), Some(MAX_CLASS));
        assert_eq!(class_of((1 << MAX_CLASS) + 1), None);
    }

    /// The arena flag is process-global, so the two budget tests must not
    /// overlap (the harness runs tests on multiple threads).
    static BUDGET_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn bucket_is_bounded() {
        let _lock = BUDGET_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let mut ws = Workspace::default();
        let cap = class_capacity(6); // buffers of 64 elements
        for _ in 0..(cap + 10) {
            ws.put_f64(Vec::with_capacity(64));
        }
        assert_eq!(ws.stats().pooled_elems, cap * 64);
        assert_eq!(ws.stats().rejected_full, 10);
    }

    #[test]
    fn arena_scope_lifts_class_budgets() {
        let _lock = BUDGET_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        let mut ws = Workspace::default();
        let cap = class_capacity(6); // buffers of 64 elements
        let guard = arena_scope();
        assert!(arena_active());
        for _ in 0..(cap + 10) {
            ws.put_f64(Vec::with_capacity(64));
        }
        // Every buffer retained: the budget is lifted under the scope.
        assert_eq!(ws.stats().pooled_elems, (cap + 10) * 64);
        assert_eq!(ws.stats().rejected_full, 0);
        drop(guard);
        // Back to normal: the over-budget bucket rejects further puts.
        ws.put_f64(Vec::with_capacity(64));
        assert_eq!(ws.stats().rejected_full, 1);
    }

    #[test]
    fn checkpoint_reset_trims_back() {
        let mut ws = Workspace::default();
        ws.put_f64(Vec::with_capacity(64));
        let mark = ws.checkpoint();
        ws.put_f64(Vec::with_capacity(4096));
        ws.put_f64(Vec::with_capacity(1024));
        assert!(ws.stats().pooled_elems > 64);
        ws.reset(mark);
        assert_eq!(ws.stats().pooled_elems, 64);
        ws.clear();
        assert_eq!(ws.stats().pooled_elems, 0);
    }

    #[test]
    fn usize_pool_roundtrips() {
        let mut ws = Workspace::default();
        let v = ws.take_usize(10);
        assert_eq!(v.len(), 10);
        ws.put_usize(v);
        let w = ws.take_usize(5);
        assert_eq!(w, vec![0; 5]);
    }
}

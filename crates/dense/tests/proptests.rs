//! Property-based tests for the dense kernels.
//!
//! Strategy: generate random well-scaled matrices and verify algebraic
//! invariants (reconstruction, orthogonality, residuals) rather than
//! comparing against golden values.

use kalman_dense::{
    gemm, gemm_blocked, gemm_ref, matmul, matmul_nt, matmul_tn, random, simd, tri, Cholesky,
    KernelKind, LuFactor, Matrix, QrFactor, Trans,
};
use proptest::prelude::*;

/// A strategy producing an `m × n` matrix with entries in [-10, 10].
fn matrix_strategy(m: usize, n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, m * n)
        .prop_map(move |data| Matrix::from_col_major(m, n, data))
}

/// Dims (m, n) with m >= n >= 1, both small.
fn tall_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..8).prop_flat_map(|n| (n..12usize, Just(n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The packed/microkernel GEMM must agree with the reference loop nest
    /// on every shape — zero/unit dimensions, non-multiples of the 4×4
    /// register tile and packing blocks, tall and wide operands — for all
    /// four transpose combinations, to 1e-12.
    #[test]
    fn blocked_gemm_matches_reference_all_shapes(
        mi in 0usize..9, ki in 0usize..9, ni in 0usize..9,
        ta_flag: bool, tb_flag: bool,
        seed in 0u64..1000,
    ) {
        let sizes = [0usize, 1, 3, 4, 5, 8, 13, 17, 33];
        let (m, k, n) = (sizes[mi], sizes[ki], sizes[ni]);
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let ta = if ta_flag { Trans::Yes } else { Trans::No };
        let tb = if tb_flag { Trans::Yes } else { Trans::No };
        let a = if ta_flag { random::gaussian(&mut rng, k, m) } else { random::gaussian(&mut rng, m, k) };
        let b = if tb_flag { random::gaussian(&mut rng, n, k) } else { random::gaussian(&mut rng, k, n) };
        let c0 = random::gaussian(&mut rng, m, n);
        let mut c_blk = c0.clone();
        let mut c_ref = c0.clone();
        gemm_blocked(1.3, &a, ta, &b, tb, 0.7, &mut c_blk);
        gemm_ref(1.3, &a, ta, &b, tb, 0.7, &mut c_ref);
        prop_assert!(
            c_blk.approx_eq(&c_ref, 1e-12 * (1.0 + c_ref.max_abs())),
            "({m},{k},{n}) {ta:?}/{tb:?}: {}", c_blk.max_abs_diff(&c_ref)
        );
        // The public dispatching entry agrees with the reference too.
        let mut c_dispatch = c0.clone();
        gemm(1.3, &a, ta, &b, tb, 0.7, &mut c_dispatch);
        prop_assert!(c_dispatch.approx_eq(&c_ref, 1e-12 * (1.0 + c_ref.max_abs())));
    }

    /// The compact-WY factorization must agree with the per-reflector
    /// reference on every tall shape — single/partial/multiple panels —
    /// both in `R` and in the transformation it applies, to 1e-12.
    #[test]
    fn wy_qr_matches_unblocked_reference(
        ni in 0usize..7, extra_m in 0usize..9, rhs_cols in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n_sizes = [1usize, 5, 7, 8, 9, 16, 17];
        let n = n_sizes[ni];
        let m = n + extra_m;
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let b = random::gaussian(&mut rng, m, rhs_cols);
        let wy = QrFactor::new_compact_wy(a.clone());
        let reference = QrFactor::new_unblocked(a.clone());
        let scale = 1.0 + reference.r().max_abs();
        prop_assert!(
            wy.r().approx_eq(&reference.r(), 1e-12 * scale),
            "R mismatch {m}x{n}: {}", wy.r().max_abs_diff(&reference.r())
        );
        let mut t_wy = b.clone();
        wy.apply_qt(&mut t_wy);
        let mut t_ref = b.clone();
        reference.apply_qt(&mut t_ref);
        prop_assert!(
            t_wy.approx_eq(&t_ref, 1e-12 * (1.0 + t_ref.max_abs())),
            "apply mismatch {m}x{n}: {}", t_wy.max_abs_diff(&t_ref)
        );
        // Round trip through the WY apply_q.
        wy.apply_q(&mut t_wy);
        prop_assert!(t_wy.approx_eq(&b, 1e-11 * (1.0 + b.max_abs())));
    }

    /// Rank-deficient inputs (exactly duplicated columns, so tau vanishes
    /// mid-panel): the WY path must still match the reference and
    /// reconstruct the input.
    #[test]
    fn wy_qr_handles_rank_deficiency(base_cols in 1usize..6, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let m = 4 * base_cols + 6;
        let base = random::gaussian(&mut rng, m, base_cols);
        // Duplicate every column: n = 2·base_cols, rank = base_cols.
        let mut a = Matrix::zeros(m, 2 * base_cols);
        for j in 0..base_cols {
            a.set_block(0, j, &base.sub_matrix(0, j, m, 1));
            a.set_block(0, base_cols + j, &base.sub_matrix(0, j, m, 1));
        }
        let wy = QrFactor::new_compact_wy(a.clone());
        let reference = QrFactor::new_unblocked(a.clone());
        let scale = 1.0 + reference.r().max_abs();
        prop_assert!(wy.r().approx_eq(&reference.r(), 1e-10 * scale));
        let q = wy.q_thin();
        prop_assert!(matmul(&q, &wy.r()).approx_eq(&a, 1e-10 * (1.0 + a.max_abs())));
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal((m, n) in tall_dims(), seed in 0u64..1000) {
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let rng: &mut rand_chacha::ChaCha8Rng = &mut rng;
        let a = random::gaussian(rng, m, n);
        let qr = QrFactor::new(a.clone());
        let q = qr.q_thin();
        let r = qr.r();
        prop_assert!(matmul(&q, &r).approx_eq(&a, 1e-10 * (1.0 + a.max_abs())));
        prop_assert!(matmul_tn(&q, &q).approx_eq(&Matrix::identity(n), 1e-12));
        // R is upper triangular.
        for j in 0..n {
            for i in (j + 1)..n {
                prop_assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_apply_qt_preserves_norms((m, n) in tall_dims(), seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let b = random::gaussian(&mut rng, m, 3);
        let qr = QrFactor::new(a);
        let mut t = b.clone();
        qr.apply_qt(&mut t);
        // Orthogonal transformations preserve column norms.
        for k in 0..3 {
            let before: f64 = b.col(k).iter().map(|v| v * v).sum::<f64>().sqrt();
            let after: f64 = t.col(k).iter().map(|v| v * v).sum::<f64>().sqrt();
            prop_assert!((before - after).abs() < 1e-10 * (1.0 + before));
        }
    }

    #[test]
    fn least_squares_satisfies_normal_equations((m, n) in tall_dims(), seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let b = random::gaussian(&mut rng, m, 1);
        let qr = QrFactor::new(a.clone());
        if let Ok(x) = qr.solve_ls(&b) {
            let resid = &matmul(&a, &x) - &b;
            let grad = matmul_tn(&a, &resid);
            prop_assert!(grad.max_abs() < 1e-8 * (1.0 + b.max_abs()),
                "gradient norm {}", grad.max_abs());
        }
    }

    #[test]
    fn gemm_matches_naive(m in 1usize..6, k in 1usize..6, n in 1usize..6,
                          a in proptest::collection::vec(-5.0..5.0f64, 36),
                          b in proptest::collection::vec(-5.0..5.0f64, 36)) {
        let a = Matrix::from_col_major(m, k, a[..m * k].to_vec());
        let b = Matrix::from_col_major(k, n, b[..k * n].to_vec());
        let c = matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let expect: f64 = (0..k).map(|l| a[(i, l)] * b[(l, j)]).sum();
                prop_assert!((c[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_transpose_consistency(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, k, m); // will be used transposed
        let b = random::gaussian(&mut rng, k, n);
        let c1 = matmul_tn(&a, &b);
        let c2 = matmul(&a.transpose(), &b);
        prop_assert!(c1.approx_eq(&c2, 1e-12));

        let d = random::gaussian(&mut rng, n, k);
        let e1 = matmul_nt(&b.transpose(), &d);
        let e2 = matmul(&b.transpose(), &d.transpose());
        prop_assert!(e1.approx_eq(&e2, 1e-12));
    }

    #[test]
    fn gemm_beta_accumulation(m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let b = random::gaussian(&mut rng, n, m);
        let c0 = random::gaussian(&mut rng, m, m);
        let mut c = c0.clone();
        gemm(2.0, &a, Trans::No, &b, Trans::No, -1.0, &mut c);
        let expect = &matmul(&a, &b).scaled(2.0) - &c0;
        prop_assert!(c.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn lu_solve_and_det(n in 1usize..7, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, n, n);
        let b = random::gaussian(&mut rng, n, 2);
        if let Ok(lu) = LuFactor::new(a.clone()) {
            let x = lu.solve(&b);
            prop_assert!(matmul(&a, &x).approx_eq(&b, 1e-7 * (1.0 + b.max_abs())));
            // det(A) via LU equals det via cofactor for n<=2 (sanity anchor).
            if n == 2 {
                let expect = a[(0, 0)] * a[(1, 1)] - a[(0, 1)] * a[(1, 0)];
                prop_assert!((lu.det() - expect).abs() < 1e-9 * (1.0 + expect.abs()));
            }
        }
    }

    #[test]
    fn cholesky_roundtrip(n in 1usize..7, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let c = random::spd(&mut rng, n);
        let ch = Cholesky::new(&c).unwrap();
        prop_assert!(kalman_dense::llt(ch.l()).approx_eq(&c, 1e-10));
        let w = ch.inverse_factor();
        // WᵀW·C == I
        let wtw = matmul_tn(&w, &w);
        prop_assert!(matmul(&wtw, &c).approx_eq(&Matrix::identity(n), 1e-6));
    }

    #[test]
    fn triangular_solves_are_inverses(n in 1usize..7, seed in 0u64..1000, mat in matrix_strategy(7, 3)) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        // Well-conditioned upper-triangular: QR of a Gaussian + diagonal boost.
        let g = random::gaussian(&mut rng, n, n);
        let mut u = QrFactor::new(g).r();
        for i in 0..n {
            u[(i, i)] += u[(i, i)].signum() * 1.0;
        }
        let b = mat.sub_matrix(0, 0, n, 3);

        let mut x = b.clone();
        tri::solve_upper_in_place(&u, &mut x).unwrap();
        prop_assert!(matmul(&u, &x).approx_eq(&b, 1e-8 * (1.0 + b.max_abs())));

        let mut xt = b.clone();
        tri::solve_upper_transpose_in_place(&u, &mut xt).unwrap();
        prop_assert!(matmul_tn(&u, &xt).approx_eq(&b, 1e-8 * (1.0 + b.max_abs())));

        let l = u.transpose();
        let mut xl = b.clone();
        tri::solve_lower_in_place(&l, &mut xl).unwrap();
        prop_assert!(matmul(&l, &xl).approx_eq(&b, 1e-8 * (1.0 + b.max_abs())));

        let wide = b.transpose();
        let mut xr = wide.clone();
        tri::solve_upper_right_in_place(&u, &mut xr).unwrap();
        prop_assert!(matmul(&xr, &u).approx_eq(&wide, 1e-8 * (1.0 + b.max_abs())));
    }

    #[test]
    fn compress_rows_preserves_gram_and_norm((m, n) in tall_dims(), seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let rhs0 = random::gaussian(&mut rng, m, 1);
        let mut rhs = rhs0.clone();
        let r = kalman_dense::compress_rows(&a, &mut rhs);
        let gram_a = matmul_tn(&a, &a);
        let gram_r = matmul_tn(&r, &r);
        prop_assert!(gram_a.approx_eq(&gram_r, 1e-8 * (1.0 + gram_a.max_abs())));
        prop_assert!((rhs.frob_norm() - rhs0.frob_norm()).abs() < 1e-10 * (1.0 + rhs0.frob_norm()));
        // Also Aᵀ·rhs is preserved in the kept part: Rᵀ·(kept rows of rhs) == Aᵀ·rhs0.
        let kept = rhs.sub_matrix(0, 0, n.min(m), 1);
        let lhs = matmul_tn(&r, &kept);
        let expect = matmul_tn(&a, &rhs0);
        prop_assert!(lhs.approx_eq(&expect, 1e-8 * (1.0 + expect.max_abs())));
    }

    #[test]
    fn orthonormal_products_stay_orthonormal(n in 1usize..8, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let q1 = random::orthonormal(&mut rng, n);
        let q2 = random::orthonormal(&mut rng, n);
        let p = matmul(&q1, &q2);
        prop_assert!(matmul_tn(&p, &p).approx_eq(&Matrix::identity(n), 1e-11));
    }
}

// ---------------------------------------------------------------------------
// SIMD microkernels vs. the scalar oracle.
//
// Every explicit-width kernel in `kalman_dense::simd` is pinned here against
// a plain scalar loop over degenerate shapes: empty, length 1, lengths that
// are not a multiple of the 4-lane width (tails), and the transpose cases
// that force the monomorphized GEMM guard to fall back.  FMA contracts
// multiply-add into one rounding, so the comparisons are tolerance-based
// (1e-12 relative), never bitwise — bitwise pins live in determinism tests
// where both sides run the *same* kernel.
// ---------------------------------------------------------------------------

/// Scalar oracle for one Householder reflector applied to one column:
/// returns the updated `(w, col)` per the `reflector_one` contract.
fn reflector_oracle(v: &[f64], tau: f64, w0: f64, col: &[f64]) -> (f64, Vec<f64>) {
    let mut acc = w0;
    for (vi, ci) in v.iter().zip(col) {
        acc += vi * ci;
    }
    let w = tau * acc;
    let mut out = col.to_vec();
    for (ci, vi) in out.iter_mut().zip(v) {
        *ci -= w * vi;
    }
    (w, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `simd::dot` and `simd::axpy` agree with scalar loops on every length,
    /// including 0, 1, and non-multiple-of-4 tails.
    #[test]
    fn simd_dot_axpy_match_scalar(
        li in 0usize..12,
        alpha in -3.0..3.0f64,
        seed in 0u64..1000,
    ) {
        let lens = [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 17, 33];
        let len = lens[li];
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let x: Vec<f64> = random::gaussian(&mut rng, len.max(1), 1).col(0)[..len].to_vec();
        let y: Vec<f64> = random::gaussian(&mut rng, len.max(1), 1).col(0)[..len].to_vec();

        let want_dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let got_dot = simd::dot(&x, &y);
        prop_assert!((got_dot - want_dot).abs() <= 1e-12 * (1.0 + want_dot.abs()),
            "dot len {len}: {got_dot} vs {want_dot}");

        let mut z = y.clone();
        simd::axpy(alpha, &x, &mut z);
        for i in 0..len {
            let want = y[i] + alpha * x[i];
            prop_assert!((z[i] - want).abs() <= 1e-12 * (1.0 + want.abs()),
                "axpy len {len} at {i}");
        }
    }

    /// The 4×4 register microtile matches scalar accumulation over packed
    /// panels at every depth, including depth 0.
    #[test]
    fn simd_microkernel_matches_scalar_accumulation(
        depth in 0usize..9,
        seed in 0u64..1000,
    ) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a_panel: Vec<f64> =
            random::gaussian(&mut rng, (4 * depth).max(1), 1).col(0)[..4 * depth].to_vec();
        let b_panel: Vec<f64> =
            random::gaussian(&mut rng, (4 * depth).max(1), 1).col(0)[..4 * depth].to_vec();
        let acc0 = {
            let m = random::gaussian(&mut rng, 4, 4);
            let mut rows = [[0.0f64; 4]; 4];
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell = m[(i, j)];
                }
            }
            rows
        };

        let mut want = acc0;
        for p in 0..depth {
            for i in 0..4 {
                for j in 0..4 {
                    want[i][j] += a_panel[4 * p + i] * b_panel[4 * p + j];
                }
            }
        }
        let mut got = acc0;
        simd::gemm_microkernel_4x4(&a_panel, &b_panel, &mut got);
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((got[i][j] - want[i][j]).abs() <= 1e-12 * (1.0 + want[i][j].abs()),
                    "depth {depth} microtile ({i},{j})");
            }
        }
    }

    /// `reflector_quad` and `reflector_one` agree with the scalar reflector
    /// update on every tail length, including 0 and 1, and on columns longer
    /// than `v` (only the first `v.len()` entries may change).
    #[test]
    fn simd_reflectors_match_scalar(
        li in 0usize..8,
        extra in 0usize..3,
        tau in 0.1..1.9f64,
        seed in 0u64..1000,
    ) {
        let lens = [0usize, 1, 2, 3, 4, 5, 9, 13];
        let len = lens[li];
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let v: Vec<f64> = random::gaussian(&mut rng, len.max(1), 1).col(0)[..len].to_vec();
        let cols_mat = random::gaussian(&mut rng, (len + extra).max(1), 4);
        let pivots = random::gaussian(&mut rng, 4, 1);

        let mut want_w = [0.0f64; 4];
        let mut want_cols: Vec<Vec<f64>> = Vec::new();
        for q in 0..4 {
            let full = &cols_mat.col(q)[..len + extra];
            let (w, head) = reflector_oracle(&v, tau, pivots[(q, 0)], &full[..len]);
            want_w[q] = w;
            let mut col = full.to_vec();
            col[..len].copy_from_slice(&head);
            want_cols.push(col);
        }

        // Quad kernel.
        let mut got_w = [pivots[(0, 0)], pivots[(1, 0)], pivots[(2, 0)], pivots[(3, 0)]];
        let mut data: [Vec<f64>; 4] =
            std::array::from_fn(|q| cols_mat.col(q)[..len + extra].to_vec());
        let [c0, c1, c2, c3] = data.each_mut();
        simd::reflector_quad(
            &v,
            tau,
            &mut got_w,
            [
                c0.as_mut_slice(),
                c1.as_mut_slice(),
                c2.as_mut_slice(),
                c3.as_mut_slice(),
            ],
        );
        for q in 0..4 {
            prop_assert!((got_w[q] - want_w[q]).abs() <= 1e-12 * (1.0 + want_w[q].abs()),
                "quad w[{q}] at len {len}");
            for i in 0..len + extra {
                prop_assert!(
                    (data[q][i] - want_cols[q][i]).abs() <= 1e-12 * (1.0 + want_cols[q][i].abs()),
                    "quad col {q} entry {i} at len {len}"
                );
            }
        }

        // Single-column kernel against the same oracle, column 0.
        let mut w1 = pivots[(0, 0)];
        let mut col1 = cols_mat.col(0)[..len + extra].to_vec();
        simd::reflector_one(&v, tau, &mut w1, &mut col1);
        prop_assert!((w1 - want_w[0]).abs() <= 1e-12 * (1.0 + want_w[0].abs()));
        for i in 0..len + extra {
            prop_assert!(
                (col1[i] - want_cols[0][i]).abs() <= 1e-12 * (1.0 + want_cols[0][i].abs())
            );
        }
    }

    /// `dot_quad` and `axpy_quad` (the compact-WY panel phases) agree with
    /// scalar loops on every tail length, including 0, 1, and
    /// non-multiple-of-4 tails, and on columns longer than `v`.
    #[test]
    fn simd_quad_dot_axpy_match_scalar(
        li in 0usize..8,
        extra in 0usize..3,
        seed in 0u64..1000,
    ) {
        let lens = [0usize, 1, 2, 3, 4, 5, 9, 13];
        let len = lens[li];
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let v: Vec<f64> = random::gaussian(&mut rng, len.max(1), 1).col(0)[..len].to_vec();
        let cols_mat = random::gaussian(&mut rng, (len + extra).max(1), 4);
        let acc0 = random::gaussian(&mut rng, 4, 1);
        let w = [1.3f64, -0.7, 0.0, 2.1];

        let mut want_acc = [0.0f64; 4];
        let mut want_cols: Vec<Vec<f64>> = Vec::new();
        for q in 0..4 {
            let full = &cols_mat.col(q)[..len + extra];
            want_acc[q] =
                acc0[(q, 0)] + v.iter().zip(full).map(|(a, b)| a * b).sum::<f64>();
            let mut col = full.to_vec();
            for i in 0..len {
                col[i] -= w[q] * v[i];
            }
            want_cols.push(col);
        }

        let mut got_acc = [acc0[(0, 0)], acc0[(1, 0)], acc0[(2, 0)], acc0[(3, 0)]];
        simd::dot_quad(
            &v,
            [
                &cols_mat.col(0)[..len + extra],
                &cols_mat.col(1)[..len + extra],
                &cols_mat.col(2)[..len + extra],
                &cols_mat.col(3)[..len + extra],
            ],
            &mut got_acc,
        );
        for q in 0..4 {
            prop_assert!((got_acc[q] - want_acc[q]).abs() <= 1e-12 * (1.0 + want_acc[q].abs()),
                "dot_quad acc[{q}] at len {len}");
        }

        let mut data: [Vec<f64>; 4] =
            std::array::from_fn(|q| cols_mat.col(q)[..len + extra].to_vec());
        let [c0, c1, c2, c3] = data.each_mut();
        simd::axpy_quad(
            w,
            &v,
            [
                c0.as_mut_slice(),
                c1.as_mut_slice(),
                c2.as_mut_slice(),
                c3.as_mut_slice(),
            ],
        );
        for q in 0..4 {
            for i in 0..len + extra {
                prop_assert!(
                    (data[q][i] - want_cols[q][i]).abs() <= 1e-12 * (1.0 + want_cols[q][i].abs()),
                    "axpy_quad col {q} entry {i} at len {len}"
                );
            }
        }
    }

    /// The monomorphized N×N GEMM matches the reference loop nest for
    /// N ∈ {4, 8, 16}, both `op(B)` settings, and β ∈ {0, 1, fractional}.
    #[test]
    fn simd_gemm_mono_matches_reference(
        ni in 0usize..3,
        b_trans: bool,
        bi in 0usize..3,
        alpha in -2.0..2.0f64,
        seed in 0u64..1000,
    ) {
        let n = [4usize, 8, 16][ni];
        let beta = [0.0f64, 1.0, 0.5][bi];
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, n, n);
        let b = random::gaussian(&mut rng, n, n);
        let c0 = random::gaussian(&mut rng, n, n);

        let tb = if b_trans { Trans::Yes } else { Trans::No };
        let mut want = c0.clone();
        gemm_ref(alpha, &a, Trans::No, &b, tb, beta, &mut want);

        let mut got = c0.as_slice().to_vec();
        match n {
            4 => simd::gemm_mono::<4>(alpha, a.as_slice(), b.as_slice(), b_trans, beta, &mut got),
            8 => simd::gemm_mono::<8>(alpha, a.as_slice(), b.as_slice(), b_trans, beta, &mut got),
            _ => simd::gemm_mono::<16>(alpha, a.as_slice(), b.as_slice(), b_trans, beta, &mut got),
        }
        let got = Matrix::from_col_major(n, n, got);
        prop_assert!(got.approx_eq(&want, 1e-12 * (1.0 + want.max_abs())),
            "mono n={n} b_trans={b_trans} beta={beta}: {}", got.max_abs_diff(&want));
    }

    /// The plan-bound `KernelKind::gemm` entry matches the reference for
    /// every transpose combination and for shapes that do NOT fit the
    /// monomorphic guard (Aᵀ cases and off-size operands fall back to the
    /// general dispatcher — the strided-transpose escape hatch).
    #[test]
    fn kernel_kind_gemm_matches_reference(
        ki in 0usize..4,
        mi in 0usize..5,
        ta_flag: bool, tb_flag: bool,
        seed in 0u64..1000,
    ) {
        let kind = [KernelKind::Auto, KernelKind::Mono4, KernelKind::Mono8, KernelKind::Mono16][ki];
        let n = [3usize, 4, 5, 8, 16][mi];
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let ta = if ta_flag { Trans::Yes } else { Trans::No };
        let tb = if tb_flag { Trans::Yes } else { Trans::No };
        let a = random::gaussian(&mut rng, n, n);
        let b = random::gaussian(&mut rng, n, n);
        let c0 = random::gaussian(&mut rng, n, n);

        let mut want = c0.clone();
        gemm_ref(1.3, &a, ta, &b, tb, 0.7, &mut want);
        let mut got = c0.clone();
        (kind.gemm())(1.3, &a, ta, &b, tb, 0.7, &mut got);
        prop_assert!(got.approx_eq(&want, 1e-12 * (1.0 + want.max_abs())),
            "{kind:?} n={n} {ta:?}/{tb:?}: {}", got.max_abs_diff(&want));
    }
}

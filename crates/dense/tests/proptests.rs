//! Property-based tests for the dense kernels.
//!
//! Strategy: generate random well-scaled matrices and verify algebraic
//! invariants (reconstruction, orthogonality, residuals) rather than
//! comparing against golden values.

use kalman_dense::{
    gemm, gemm_blocked, gemm_ref, matmul, matmul_nt, matmul_tn, random, tri, Cholesky, LuFactor,
    Matrix, QrFactor, Trans,
};
use proptest::prelude::*;

/// A strategy producing an `m × n` matrix with entries in [-10, 10].
fn matrix_strategy(m: usize, n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, m * n)
        .prop_map(move |data| Matrix::from_col_major(m, n, data))
}

/// Dims (m, n) with m >= n >= 1, both small.
fn tall_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..8).prop_flat_map(|n| (n..12usize, Just(n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The packed/microkernel GEMM must agree with the reference loop nest
    /// on every shape — zero/unit dimensions, non-multiples of the 4×4
    /// register tile and packing blocks, tall and wide operands — for all
    /// four transpose combinations, to 1e-12.
    #[test]
    fn blocked_gemm_matches_reference_all_shapes(
        mi in 0usize..9, ki in 0usize..9, ni in 0usize..9,
        ta_flag: bool, tb_flag: bool,
        seed in 0u64..1000,
    ) {
        let sizes = [0usize, 1, 3, 4, 5, 8, 13, 17, 33];
        let (m, k, n) = (sizes[mi], sizes[ki], sizes[ni]);
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let ta = if ta_flag { Trans::Yes } else { Trans::No };
        let tb = if tb_flag { Trans::Yes } else { Trans::No };
        let a = if ta_flag { random::gaussian(&mut rng, k, m) } else { random::gaussian(&mut rng, m, k) };
        let b = if tb_flag { random::gaussian(&mut rng, n, k) } else { random::gaussian(&mut rng, k, n) };
        let c0 = random::gaussian(&mut rng, m, n);
        let mut c_blk = c0.clone();
        let mut c_ref = c0.clone();
        gemm_blocked(1.3, &a, ta, &b, tb, 0.7, &mut c_blk);
        gemm_ref(1.3, &a, ta, &b, tb, 0.7, &mut c_ref);
        prop_assert!(
            c_blk.approx_eq(&c_ref, 1e-12 * (1.0 + c_ref.max_abs())),
            "({m},{k},{n}) {ta:?}/{tb:?}: {}", c_blk.max_abs_diff(&c_ref)
        );
        // The public dispatching entry agrees with the reference too.
        let mut c_dispatch = c0.clone();
        gemm(1.3, &a, ta, &b, tb, 0.7, &mut c_dispatch);
        prop_assert!(c_dispatch.approx_eq(&c_ref, 1e-12 * (1.0 + c_ref.max_abs())));
    }

    /// The compact-WY factorization must agree with the per-reflector
    /// reference on every tall shape — single/partial/multiple panels —
    /// both in `R` and in the transformation it applies, to 1e-12.
    #[test]
    fn wy_qr_matches_unblocked_reference(
        ni in 0usize..7, extra_m in 0usize..9, rhs_cols in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n_sizes = [1usize, 5, 7, 8, 9, 16, 17];
        let n = n_sizes[ni];
        let m = n + extra_m;
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let b = random::gaussian(&mut rng, m, rhs_cols);
        let wy = QrFactor::new_compact_wy(a.clone());
        let reference = QrFactor::new_unblocked(a.clone());
        let scale = 1.0 + reference.r().max_abs();
        prop_assert!(
            wy.r().approx_eq(&reference.r(), 1e-12 * scale),
            "R mismatch {m}x{n}: {}", wy.r().max_abs_diff(&reference.r())
        );
        let mut t_wy = b.clone();
        wy.apply_qt(&mut t_wy);
        let mut t_ref = b.clone();
        reference.apply_qt(&mut t_ref);
        prop_assert!(
            t_wy.approx_eq(&t_ref, 1e-12 * (1.0 + t_ref.max_abs())),
            "apply mismatch {m}x{n}: {}", t_wy.max_abs_diff(&t_ref)
        );
        // Round trip through the WY apply_q.
        wy.apply_q(&mut t_wy);
        prop_assert!(t_wy.approx_eq(&b, 1e-11 * (1.0 + b.max_abs())));
    }

    /// Rank-deficient inputs (exactly duplicated columns, so tau vanishes
    /// mid-panel): the WY path must still match the reference and
    /// reconstruct the input.
    #[test]
    fn wy_qr_handles_rank_deficiency(base_cols in 1usize..6, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let m = 4 * base_cols + 6;
        let base = random::gaussian(&mut rng, m, base_cols);
        // Duplicate every column: n = 2·base_cols, rank = base_cols.
        let mut a = Matrix::zeros(m, 2 * base_cols);
        for j in 0..base_cols {
            a.set_block(0, j, &base.sub_matrix(0, j, m, 1));
            a.set_block(0, base_cols + j, &base.sub_matrix(0, j, m, 1));
        }
        let wy = QrFactor::new_compact_wy(a.clone());
        let reference = QrFactor::new_unblocked(a.clone());
        let scale = 1.0 + reference.r().max_abs();
        prop_assert!(wy.r().approx_eq(&reference.r(), 1e-10 * scale));
        let q = wy.q_thin();
        prop_assert!(matmul(&q, &wy.r()).approx_eq(&a, 1e-10 * (1.0 + a.max_abs())));
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal((m, n) in tall_dims(), seed in 0u64..1000) {
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let rng: &mut rand_chacha::ChaCha8Rng = &mut rng;
        let a = random::gaussian(rng, m, n);
        let qr = QrFactor::new(a.clone());
        let q = qr.q_thin();
        let r = qr.r();
        prop_assert!(matmul(&q, &r).approx_eq(&a, 1e-10 * (1.0 + a.max_abs())));
        prop_assert!(matmul_tn(&q, &q).approx_eq(&Matrix::identity(n), 1e-12));
        // R is upper triangular.
        for j in 0..n {
            for i in (j + 1)..n {
                prop_assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_apply_qt_preserves_norms((m, n) in tall_dims(), seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let b = random::gaussian(&mut rng, m, 3);
        let qr = QrFactor::new(a);
        let mut t = b.clone();
        qr.apply_qt(&mut t);
        // Orthogonal transformations preserve column norms.
        for k in 0..3 {
            let before: f64 = b.col(k).iter().map(|v| v * v).sum::<f64>().sqrt();
            let after: f64 = t.col(k).iter().map(|v| v * v).sum::<f64>().sqrt();
            prop_assert!((before - after).abs() < 1e-10 * (1.0 + before));
        }
    }

    #[test]
    fn least_squares_satisfies_normal_equations((m, n) in tall_dims(), seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let b = random::gaussian(&mut rng, m, 1);
        let qr = QrFactor::new(a.clone());
        if let Ok(x) = qr.solve_ls(&b) {
            let resid = &matmul(&a, &x) - &b;
            let grad = matmul_tn(&a, &resid);
            prop_assert!(grad.max_abs() < 1e-8 * (1.0 + b.max_abs()),
                "gradient norm {}", grad.max_abs());
        }
    }

    #[test]
    fn gemm_matches_naive(m in 1usize..6, k in 1usize..6, n in 1usize..6,
                          a in proptest::collection::vec(-5.0..5.0f64, 36),
                          b in proptest::collection::vec(-5.0..5.0f64, 36)) {
        let a = Matrix::from_col_major(m, k, a[..m * k].to_vec());
        let b = Matrix::from_col_major(k, n, b[..k * n].to_vec());
        let c = matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let expect: f64 = (0..k).map(|l| a[(i, l)] * b[(l, j)]).sum();
                prop_assert!((c[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemm_transpose_consistency(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, k, m); // will be used transposed
        let b = random::gaussian(&mut rng, k, n);
        let c1 = matmul_tn(&a, &b);
        let c2 = matmul(&a.transpose(), &b);
        prop_assert!(c1.approx_eq(&c2, 1e-12));

        let d = random::gaussian(&mut rng, n, k);
        let e1 = matmul_nt(&b.transpose(), &d);
        let e2 = matmul(&b.transpose(), &d.transpose());
        prop_assert!(e1.approx_eq(&e2, 1e-12));
    }

    #[test]
    fn gemm_beta_accumulation(m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let b = random::gaussian(&mut rng, n, m);
        let c0 = random::gaussian(&mut rng, m, m);
        let mut c = c0.clone();
        gemm(2.0, &a, Trans::No, &b, Trans::No, -1.0, &mut c);
        let expect = &matmul(&a, &b).scaled(2.0) - &c0;
        prop_assert!(c.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn lu_solve_and_det(n in 1usize..7, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, n, n);
        let b = random::gaussian(&mut rng, n, 2);
        if let Ok(lu) = LuFactor::new(a.clone()) {
            let x = lu.solve(&b);
            prop_assert!(matmul(&a, &x).approx_eq(&b, 1e-7 * (1.0 + b.max_abs())));
            // det(A) via LU equals det via cofactor for n<=2 (sanity anchor).
            if n == 2 {
                let expect = a[(0, 0)] * a[(1, 1)] - a[(0, 1)] * a[(1, 0)];
                prop_assert!((lu.det() - expect).abs() < 1e-9 * (1.0 + expect.abs()));
            }
        }
    }

    #[test]
    fn cholesky_roundtrip(n in 1usize..7, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let c = random::spd(&mut rng, n);
        let ch = Cholesky::new(&c).unwrap();
        prop_assert!(kalman_dense::llt(ch.l()).approx_eq(&c, 1e-10));
        let w = ch.inverse_factor();
        // WᵀW·C == I
        let wtw = matmul_tn(&w, &w);
        prop_assert!(matmul(&wtw, &c).approx_eq(&Matrix::identity(n), 1e-6));
    }

    #[test]
    fn triangular_solves_are_inverses(n in 1usize..7, seed in 0u64..1000, mat in matrix_strategy(7, 3)) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        // Well-conditioned upper-triangular: QR of a Gaussian + diagonal boost.
        let g = random::gaussian(&mut rng, n, n);
        let mut u = QrFactor::new(g).r();
        for i in 0..n {
            u[(i, i)] += u[(i, i)].signum() * 1.0;
        }
        let b = mat.sub_matrix(0, 0, n, 3);

        let mut x = b.clone();
        tri::solve_upper_in_place(&u, &mut x).unwrap();
        prop_assert!(matmul(&u, &x).approx_eq(&b, 1e-8 * (1.0 + b.max_abs())));

        let mut xt = b.clone();
        tri::solve_upper_transpose_in_place(&u, &mut xt).unwrap();
        prop_assert!(matmul_tn(&u, &xt).approx_eq(&b, 1e-8 * (1.0 + b.max_abs())));

        let l = u.transpose();
        let mut xl = b.clone();
        tri::solve_lower_in_place(&l, &mut xl).unwrap();
        prop_assert!(matmul(&l, &xl).approx_eq(&b, 1e-8 * (1.0 + b.max_abs())));

        let wide = b.transpose();
        let mut xr = wide.clone();
        tri::solve_upper_right_in_place(&u, &mut xr).unwrap();
        prop_assert!(matmul(&xr, &u).approx_eq(&wide, 1e-8 * (1.0 + b.max_abs())));
    }

    #[test]
    fn compress_rows_preserves_gram_and_norm((m, n) in tall_dims(), seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, m, n);
        let rhs0 = random::gaussian(&mut rng, m, 1);
        let mut rhs = rhs0.clone();
        let r = kalman_dense::compress_rows(&a, &mut rhs);
        let gram_a = matmul_tn(&a, &a);
        let gram_r = matmul_tn(&r, &r);
        prop_assert!(gram_a.approx_eq(&gram_r, 1e-8 * (1.0 + gram_a.max_abs())));
        prop_assert!((rhs.frob_norm() - rhs0.frob_norm()).abs() < 1e-10 * (1.0 + rhs0.frob_norm()));
        // Also Aᵀ·rhs is preserved in the kept part: Rᵀ·(kept rows of rhs) == Aᵀ·rhs0.
        let kept = rhs.sub_matrix(0, 0, n.min(m), 1);
        let lhs = matmul_tn(&r, &kept);
        let expect = matmul_tn(&a, &rhs0);
        prop_assert!(lhs.approx_eq(&expect, 1e-8 * (1.0 + expect.max_abs())));
    }

    #[test]
    fn orthonormal_products_stay_orthonormal(n in 1usize..8, seed in 0u64..1000) {
        let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(seed);
        let q1 = random::orthonormal(&mut rng, n);
        let q2 = random::orthonormal(&mut rng, n);
        let p = matmul(&q1, &q2);
        prop_assert!(matmul_tn(&p, &p).approx_eq(&Matrix::identity(n), 1e-11));
    }
}

//! Parallel-in-time Kalman smoothing using orthogonal transformations.
//!
//! Umbrella crate re-exporting the full public API of the reproduction of
//! Gargir & Toledo, *"Parallel-in-Time Kalman Smoothing Using Orthogonal
//! Transformations"* (IPDPS 2025):
//!
//! | Module | Contents |
//! |---|---|
//! | [`model`] | Problem definition: [`model::LinearModel`], covariance specs, generators, dense oracle |
//! | [`odd_even`] | **The paper's contribution**: odd-even parallel QR smoother + parallel SelInv |
//! | [`seq`] | Sequential baselines: RTS smoother, Paige–Saunders QR smoother |
//! | [`associative`] | Särkkä & García-Fernández parallel-scan smoother |
//! | [`tridiag`] | Normal-equations cyclic-reduction smoother (unstable; for the stability study) |
//! | [`stream`] | Online serving: streaming fixed-lag smoother, R-factor forgetting, multi-stream pool |
//! | [`serve`] | Serving front-end: sharded pools, bounded-queue ingestion with backpressure, metrics |
//! | [`wire`] | Versioned self-describing binary codec + CRC-framed protocol for serving state |
//! | [`cluster`] | Cross-process serving: shard worker processes under a crash-recovering supervisor |
//! | [`obs`] | Observability: lock-free metric registry, phase spans, event journal, exporters |
//! | [`dense`] | Dense kernels (QR, LU, Cholesky, GEMM, triangular solves) |
//! | [`par`] | TBB-like parallel primitives (`parallel_for` with grain, parallel scans) |
//!
//! The production paths are instrumented with [`obs`] phase spans and
//! counters (see `docs/OBSERVABILITY.md` for the metric catalog); the
//! `obs-off` cargo feature compiles all instrumentation to no-ops.
//!
//! # Quickstart
//!
//! ```
//! use kalman::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let problem = kalman::model::generators::tracking_2d(&mut rng, 200, 0.1, 0.5, 0.25);
//!
//! // Smooth with the parallel odd-even algorithm…
//! let est = odd_even_smooth(&problem.model, OddEvenOptions::default()).unwrap();
//! // …and cross-check against the conventional RTS smoother.
//! let rts = rts_smooth(&problem.model).unwrap();
//! assert!(est.max_mean_diff(&rts) < 1e-6);
//! ```
//!
//! # Streaming quickstart
//!
//! When measurements arrive continuously instead of as a complete model,
//! feed them through a [`stream::StreamingSmoother`]: estimates are
//! finalized a fixed lag behind the newest data, and finalized history is
//! condensed away so memory stays bounded no matter how long the stream
//! runs (serve many streams at once with a [`stream::SmootherPool`]):
//!
//! ```
//! use kalman::prelude::*;
//! use kalman::dense::Matrix;
//!
//! let opts = StreamOptions { lag: 8, flush_every: 4, ..StreamOptions::default() };
//! let mut stream = StreamingSmoother::with_prior(
//!     vec![0.0], CovarianceSpec::Identity(1), opts).unwrap();
//! let mut finalized = Vec::new();
//! for i in 0..100 {
//!     if i > 0 {
//!         finalized.extend(stream.evolve(Evolution::random_walk(1)).unwrap());
//!     }
//!     stream.observe(Observation {
//!         g: Matrix::identity(1),
//!         o: vec![(i as f64 * 0.2).sin()],
//!         noise: CovarianceSpec::Identity(1),
//!     }).unwrap();
//!     assert!(stream.buffered_len() <= opts.window_capacity());
//! }
//! let (tail, _checkpoint) = stream.finish().unwrap();
//! finalized.extend(tail);
//! assert_eq!(finalized.len(), 100);
//! ```
//!
//! To serve *many* streams behind a bounded-memory front-end, put them in
//! a [`serve::ShardedPool`]: producers submit through cloneable
//! [`serve::Ingress`] handles (backpressured — a full shard queue makes
//! `try_submit` fail fast and the async `submit` wait), and a periodic
//! [`serve::ShardedPool::drain`] batch-flushes every full window with zero
//! steady-state allocations.  See `docs/GUIDE.md` for the full
//! walkthrough, and `examples/serving.rs` for a runnable tour.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Scalable thread-caching allocator, standing in for the TBB scalable
/// allocator (`libtbbmalloc_proxy`) the paper's test programs link against
/// (§5.1).  The parallel smoothers allocate many small matrix blocks from
/// many threads; the system allocator's arena handling dominates the running
/// time without this (see DESIGN.md).
#[global_allocator]
static GLOBAL: tikv_jemallocator::Jemalloc = tikv_jemallocator::Jemalloc;

/// Allocator instrumentation (per-thread allocation counting) exposed by
/// the global allocator.  The `alloc_steady_state` integration test and the
/// benchmark harness use it to prove the smoothing hot loops are
/// allocation-free after the workspace pool warms up.
pub mod alloc_stats {
    pub use tikv_jemallocator::{
        thread_alloc_count, thread_recent_alloc_sizes, trap_next_alloc_of_size,
    };

    /// Registers the allocator's per-thread allocation counter as the
    /// sampled gauge `alloc.thread_total` in the [`crate::obs`] registry
    /// (the reading is taken on the thread running the exporter).
    /// Idempotent.
    pub fn register_alloc_gauges() {
        kalman_obs::register_sampler("alloc.thread_total", || thread_alloc_count() as f64);
    }
}

// Compile and run the user guide's snippets with the crate's doctests, so
// docs/GUIDE.md can promise that every snippet works.
#[cfg(doctest)]
#[doc = include_str!("../../../docs/GUIDE.md")]
mod guide_doctests {}

// Same deal for the observability guide.
#[cfg(doctest)]
#[doc = include_str!("../../../docs/OBSERVABILITY.md")]
mod observability_doctests {}

pub use kalman_associative as associative;
pub use kalman_cluster as cluster;
pub use kalman_dense as dense;
pub use kalman_model as model;
pub use kalman_nonlinear as nonlinear;
pub use kalman_obs as obs;
pub use kalman_odd_even as odd_even;
pub use kalman_par as par;
pub use kalman_seq as seq;
pub use kalman_serve as serve;
pub use kalman_stream as stream;
pub use kalman_tridiag as tridiag;
pub use kalman_wire as wire;

/// The most common imports in one place.
pub mod prelude {
    pub use kalman_associative::{associative_smooth, AssociativeOptions, ScanOptions, ScanPlan};
    pub use kalman_dense::Matrix;
    pub use kalman_model::{
        solve_dense, CovarianceSpec, Evolution, KalmanError, LinearModel, LinearStep, Observation,
        Smoothed,
    };
    pub use kalman_nonlinear::{gauss_newton_smooth, GaussNewtonOptions, NonlinearModel};
    pub use kalman_odd_even::{
        odd_even_smooth, resolve_backend, BackendKind, BackendPolicy, OddEvenOptions, PhaseProfile,
        PlanSchedule, ScanSchedule, SmoothPlan, SmootherBackend,
    };
    pub use kalman_par::{run_with_threads, ExecPolicy};
    pub use kalman_seq::{paige_saunders_smooth, rts_smooth, SmootherOptions};
    pub use kalman_serve::{Ingress, ServeConfig, ShardedPool, SubmitError, TrySubmitError};
    pub use kalman_stream::{
        Checkpoint, FinalizedStep, LagPolicy, PollBatch, SmootherPool, StreamId, StreamOptions,
        StreamingSmoother,
    };
    pub use kalman_tridiag::{normal_equations_smooth, TridiagMethod};
}

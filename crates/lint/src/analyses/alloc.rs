//! Alloc-freedom: no allocation reachable from a declared hot path.
//!
//! An intra-workspace call-graph **over-approximation**:
//!
//! 1. Every non-test function in the graph scope becomes a node, keyed by
//!    bare name and by `ImplType::name`.
//! 2. Call sites are resolved *by name*: `Type::f(…)` prefers functions of
//!    a matching impl, `.m(…)` and `f(…)` link to every workspace function
//!    with that name.  Calls that resolve to nothing (std, vendor) add no
//!    edge — the allocating subset of std is covered by the seed list
//!    instead.
//! 3. Known-allocating constructs (`Vec::new`, `.push(…)`, `format!`, …)
//!    are matched syntactically inside bodies ("seeds").
//! 4. From each hot-path root, a traversal reports every reachable seed
//!    with one example call chain.
//!
//! Over-approximation errs loud: a flagged site that provably cannot
//! allocate (an `Arc` refcount `clone`, a cold planning path amortized
//! away) is silenced *in place* with `// lint: allow(alloc, "<reason>")` —
//! on the seed line, or above a `fn` to declare the whole function an
//! allowed (cold) region that traversal does not enter.  This statically
//! complements the dynamic allocation-counter proof in
//! `tests/alloc_steady_state.rs`: the test pins chosen workloads, the lint
//! pins every path the graph can see.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;

use crate::config::AllocConfig;
use crate::diag::{Analysis, FileCtx, Finding};
use crate::lexer::SourceFile;

use super::{in_scope, NON_CALL_KEYWORDS};

/// Workspace crate dependency closure, used to reject call edges that the
/// crate graph makes impossible: a bare `.drain(…)` in `crates/core`
/// cannot dispatch to a `drain` defined in `crates/serve`, because core
/// does not (and cannot — it would be a cycle) depend on serve.
pub struct CrateDeps {
    /// Crate dir (e.g. `crates/stream`) → transitive dependency dirs.
    closure: BTreeMap<String, BTreeSet<String>>,
}

impl CrateDeps {
    /// A permissive map with no information: every edge is allowed.  Used
    /// by fixture tests that lint loose files outside any workspace.
    pub fn permissive() -> CrateDeps {
        CrateDeps {
            closure: BTreeMap::new(),
        }
    }

    /// Reads the workspace manifests under `root`: the root `Cargo.toml`'s
    /// `[workspace.dependencies]` name → path table, then each member's
    /// `[dependencies]`.  Any parse trouble degrades to permissive entries
    /// rather than failing the lint run.
    pub fn discover(root: &Path) -> CrateDeps {
        let mut name_to_dir: BTreeMap<String, String> = BTreeMap::new();
        let Ok(root_manifest) = std::fs::read_to_string(root.join("Cargo.toml")) else {
            return CrateDeps::permissive();
        };
        let mut section = String::new();
        for line in root_manifest.lines() {
            let line = line.trim();
            if let Some(s) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = s.to_string();
                continue;
            }
            if section == "workspace.dependencies" {
                if let Some((name, rest)) = line.split_once('=') {
                    if let Some(path) = rest.split("path =").nth(1) {
                        if let Some(dir) = path.split('"').nth(1) {
                            name_to_dir.insert(name.trim().to_string(), dir.to_string());
                        }
                    }
                }
            }
        }
        // Direct dependencies per crate dir.
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for dir in name_to_dir.values() {
            let deps = direct.entry(dir.clone()).or_default();
            let Ok(manifest) = std::fs::read_to_string(root.join(dir).join("Cargo.toml")) else {
                continue;
            };
            let mut section = String::new();
            for line in manifest.lines() {
                let line = line.trim();
                if let Some(s) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                    section = s.to_string();
                    continue;
                }
                // Dev-dependencies are irrelevant: test code never joins
                // the graph.
                if section != "dependencies" {
                    continue;
                }
                let key = line
                    .split(['=', '.', ' '])
                    .next()
                    .unwrap_or("")
                    .trim()
                    .trim_matches('"');
                if let Some(dep_dir) = name_to_dir.get(key) {
                    deps.insert(dep_dir.clone());
                }
            }
        }
        // Transitive closure to a fixpoint.
        let mut closure = direct.clone();
        loop {
            let mut grew = false;
            for dir in direct.keys() {
                let current: Vec<String> = closure[dir].iter().cloned().collect();
                for dep in current {
                    let extra: Vec<String> = closure
                        .get(&dep)
                        .map(|s| s.iter().cloned().collect())
                        .unwrap_or_default();
                    let set = closure.get_mut(dir).expect("seeded from direct");
                    for e in extra {
                        grew |= set.insert(e);
                    }
                }
            }
            if !grew {
                break;
            }
        }
        CrateDeps { closure }
    }

    /// May code in `caller` (a crate dir) call code in `callee`?  Unknown
    /// callers are allowed everything — better a loud over-approximation
    /// than edges silently dropped by a manifest hiccup.
    fn allows(&self, caller: &str, callee: &str) -> bool {
        if caller == callee {
            return true;
        }
        match self.closure.get(caller) {
            Some(deps) => deps.contains(callee),
            None => true,
        }
    }
}

/// The crate dir of a workspace-relative source path: its first two
/// components (`crates/stream/src/pool.rs` → `crates/stream`).
fn crate_dir(path: &Path) -> String {
    let p = path.to_string_lossy().replace('\\', "/");
    let mut it = p.split('/');
    match (it.next(), it.next()) {
        (Some(a), Some(b)) => format!("{a}/{b}"),
        (Some(a), None) => a.to_string(),
        _ => String::new(),
    }
}

/// One function node in the approximate call graph.
struct Node {
    name: String,
    qual: Option<String>,
    file: usize,
    /// Crate dir the function lives in, for dependency-direction edges.
    krate: String,
    /// Reason of a fn-level `allow(alloc)` pragma, when present: the
    /// function is an allowed (cold) region — not traversed, its seeds
    /// not reported.
    allowed: bool,
    /// Unsuppressed allocation seeds in the body: (line, construct).
    seeds: Vec<(u32, String)>,
    /// Call edges out of the body: (callee bare name, qualifier).
    calls: Vec<(String, Option<String>)>,
}

/// Compiled seed patterns.
struct Seeds {
    /// `format!`-style macro names (without the `!`).
    macros: BTreeSet<String>,
    /// `Type::name` path seeds.
    paths: BTreeSet<String>,
    /// Bare method/assoc-fn name seeds (`.push(…)`, `…::push(…)`).
    methods: BTreeSet<String>,
    /// Qualified calls exempted even when the method name is a seed.
    exceptions: BTreeSet<String>,
}

impl Seeds {
    fn compile(cfg: &AllocConfig) -> Seeds {
        let mut s = Seeds {
            macros: BTreeSet::new(),
            paths: BTreeSet::new(),
            methods: BTreeSet::new(),
            exceptions: cfg.seed_exceptions.iter().cloned().collect(),
        };
        for seed in &cfg.seeds {
            if let Some(m) = seed.strip_suffix('!') {
                s.macros.insert(m.to_string());
            } else if seed.contains("::") {
                s.paths.insert(seed.clone());
            } else {
                s.methods.insert(seed.clone());
            }
        }
        s
    }
}

/// Runs the analysis: builds the graph over `files`, then traverses from
/// the configured hot paths.
pub fn run(files: &[FileCtx], cfg: &AllocConfig, deps: &CrateDeps) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !cfg.enabled {
        return findings;
    }
    let seeds = Seeds::compile(cfg);
    let mut nodes: Vec<Node> = Vec::new();
    for (fi, ctx) in files.iter().enumerate() {
        if !in_scope(&ctx.file.path, &cfg.graph_roots)
            || in_scope(&ctx.file.path, &cfg.graph_exclude)
        {
            continue;
        }
        for func in &ctx.outline.functions {
            if func.is_test || func.body.is_empty() {
                continue;
            }
            let allowed = ctx.pragma_for(func.decl_line, Analysis::Alloc).is_some();
            let mut node = Node {
                name: func.name.clone(),
                qual: func.qual.clone(),
                file: fi,
                krate: crate_dir(&ctx.file.path),
                allowed,
                seeds: Vec::new(),
                calls: Vec::new(),
            };
            scan_body(ctx, func.body.clone(), &seeds, &mut node);
            nodes.push(node);
        }
    }

    // Name → node indices (bare and qualified).
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_qual: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
        if let Some(q) = &n.qual {
            by_qual
                .entry((q.as_str(), n.name.as_str()))
                .or_default()
                .push(i);
        }
    }
    // A qualified call resolves only against matching impls: when
    // `Type::method` names no workspace function the callee is external
    // (std or vendored) and the *seed list* is what models its allocation
    // behavior.  Falling back to every `method` by bare name would wire
    // e.g. `Vec::drain` to unrelated workspace `drain` fns and connect the
    // whole graph.  Unqualified method calls still resolve by name — that
    // is the deliberate over-approximation for receiver dispatch.
    let resolve = |name: &str, qual: Option<&str>| -> Vec<usize> {
        match qual {
            Some(q) => by_qual.get(&(q, name)).cloned().unwrap_or_default(),
            None => by_name.get(name).cloned().unwrap_or_default(),
        }
    };

    // Hot-path roots from explicit names and hot modules.
    let mut roots: Vec<usize> = Vec::new();
    for spec in &cfg.hot_paths {
        let ids = match spec.split_once("::") {
            Some((q, m)) => {
                let v = by_qual.get(&(q, m)).cloned().unwrap_or_default();
                if v.is_empty() {
                    by_name.get(m).cloned().unwrap_or_default()
                } else {
                    v
                }
            }
            None => by_name.get(spec.as_str()).cloned().unwrap_or_default(),
        };
        if ids.is_empty() {
            findings.push(Finding::new(
                Analysis::Alloc,
                std::path::Path::new("lint.toml"),
                0,
                format!(
                    "hot path `{spec}` not found in the workspace — fix or remove the \
                     [alloc] hot_paths entry"
                ),
            ));
        }
        roots.extend(ids);
    }
    for (i, n) in nodes.iter().enumerate() {
        if in_scope(&files[n.file].file.path, &cfg.hot_modules) {
            roots.push(i);
        }
    }
    roots.sort_unstable();
    roots.dedup();

    // Traverse from each root; report each seed site once (first chain).
    let mut reported: BTreeMap<(usize, u32), ()> = BTreeMap::new();
    for &root in &roots {
        if nodes[root].allowed {
            continue;
        }
        // DFS with an explicit stack carrying the chain.
        let mut visited: BTreeSet<usize> = BTreeSet::new();
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(root, vec![root])];
        visited.insert(root);
        while let Some((cur, chain)) = stack.pop() {
            let node = &nodes[cur];
            for (line, construct) in &node.seeds {
                if reported.insert((node.file, *line), ()).is_none() {
                    let path_names: Vec<&str> =
                        chain.iter().map(|&i| nodes[i].name.as_str()).collect();
                    let via = if path_names.len() > 8 {
                        format!(
                            "{} → … → {}",
                            path_names[..4].join(" → "),
                            path_names[path_names.len() - 3..].join(" → ")
                        )
                    } else {
                        path_names.join(" → ")
                    };
                    findings.push(Finding::new(
                        Analysis::Alloc,
                        &files[node.file].file.path,
                        *line,
                        format!(
                            "allocation `{construct}` reachable from hot path \
                             `{root_name}` via {via}",
                            root_name = display_name(&nodes[root]),
                        ),
                    ));
                }
            }
            for (callee, qual) in &node.calls {
                for next in resolve(callee, qual.as_deref()) {
                    if !deps.allows(&node.krate, &nodes[next].krate) {
                        continue; // impossible by crate-graph direction
                    }
                    if !nodes[next].allowed && visited.insert(next) {
                        let mut c = chain.clone();
                        c.push(next);
                        stack.push((next, c));
                    }
                }
            }
        }
    }
    findings.sort_by_key(|f| (f.file.clone(), f.line));
    findings
}

fn display_name(n: &Node) -> String {
    match &n.qual {
        Some(q) => format!("{q}::{}", n.name),
        None => n.name.clone(),
    }
}

/// Scans a body token range for seeds and call edges.
fn scan_body(ctx: &FileCtx, body: std::ops::Range<usize>, seeds: &Seeds, node: &mut Node) {
    let f = &ctx.file;
    let mut i = body.start;
    while i < body.end {
        let t = f.ct(i);
        // Method call: `.name(` or `.name::<…>(`.
        if t.is_punct('.') {
            if let Some(m) = f.ct_opt(i + 1).and_then(|t| t.ident()) {
                if let Some(after) = after_maybe_turbofish(f, i + 2) {
                    if f.ct_opt(after).is_some_and(|t| t.is_punct('(')) {
                        let line = f.ct(i + 1).line;
                        if seeds.methods.contains(m) {
                            if ctx.pragma_for(line, Analysis::Alloc).is_none() {
                                node.seeds.push((line, format!(".{m}(…)")));
                            }
                        } else {
                            node.calls.push((m.to_string(), None));
                        }
                        i += 2;
                        continue;
                    }
                }
            }
            i += 1;
            continue;
        }
        // Macro seed: `name!`.
        if let Some(m) = t.ident() {
            if f.ct_opt(i + 1).is_some_and(|t| t.is_punct('!')) {
                if seeds.macros.contains(m) {
                    let line = t.line;
                    if ctx.pragma_for(line, Analysis::Alloc).is_none() {
                        node.seeds.push((line, format!("{m}!(…)")));
                    }
                }
                i += 2;
                continue;
            }
        }
        // Path or bare call: `a::b::c(…)` / `f(…)`.
        if t.ident().is_some() && !prev_blocks_call(f, i) {
            if let Some((segments, after)) = parse_path(f, i) {
                if f.ct_opt(after).is_some_and(|t| t.is_punct('(')) {
                    let name = segments[segments.len() - 1].clone();
                    let qual = (segments.len() >= 2).then(|| segments[segments.len() - 2].clone());
                    let full = match &qual {
                        Some(q) => format!("{q}::{name}"),
                        None => name.clone(),
                    };
                    let line = f.ct(i).line;
                    if seeds.exceptions.contains(&full) {
                        // Known non-allocating (e.g. `Arc::clone`).
                    } else if seeds.paths.contains(&full)
                        || (qual.is_some() && seeds.methods.contains(name.as_str()))
                    {
                        if ctx.pragma_for(line, Analysis::Alloc).is_none() {
                            node.seeds.push((line, format!("{full}(…)")));
                        }
                    } else if !NON_CALL_KEYWORDS.contains(&name.as_str()) {
                        node.calls.push((name, qual));
                    }
                }
                i = after.max(i + 1);
                continue;
            }
        }
        i += 1;
    }
}

/// True when the token before `i` rules out a call interpretation
/// (`fn name(`, `.x` handled elsewhere).
fn prev_blocks_call(f: &SourceFile, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let p = f.ct(i - 1);
    p.is_punct('.')
        || p.is_punct(':')
        || matches!(
            p.ident(),
            Some("fn") | Some("struct") | Some("enum") | Some("union")
        )
}

/// Parses a `::`-separated path starting at ident index `i`; returns the
/// segment names and the index just past the path (turbofish skipped).
fn parse_path(f: &SourceFile, i: usize) -> Option<(Vec<String>, usize)> {
    let first = f.ct(i).ident()?;
    let mut segments = vec![first.to_string()];
    let mut j = i + 1;
    loop {
        if f.ct_opt(j).is_some_and(|t| t.is_punct(':'))
            && f.ct_opt(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            let k = j + 2;
            if let Some(id) = f.ct_opt(k).and_then(|t| t.ident()) {
                segments.push(id.to_string());
                j = k + 1;
            } else if f.ct_opt(k).is_some_and(|t| t.is_punct('<')) {
                // Turbofish on an intermediate segment: `Vec::<f64>::new`.
                j = skip_angles(f, k)?;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    Some((segments, j))
}

/// Returns the index after a `::<…>` turbofish at `i`, or `i` unchanged
/// when there is none.
fn after_maybe_turbofish(f: &SourceFile, i: usize) -> Option<usize> {
    if f.ct_opt(i).is_some_and(|t| t.is_punct(':'))
        && f.ct_opt(i + 1).is_some_and(|t| t.is_punct(':'))
        && f.ct_opt(i + 2).is_some_and(|t| t.is_punct('<'))
    {
        skip_angles(f, i + 2)
    } else {
        Some(i)
    }
}

fn skip_angles(f: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = f.ct_opt(j) {
        if t.is_punct('<') && !(j > 0 && f.ct(j - 1).is_punct('-')) {
            depth += 1;
        } else if t.is_punct('>') && !(j > 0 && f.ct(j - 1).is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        } else if t.is_punct(';') || t.is_punct('{') {
            return None; // not a turbofish after all
        }
        j += 1;
    }
    None
}

//! Atomic-ordering discipline: `crates/obs` is an all-`Relaxed` design —
//! its counters are statistical, never synchronization — so any stronger
//! ordering there is a finding.  Everywhere else an `Ordering::` use is a
//! synchronization decision and must carry an adjacent comment justifying
//! the chosen ordering (or an explicit `// lint: allow(atomic, "…")`).

use crate::config::AtomicsConfig;
use crate::diag::{Analysis, FileCtx, Finding};

use super::in_scope;

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Words that make an adjacent comment count as an ordering justification.
const JUSTIFICATION_WORDS: &[&str] = &[
    "ordering",
    "relaxed",
    "acquire",
    "release",
    "seqcst",
    "acq",
    "atomic",
    "happens-before",
    "fence",
    "handshake",
    "synchroniz",
];

/// Runs the analysis over every file.
pub fn run(files: &[FileCtx], cfg: &AtomicsConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !cfg.enabled {
        return findings;
    }
    for ctx in files {
        let relaxed_zone = in_scope(&ctx.file.path, &cfg.relaxed_only);
        let f = &ctx.file;
        let n = f.code_len();
        for i in 0..n {
            if f.ct(i).ident() != Some("Ordering") {
                continue;
            }
            if !(f.ct_opt(i + 1).is_some_and(|t| t.is_punct(':'))
                && f.ct_opt(i + 2).is_some_and(|t| t.is_punct(':')))
            {
                continue;
            }
            let Some(which) = f
                .ct_opt(i + 3)
                .and_then(|t| t.ident())
                .filter(|w| ORDERINGS.contains(w))
            else {
                continue;
            };
            let line = f.ct(i + 3).line;
            if relaxed_zone {
                if which != "Relaxed" && ctx.pragma_for(line, Analysis::Atomic).is_none() {
                    findings.push(Finding::new(
                        Analysis::Atomic,
                        &f.path,
                        line,
                        format!(
                            "`Ordering::{which}` in an all-Relaxed crate — the metrics \
                             layer must not smuggle in synchronization; use `Relaxed` or \
                             justify with `// lint: allow(atomic, \"…\")`"
                        ),
                    ));
                }
            } else {
                let justified = ctx.adjacent_comment(line, |text| {
                    let lower = text.to_lowercase();
                    JUSTIFICATION_WORDS.iter().any(|w| lower.contains(w))
                });
                if !justified && ctx.pragma_for(line, Analysis::Atomic).is_none() {
                    findings.push(Finding::new(
                        Analysis::Atomic,
                        &f.path,
                        line,
                        format!(
                            "`Ordering::{which}` without an adjacent justification \
                             comment explaining the choice of memory ordering"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

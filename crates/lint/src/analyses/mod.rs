//! The four analyses: alloc-freedom, panic-freedom, unsafe audit, and
//! atomic-ordering discipline.

pub mod alloc;
pub mod atomics;
pub mod panics;
pub mod unsafety;

use std::path::Path;

/// True when `path` (workspace-relative, slash-separated) is `prefix`
/// itself or lies underneath it.
pub fn under(path: &Path, prefix: &str) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    let prefix = prefix.trim_end_matches('/');
    p == prefix || p.starts_with(&format!("{prefix}/"))
}

/// True when `path` is under any of `prefixes`.
pub fn in_scope(path: &Path, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| under(path, p))
}

/// Rust keywords that can be directly followed by `(` without being calls.
pub const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "return", "for", "loop", "in", "as", "move", "unsafe", "let", "else",
    "fn", "impl", "dyn", "box", "ref", "mut", "where", "use", "pub", "crate", "super", "self",
    "Self", "break", "continue", "yield", "await", "async", "const", "static", "type", "trait",
    "enum", "struct", "mod", "extern",
];

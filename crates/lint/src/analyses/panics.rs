//! Panic-freedom: no `.unwrap()` / `.expect(…)` / `panic!` /
//! `unreachable!` / `todo!` / `unimplemented!` in the non-test code of the
//! serving crates.
//!
//! Doc comments (rustdoc examples routinely `.unwrap()`), string literals,
//! `#[cfg(test)]` modules, and `#[test]` functions are all exempt — the
//! first two fall out of the lexer, the last two out of the outline.  A
//! deliberate panic carries `// lint: allow(panic, "<reason>")`.

use crate::config::PanicConfig;
use crate::diag::{Analysis, FileCtx, Finding};

use super::in_scope;

/// Macros whose expansion panics.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// `Result`/`Option` methods that panic on the error/none side.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Runs the analysis over every in-scope file.
pub fn run(files: &[FileCtx], cfg: &PanicConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !cfg.enabled {
        return findings;
    }
    for ctx in files {
        if !in_scope(&ctx.file.path, &cfg.paths) {
            continue;
        }
        let f = &ctx.file;
        let n = f.code_len();
        for i in 0..n {
            if ctx.outline.in_test(i) {
                continue;
            }
            let t = f.ct(i);
            // `.unwrap(` / `.expect(` — exact method-name match, so
            // `unwrap_or` and friends never trip this.
            if t.is_punct('.') {
                if let Some(m) = f.ct_opt(i + 1).and_then(|t| t.ident()) {
                    if PANIC_METHODS.contains(&m)
                        && f.ct_opt(i + 2).is_some_and(|t| t.is_punct('('))
                    {
                        let line = f.ct(i + 1).line;
                        if ctx.pragma_for(line, Analysis::Panic).is_none() {
                            findings.push(Finding::new(
                                Analysis::Panic,
                                &f.path,
                                line,
                                format!(
                                    "`.{m}()` in non-test serving code — propagate a \
                                     `KalmanError` or justify with \
                                     `// lint: allow(panic, \"…\")`"
                                ),
                            ));
                        }
                    }
                }
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
            if let Some(m) = t.ident() {
                if PANIC_MACROS.contains(&m) && f.ct_opt(i + 1).is_some_and(|t| t.is_punct('!')) {
                    let line = t.line;
                    if ctx.pragma_for(line, Analysis::Panic).is_none() {
                        findings.push(Finding::new(
                            Analysis::Panic,
                            &f.path,
                            line,
                            format!(
                                "`{m}!` in non-test serving code — return an error or \
                                 justify with `// lint: allow(panic, \"…\")`"
                            ),
                        ));
                    }
                }
            }
        }
    }
    findings
}

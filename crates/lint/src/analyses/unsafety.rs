//! Unsafe audit: every `unsafe` block / fn / impl / trait carries an
//! adjacent `// SAFETY:` comment, and first-party crate roots carry
//! `#![forbid(unsafe_code)]`.
//!
//! For `unsafe fn` declarations a rustdoc `# Safety` section in the doc
//! block directly above is also accepted — that is the idiomatic place for
//! a caller-facing contract, and the audit should not force the same text
//! twice.

use crate::config::UnsafeConfig;
use crate::diag::{Analysis, FileCtx, Finding};

use super::under;

/// Runs the audit over every file, plus the forbid cross-check.
pub fn run(files: &[FileCtx], cfg: &UnsafeConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !cfg.enabled {
        return findings;
    }
    for ctx in files {
        let f = &ctx.file;
        for i in 0..f.code_len() {
            let t = f.ct(i);
            if t.ident() != Some("unsafe") {
                continue;
            }
            let next = f.ct_opt(i + 1);
            let (kind, fn_like) = match next {
                Some(n) if n.is_punct('{') => ("block", false),
                Some(n) if n.ident() == Some("fn") => {
                    // `unsafe fn(…)` in type position is still an unsafe
                    // contract crossing — it needs the comment too.
                    if f.ct_opt(i + 2).is_some_and(|t| t.is_punct('(')) {
                        ("fn-pointer type", true)
                    } else {
                        ("fn", true)
                    }
                }
                Some(n) if n.ident() == Some("impl") => ("impl", false),
                Some(n) if n.ident() == Some("trait") => ("trait", false),
                // `unsafe` in attribute grammar or parse confusion.
                _ => continue,
            };
            let line = t.line;
            let documented = ctx.adjacent_comment(line, |text| {
                text.contains("SAFETY:") || (fn_like && text.contains("# Safety"))
            });
            if documented || ctx.pragma_for(line, Analysis::Unsafe).is_some() {
                continue;
            }
            findings.push(Finding::new(
                Analysis::Unsafe,
                &f.path,
                line,
                format!(
                    "`unsafe` {kind} without an adjacent `// SAFETY:` comment{}",
                    if fn_like {
                        " (or a rustdoc `# Safety` section)"
                    } else {
                        ""
                    }
                ),
            ));
        }
    }
    // ------ `#![forbid(unsafe_code)]` cross-check on crate roots --------
    for dir in &cfg.forbid_crate_dirs {
        for ctx in files {
            let p = ctx.file.path.to_string_lossy().replace('\\', "/");
            let Some(rest) = p.strip_prefix(&format!("{}/", dir.trim_end_matches('/'))) else {
                continue;
            };
            // Exactly `<crate>/src/lib.rs` below the configured dir.
            let mut segs = rest.split('/');
            let krate = segs.next().unwrap_or("");
            if segs.next() != Some("src") || segs.next() != Some("lib.rs") || segs.next().is_some()
            {
                continue;
            }
            let crate_dir = format!("{}/{}", dir.trim_end_matches('/'), krate);
            if cfg
                .forbid_exempt
                .iter()
                .any(|e| under(&ctx.file.path, e) || *e == crate_dir)
            {
                continue;
            }
            if !ctx
                .outline
                .inner_attrs
                .iter()
                .any(|a| a == "forbid(unsafe_code)")
            {
                findings.push(Finding::new(
                    Analysis::Unsafe,
                    &ctx.file.path,
                    1,
                    "first-party crate root missing `#![forbid(unsafe_code)]`",
                ));
            }
        }
    }
    findings
}

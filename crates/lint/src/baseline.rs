//! The `lint.baseline` ratchet: grandfathered finding keys.
//!
//! New findings (keys absent from the baseline) are errors; findings whose
//! key is listed are downgraded to warnings so pre-existing debt does not
//! block CI while still being visible.  `--update-baseline` rewrites the
//! file from the current findings.  The committed baseline of this
//! workspace is **empty** — every suppression is an inline reasoned
//! pragma, and the ratchet only exists so future debt can be introduced
//! deliberately rather than silently.

use std::collections::BTreeSet;
use std::path::Path;

use crate::diag::{Finding, Level};

/// A loaded baseline: the set of grandfathered keys.
#[derive(Debug, Default)]
pub struct Baseline {
    keys: BTreeSet<String>,
}

impl Baseline {
    /// Loads `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let mut keys = BTreeSet::new();
        match std::fs::read_to_string(path) {
            Ok(src) => {
                for line in src.lines() {
                    let line = line.split('#').next().unwrap_or("").trim();
                    if !line.is_empty() {
                        keys.insert(line.to_string());
                    }
                }
                Ok(Baseline { keys })
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Number of grandfathered keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are grandfathered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Downgrades grandfathered findings to warnings and returns the
    /// stale keys (present in the baseline, no longer found) so the
    /// ratchet can tighten.
    pub fn apply(&self, findings: &mut [Finding]) -> Vec<String> {
        let mut seen = BTreeSet::new();
        for f in findings.iter_mut() {
            let key = f.key();
            if self.keys.contains(&key) {
                f.level = Level::Warn;
                seen.insert(key);
            }
        }
        self.keys.difference(&seen).cloned().collect()
    }

    /// Serializes `findings` as baseline content (keys with location
    /// comments, sorted for stable diffs).
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# kalman-lint baseline — grandfathered finding keys (one per line).\n\
             # New findings not listed here fail `--ci`; regenerate with\n\
             # `cargo run -p kalman-lint -- --update-baseline` only when debt\n\
             # is introduced deliberately.  Keep this file empty when you can.\n",
        );
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| {
                format!(
                    "{}  # {}:{} {}",
                    f.key(),
                    f.file,
                    f.line,
                    first_words(&f.message)
                )
            })
            .collect();
        lines.sort();
        lines.dedup();
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

fn first_words(msg: &str) -> &str {
    if msg.len() <= 60 {
        return msg;
    }
    let mut end = 60;
    while !msg.is_char_boundary(end) {
        end -= 1;
    }
    &msg[..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Analysis;
    use std::path::PathBuf;

    #[test]
    fn grandfathers_and_reports_stale() {
        let mut findings = vec![
            Finding::new(
                Analysis::Panic,
                &PathBuf::from("a.rs"),
                3,
                "old `.unwrap()`",
            ),
            Finding::new(
                Analysis::Panic,
                &PathBuf::from("a.rs"),
                9,
                "new `.unwrap()` two",
            ),
        ];
        let content = Baseline::render(&findings[..1]);
        let dir = std::env::temp_dir().join("kalman-lint-test-baseline");
        std::fs::write(&dir, content).unwrap();
        let bl = Baseline::load(&dir).unwrap();
        assert_eq!(bl.len(), 1);
        // Add a stale key that no longer corresponds to a finding.
        std::fs::write(
            &dir,
            format!("{}\ndeadbeef-stale-key\n", Baseline::render(&findings[..1])),
        )
        .unwrap();
        let bl = Baseline::load(&dir).unwrap();
        let stale = bl.apply(&mut findings);
        assert_eq!(findings[0].level, Level::Warn, "grandfathered");
        assert_eq!(findings[1].level, Level::Error, "new finding stays fatal");
        assert_eq!(stale, vec!["deadbeef-stale-key".to_string()]);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let bl = Baseline::load(Path::new("/nonexistent/lint.baseline")).unwrap();
        assert!(bl.is_empty());
    }
}

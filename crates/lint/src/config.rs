//! `lint.toml` — which files each analysis covers, the hot-path roots and
//! allocation seeds, and the crates pinned to `Relaxed`-only atomics.
//!
//! The environment has no registry access, so this is a hand-rolled reader
//! for the TOML subset the config actually uses: `[tables]`, `key = value`
//! with string / bool / string-array values (arrays may span lines), and
//! `#` comments.  Unknown tables or keys are an error — a typo in a lint
//! config silently disabling an analysis is exactly the failure mode a
//! ratchet tool cannot afford.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed configuration; see the crate-level docs and `docs/LINTS.md` for
/// the meaning of each field.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directory roots (workspace-relative) to scan for `.rs` files.
    pub include: Vec<String>,
    /// Path prefixes excluded from every analysis (fixtures, generated).
    pub exclude: Vec<String>,
    /// Alloc-freedom analysis settings.
    pub alloc: AllocConfig,
    /// Unsafe-audit settings.
    pub unsafety: UnsafeConfig,
    /// Panic-freedom settings.
    pub panic: PanicConfig,
    /// Atomic-ordering settings.
    pub atomics: AtomicsConfig,
}

/// Settings for the alloc-freedom analysis.
#[derive(Debug, Clone)]
pub struct AllocConfig {
    /// Master switch.
    pub enabled: bool,
    /// Path prefixes whose functions join the call graph.
    pub graph_roots: Vec<String>,
    /// Path prefixes excluded from the call graph (benches, the linter).
    pub graph_exclude: Vec<String>,
    /// Hot-path roots: `name` or `Type::name` function references.
    pub hot_paths: Vec<String>,
    /// Path prefixes whose every (non-test) function is a hot-path root.
    pub hot_modules: Vec<String>,
    /// Known-allocating constructs: `name!` (macro), `Type::name` (path
    /// call), or `name` (method call `.name(…)` / any-path `…::name(…)`).
    pub seeds: Vec<String>,
    /// Qualified calls that look like a seed but are known non-allocating
    /// (e.g. `Arc::clone`).
    pub seed_exceptions: Vec<String>,
}

/// Settings for the unsafe audit.
#[derive(Debug, Clone)]
pub struct UnsafeConfig {
    /// Master switch.
    pub enabled: bool,
    /// Crate source roots whose `src/lib.rs` must carry
    /// `#![forbid(unsafe_code)]` (each entry is scanned for
    /// `<entry>/*/src/lib.rs`).
    pub forbid_crate_dirs: Vec<String>,
    /// Crate directories exempt from the forbid cross-check (vendored
    /// stand-ins that need `unsafe`).
    pub forbid_exempt: Vec<String>,
}

/// Settings for the panic-freedom analysis.
#[derive(Debug, Clone)]
pub struct PanicConfig {
    /// Master switch.
    pub enabled: bool,
    /// Path prefixes covered by the no-panic rule (non-test code only).
    pub paths: Vec<String>,
}

/// Settings for the atomic-ordering analysis.
#[derive(Debug, Clone)]
pub struct AtomicsConfig {
    /// Master switch.
    pub enabled: bool,
    /// Path prefixes where every `Ordering::` use must be `Relaxed`.
    pub relaxed_only: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            include: vec!["crates".into(), "vendor".into()],
            exclude: Vec::new(),
            alloc: AllocConfig {
                enabled: true,
                graph_roots: vec!["crates".into()],
                graph_exclude: Vec::new(),
                hot_paths: Vec::new(),
                hot_modules: Vec::new(),
                seeds: default_seeds(),
                seed_exceptions: vec!["Arc::clone".into(), "Rc::clone".into()],
            },
            unsafety: UnsafeConfig {
                enabled: true,
                forbid_crate_dirs: vec!["crates".into()],
                forbid_exempt: Vec::new(),
            },
            panic: PanicConfig {
                enabled: true,
                paths: Vec::new(),
            },
            atomics: AtomicsConfig {
                enabled: true,
                relaxed_only: Vec::new(),
            },
        }
    }
}

/// The built-in allocation seeds (kept in sync with `docs/LINTS.md`).
pub fn default_seeds() -> Vec<String> {
    [
        "Vec::new",
        "Vec::with_capacity",
        "with_capacity",
        "push",
        "to_vec",
        "format!",
        "vec!",
        "Box::new",
        "String::new",
        "String::from",
        "to_string",
        "to_owned",
        "collect",
        "clone",
        "extend",
        "reserve",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// A TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Array(Vec<String>),
}

/// Reads and applies `lint.toml` content on top of [`Config::default`].
pub fn parse(src: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let raw = parse_tables(src)?;
    for (table, entries) in &raw {
        for (key, value) in entries {
            apply(&mut cfg, table, key, value)
                .map_err(|e| format!("lint.toml: [{table}] {key}: {e}"))?;
        }
    }
    Ok(cfg)
}

/// Reads `lint.toml` from `path`.
pub fn load(path: &Path) -> Result<Config, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&src)
}

fn apply(cfg: &mut Config, table: &str, key: &str, value: &Value) -> Result<(), String> {
    let arr = |v: &Value| -> Result<Vec<String>, String> {
        match v {
            Value::Array(a) => Ok(a.clone()),
            _ => Err("expected a string array".into()),
        }
    };
    let flag = |v: &Value| -> Result<bool, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err("expected a bool".into()),
        }
    };
    match (table, key) {
        ("files", "include") => cfg.include = arr(value)?,
        ("files", "exclude") => cfg.exclude = arr(value)?,
        ("alloc", "enabled") => cfg.alloc.enabled = flag(value)?,
        ("alloc", "graph_roots") => cfg.alloc.graph_roots = arr(value)?,
        ("alloc", "graph_exclude") => cfg.alloc.graph_exclude = arr(value)?,
        ("alloc", "hot_paths") => cfg.alloc.hot_paths = arr(value)?,
        ("alloc", "hot_modules") => cfg.alloc.hot_modules = arr(value)?,
        ("alloc", "seeds") => cfg.alloc.seeds = arr(value)?,
        ("alloc", "extra_seeds") => cfg.alloc.seeds.extend(arr(value)?),
        ("alloc", "seed_exceptions") => cfg.alloc.seed_exceptions = arr(value)?,
        ("unsafe", "enabled") => cfg.unsafety.enabled = flag(value)?,
        ("unsafe", "forbid_crate_dirs") => cfg.unsafety.forbid_crate_dirs = arr(value)?,
        ("unsafe", "forbid_exempt") => cfg.unsafety.forbid_exempt = arr(value)?,
        ("panic", "enabled") => cfg.panic.enabled = flag(value)?,
        ("panic", "paths") => cfg.panic.paths = arr(value)?,
        ("atomics", "enabled") => cfg.atomics.enabled = flag(value)?,
        ("atomics", "relaxed_only") => cfg.atomics.relaxed_only = arr(value)?,
        _ => return Err("unknown setting".into()),
    }
    Ok(())
}

/// Parses the raw table → key → value structure.
fn parse_tables(src: &str) -> Result<BTreeMap<String, Vec<(String, Value)>>, String> {
    let mut out: BTreeMap<String, Vec<(String, Value)>> = BTreeMap::new();
    let mut table = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((ln, line)) = lines.next() {
        let line = strip_comment(line);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            table = name.trim().to_string();
            out.entry(table.clone()).or_default();
            continue;
        }
        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", ln + 1))?;
        let key = key.trim().to_string();
        let mut value_src = rest.trim().to_string();
        // Arrays may span lines: keep appending until brackets balance.
        while value_src.starts_with('[') && !brackets_balanced(&value_src) {
            let (_, cont) = lines
                .next()
                .ok_or_else(|| format!("lint.toml:{}: unterminated array", ln + 1))?;
            value_src.push(' ');
            value_src.push_str(strip_comment(cont).trim());
        }
        let value = parse_value(&value_src).map_err(|e| format!("lint.toml:{}: {e}", ln + 1))?;
        if table.is_empty() {
            return Err(format!("lint.toml:{}: key outside any [table]", ln + 1));
        }
        out.get_mut(&table)
            .expect("table entry created above")
            .push((key, value));
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_array(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err(format!("array items must be strings: `{part}`")),
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(body) = s.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(Value::Str(body.to_string()));
    }
    Err(format!(
        "unsupported value `{s}` (string, bool, or [array])"
    ))
}

/// Splits an array body on commas outside quotes.
fn split_array(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let cfg = parse(
            r#"
# top comment
[files]
include = ["crates", "vendor"]  # trailing comment
exclude = [
    "crates/lint/tests/fixtures",  # multi-line array
    "target",
]

[alloc]
enabled = true
hot_paths = ["flush_into", "SmootherPool::poll_into_where"]

[panic]
paths = ["crates/serve"]

[atomics]
relaxed_only = ["crates/obs"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.include, vec!["crates", "vendor"]);
        assert_eq!(cfg.exclude, vec!["crates/lint/tests/fixtures", "target"]);
        assert_eq!(cfg.alloc.hot_paths.len(), 2);
        assert_eq!(cfg.panic.paths, vec!["crates/serve"]);
        assert_eq!(cfg.atomics.relaxed_only, vec!["crates/obs"]);
        assert!(
            !cfg.alloc.seeds.is_empty(),
            "defaults survive partial configs"
        );
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(parse("[alloc]\ntypo_key = true\n").is_err());
        assert!(parse("[nonsense]\nx = true\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("[files]\ninclude = [\"a#b\"]\n").unwrap();
        assert_eq!(cfg.include, vec!["a#b"]);
    }
}

//! Findings, inline allow-pragmas, the adjacent-comment rules, and the
//! human / JSON-lines renderers.

use std::cell::Cell;
use std::path::Path;

use crate::lexer::SourceFile;
use crate::parse::Outline;

/// Which analysis produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analysis {
    /// Hot-path alloc-freedom.
    Alloc,
    /// Panic-freedom in serving crates.
    Panic,
    /// `// SAFETY:` audit and `#![forbid(unsafe_code)]` cross-check.
    Unsafe,
    /// Atomic-ordering discipline.
    Atomic,
    /// Malformed or unused pragmas.
    Pragma,
}

impl Analysis {
    /// The name used in pragmas, JSON output, and baseline keys.
    pub fn name(self) -> &'static str {
        match self {
            Analysis::Alloc => "alloc",
            Analysis::Panic => "panic",
            Analysis::Unsafe => "unsafe",
            Analysis::Atomic => "atomic",
            Analysis::Pragma => "pragma",
        }
    }

    /// Parses a pragma analysis name.
    pub fn from_name(s: &str) -> Option<Analysis> {
        Some(match s {
            "alloc" => Analysis::Alloc,
            "panic" => Analysis::Panic,
            "unsafe" => Analysis::Unsafe,
            "atomic" => Analysis::Atomic,
            "pragma" => Analysis::Pragma,
            _ => return None,
        })
    }
}

/// Severity of a reported finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Fails `--ci` (a finding not covered by the baseline).
    Error,
    /// Reported but non-fatal (grandfathered by the baseline, or hygiene
    /// notes such as unused pragmas).
    Warn,
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Analysis that produced it.
    pub analysis: Analysis,
    /// Workspace-relative file path (slash-separated).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Severity after baseline application.
    pub level: Level,
}

impl Finding {
    /// Creates an error-level finding.
    pub fn new(analysis: Analysis, file: &Path, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            analysis,
            file: file.to_string_lossy().replace('\\', "/"),
            line,
            message: message.into(),
            level: Level::Error,
        }
    }

    /// Stable baseline key: analysis + file + a hash of the message with
    /// numbers stripped, so simple line drift does not invalidate
    /// grandfathered entries.
    pub fn key(&self) -> String {
        let normalized: String = self
            .message
            .chars()
            .filter(|c| !c.is_ascii_digit())
            .collect();
        format!(
            "{}:{}:{:016x}",
            self.analysis.name(),
            self.file,
            fnv1a(format!("{}|{}|{}", self.analysis.name(), self.file, normalized).as_bytes())
        )
    }

    /// `file:line: level[analysis]: message` — the human format.
    pub fn render(&self) -> String {
        let level = match self.level {
            Level::Error => "error",
            Level::Warn => "warn",
        };
        format!(
            "{}:{}: {level}[{}]: {}",
            self.file,
            self.line,
            self.analysis.name(),
            self.message
        )
    }

    /// One JSON-lines record (self-contained, machine-readable).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"analysis\":{},\"level\":{},\"message\":{},\"key\":{}}}",
            json_str(&self.file),
            self.line,
            json_str(self.analysis.name()),
            json_str(match self.level {
                Level::Error => "error",
                Level::Warn => "warn",
            }),
            json_str(&self.message),
            json_str(&self.key()),
        )
    }
}

/// FNV-1a 64-bit — matches the repo's stable-hash convention
/// (`kalman-serve`'s shard placement, `kalman-core`'s plan signatures).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An inline `// lint: allow(<analysis>, "<reason>")` pragma.
#[derive(Debug)]
pub struct Pragma {
    /// The analysis it suppresses.
    pub analysis: Analysis,
    /// The mandatory justification.
    pub reason: String,
    /// First line of the comment carrying the pragma.
    pub line_start: u32,
    /// Last line of the comment (block comments span lines).
    pub line_end: u32,
    /// Set when the pragma suppressed at least one finding.
    pub used: Cell<bool>,
}

/// A lexed + outlined file with its pragmas — the unit every analysis
/// consumes.
#[derive(Debug)]
pub struct FileCtx {
    /// Token stream and line maps.
    pub file: SourceFile,
    /// Structural outline.
    pub outline: Outline,
    /// Parsed pragmas, in source order.
    pub pragmas: Vec<Pragma>,
}

impl FileCtx {
    /// Lexes, outlines, and pragma-scans one file.  Malformed pragmas are
    /// returned as findings (they are themselves lint errors: a pragma
    /// without a reason is an undocumented suppression).
    pub fn build(path: &Path, src: &str) -> (FileCtx, Vec<Finding>) {
        let file = crate::lexer::lex_file(path, src);
        let outline = crate::parse::outline(&file);
        let mut pragmas = Vec::new();
        let mut findings = Vec::new();
        for t in &file.tokens {
            // Doc comments never carry pragmas — they are prose and
            // routinely *quote* pragma syntax (this crate's own docs do).
            let (text, span) = match &t.kind {
                crate::lexer::Tok::LineComment { text, doc: false } => (text.as_str(), 0u32),
                crate::lexer::Tok::BlockComment { text, doc: false } => {
                    (text.as_str(), text.matches('\n').count() as u32)
                }
                _ => continue,
            };
            // A pragma is the whole comment: `// lint: allow(…)`.  Prose
            // that merely mentions "lint:" mid-sentence is not one.
            let body = text.trim_start();
            let body = body
                .strip_prefix("//")
                .or_else(|| body.strip_prefix("/*"))
                .unwrap_or(body);
            let Some(rest) = body.trim_start().strip_prefix("lint:") else {
                continue;
            };
            let rest = rest.trim_start();
            match parse_pragma(rest) {
                Ok(Some((analysis, reason))) => pragmas.push(Pragma {
                    analysis,
                    reason,
                    line_start: t.line,
                    line_end: t.line + span,
                    used: Cell::new(false),
                }),
                Ok(None) => {}
                Err(e) => findings.push(Finding::new(
                    Analysis::Pragma,
                    path,
                    t.line,
                    format!("malformed lint pragma: {e}"),
                )),
            }
        }
        (
            FileCtx {
                file,
                outline,
                pragmas,
            },
            findings,
        )
    }

    /// True when `line` is covered by, or immediately below, a comment for
    /// which `pred` holds.  "Immediately below" walks up through the
    /// contiguous block of comment and attribute lines above `line`; any
    /// other code line or blank line stops the walk.
    pub fn adjacent_comment(&self, line: u32, mut pred: impl FnMut(&str) -> bool) -> bool {
        if self.file.comments_covering(line).any(&mut pred) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let attr = self.outline.is_attr_line(l);
            if self.file.line_has_code(l) && !attr {
                return false; // previous statement — block ends
            }
            if self.file.line_has_comment(l) {
                if self.file.comments_covering(l).any(&mut pred) {
                    return true;
                }
            } else if !attr {
                return false; // blank line — block ends
            }
            l -= 1;
        }
        false
    }

    /// Finds a pragma for `analysis` adjacent to `line` (same line or in
    /// the contiguous comment block above) and marks it used.
    pub fn pragma_for(&self, line: u32, analysis: Analysis) -> Option<&Pragma> {
        let hit = self.pragmas.iter().find(|p| {
            p.analysis == analysis
                && (p.line_start <= line && line <= p.line_end
                    // Or the pragma sits inside the contiguous comment
                    // block directly above `line`.
                    || p.line_end < line
                        && self.adjacent_in_block(line, p.line_start, p.line_end))
        })?;
        hit.used.set(true);
        Some(hit)
    }

    /// Is the line range `[p_start, p_end]` inside the contiguous
    /// comment/attribute block directly above `line`?
    fn adjacent_in_block(&self, line: u32, p_start: u32, p_end: u32) -> bool {
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let attr = self.outline.is_attr_line(l);
            if self.file.line_has_code(l) && !attr {
                return false;
            }
            if !self.file.line_has_comment(l) && !attr {
                return false;
            }
            if p_start <= l && l <= p_end {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// Parses `allow(<name>, "<reason>")`.  Returns `Ok(None)` when the text
/// after `lint:` is not an `allow(` form at all (plain prose mentioning
/// "lint:" is not a pragma).
fn parse_pragma(rest: &str) -> Result<Option<(Analysis, String)>, String> {
    let Some(body) = rest.strip_prefix("allow") else {
        return Ok(None);
    };
    let body = body.trim_start();
    let Some(body) = body.strip_prefix('(') else {
        return Err("expected `allow(<analysis>, \"<reason>\")`".into());
    };
    let close = body.rfind(')').ok_or("missing closing `)`")?;
    let body = &body[..close];
    let (name, reason) = match body.split_once(',') {
        Some((n, r)) => (n.trim(), r.trim()),
        None => (body.trim(), ""),
    };
    let analysis = Analysis::from_name(name)
        .ok_or_else(|| format!("unknown analysis `{name}` (alloc|panic|unsafe|atomic)"))?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or("");
    if reason.trim().is_empty() {
        return Err(format!(
            "pragma for `{}` needs a non-empty quoted reason",
            analysis.name()
        ));
    }
    Ok(Some((analysis, reason.trim().to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ctx(src: &str) -> (FileCtx, Vec<Finding>) {
        FileCtx::build(&PathBuf::from("t.rs"), src)
    }

    #[test]
    fn pragma_parsing_and_reason_requirement() {
        let (c, bad) = ctx(
            "// lint: allow(panic, \"poisoned mutex means a panic already happened\")\nx();\n\
             // lint: allow(panic)\ny();\n\
             // lint: allow(bogus, \"x\")\nz();\n",
        );
        assert_eq!(c.pragmas.len(), 1);
        assert_eq!(c.pragmas[0].analysis, Analysis::Panic);
        assert_eq!(
            bad.len(),
            2,
            "missing reason and unknown analysis are findings"
        );
    }

    #[test]
    fn prose_mentioning_lint_is_not_a_pragma() {
        let (c, bad) = ctx("// the lint: this rule is described in docs\nfn f() {}\n");
        assert!(c.pragmas.is_empty());
        assert!(bad.is_empty());
    }

    #[test]
    fn pragma_applies_same_line_and_block_above() {
        let src = "\
fn f() {
    work(); // lint: allow(atomic, \"same line\")
    // lint: allow(atomic, \"line above\")
    more();

    other();
}
";
        let (c, _) = ctx(src);
        assert!(c.pragma_for(2, Analysis::Atomic).is_some(), "same line");
        assert!(c.pragma_for(4, Analysis::Atomic).is_some(), "line above");
        assert!(
            c.pragma_for(6, Analysis::Atomic).is_none(),
            "blank line breaks the block"
        );
        assert!(
            c.pragma_for(2, Analysis::Panic).is_none(),
            "analysis must match"
        );
    }

    #[test]
    fn adjacency_walk_skips_attributes_and_stops_at_code() {
        let src = "\
// SAFETY: justified above an attribute
#[inline]
fn f() {}
let x = 1;
fn g() {}
";
        let (c, _) = ctx(src);
        assert!(c.adjacent_comment(3, |t| t.contains("SAFETY:")));
        assert!(
            !c.adjacent_comment(5, |t| t.contains("SAFETY:")),
            "code line stops the walk"
        );
    }

    #[test]
    fn keys_are_stable_across_line_drift() {
        let a = Finding::new(
            Analysis::Panic,
            &PathBuf::from("a.rs"),
            10,
            "`.unwrap()` at depth 3",
        );
        let b = Finding::new(
            Analysis::Panic,
            &PathBuf::from("a.rs"),
            99,
            "`.unwrap()` at depth 7",
        );
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn json_escaping() {
        let f = Finding::new(
            Analysis::Alloc,
            &PathBuf::from("a.rs"),
            1,
            "path \"with\\quotes\"\nand newline",
        );
        let j = f.render_json();
        assert!(j.contains("\\\"with\\\\quotes\\\""));
        assert!(j.contains("\\n"));
        assert!(!j.contains('\n'));
    }
}

//! The driver: walk the workspace, run every enabled analysis, apply the
//! baseline ratchet, and render human / JSON-lines diagnostics.

use std::path::{Path, PathBuf};

use crate::analyses;
use crate::baseline::Baseline;
use crate::config::Config;
use crate::diag::{Analysis, FileCtx, Finding, Level};

/// What to run and where — the resolved command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (where `lint.toml` and `lint.baseline` live).
    pub root: PathBuf,
    /// Config path; `None` means `<root>/lint.toml` (defaults when absent).
    pub config: Option<PathBuf>,
    /// Baseline path; `None` means `<root>/lint.baseline`.
    pub baseline: Option<PathBuf>,
    /// Rewrite the baseline from current findings instead of checking.
    pub update_baseline: bool,
    /// CI mode: identical checks, terse summary tail.
    pub ci: bool,
    /// Write JSON-lines diagnostics here (in addition to human output).
    pub json: Option<PathBuf>,
}

impl Options {
    /// Options for linting `root` with its committed config and baseline.
    pub fn for_root(root: impl Into<PathBuf>) -> Options {
        Options {
            root: root.into(),
            config: None,
            baseline: None,
            update_baseline: false,
            ci: false,
            json: None,
        }
    }
}

/// The findings of one run, before baseline application.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by file and line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings at [`Level::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.level == Level::Error)
    }

    /// True when any error-level finding remains.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }
}

/// The complete outcome of [`execute`]: report, renderings, exit code.
#[derive(Debug)]
pub struct Outcome {
    /// Findings after baseline application.
    pub report: Report,
    /// Baseline keys that no longer match any finding.
    pub stale_keys: Vec<String>,
    /// Human-readable diagnostics plus summary, newline-terminated.
    pub human: String,
    /// JSON-lines rendering of every finding.
    pub json: String,
    /// Process exit code: 0 clean, 1 on new findings, 2 on usage errors.
    pub exit_code: i32,
}

/// Lints the tree under `root` with `cfg` (no baseline application).
pub fn run(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut paths = Vec::new();
    for inc in &cfg.include {
        walk(&root.join(inc), root, &cfg.exclude, &mut paths)?;
    }
    paths.sort();
    paths.dedup();
    let mut findings = Vec::new();
    let mut ctxs = Vec::with_capacity(paths.len());
    for rel in &paths {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {}: {e}", rel.display()))?;
        let (ctx, pragma_findings) = FileCtx::build(rel, &src);
        findings.extend(pragma_findings);
        ctxs.push(ctx);
    }
    let deps = analyses::alloc::CrateDeps::discover(root);
    findings.extend(analyses::alloc::run(&ctxs, &cfg.alloc, &deps));
    findings.extend(analyses::panics::run(&ctxs, &cfg.panic));
    findings.extend(analyses::unsafety::run(&ctxs, &cfg.unsafety));
    findings.extend(analyses::atomics::run(&ctxs, &cfg.atomics));
    // Unused pragmas are hygiene warnings: a suppression that suppresses
    // nothing is stale documentation.
    for ctx in &ctxs {
        for p in &ctx.pragmas {
            if !p.used.get() {
                let mut f = Finding::new(
                    Analysis::Pragma,
                    &ctx.file.path,
                    p.line_start,
                    format!(
                        "unused `lint: allow({}, …)` pragma — nothing here needs it",
                        p.analysis.name()
                    ),
                );
                f.level = Level::Warn;
                findings.push(f);
            }
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.analysis.name()).cmp(&(
            b.file.as_str(),
            b.line,
            b.analysis.name(),
        ))
    });
    Ok(Report {
        findings,
        files_scanned: ctxs.len(),
    })
}

/// Full pipeline: load config + baseline, [`run`], apply the ratchet,
/// render.  This is what `main` and the self-check tests call.
pub fn execute(opts: &Options) -> Result<Outcome, String> {
    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.toml"));
    let cfg = if config_path.exists() {
        crate::config::load(&config_path)?
    } else {
        Config::default()
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.baseline"));
    let mut report = run(&opts.root, &cfg)?;

    if opts.update_baseline {
        let errors: Vec<Finding> = report.errors().cloned().collect();
        std::fs::write(&baseline_path, Baseline::render(&errors))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        let human = format!(
            "kalman-lint: baseline updated with {} finding(s) at {}\n",
            errors.len(),
            baseline_path.display()
        );
        return Ok(Outcome {
            report,
            stale_keys: Vec::new(),
            human,
            json: String::new(),
            exit_code: 0,
        });
    }

    let baseline = Baseline::load(&baseline_path)?;
    let stale_keys = baseline.apply(&mut report.findings);

    let mut human = String::new();
    let mut json = String::new();
    for f in &report.findings {
        human.push_str(&f.render());
        human.push('\n');
        json.push_str(&f.render_json());
        json.push('\n');
    }
    for key in &stale_keys {
        human.push_str(&format!(
            "note: stale baseline entry `{key}` — tighten with --update-baseline\n"
        ));
    }
    let errors = report.errors().count();
    let warns = report.findings.len() - errors;
    human.push_str(&format!(
        "kalman-lint: {} file(s), {errors} error(s), {warns} warning(s), baseline {}\n",
        report.files_scanned,
        if baseline.is_empty() {
            "empty".to_string()
        } else {
            format!("{} grandfathered", baseline.len())
        }
    ));
    let exit_code = if errors > 0 { 1 } else { 0 };
    Ok(Outcome {
        report,
        stale_keys,
        human,
        json,
        exit_code,
    })
}

/// Recursively collects `.rs` files under `dir` as root-relative paths.
fn walk(dir: &Path, root: &Path, exclude: &[String], out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rel = dir.strip_prefix(root).unwrap_or(dir);
    if analyses::in_scope(rel, exclude) {
        return Ok(());
    }
    let meta = match std::fs::metadata(dir) {
        Ok(m) => m,
        // A configured include root may be absent (e.g. no examples/).
        Err(_) => return Ok(()),
    };
    if meta.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(rel.to_path_buf());
        }
        return Ok(());
    }
    let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name == "target" || name.starts_with('.') && name.len() > 1 && dir != root {
        return Ok(());
    }
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        walk(&child, root, exclude, out)?;
    }
    Ok(())
}

//! A token-level Rust scanner — the foundation every analysis walks.
//!
//! The environment has no registry access, so `syn` is not an option; like
//! the vendored dependency stand-ins, this is a small API-subset with full
//! fidelity on the cases that matter for linting:
//!
//! * string literals with escapes, raw strings `r#"…"#` with any hash
//!   count, byte and raw-byte strings, raw identifiers `r#fn`;
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped chars
//!   (`'\''`, `'\u{1F600}'`);
//! * nested block comments, line/block *doc* comments (`///`, `//!`,
//!   `/** */`, `/*! */`) kept as distinct tokens so analyses can skip
//!   rustdoc examples while still reading `// SAFETY:` text;
//! * line numbers on every token, and a per-line code/comment map for the
//!   "adjacent comment" rules.
//!
//! Comments are *kept* in the token stream ([`Tok::LineComment`],
//! [`Tok::BlockComment`]); [`SourceFile::code`] indexes the comment-free
//! view that the parser and analyses iterate.

use std::path::PathBuf;

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident(String),
    /// A lifetime or loop label, without the leading `'`.
    Lifetime(String),
    /// A char or byte-char literal (content not retained).
    CharLit,
    /// A string / byte-string literal (content not retained).
    StrLit,
    /// A raw string / raw byte-string literal (content not retained).
    RawStrLit,
    /// A numeric literal (content not retained).
    NumLit,
    /// A single punctuation character; multi-char operators such as `::`
    /// appear as consecutive tokens.
    Punct(char),
    /// A `//` comment; `doc` is true for `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
        /// Comment text including the leading slashes.
        text: String,
    },
    /// A `/* */` comment (nesting handled); `doc` is true for `/**`, `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
        /// Comment text including the delimiters.
        text: String,
    },
}

/// A token plus its 1-based source line (the line it *starts* on).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, Tok::Punct(p) if p == c)
    }

    /// True for either comment token kind.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            Tok::LineComment { .. } | Tok::BlockComment { .. }
        )
    }
}

/// A lexed file: full token stream, the comment-free index view, and
/// per-line code/comment occupancy used by adjacency rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (as given to [`lex_file`]).
    pub path: PathBuf,
    /// Every token, comments included, in source order.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens.
    pub code: Vec<usize>,
    /// For each 1-based line: does any non-comment token start there?
    code_on_line: Vec<bool>,
    /// For each 1-based line: does any comment token *cover* it?
    comment_on_line: Vec<bool>,
}

impl SourceFile {
    /// The non-comment token at code index `i` (panics if out of range).
    pub fn ct(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// Number of non-comment tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// True when a non-comment token starts on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.code_on_line
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }

    /// True when a comment covers `line` (block comments cover every line
    /// they span).
    pub fn line_has_comment(&self, line: u32) -> bool {
        self.comment_on_line
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }

    /// All comment texts that *cover* `line` (a multi-line block comment is
    /// reported on each of its lines).
    pub fn comments_covering(&self, line: u32) -> impl Iterator<Item = &str> {
        self.tokens.iter().filter_map(move |t| match &t.kind {
            Tok::LineComment { text, .. } if t.line == line => Some(text.as_str()),
            Tok::BlockComment { text, .. } => {
                let end = t.line + text.matches('\n').count() as u32;
                (t.line <= line && line <= end).then_some(text.as_str())
            }
            _ => None,
        })
    }
}

/// Lexes `src`, attributing tokens to `path` (stored verbatim).
///
/// The scanner never fails: unterminated literals or comments simply end at
/// EOF — for linting, a best-effort stream beats a hard error.
pub fn lex_file(path: impl Into<PathBuf>, src: &str) -> SourceFile {
    let mut lx = Lexer {
        chars: src.char_indices().peekable(),
        src,
        line: 1,
        tokens: Vec::new(),
    };
    lx.run();
    let n_lines = src.lines().count() + 2;
    let mut code_on_line = vec![false; n_lines + 1];
    let mut comment_on_line = vec![false; n_lines + 1];
    let mut code = Vec::new();
    for (i, t) in lx.tokens.iter().enumerate() {
        match &t.kind {
            Tok::LineComment { .. } => {
                if let Some(slot) = comment_on_line.get_mut(t.line as usize) {
                    *slot = true;
                }
            }
            Tok::BlockComment { text, .. } => {
                let end = t.line as usize + text.matches('\n').count();
                for slot in &mut comment_on_line[t.line as usize..=end.min(n_lines)] {
                    *slot = true;
                }
            }
            _ => {
                code.push(i);
                if let Some(slot) = code_on_line.get_mut(t.line as usize) {
                    *slot = true;
                }
            }
        }
    }
    SourceFile {
        path: path.into(),
        tokens: lx.tokens,
        code,
        code_on_line,
        comment_on_line,
    }
}

struct Lexer<'s> {
    chars: std::iter::Peekable<std::str::CharIndices<'s>>,
    src: &'s str,
    line: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn peek2(&mut self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next().map(|(_, c)| c)
    }

    fn peek_at(&mut self, k: usize) -> Option<char> {
        let mut it = self.chars.clone();
        for _ in 0..k {
            it.next();
        }
        it.next().map(|(_, c)| c)
    }

    fn push(&mut self, line: u32, kind: Tok) {
        self.tokens.push(Token { kind, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' => self.slash(line),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(line, Tok::StrLit);
                }
                '\'' => self.quote(line),
                'r' | 'b' if self.raw_or_byte(line) => {}
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(line, Tok::Punct(c));
                }
            }
        }
    }

    /// `//`-or-`/*` comment, or a plain `/` punct.
    fn slash(&mut self, line: u32) {
        match self.peek2() {
            Some('/') => {
                let start = self.offset();
                self.bump();
                self.bump();
                // `///` is doc unless `////…`; `//!` is inner doc.
                let doc = match (self.peek(), self.peek2()) {
                    (Some('/'), Some('/')) => false,
                    (Some('/'), _) | (Some('!'), _) => true,
                    _ => false,
                };
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
                let text = self.src[start..self.offset()].to_string();
                self.push(line, Tok::LineComment { doc, text });
            }
            Some('*') => {
                let start = self.offset();
                self.bump();
                self.bump();
                // `/**` is doc unless `/**/` (empty) or `/***`; `/*!` is doc.
                let doc = match (self.peek(), self.peek2()) {
                    (Some('*'), Some('*')) | (Some('*'), Some('/')) => false,
                    (Some('*'), _) | (Some('!'), _) => true,
                    _ => false,
                };
                let mut depth = 1u32;
                while depth > 0 {
                    match (self.peek(), self.peek2()) {
                        (Some('/'), Some('*')) => {
                            self.bump();
                            self.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            self.bump();
                            self.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            self.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = self.src[start..self.offset()].to_string();
                self.push(line, Tok::BlockComment { doc, text });
            }
            _ => {
                self.bump();
                self.push(line, Tok::Punct('/'));
            }
        }
    }

    fn offset(&mut self) -> usize {
        self.chars.peek().map(|&(i, _)| i).unwrap_or(self.src.len())
    }

    /// Body of a `"…"` string (opening quote consumed).
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// `'` — char literal or lifetime/label.
    fn quote(&mut self, line: u32) {
        self.bump();
        match self.peek() {
            // `'\…'` is always a char literal.
            Some('\\') => {
                self.bump();
                self.bump();
                // Escapes like `\u{…}` span until the closing quote.
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(line, Tok::CharLit);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                // `'a'` → char; `'a` / `'static` / `'_` → lifetime.
                if self.peek2() == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(line, Tok::CharLit);
                } else {
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(line, Tok::Lifetime(name));
                }
            }
            // `'('`-style punctuation char literal, e.g. `' '` or `'('`.
            Some(_) if self.peek2() == Some('\'') => {
                self.bump();
                self.bump();
                self.push(line, Tok::CharLit);
            }
            _ => {
                self.push(line, Tok::Punct('\''));
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and raw
    /// identifiers `r#ident`.  Returns false when the `r`/`b` starts a
    /// plain identifier (caller lexes it).
    fn raw_or_byte(&mut self, line: u32) -> bool {
        let c0 = self.peek().unwrap_or(' ');
        // Number of prefix chars before a possible quote/hash run.
        let after: Vec<Option<char>> = (1..=3).map(|k| self.peek_at(k)).collect();
        match c0 {
            'b' => match after[0] {
                Some('\'') => {
                    self.bump();
                    self.quote(line); // byte-char literal lexes like a char
                    if let Some(Token { kind, .. }) = self.tokens.last_mut() {
                        if matches!(kind, Tok::Lifetime(_)) {
                            *kind = Tok::CharLit; // `b'x'` is never a lifetime
                        }
                    }
                    true
                }
                Some('"') => {
                    self.bump();
                    self.bump();
                    self.string_body();
                    self.push(line, Tok::StrLit);
                    true
                }
                Some('r') if matches!(after[1], Some('"') | Some('#')) => {
                    self.bump();
                    self.bump();
                    self.raw_string_body(line);
                    true
                }
                _ => false,
            },
            'r' => match after[0] {
                Some('"') => {
                    self.bump();
                    self.raw_string_body(line);
                    true
                }
                Some('#') => {
                    // `r#"…"#` raw string vs `r#ident` raw identifier.
                    let mut k = 1;
                    while self.peek_at(k) == Some('#') {
                        k += 1;
                    }
                    if self.peek_at(k) == Some('"') {
                        self.bump();
                        self.raw_string_body(line);
                    } else {
                        self.bump(); // r
                        self.bump(); // #
                        self.ident(line); // keyword-named ident like `r#fn`
                    }
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Body of a raw string starting at the hash run (or quote) — the
    /// leading `r`/`br` has been consumed.
    fn raw_string_body(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                let mut it = self.chars.clone();
                for _ in 0..hashes {
                    if !matches!(it.next(), Some((_, '#'))) {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(line, Tok::RawStrLit);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, Tok::Ident(name));
    }

    fn number(&mut self, line: u32) {
        // Digits, underscores, radix/exponent letters; a `.` continues the
        // number only when followed by a digit (so `0..n` stays a range).
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' | '_' | 'a'..='d' | 'f' | 'A'..='D' | 'F' | 'x' | 'o' | 'X' | 'O' => {
                    self.bump();
                }
                'e' | 'E' => {
                    self.bump();
                    if matches!(self.peek(), Some('+') | Some('-')) {
                        self.bump();
                    }
                }
                '.' if matches!(self.peek2(), Some(d) if d.is_ascii_digit()) => {
                    self.bump();
                }
                'i' | 'u'
                    if matches!(self.peek2(), Some('8') | Some('1') | Some('3') | Some('6'))
                        || self.peek2().is_none() =>
                {
                    // Type suffix (i8/u16/…); consume and stop.
                    while matches!(self.peek(), Some(c) if c.is_alphanumeric()) {
                        self.bump();
                    }
                    break;
                }
                _ => break,
            }
        }
        self.push(line, Tok::NumLit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex_file("t.rs", src)
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex_file("t.rs", src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("'a' 'a 'static '_ '\\'' '\\u{1F600}' b'x'"),
            vec![
                Tok::CharLit,
                Tok::Lifetime("a".into()),
                Tok::Lifetime("static".into()),
                Tok::Lifetime("_".into()),
                Tok::CharLit,
                Tok::CharLit,
                Tok::CharLit,
            ]
        );
    }

    #[test]
    fn strings_do_not_hide_code_and_code_in_strings_is_ignored() {
        // `.unwrap()` inside a string must not produce ident tokens.
        assert_eq!(idents(r#"let s = "x.unwrap()";"#), vec!["let", "s"]);
        // Escaped quotes don't end the string early.
        assert_eq!(idents(r#""a\"b.unwrap()\"c" y"#), vec!["y"]);
    }

    #[test]
    fn raw_strings_arbitrary_hashes() {
        assert_eq!(
            kinds(r###"r"a" r#"b"# r##"c "# still"##"###),
            vec![Tok::RawStrLit, Tok::RawStrLit, Tok::RawStrLit]
        );
        // Raw string containing an un-escaped quote and hash run shorter
        // than the delimiter.
        assert_eq!(
            idents(r###"r##"has "quote"# inside"## tail"###),
            vec!["tail"]
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(
            idents("r#fn r#unsafe normal"),
            vec!["fn", "unsafe", "normal"]
        );
    }

    #[test]
    fn byte_strings() {
        assert_eq!(
            kinds(r##"b"bytes" br#"raw bytes"# x"##),
            vec![Tok::StrLit, Tok::RawStrLit, Tok::Ident("x".into())]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ code");
        assert_eq!(toks.len(), 2);
        assert!(matches!(&toks[0], Tok::BlockComment { doc: false, .. }));
        assert_eq!(toks[1], Tok::Ident("code".into()));
    }

    #[test]
    fn doc_comment_classification() {
        assert!(matches!(
            &kinds("/// doc")[0],
            Tok::LineComment { doc: true, .. }
        ));
        assert!(matches!(
            &kinds("//! doc")[0],
            Tok::LineComment { doc: true, .. }
        ));
        assert!(matches!(
            &kinds("// not")[0],
            Tok::LineComment { doc: false, .. }
        ));
        assert!(matches!(
            &kinds("//// not")[0],
            Tok::LineComment { doc: false, .. }
        ));
        assert!(matches!(
            &kinds("/** doc */")[0],
            Tok::BlockComment { doc: true, .. }
        ));
        assert!(matches!(
            &kinds("/*! doc */")[0],
            Tok::BlockComment { doc: true, .. }
        ));
        assert!(matches!(
            &kinds("/* not */")[0],
            Tok::BlockComment { doc: false, .. }
        ));
        assert!(matches!(
            &kinds("/**/")[0],
            Tok::BlockComment { doc: false, .. }
        ));
    }

    #[test]
    fn doc_comments_with_unwrap_are_comment_tokens() {
        // Rustdoc examples containing `.unwrap()` must never become code.
        let src = "/// let x = foo().unwrap();\nfn real() {}";
        let f = lex_file("t.rs", src);
        let code: Vec<_> = (0..f.code_len()).map(|i| f.ct(i).kind.clone()).collect();
        assert_eq!(
            code,
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("real".into()),
                Tok::Punct('('),
                Tok::Punct(')'),
                Tok::Punct('{'),
                Tok::Punct('}'),
            ]
        );
    }

    #[test]
    fn line_numbers_and_line_maps() {
        let src = "fn a() {}\n// note\nlet x = 1; // trailing\n/* span\nstill */ fn b() {}\n";
        let f = lex_file("t.rs", src);
        assert_eq!(f.ct(0).line, 1);
        assert!(f.line_has_code(1));
        assert!(!f.line_has_code(2) && f.line_has_comment(2));
        assert!(f.line_has_code(3) && f.line_has_comment(3));
        assert!(f.line_has_comment(4) && f.line_has_comment(5));
        assert!(f.line_has_code(5));
        let b = (0..f.code_len())
            .find(|&i| f.ct(i).ident() == Some("b"))
            .unwrap();
        assert_eq!(f.ct(b).line, 5);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        assert_eq!(
            idents("for i in 0..n { t.0.push(i) }"),
            vec!["for", "i", "in", "n", "t", "push", "i"]
        );
        let toks = kinds("1.5e-3 0x1f 1_000u64");
        assert!(toks
            .iter()
            .all(|t| matches!(t, Tok::NumLit | Tok::Punct(_))));
    }
}

//! kalman-lint: the workspace's in-repo static-analysis pass.
//!
//! Four analyses enforce the invariants the Kalman smoothing engine's hot
//! paths depend on but the compiler cannot check:
//!
//! * **alloc** — no heap allocation reachable from the configured hot-path
//!   functions (steady-state smoothing must run out of pre-sized
//!   workspaces);
//! * **panic** — no `.unwrap()` / `.expect()` / panicking macros in the
//!   serving crates' non-test code;
//! * **unsafe** — every `unsafe` site carries an adjacent `// SAFETY:`
//!   comment, and first-party crate roots carry `#![forbid(unsafe_code)]`;
//! * **atomic** — `crates/obs` is an all-`Relaxed` zone, and every other
//!   `Ordering::` use carries a justification comment.
//!
//! The crate deliberately has **zero dependencies**: it ships its own
//! token-level Rust lexer ([`lexer`]), a brace-matching outline parser
//! ([`parse`]), and a small TOML-subset reader ([`config`]).  That keeps
//! the lint runnable in the same offline environment as the build itself.
//!
//! Findings are ratcheted through a committed [`baseline`]: entries listed
//! in `lint.baseline` are grandfathered to warnings, anything new is an
//! error.  The workspace's committed baseline is empty — every accepted
//! exception is an inline `// lint: allow(<analysis>, "<reason>")` pragma
//! at the site it excuses.  See `docs/LINTS.md` for the full catalog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyses;
pub mod baseline;
pub mod config;
pub mod diag;
pub mod driver;
pub mod lexer;
pub mod parse;

//! Command-line driver for `kalman-lint`.
//!
//! ```text
//! cargo run --release -p kalman-lint -- [--ci] [--json PATH]
//!     [--root DIR] [--config PATH] [--baseline PATH] [--update-baseline]
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` new findings, `2` usage
//! or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use kalman_lint::driver::{execute, Options};

const USAGE: &str = "\
kalman-lint — in-repo static analysis (alloc / panic / unsafe / atomic)

USAGE:
    kalman-lint [OPTIONS]

OPTIONS:
    --root DIR          workspace root to lint (default: auto-detected)
    --config PATH       lint config (default: <root>/lint.toml)
    --baseline PATH     ratchet file (default: <root>/lint.baseline)
    --update-baseline   rewrite the baseline from current findings
    --json PATH         also write JSON-lines diagnostics to PATH
    --ci                CI mode: terse output, same checks and exit codes
    --help              print this help
";

fn main() -> ExitCode {
    let mut opts = Options::for_root(default_root());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let path_arg = |args: &mut dyn Iterator<Item = String>| -> Result<PathBuf, String> {
            args.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        let res: Result<(), String> = match arg.as_str() {
            "--root" => path_arg(&mut args).map(|p| opts.root = p),
            "--config" => path_arg(&mut args).map(|p| opts.config = Some(p)),
            "--baseline" => path_arg(&mut args).map(|p| opts.baseline = Some(p)),
            "--json" => path_arg(&mut args).map(|p| opts.json = Some(p)),
            "--update-baseline" => {
                opts.update_baseline = true;
                Ok(())
            }
            "--ci" => {
                opts.ci = true;
                Ok(())
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(e) = res {
            eprintln!("kalman-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    match execute(&opts) {
        Ok(outcome) => {
            if let Some(json_path) = &opts.json {
                if let Err(e) = std::fs::write(json_path, &outcome.json) {
                    eprintln!("kalman-lint: cannot write {}: {e}", json_path.display());
                    return ExitCode::from(2);
                }
            }
            print!("{}", outcome.human);
            if opts.ci && outcome.exit_code != 0 {
                eprintln!("kalman-lint: new findings — fix them or add a reasoned inline pragma");
            }
            ExitCode::from(outcome.exit_code as u8)
        }
        Err(e) => {
            eprintln!("kalman-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Workspace root: walk up from the current directory to the first one
/// holding a `lint.toml` (falling back to `Cargo.toml`, then to `.`).
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for marker in ["lint.toml", "Cargo.toml"] {
        let mut dir = cwd.clone();
        loop {
            if dir.join(marker).exists() {
                return dir;
            }
            if !dir.pop() {
                break;
            }
        }
    }
    cwd
}

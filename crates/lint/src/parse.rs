//! A lightweight structural pass over the token stream: function and impl
//! boundaries, attributes, and `#[cfg(test)]` regions.
//!
//! This is *not* a Rust parser — it is a bracket-matching outline walker
//! that recovers just enough structure for the analyses:
//!
//! * every `fn` item with its name, declaration line, body token range,
//!   and enclosing `impl`/`trait` type name (for `Type::method` call
//!   resolution);
//! * which token ranges are test code (`#[cfg(test)]` modules, `#[test]`
//!   functions) so production-only rules can skip them;
//! * which source lines are attribute lines (transparent for the
//!   "adjacent comment" rules);
//! * the set of inner attributes (`#![…]`) at the crate root, for the
//!   `#![forbid(unsafe_code)]` cross-check.

use crate::lexer::SourceFile;

/// One `fn` item (or trait/impl method) found in a file.
#[derive(Debug)]
pub struct Function {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when inside one.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub decl_line: u32,
    /// Code-token index range of the body, `start..end` over
    /// [`SourceFile::code`], excluding the outer braces.  Empty for
    /// body-less trait method declarations.
    pub body: std::ops::Range<usize>,
    /// True inside `#[cfg(test)]` regions or under `#[test]`.
    pub is_test: bool,
}

/// The structural outline of one file.
#[derive(Debug)]
pub struct Outline {
    /// Every function in the file, in source order (nested fns included).
    pub functions: Vec<Function>,
    /// Code-token index ranges covered by `#[cfg(test)]` modules/items.
    pub test_ranges: Vec<std::ops::Range<usize>>,
    /// 1-based lines occupied (started) by attribute tokens.
    pub attr_lines: Vec<u32>,
    /// Texts of crate-level inner attributes (`#![…]`), whitespace-free,
    /// e.g. `forbid(unsafe_code)`.
    pub inner_attrs: Vec<String>,
}

impl Outline {
    /// True when code-token index `i` lies in any test range.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&i))
    }

    /// True when `line` is an attribute-only continuation for adjacency
    /// walks (an attribute token starts on it).
    pub fn is_attr_line(&self, line: u32) -> bool {
        self.attr_lines.binary_search(&line).is_ok()
    }
}

/// Keywords that can precede `fn` in an item declaration.
const FN_QUALIFIERS: &[&str] = &[
    "pub", "crate", "const", "async", "unsafe", "extern", "default",
];

/// Builds the [`Outline`] of a lexed file.
pub fn outline(file: &SourceFile) -> Outline {
    let n = file.code_len();
    let mut functions = Vec::new();
    let mut test_ranges = Vec::new();
    let mut attr_lines = Vec::new();
    let mut inner_attrs = Vec::new();

    // Enclosing-context stack: (code index of the opening `{`, impl/trait
    // type name if this scope is an impl/trait, scope-is-test flag).
    struct Scope {
        qual: Option<String>,
        is_test: bool,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    // Attributes seen since the last item-ish token, pending application.
    let mut pending_test_attr = false;
    let mut pending_cfg_test = false;

    let mut i = 0usize;
    while i < n {
        let t = file.ct(i);
        // --- attributes -------------------------------------------------
        if t.is_punct('#') {
            let inner = i + 1 < n && file.ct(i + 1).is_punct('!');
            let open = i + if inner { 2 } else { 1 };
            if open < n && file.ct(open).is_punct('[') {
                let close = match_bracket(file, open, '[', ']');
                let mut text = String::new();
                for k in open + 1..close {
                    match file.ct(k).ident() {
                        Some(s) => text.push_str(s),
                        None => {
                            if let crate::lexer::Tok::Punct(c) = file.ct(k).kind {
                                text.push(c)
                            }
                        }
                    }
                }
                for k in i..=close.min(n - 1) {
                    attr_lines.push(file.ct(k).line);
                }
                if inner && scopes.is_empty() {
                    inner_attrs.push(text.clone());
                }
                if !inner {
                    if text == "test" || text.starts_with("test(") || text.ends_with("::test") {
                        pending_test_attr = true;
                    }
                    if text.contains("cfg") && text.contains("test") {
                        pending_cfg_test = true;
                    }
                }
                i = close + 1;
                continue;
            }
        }

        let in_test_scope = scopes.iter().any(|s| s.is_test);
        match t.ident() {
            // --- functions ----------------------------------------------
            Some("fn") => {
                let decl_line = t.line;
                // `unsafe fn(…)` / `fn(…)` in type position has no name.
                let name = file.ct_opt(i + 1).and_then(|t| t.ident()).map(String::from);
                let is_test = pending_test_attr || pending_cfg_test || in_test_scope;
                // Find the body `{` (or `;` for a declaration) from the
                // signature, skipping nothing fancier than tokens.
                let mut j = i + 1;
                let mut body = 0..0;
                while j < n {
                    let tj = file.ct(j);
                    if tj.is_punct('{') {
                        let close = match_bracket(file, j, '{', '}');
                        body = j + 1..close;
                        break;
                    }
                    if tj.is_punct('[') {
                        // Array types in the signature (`[f64; 4]`) carry a
                        // `;` that must not read as "declaration only".
                        j = match_bracket(file, j, '[', ']') + 1;
                        continue;
                    }
                    if tj.is_punct(';') || tj.is_punct('}') {
                        break; // declaration only, or fn-pointer type
                    }
                    j += 1;
                }
                if let Some(name) = name {
                    let qual = scopes.iter().rev().find_map(|s| s.qual.clone());
                    functions.push(Function {
                        name,
                        qual,
                        decl_line,
                        body: body.clone(),
                        is_test,
                    });
                }
                if is_test && !body.is_empty() {
                    test_ranges.push(body.start - 1..body.end + 1);
                }
                pending_test_attr = false;
                pending_cfg_test = false;
                // Descend into the body so nested items are seen; the
                // scope stack tracks braces via the generic `{` arm.
                i += 1;
                continue;
            }
            // --- impl / trait blocks ------------------------------------
            Some("impl") | Some("trait") => {
                let type_name = impl_type_name(file, i, n);
                // Walk to the opening brace of the block.
                let mut j = i + 1;
                let mut depth_angle = 0i32;
                while j < n {
                    let tj = file.ct(j);
                    if tj.is_punct('<') && !prev_is(file, j, '-') {
                        depth_angle += 1;
                    } else if tj.is_punct('>') && !prev_is(file, j, '-') && depth_angle > 0 {
                        depth_angle -= 1;
                    } else if tj.is_punct('{') && depth_angle <= 0 {
                        break;
                    } else if tj.is_punct(';') {
                        // `impl Trait for Type;`-like or parse confusion.
                        break;
                    }
                    j += 1;
                }
                if j < n && file.ct(j).is_punct('{') {
                    let is_test = pending_cfg_test || in_test_scope;
                    if is_test {
                        let close = match_bracket(file, j, '{', '}');
                        test_ranges.push(j..close + 1);
                    }
                    scopes.push(Scope {
                        qual: type_name,
                        is_test,
                    });
                    pending_test_attr = false;
                    pending_cfg_test = false;
                    i = j + 1;
                    continue;
                }
                pending_test_attr = false;
                pending_cfg_test = false;
                i += 1;
                continue;
            }
            // --- modules ------------------------------------------------
            Some("mod") => {
                // `mod name {` opens a scope; `mod name;` does not.
                let mut j = i + 1;
                while j < n && !file.ct(j).is_punct('{') && !file.ct(j).is_punct(';') {
                    j += 1;
                }
                if j < n && file.ct(j).is_punct('{') {
                    let is_test = pending_cfg_test || in_test_scope;
                    if is_test {
                        let close = match_bracket(file, j, '{', '}');
                        test_ranges.push(j..close + 1);
                    }
                    scopes.push(Scope {
                        qual: None,
                        is_test,
                    });
                    i = j + 1;
                    pending_test_attr = false;
                    pending_cfg_test = false;
                    continue;
                }
                pending_test_attr = false;
                pending_cfg_test = false;
                i = j + 1;
                continue;
            }
            _ => {}
        }
        if t.is_punct('{') {
            scopes.push(Scope {
                qual: None,
                is_test: in_test_scope,
            });
        } else if t.is_punct('}') {
            scopes.pop();
        } else if t.ident().is_some()
            && !FN_QUALIFIERS.contains(&t.ident().unwrap_or(""))
            && !t.is_punct(']')
        {
            // Any substantive token between an attribute and the next
            // item consumes pending attribute state (e.g. `#[test]` on a
            // `struct` should not leak onto a later `fn`).  Qualifiers
            // (`pub`, `const`, …) keep it pending.
            if !matches!(t.ident(), Some("where")) {
                pending_test_attr = false;
                pending_cfg_test = false;
            }
        }
        i += 1;
    }

    attr_lines.sort_unstable();
    attr_lines.dedup();
    Outline {
        functions,
        test_ranges,
        attr_lines,
        inner_attrs,
    }
}

impl SourceFile {
    /// The code token at index `i`, if in range.
    pub fn ct_opt(&self, i: usize) -> Option<&crate::lexer::Token> {
        self.code.get(i).map(|&k| &self.tokens[k])
    }
}

fn prev_is(file: &SourceFile, i: usize, c: char) -> bool {
    i > 0 && file.ct(i - 1).is_punct(c)
}

/// Index of the matching close bracket for the open bracket at code index
/// `open` (returns the last token index when unbalanced at EOF).
fn match_bracket(file: &SourceFile, open: usize, oc: char, cc: char) -> usize {
    let n = file.code_len();
    let mut depth = 0i64;
    let mut i = open;
    while i < n {
        let t = file.ct(i);
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    n.saturating_sub(1)
}

/// Extracts the implemented type's name from an `impl`/`trait` header at
/// code index `i`: the last path identifier at angle-depth 0 before the
/// opening brace — after `for` when present (`impl Trait for Type`).
fn impl_type_name(file: &SourceFile, i: usize, n: usize) -> Option<String> {
    let mut j = i + 1;
    let mut depth_angle = 0i32;
    let mut last: Option<String> = None;
    while j < n {
        let t = file.ct(j);
        if t.is_punct('<') && !prev_is(file, j, '-') {
            depth_angle += 1;
        } else if t.is_punct('>') && !prev_is(file, j, '-') {
            depth_angle -= 1;
        } else if (t.is_punct('{') || t.ident() == Some("where")) && depth_angle <= 0 {
            break;
        } else if t.ident() == Some("for") && depth_angle <= 0 {
            last = None; // the type follows; what came before was the trait
        } else if depth_angle <= 0 {
            if let Some(id) = t.ident() {
                if !FN_QUALIFIERS.contains(&id) && id != "impl" && id != "trait" && id != "dyn" {
                    last = Some(id.to_string());
                }
            }
        }
        j += 1;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;

    fn parse(src: &str) -> (crate::lexer::SourceFile, Outline) {
        let f = lex_file("t.rs", src);
        let o = outline(&f);
        (f, o)
    }

    #[test]
    fn finds_functions_with_impl_context() {
        let src = r#"
            pub fn free(x: u32) -> u32 { x }
            struct S;
            impl S {
                pub(crate) fn method(&self) { helper(); }
            }
            impl std::fmt::Display for S {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
            trait T { fn decl(&self); fn with_body(&self) {} }
        "#;
        let (_, o) = parse(src);
        let names: Vec<_> = o
            .functions
            .iter()
            .map(|f| (f.qual.clone(), f.name.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "free".into()),
                (Some("S".into()), "method".into()),
                (Some("S".into()), "fmt".into()),
                (Some("T".into()), "decl".into()),
                (Some("T".into()), "with_body".into()),
            ]
        );
        assert!(o.functions[3].body.is_empty(), "decl has no body");
    }

    #[test]
    fn array_types_in_signatures_do_not_truncate_the_body() {
        // The `;` inside `[f64; 4]` must not read as "declaration only" —
        // regression: the SIMD quad kernels vanished from the alloc graph.
        let src = r#"
            pub fn quad(v: &[f64], cols: [&[f64]; 4], acc: &mut [f64; 4]) { work(); }
            fn tile(acc: &mut [[f64; 4]; 4]) -> [f64; 2] { work(); [0.0; 2] }
        "#;
        let (_, o) = parse(src);
        let by_name = |n: &str| o.functions.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("quad").body.is_empty(), "quad body must be found");
        assert!(!by_name("tile").body.is_empty(), "tile body must be found");
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_test_ranges() {
        let src = r#"
            fn prod() { work(); }
            #[test]
            fn unit() { prod().unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t2() {}
            }
            fn prod2() {}
        "#;
        let (_, o) = parse(src);
        let by_name = |n: &str| o.functions.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").is_test);
        assert!(by_name("unit").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t2").is_test);
        assert!(
            !by_name("prod2").is_test,
            "test state must not leak out of the module"
        );
    }

    #[test]
    fn attributes_do_not_leak_across_items() {
        let src = r#"
            #[test]
            struct NotAFn;
            fn later() {}
        "#;
        let (_, o) = parse(src);
        assert!(!o.functions[0].is_test);
    }

    #[test]
    fn inner_attrs_at_crate_root() {
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}";
        let (_, o) = parse(src);
        assert!(o.inner_attrs.iter().any(|a| a == "forbid(unsafe_code)"));
        assert!(o.inner_attrs.iter().any(|a| a == "warn(missing_docs)"));
    }

    #[test]
    fn impl_headers_with_generics_and_arrows() {
        let src = r#"
            impl<F: Fn() -> u32, T> Holder<F, T> where T: Clone {
                fn get(&self) {}
            }
        "#;
        let (_, o) = parse(src);
        assert_eq!(o.functions[0].qual.as_deref(), Some("Holder"));
    }

    #[test]
    fn fn_pointer_types_are_not_functions() {
        let src = "struct J { exec: unsafe fn(*const ()), }\nfn real() {}";
        let (_, o) = parse(src);
        let names: Vec<_> = o.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn attr_lines_are_recorded() {
        let src = "/// doc\n#[inline]\n#[cfg(feature = \"x\")]\nfn f() {}";
        let (_, o) = parse(src);
        assert!(o.is_attr_line(2));
        assert!(o.is_attr_line(3));
        assert!(!o.is_attr_line(4));
    }
}

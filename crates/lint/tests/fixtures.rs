//! End-to-end driver tests: each fixture under `tests/fixtures/` is a
//! miniature workspace with one seeded violation per analysis, proving the
//! linter exits nonzero on real findings, and the workspace self-check
//! proves the committed tree stays clean against an **empty** baseline.

use std::path::PathBuf;

use kalman_lint::diag::{Analysis, Level};
use kalman_lint::driver::{execute, Options, Outcome};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_fixture(name: &str) -> Outcome {
    execute(&Options::for_root(fixture(name))).expect("fixture lints cleanly through the driver")
}

fn errors_of(outcome: &Outcome, analysis: Analysis) -> Vec<(String, u32, String)> {
    outcome
        .report
        .findings
        .iter()
        .filter(|f| f.level == Level::Error && f.analysis == analysis)
        .map(|f| (f.file.clone(), f.line, f.message.clone()))
        .collect()
}

#[test]
fn alloc_fixture_fails_with_a_call_chain() {
    let out = run_fixture("alloc");
    assert_eq!(
        out.exit_code, 1,
        "seeded violation must fail:\n{}",
        out.human
    );
    let errs = errors_of(&out, Analysis::Alloc);
    assert_eq!(errs.len(), 1, "exactly the seeded push:\n{}", out.human);
    let (file, _, msg) = &errs[0];
    assert_eq!(file, "src/hot.rs");
    assert!(msg.contains("`.push(…)`"), "names the construct: {msg}");
    assert!(
        msg.contains("hot_loop → helper"),
        "reports the example call chain: {msg}"
    );
    // The pragma'd cold constructor is silenced, and the pragma is used
    // (no hygiene warning about it).
    assert!(!out.human.contains("unused `lint: allow"), "{}", out.human);
}

#[test]
fn panic_fixture_flags_unwrap_but_not_the_pragma() {
    let out = run_fixture("panics");
    assert_eq!(out.exit_code, 1, "{}", out.human);
    let errs = errors_of(&out, Analysis::Panic);
    assert_eq!(errs.len(), 1, "only the bare unwrap:\n{}", out.human);
    assert!(errs[0].2.contains("`.unwrap()`"), "{}", errs[0].2);
    // The test-module unwrap and the pragma'd expect stay silent.
    assert!(!out.human.contains("expect"), "{}", out.human);
}

#[test]
fn unsafety_fixture_flags_block_and_missing_forbid() {
    let out = run_fixture("unsafety");
    assert_eq!(out.exit_code, 1, "{}", out.human);
    let errs = errors_of(&out, Analysis::Unsafe);
    assert_eq!(
        errs.len(),
        2,
        "undocumented block + missing forbid:\n{}",
        out.human
    );
    assert!(
        errs.iter().any(|(_, _, m)| m.contains("SAFETY")),
        "{}",
        out.human
    );
    assert!(
        errs.iter()
            .any(|(_, _, m)| m.contains("forbid(unsafe_code)")),
        "{}",
        out.human
    );
    // The SAFETY-documented block two functions down is not flagged.
    assert!(
        errs.iter()
            .filter(|(_, _, m)| m.contains("`unsafe` block"))
            .count()
            == 1,
        "{}",
        out.human
    );
}

#[test]
fn atomics_fixture_flags_both_zones() {
    let out = run_fixture("atomics");
    assert_eq!(out.exit_code, 1, "{}", out.human);
    let errs = errors_of(&out, Analysis::Atomic);
    assert_eq!(errs.len(), 2, "one per zone:\n{}", out.human);
    assert!(
        errs.iter()
            .any(|(f, _, m)| f == "src/relaxed/counters.rs" && m.contains("all-Relaxed")),
        "{}",
        out.human
    );
    assert!(
        errs.iter()
            .any(|(f, _, m)| f == "src/other.rs" && m.contains("justification")),
        "{}",
        out.human
    );
}

#[test]
fn baseline_grandfathers_then_reports_stale_keys() {
    let dir = std::env::temp_dir().join(format!(
        "kalman-lint-fixture-baseline-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("lint.baseline");

    // 1. Ratchet the seeded violation into the baseline.
    let mut opts = Options::for_root(fixture("panics"));
    opts.baseline = Some(baseline.clone());
    opts.update_baseline = true;
    let out = execute(&opts).unwrap();
    assert_eq!(out.exit_code, 0, "{}", out.human);

    // 2. With the baseline applied the same tree passes, finding downgraded.
    opts.update_baseline = false;
    let out = execute(&opts).unwrap();
    assert_eq!(out.exit_code, 0, "grandfathered:\n{}", out.human);
    assert!(out.human.contains("1 grandfathered"), "{}", out.human);
    assert!(
        out.report
            .findings
            .iter()
            .any(|f| f.analysis == Analysis::Panic && f.level == Level::Warn),
        "{}",
        out.human
    );

    // 3. A stale key (debt that was since fixed) is reported for tightening.
    let mut content = std::fs::read_to_string(&baseline).unwrap();
    content.push_str("panic:src/gone.rs:00000000deadbeef\n");
    std::fs::write(&baseline, content).unwrap();
    let out = execute(&opts).unwrap();
    assert_eq!(out.stale_keys.len(), 1, "{}", out.human);
    assert!(out.human.contains("stale baseline entry"), "{}", out.human);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn workspace_self_check_is_clean_with_empty_baseline() {
    // `crates/lint` → the workspace root two levels up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let out = execute(&Options::for_root(root)).expect("workspace lints");
    assert_eq!(
        out.exit_code, 0,
        "the committed tree must lint clean:\n{}",
        out.human
    );
    assert!(
        out.human.contains("baseline empty"),
        "every suppression must be an inline reasoned pragma, not baseline debt:\n{}",
        out.human
    );
    assert!(
        out.human.contains("0 error(s), 0 warning(s)"),
        "no warnings either (unused pragmas are stale documentation):\n{}",
        out.human
    );
}

//! Seeded violation: an allocation two call-graph hops from a hot path.

pub fn hot_loop(out: &mut Vec<u64>) {
    helper(out);
}

fn helper(out: &mut Vec<u64>) {
    out.push(1);
}

pub fn cold_setup() -> Vec<u64> {
    // lint: allow(alloc, "fixture: construction runs once, off the hot path")
    Vec::with_capacity(8)
}

//! Seeded violation: `Relaxed` outside the zone with no justification.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn set_wrong(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}

pub fn set_justified(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed); // Relaxed: idempotent flag, nothing published under it.
}

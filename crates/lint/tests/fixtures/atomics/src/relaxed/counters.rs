//! Seeded violation: a non-Relaxed ordering inside the Relaxed-only zone.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump_wrong(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst);
}

pub fn bump_fine(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

//! Seeded violation: a bare `.unwrap()` in covered non-test code, next to
//! a pragma-justified `.expect()` and a test-module unwrap that are fine.

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn second(v: Option<u32>) -> u32 {
    // lint: allow(panic, "fixture: reasoned escape hatch")
    v.expect("covered by the pragma above")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}

//! Seeded violations: this crate root lacks `#![forbid(unsafe_code)]`,
//! and `peek` has an unsafe block with no adjacent SAFETY comment.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

pub fn documented(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees at least one element.
    unsafe { *v.as_ptr() }
}

//! Dense assembly of the least-squares system `min ‖U(Au − b)‖₂` and a dense
//! reference solver.
//!
//! This materializes the block matrix `U·A` of §3 of the paper explicitly —
//! `Θ((kn)²)` storage, so it is only usable for small problems — and solves
//! it with a dense QR factorization.  Every structured smoother in the
//! workspace is tested against this oracle: identical means, and identical
//! covariance blocks `cov(û_i) = ((UA)ᵀ(UA))⁻¹` diagonal blocks.

use crate::{KalmanError, LinearModel, Result, Smoothed};
use kalman_dense::{tri, Matrix, QrFactor};

/// The dense least-squares system assembled from a model.
#[derive(Debug, Clone)]
pub struct DenseSystem {
    /// The whitened coefficient matrix `U·A`.
    pub a: Matrix,
    /// The whitened right-hand side `U·b` (a column vector).
    pub b: Matrix,
    /// `col_offsets[i]` is the first column of state `i`; the final entry is
    /// the total state dimension.
    pub col_offsets: Vec<usize>,
}

/// Assembles the dense whitened system `(U·A, U·b)` in original column order.
///
/// Row order: prior rows (if any), then for each step its evolution rows
/// followed by its observation rows.  Row order does not affect the
/// least-squares solution.
///
/// # Errors
///
/// Any model validation or covariance-whitening failure.
pub fn assemble_dense(model: &LinearModel) -> Result<DenseSystem> {
    model.validate()?;
    let total_cols = model.total_state_dim();
    let total_rows = model.total_row_dim();
    let mut col_offsets = Vec::with_capacity(model.num_states() + 1);
    let mut acc = 0;
    for s in &model.steps {
        col_offsets.push(acc);
        acc += s.state_dim;
    }
    col_offsets.push(acc);

    let mut a = Matrix::zeros(total_rows, total_cols);
    let mut b = Matrix::zeros(total_rows, 1);
    let mut r0 = 0usize;

    if let Some(prior) = &model.prior {
        // Prior as an observation of state 0: W_p·u_0 ≈ W_p·mean.
        let n0 = model.state_dim(0);
        let wi = prior.cov.whiten(&Matrix::identity(n0), 0)?;
        let wm = prior.cov.whiten_vec(&prior.mean, 0)?;
        a.set_block(r0, col_offsets[0], &wi);
        for (i, v) in wm.iter().enumerate() {
            b[(r0 + i, 0)] = *v;
        }
        r0 += n0;
    }

    for (i, step) in model.steps.iter().enumerate() {
        if let Some(evo) = &step.evolution {
            let l = evo.row_dim();
            // Whitened evolution rows: V_i·[−F_i  H_i], rhs V_i·c_i.
            let vf = evo.noise.whiten(&evo.f, i)?;
            let h = evo
                .h
                .clone()
                .unwrap_or_else(|| Matrix::identity(step.state_dim));
            let vh = evo.noise.whiten(&h, i)?;
            let vc = evo.noise.whiten_vec(&evo.c, i)?;
            a.set_block(r0, col_offsets[i - 1], &vf.scaled(-1.0));
            a.set_block(r0, col_offsets[i], &vh);
            for (r, v) in vc.iter().enumerate() {
                b[(r0 + r, 0)] = *v;
            }
            r0 += l;
        }
        if let Some(obs) = &step.observation {
            let m = obs.dim();
            let wg = obs.noise.whiten(&obs.g, i)?;
            let wo = obs.noise.whiten_vec(&obs.o, i)?;
            a.set_block(r0, col_offsets[i], &wg);
            for (r, v) in wo.iter().enumerate() {
                b[(r0 + r, 0)] = *v;
            }
            r0 += m;
        }
    }
    debug_assert_eq!(r0, total_rows);
    Ok(DenseSystem { a, b, col_offsets })
}

/// Solves the smoothing problem densely (reference oracle).
///
/// Means come from a dense QR least-squares solve; covariances are the
/// diagonal blocks of `(RᵀR)⁻¹ = R⁻¹R⁻ᵀ`.
///
/// # Errors
///
/// [`KalmanError::RankDeficient`] when the system does not have full column
/// rank, plus any assembly error.
pub fn solve_dense(model: &LinearModel) -> Result<Smoothed> {
    let sys = assemble_dense(model)?;
    let qr = QrFactor::new(sys.a.clone());
    let x = qr.solve_ls(&sys.b).map_err(|e| match e {
        kalman_dense::DenseError::RankDeficient { column } => KalmanError::RankDeficient {
            state: state_of_column(&sys.col_offsets, column),
        },
        other => KalmanError::Dense(other),
    })?;

    let r = qr.r();
    let rinv = tri::invert_upper(&r).map_err(|_| KalmanError::RankDeficient {
        state: model.num_states() - 1,
    })?;
    let s = kalman_dense::matmul_nt(&rinv, &rinv);

    let k = model.num_states();
    let mut means = Vec::with_capacity(k);
    let mut covs = Vec::with_capacity(k);
    for i in 0..k {
        let c0 = sys.col_offsets[i];
        let n = sys.col_offsets[i + 1] - c0;
        means.push(x.col(0)[c0..c0 + n].to_vec());
        let mut block = s.sub_matrix(c0, c0, n, n);
        block.symmetrize();
        covs.push(block);
    }
    Ok(Smoothed {
        means,
        covariances: Some(covs),
    })
}

fn state_of_column(offsets: &[usize], column: usize) -> usize {
    match offsets.binary_search(&column) {
        Ok(i) => i.min(offsets.len().saturating_sub(2)),
        Err(i) => i - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CovarianceSpec, Evolution, LinearStep, Observation};

    fn scalar_model() -> LinearModel {
        // u_0 = 1 observed (L=1); u_1 = u_0 + 1 (K=1); u_1 = 3 observed (L=1).
        let mut m = LinearModel::new();
        m.push_step(LinearStep::initial(1).with_observation(Observation {
            g: Matrix::identity(1),
            o: vec![1.0],
            noise: CovarianceSpec::Identity(1),
        }));
        m.push_step(
            LinearStep::evolving(Evolution {
                f: Matrix::identity(1),
                h: None,
                c: vec![1.0],
                noise: CovarianceSpec::Identity(1),
            })
            .with_observation(Observation {
                g: Matrix::identity(1),
                o: vec![3.0],
                noise: CovarianceSpec::Identity(1),
            }),
        );
        m
    }

    #[test]
    fn assemble_shapes_and_content() {
        let m = scalar_model();
        let sys = assemble_dense(&m).unwrap();
        assert_eq!(sys.a.rows(), 3);
        assert_eq!(sys.a.cols(), 2);
        assert_eq!(sys.col_offsets, vec![0, 1, 2]);
        // Rows: obs0 [1 0 | 1]; evo1 [-1 1 | 1]; obs1 [0 1 | 3].
        assert_eq!(sys.a[(0, 0)], 1.0);
        assert_eq!(sys.a[(1, 0)], -1.0);
        assert_eq!(sys.a[(1, 1)], 1.0);
        assert_eq!(sys.a[(2, 1)], 1.0);
        assert_eq!(sys.b[(1, 0)], 1.0);
        assert_eq!(sys.b[(2, 0)], 3.0);
    }

    #[test]
    fn solve_scalar_by_hand() {
        // Minimize (u0-1)² + (u1-u0-1)² + (u1-3)².
        // ∂/∂u0: 2(u0-1) - 2(u1-u0-1) = 0 → 2u0 - u1 = 0
        // ∂/∂u1: 2(u1-u0-1) + 2(u1-3) = 0 → -u0 + 2u1 = 4
        // → u0 = 4/3, u1 = 8/3.
        let s = solve_dense(&scalar_model()).unwrap();
        assert!((s.mean(0)[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.mean(1)[0] - 8.0 / 3.0).abs() < 1e-12);
        // Covariance: (AᵀA)⁻¹ with AᵀA = [[2,-1],[-1,2]] → inv = [[2,1],[1,2]]/3.
        let c0 = s.covariance(0).unwrap();
        assert!((c0[(0, 0)] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn prior_contributes_rows() {
        let mut m = scalar_model();
        m.set_prior(vec![0.0], CovarianceSpec::Identity(1));
        let sys = assemble_dense(&m).unwrap();
        assert_eq!(sys.a.rows(), 4);
        // Prior pulls u0 toward 0.
        let with_prior = solve_dense(&m).unwrap();
        let without = solve_dense(&scalar_model()).unwrap();
        assert!(with_prior.mean(0)[0] < without.mean(0)[0]);
    }

    #[test]
    fn whitening_changes_weighting() {
        let mut m = scalar_model();
        // Make observation of u1 very precise: it should dominate.
        m.steps[1].observation.as_mut().unwrap().noise = CovarianceSpec::ScaledIdentity(1, 1e-8);
        let s = solve_dense(&m).unwrap();
        assert!((s.mean(1)[0] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn rank_deficient_is_reported() {
        // Two states, zero observation matrix on state 1: u1 enters only
        // through... actually make G_1 = 0 and only evolution ties them:
        let mut m = scalar_model();
        m.steps[1].observation.as_mut().unwrap().g = Matrix::zeros(1, 1);
        // Still full rank: evolution row pins u1 given u0. Break it harder:
        // zero F and zero G on a 3rd state with zero H is invalid; instead
        // drop step-1 column entirely by zero G AND zero H... H=None is
        // identity, so instead check that the valid system still solves:
        assert!(solve_dense(&m).is_ok());
        // A genuinely deficient system: no prior, no observation at all on
        // a two-state chain would be underdetermined and caught by validate.
        let mut m2 = LinearModel::new();
        m2.push_step(LinearStep::initial(1));
        m2.push_step(LinearStep::evolving(Evolution::random_walk(1)));
        assert!(solve_dense(&m2).is_err());
    }

    #[test]
    fn state_of_column_maps_correctly() {
        let offsets = vec![0, 2, 5, 9];
        assert_eq!(state_of_column(&offsets, 0), 0);
        assert_eq!(state_of_column(&offsets, 1), 0);
        assert_eq!(state_of_column(&offsets, 2), 1);
        assert_eq!(state_of_column(&offsets, 4), 1);
        assert_eq!(state_of_column(&offsets, 8), 2);
    }
}

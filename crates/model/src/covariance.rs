use crate::{KalmanError, Result};
use kalman_dense::{tri, Cholesky, Matrix};

/// Specification of a noise covariance matrix.
///
/// The smoothers only ever need the *inverse factor* `W` with `WᵀW = C⁻¹`
/// (the paper's `V_i`, `W_i` matrices, §2.1), so the common
/// identity/diagonal cases can be applied without forming any matrix.
/// All variants must be symmetric positive definite; the QR formulation
/// (like Paige–Saunders) requires non-singular covariances.
#[derive(Debug, Clone, PartialEq)]
pub enum CovarianceSpec {
    /// The identity covariance `I_n` (the paper's benchmark setting).
    Identity(usize),
    /// `σ² I_n` with `σ² > 0`.
    ScaledIdentity(usize, f64),
    /// `diag(v)` with strictly positive entries.
    Diagonal(Vec<f64>),
    /// A general dense SPD matrix.
    Dense(Matrix),
}

impl CovarianceSpec {
    /// Dimension of the covariance matrix.
    pub fn dim(&self) -> usize {
        match self {
            CovarianceSpec::Identity(n) | CovarianceSpec::ScaledIdentity(n, _) => *n,
            CovarianceSpec::Diagonal(v) => v.len(),
            CovarianceSpec::Dense(m) => m.rows(),
        }
    }

    /// Materializes the covariance as a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        match self {
            CovarianceSpec::Identity(n) => Matrix::identity(*n),
            CovarianceSpec::ScaledIdentity(n, s) => Matrix::identity(*n).scaled(*s),
            CovarianceSpec::Diagonal(v) => Matrix::from_diag(v),
            CovarianceSpec::Dense(m) => m.clone(),
        }
    }

    /// Validates positivity; `step` is used only for error reporting.
    pub fn validate(&self, step: usize) -> Result<()> {
        match self {
            CovarianceSpec::Identity(_) => Ok(()),
            CovarianceSpec::ScaledIdentity(_, s) => {
                if *s > 0.0 && s.is_finite() {
                    Ok(())
                } else {
                    Err(KalmanError::NotPositiveDefinite { step })
                }
            }
            CovarianceSpec::Diagonal(v) => {
                if v.iter().all(|&x| x > 0.0 && x.is_finite()) {
                    Ok(())
                } else {
                    Err(KalmanError::NotPositiveDefinite { step })
                }
            }
            CovarianceSpec::Dense(m) => {
                if !m.is_square() {
                    return Err(KalmanError::InvalidModel(format!(
                        "covariance at step {step} is not square"
                    )));
                }
                Cholesky::new(m)
                    .map(|_| ())
                    .map_err(|_| KalmanError::NotPositiveDefinite { step })
            }
        }
    }

    /// Applies the inverse factor: returns `W·A` where `WᵀW = C⁻¹`.
    ///
    /// For identity this is a clone; for diagonal a row scaling; for dense
    /// covariances `W = L⁻¹` (Cholesky factor inverse) and the product is a
    /// triangular solve — `W` itself is never formed.
    ///
    /// # Errors
    ///
    /// [`KalmanError::NotPositiveDefinite`] if the covariance is not SPD
    /// (`step` is used for error reporting).
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != self.dim()`.
    // lint: allow(alloc, "by-value whitening API allocates its output by contract; the streaming path whitens each step once on ingest, then reuses the result")
    pub fn whiten(&self, a: &Matrix, step: usize) -> Result<Matrix> {
        assert_eq!(a.rows(), self.dim(), "whiten dimension mismatch");
        match self {
            CovarianceSpec::Identity(_) => Ok(a.clone()),
            CovarianceSpec::ScaledIdentity(_, s) => {
                if *s <= 0.0 || !s.is_finite() {
                    return Err(KalmanError::NotPositiveDefinite { step });
                }
                Ok(a.scaled(1.0 / s.sqrt()))
            }
            CovarianceSpec::Diagonal(v) => {
                let mut out = a.clone();
                for j in 0..out.cols() {
                    let col = out.col_mut(j);
                    for (x, d) in col.iter_mut().zip(v.iter()) {
                        if *d <= 0.0 || !d.is_finite() {
                            return Err(KalmanError::NotPositiveDefinite { step });
                        }
                        *x /= d.sqrt();
                    }
                }
                Ok(out)
            }
            CovarianceSpec::Dense(m) => {
                let ch = Cholesky::new(m).map_err(|_| KalmanError::NotPositiveDefinite { step })?;
                let mut out = a.clone();
                tri::solve_lower_in_place(ch.l(), &mut out)
                    .map_err(|_| KalmanError::NotPositiveDefinite { step })?;
                Ok(out)
            }
        }
    }

    /// Applies the inverse factor to a vector: `W·x`.
    ///
    /// # Errors
    ///
    /// [`KalmanError::NotPositiveDefinite`] if the covariance is not SPD.
    pub fn whiten_vec(&self, x: &[f64], step: usize) -> Result<Vec<f64>> {
        Ok(self.whiten_col(x, step)?.into_vec())
    }

    /// Applies the inverse factor to a vector, returning it as a column
    /// matrix: `W·x` as `n × 1`.  Hot paths prefer this over
    /// [`CovarianceSpec::whiten_vec`] — the column stays inside the
    /// workspace-pooled [`Matrix`] storage instead of escaping as a raw
    /// `Vec`.
    ///
    /// # Errors
    ///
    /// [`KalmanError::NotPositiveDefinite`] if the covariance is not SPD.
    pub fn whiten_col(&self, x: &[f64], step: usize) -> Result<Matrix> {
        self.whiten(&Matrix::col_from_slice(x), step)
    }

    /// The block-diagonal combination `diag(a, b)` of two covariances,
    /// staying in the cheapest representation that holds both (identity +
    /// identity stays identity, diagonal-like inputs stay diagonal, anything
    /// else goes dense).  Used when stacking independent observations of
    /// the same state in the streaming ingestion path.
    pub fn block_diag(a: &CovarianceSpec, b: &CovarianceSpec) -> CovarianceSpec {
        use CovarianceSpec::*;
        match (a, b) {
            (Identity(m), Identity(n)) => Identity(m + n),
            (ScaledIdentity(m, s), ScaledIdentity(n, t)) if s == t => ScaledIdentity(m + n, *s),
            _ => match (a.diag_vec(), b.diag_vec()) {
                (Some(mut diag), Some(tail)) => {
                    diag.extend(tail);
                    Diagonal(diag)
                }
                _ => {
                    let (da, db) = (a.to_dense(), b.to_dense());
                    let (m, n) = (da.rows(), db.rows());
                    let mut out = Matrix::zeros(m + n, m + n);
                    out.set_block(0, 0, &da);
                    out.set_block(m, m, &db);
                    Dense(out)
                }
            },
        }
    }

    /// The diagonal as a vector, for the variants that are diagonal without
    /// materializing anything (`None` for dense covariances).
    fn diag_vec(&self) -> Option<Vec<f64>> {
        match self {
            CovarianceSpec::Identity(n) => Some(vec![1.0; *n]),
            CovarianceSpec::ScaledIdentity(n, s) => Some(vec![*s; *n]),
            CovarianceSpec::Diagonal(v) => Some(v.clone()),
            CovarianceSpec::Dense(_) => None,
        }
    }

    /// The Cholesky factorization of the dense covariance (for sampling and
    /// for the conventional filter).
    ///
    /// # Errors
    ///
    /// [`KalmanError::NotPositiveDefinite`] if the covariance is not SPD.
    pub fn cholesky(&self, step: usize) -> Result<Cholesky> {
        Cholesky::new(&self.to_dense()).map_err(|_| KalmanError::NotPositiveDefinite { step })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kalman_dense::{matmul, matmul_tn, random};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dims() {
        assert_eq!(CovarianceSpec::Identity(3).dim(), 3);
        assert_eq!(CovarianceSpec::ScaledIdentity(2, 4.0).dim(), 2);
        assert_eq!(CovarianceSpec::Diagonal(vec![1.0, 2.0]).dim(), 2);
        assert_eq!(CovarianceSpec::Dense(Matrix::identity(5)).dim(), 5);
    }

    #[test]
    fn whiten_identity_is_clone() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let w = CovarianceSpec::Identity(2).whiten(&a, 0).unwrap();
        assert!(w.approx_eq(&a, 0.0));
    }

    #[test]
    fn whiten_scaled_identity() {
        let a = Matrix::identity(2);
        let w = CovarianceSpec::ScaledIdentity(2, 4.0)
            .whiten(&a, 0)
            .unwrap();
        assert!((w[(0, 0)] - 0.5).abs() < 1e-15);
    }

    /// Whitening property: (W·A)ᵀ(W·A) == Aᵀ C⁻¹ A for every variant.
    #[test]
    fn whiten_satisfies_gram_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = random::gaussian(&mut rng, 4, 3);
        let dense_cov = random::spd(&mut rng, 4);
        let specs = vec![
            CovarianceSpec::Identity(4),
            CovarianceSpec::ScaledIdentity(4, 2.5),
            CovarianceSpec::Diagonal(vec![1.0, 0.5, 2.0, 4.0]),
            CovarianceSpec::Dense(dense_cov),
        ];
        for spec in specs {
            let wa = spec.whiten(&a, 0).unwrap();
            let got = matmul_tn(&wa, &wa);
            let cinv = Cholesky::new(&spec.to_dense()).unwrap().inverse();
            let expect = matmul_tn(&a, &matmul(&cinv, &a));
            assert!(
                got.approx_eq(&expect, 1e-10),
                "gram identity failed for {spec:?}"
            );
        }
    }

    #[test]
    fn whiten_vec_matches_matrix_path() {
        let spec = CovarianceSpec::Diagonal(vec![4.0, 9.0]);
        let v = spec.whiten_vec(&[2.0, 3.0], 0).unwrap();
        assert!((v[0] - 1.0).abs() < 1e-15);
        assert!((v[1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn invalid_covariances_are_rejected() {
        assert!(CovarianceSpec::ScaledIdentity(2, 0.0).validate(3).is_err());
        assert!(CovarianceSpec::Diagonal(vec![1.0, -2.0])
            .validate(0)
            .is_err());
        let not_spd = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(CovarianceSpec::Dense(not_spd).validate(0).is_err());
        match CovarianceSpec::ScaledIdentity(2, -1.0).validate(5) {
            Err(KalmanError::NotPositiveDefinite { step }) => assert_eq!(step, 5),
            other => panic!("unexpected {other:?}"),
        }
    }
}

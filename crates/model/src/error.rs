use kalman_dense::DenseError;
use std::fmt;

/// Errors shared by every smoother implementation in the workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum KalmanError {
    /// The model failed structural validation (inconsistent dimensions,
    /// empty model, …).  The string describes the defect and names the step.
    InvalidModel(String),
    /// The least-squares problem is rank deficient: the data does not
    /// determine the state at the given step index.
    RankDeficient {
        /// Index of the state whose diagonal block was found singular.
        state: usize,
    },
    /// A covariance matrix was not symmetric positive definite.
    NotPositiveDefinite {
        /// Step index the covariance belongs to.
        step: usize,
    },
    /// The algorithm requires a prior on the initial state but the model has
    /// none (conventional RTS and associative smoothers).
    PriorRequired,
    /// The algorithm requires uniform state dimensions and `H_i = I`
    /// (conventional RTS and associative smoothers), but the model varies.
    UnsupportedStructure(String),
    /// A streaming smoother was driven incorrectly (evolving a finished
    /// stream, dropping the window's base step, …).  The string describes
    /// the misuse.
    Stream(String),
    /// An underlying dense kernel failed.
    Dense(DenseError),
}

impl fmt::Display for KalmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KalmanError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            KalmanError::RankDeficient { state } => {
                write!(f, "problem is rank deficient at state {state}")
            }
            KalmanError::NotPositiveDefinite { step } => {
                write!(f, "covariance at step {step} is not positive definite")
            }
            KalmanError::PriorRequired => {
                write!(f, "this smoother requires a prior on the initial state")
            }
            KalmanError::UnsupportedStructure(msg) => {
                write!(f, "unsupported model structure: {msg}")
            }
            KalmanError::Stream(msg) => write!(f, "streaming misuse: {msg}"),
            KalmanError::Dense(e) => write!(f, "dense kernel failure: {e}"),
        }
    }
}

impl std::error::Error for KalmanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KalmanError::Dense(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DenseError> for KalmanError {
    fn from(e: DenseError) -> Self {
        KalmanError::Dense(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = KalmanError::RankDeficient { state: 7 };
        assert!(e.to_string().contains("7"));
        let e = KalmanError::from(DenseError::Singular { index: 2 });
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn source_chains_dense_errors() {
        use std::error::Error;
        let e = KalmanError::from(DenseError::Singular { index: 0 });
        assert!(e.source().is_some());
        assert!(KalmanError::PriorRequired.source().is_none());
    }
}

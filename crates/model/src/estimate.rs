use kalman_dense::Matrix;

/// The output of a smoother: per-state means and, optionally, covariances.
///
/// The paper's "NC" (no covariance) smoother variants produce
/// `covariances == None`; the full variants fill both fields.
#[derive(Debug, Clone)]
pub struct Smoothed {
    /// Smoothed state estimates `û_i`, one vector per state.
    pub means: Vec<Vec<f64>>,
    /// Covariances `cov(û_i)`, when computed.
    pub covariances: Option<Vec<Matrix>>,
}

impl Smoothed {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// `true` when the estimate holds no states.
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }

    /// The smoothed mean of state `i`.
    pub fn mean(&self, i: usize) -> &[f64] {
        &self.means[i]
    }

    /// The covariance of state `i`, if covariances were computed.
    pub fn covariance(&self, i: usize) -> Option<&Matrix> {
        self.covariances.as_ref().map(|c| &c[i])
    }

    /// Marginal standard deviations of state `i` (square roots of the
    /// covariance diagonal), if covariances were computed.
    pub fn stddevs(&self, i: usize) -> Option<Vec<f64>> {
        self.covariance(i)
            .map(|c| c.diag().iter().map(|v| v.max(0.0).sqrt()).collect())
    }

    /// Largest absolute difference between any mean entry of `self` and
    /// `other` (test/benchmark helper).
    ///
    /// # Panics
    ///
    /// Panics if the two estimates have different shapes.
    pub fn max_mean_diff(&self, other: &Smoothed) -> f64 {
        assert_eq!(self.len(), other.len(), "state count mismatch");
        let mut worst = 0.0_f64;
        for (a, b) in self.means.iter().zip(&other.means) {
            assert_eq!(a.len(), b.len(), "state dimension mismatch");
            for (x, y) in a.iter().zip(b) {
                worst = worst.max((x - y).abs());
            }
        }
        worst
    }

    /// Largest absolute difference between any covariance entry of `self`
    /// and `other`; `None` when either side lacks covariances.
    pub fn max_cov_diff(&self, other: &Smoothed) -> Option<f64> {
        let (a, b) = (self.covariances.as_ref()?, other.covariances.as_ref()?);
        let mut worst = 0.0_f64;
        for (x, y) in a.iter().zip(b) {
            worst = worst.max(x.max_abs_diff(y));
        }
        Some(worst)
    }

    /// Root-mean-square error of the means against a ground-truth
    /// trajectory (same shapes), across all states and components.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn rmse(&self, truth: &[Vec<f64>]) -> f64 {
        assert_eq!(self.len(), truth.len(), "state count mismatch");
        let mut acc = 0.0;
        let mut count = 0usize;
        for (m, t) in self.means.iter().zip(truth) {
            assert_eq!(m.len(), t.len(), "state dimension mismatch");
            for (x, y) in m.iter().zip(t) {
                acc += (x - y) * (x - y);
                count += 1;
            }
        }
        (acc / count.max(1) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Smoothed {
        Smoothed {
            means: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            covariances: Some(vec![Matrix::identity(2), Matrix::identity(2).scaled(4.0)]),
        }
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.mean(1), &[3.0, 4.0]);
        assert_eq!(s.covariance(0).unwrap()[(0, 0)], 1.0);
        assert_eq!(s.stddevs(1).unwrap(), vec![2.0, 2.0]);
    }

    #[test]
    fn diffs() {
        let a = sample();
        let mut b = sample();
        b.means[1][0] += 0.5;
        assert!((a.max_mean_diff(&b) - 0.5).abs() < 1e-15);
        assert_eq!(a.max_cov_diff(&b), Some(0.0));
        b.covariances = None;
        assert_eq!(a.max_cov_diff(&b), None);
    }

    #[test]
    fn rmse_of_exact_match_is_zero() {
        let s = sample();
        assert_eq!(s.rmse(&s.means), 0.0);
        let truth = vec![vec![1.0, 2.0], vec![3.0, 2.0]];
        assert!((s.rmse(&truth) - (4.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }
}

//! Synthetic problem generators.
//!
//! [`paper_benchmark`] reproduces the paper's §5.2 setting exactly: fixed
//! random orthonormal `F` and `G`, `H = I`, `K = L = I`, random
//! observations.  The remaining generators produce *simulated* trajectories
//! (ground truth + noisy observations) for the examples, accuracy tests, and
//! the stability experiment.

use crate::{CovarianceSpec, Evolution, LinearModel, LinearStep, Observation, Prior};
use kalman_dense::{random, Cholesky, Matrix};
use rand::Rng;

/// The paper's benchmark problem (§5.2): `k + 1` states of dimension `n`,
/// fixed random orthonormal `F_i = F` and `G_i = G`, `H_i = I`,
/// `K_i = L_i = I`, random observations, and (when `with_prior`) a standard
/// Gaussian prior on `u_0` so the RTS/associative smoothers can run on the
/// same model.
///
/// The orthonormal evolution avoids growth or shrinkage of the state over
/// millions of steps, hence overflow/underflow — the reason the paper uses
/// this construction.
pub fn paper_benchmark<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    with_prior: bool,
) -> LinearModel {
    let f = random::orthonormal(rng, n);
    let g = random::orthonormal(rng, n);
    let mut model = LinearModel::new();
    for i in 0..=k {
        let mut step = if i == 0 {
            LinearStep::initial(n)
        } else {
            LinearStep::evolving(Evolution {
                f: f.clone(),
                h: None,
                c: vec![0.0; n],
                noise: CovarianceSpec::Identity(n),
            })
        };
        step = step.with_observation(Observation {
            g: g.clone(),
            o: random::gaussian_vec(rng, n),
            noise: CovarianceSpec::Identity(n),
        });
        model.push_step(step);
    }
    if with_prior {
        model.prior = Some(Prior {
            mean: vec![0.0; n],
            cov: CovarianceSpec::Identity(n),
        });
    }
    model
}

/// Output of a simulation-backed generator: the model plus the ground-truth
/// trajectory the observations were sampled from.
#[derive(Debug, Clone)]
pub struct SimulatedProblem {
    /// The smoothing problem.
    pub model: LinearModel,
    /// True states `u_0 … u_k`.
    pub truth: Vec<Vec<f64>>,
}

/// Constant-velocity 2-D target tracking: state `[x, y, vx, vy]`, noisy
/// position observations — the classic motivating workload for Kalman
/// smoothing.
///
/// `dt` is the sampling interval, `q` the continuous process-noise
/// intensity, `r` the observation noise variance per coordinate.
pub fn tracking_2d<R: Rng + ?Sized>(
    rng: &mut R,
    k: usize,
    dt: f64,
    q: f64,
    r: f64,
) -> SimulatedProblem {
    let n = 4;
    // F = [I2, dt·I2; 0, I2]
    let mut f = Matrix::identity(n);
    f[(0, 2)] = dt;
    f[(1, 3)] = dt;
    // Discretized white-noise-acceleration covariance.
    let (q11, q12, q22) = (q * dt * dt * dt / 3.0, q * dt * dt / 2.0, q * dt);
    let mut qm = Matrix::zeros(n, n);
    for d in 0..2 {
        qm[(d, d)] = q11;
        qm[(d, d + 2)] = q12;
        qm[(d + 2, d)] = q12;
        qm[(d + 2, d + 2)] = q22;
    }
    // G observes positions.
    let mut g = Matrix::zeros(2, n);
    g[(0, 0)] = 1.0;
    g[(1, 1)] = 1.0;

    let process = CovarianceSpec::Dense(qm.clone());
    let obs_noise = CovarianceSpec::ScaledIdentity(2, r);
    let q_chol = Cholesky::new(&qm).expect("process covariance is SPD");

    let mut truth = Vec::with_capacity(k + 1);
    let mut state = vec![0.0, 0.0, 1.0, 0.5]; // start moving diagonally
    truth.push(state.clone());
    let mut model = LinearModel::new();
    let observe = |rng: &mut R, state: &[f64]| -> Observation {
        let o = vec![
            state[0] + r.sqrt() * random::standard_normal(rng),
            state[1] + r.sqrt() * random::standard_normal(rng),
        ];
        Observation {
            g: g.clone(),
            o,
            noise: obs_noise.clone(),
        }
    };
    model.push_step(LinearStep::initial(n).with_observation(observe(rng, &state)));
    for _ in 0..k {
        let mut next = f.mul_vec(&state);
        for (x, w) in next
            .iter_mut()
            .zip(random::sample_gaussian_cov(rng, &q_chol))
        {
            *x += w;
        }
        state = next;
        truth.push(state.clone());
        model.push_step(
            LinearStep::evolving(Evolution {
                f: f.clone(),
                h: None,
                c: vec![0.0; n],
                noise: process.clone(),
            })
            .with_observation(observe(rng, &state)),
        );
    }
    model.prior = Some(Prior {
        mean: vec![0.0, 0.0, 1.0, 0.5],
        cov: CovarianceSpec::ScaledIdentity(n, 10.0),
    });
    SimulatedProblem { model, truth }
}

/// A damped harmonic oscillator observed in position only (`m_i = 1 <
/// n_i = 2`), exercising partial observations.
///
/// `omega` is the angular frequency, `zeta` the damping ratio (< 1),
/// `q`/`r` the process/observation noise variances.
pub fn oscillator<R: Rng + ?Sized>(
    rng: &mut R,
    k: usize,
    dt: f64,
    omega: f64,
    zeta: f64,
    q: f64,
    r: f64,
) -> SimulatedProblem {
    // Exact discretization of x'' + 2ζω x' + ω² x = noise.
    let wd = omega * (1.0 - zeta * zeta).max(1e-12).sqrt();
    let e = (-zeta * omega * dt).exp();
    let (c, s) = ((wd * dt).cos(), (wd * dt).sin());
    let f = Matrix::from_rows(&[
        &[e * (c + zeta * omega * s / wd), e * s / wd],
        &[-e * omega * omega * s / wd, e * (c - zeta * omega * s / wd)],
    ]);
    let g = Matrix::from_rows(&[&[1.0, 0.0]]);
    let process = CovarianceSpec::ScaledIdentity(2, q);
    let obs_noise = CovarianceSpec::ScaledIdentity(1, r);

    let mut truth = Vec::with_capacity(k + 1);
    let mut state = vec![1.0, 0.0];
    truth.push(state.clone());
    let mut model = LinearModel::new();
    let observe = |rng: &mut R, state: &[f64]| Observation {
        g: g.clone(),
        o: vec![state[0] + r.sqrt() * random::standard_normal(rng)],
        noise: obs_noise.clone(),
    };
    model.push_step(LinearStep::initial(2).with_observation(observe(rng, &state)));
    for _ in 0..k {
        let mut next = f.mul_vec(&state);
        for x in next.iter_mut() {
            *x += q.sqrt() * random::standard_normal(rng);
        }
        state = next;
        truth.push(state.clone());
        model.push_step(
            LinearStep::evolving(Evolution {
                f: f.clone(),
                h: None,
                c: vec![0.0; 2],
                noise: process.clone(),
            })
            .with_observation(observe(rng, &state)),
        );
    }
    model.prior = Some(Prior {
        mean: vec![1.0, 0.0],
        cov: CovarianceSpec::ScaledIdentity(2, 1.0),
    });
    SimulatedProblem { model, truth }
}

/// The paper benchmark with *ill-conditioned* noise covariances: `K_i` and
/// `L_i` are random SPD matrices with 2-norm condition number `cond`.
///
/// Used by the stability experiment (§6): the QR-based smoothers are
/// backward stable when the input covariances are well conditioned, whereas
/// the normal-equations cyclic-reduction smoother squares the condition
/// number and loses accuracy much earlier.
pub fn ill_conditioned<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize, cond: f64) -> LinearModel {
    let f = random::orthonormal(rng, n);
    let g = random::orthonormal(rng, n);
    let mut model = LinearModel::new();
    for i in 0..=k {
        let mut step = if i == 0 {
            LinearStep::initial(n)
        } else {
            LinearStep::evolving(Evolution {
                f: f.clone(),
                h: None,
                c: vec![0.0; n],
                noise: CovarianceSpec::Dense(random::spd_with_condition(rng, n, cond)),
            })
        };
        step = step.with_observation(Observation {
            g: g.clone(),
            o: random::gaussian_vec(rng, n),
            noise: CovarianceSpec::Dense(random::spd_with_condition(rng, n, cond)),
        });
        model.push_step(step);
    }
    model
}

/// A model whose state dimension changes over time through rectangular
/// `H_i` blocks (dimension `n` → `n+1` → `n` → …), which only the QR-based
/// smoothers support.
///
/// The evolution `H_i u_i = F_i u_{i-1} + ε` with a rectangular `H_i`
/// constrains a *projection* of the new state; every state is fully
/// observed so the problem stays well posed.
pub fn dimension_change<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> LinearModel {
    let mut model = LinearModel::new();
    let mut prev_dim = n;
    let obs = |rng: &mut R, dim: usize| Observation {
        g: random::orthonormal(rng, dim),
        o: random::gaussian_vec(rng, dim),
        noise: CovarianceSpec::Identity(dim),
    };
    model.push_step(LinearStep::initial(n).with_observation(obs(rng, n)));
    for i in 1..=k {
        let dim = if i % 2 == 1 { n + 1 } else { n };
        // H: l × dim selecting the first l coordinates, with l = prev_dim rows.
        let h = Matrix::from_fn(prev_dim, dim, |r, c| if r == c { 1.0 } else { 0.0 });
        model.push_step(
            LinearStep::evolving(Evolution {
                f: random::orthonormal(rng, prev_dim),
                h: Some(h),
                c: vec![0.0; prev_dim],
                noise: CovarianceSpec::Identity(prev_dim),
            })
            .with_observation(obs(rng, dim)),
        );
        prev_dim = dim;
    }
    model
}

/// The paper benchmark but with observations only every `every`-th step
/// (missing observations, `m_i = 0` elsewhere).  Requires a prior or dense
/// enough observations to stay full rank; we keep the state-0 observation.
pub fn sparse_observations<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    every: usize,
) -> LinearModel {
    assert!(every >= 1);
    let f = random::orthonormal(rng, n);
    let g = random::orthonormal(rng, n);
    let mut model = LinearModel::new();
    for i in 0..=k {
        let mut step = if i == 0 {
            LinearStep::initial(n)
        } else {
            LinearStep::evolving(Evolution {
                f: f.clone(),
                h: None,
                c: vec![0.0; n],
                noise: CovarianceSpec::Identity(n),
            })
        };
        if i % every == 0 {
            step = step.with_observation(Observation {
                g: g.clone(),
                o: random::gaussian_vec(rng, n),
                noise: CovarianceSpec::Identity(n),
            });
        }
        model.push_step(step);
    }
    model
}

/// The paper benchmark with *short* observation blocks: every state is
/// observed through the first `m < n` rows of a random orthonormal matrix
/// (partial observations), plus a standard Gaussian prior so the problem
/// stays full rank.  Exercises the trapezoidal (`m_i < n_i`) step-1
/// elimination path of the odd-even smoothers.
pub fn short_observations<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    m: usize,
) -> LinearModel {
    assert!(m >= 1 && m < n, "short_observations needs 1 <= m < n");
    let f = random::orthonormal(rng, n);
    let g = random::orthonormal(rng, n).sub_matrix(0, 0, m, n);
    let mut model = LinearModel::new();
    for i in 0..=k {
        let mut step = if i == 0 {
            LinearStep::initial(n)
        } else {
            LinearStep::evolving(Evolution {
                f: f.clone(),
                h: None,
                c: vec![0.0; n],
                noise: CovarianceSpec::Identity(n),
            })
        };
        step = step.with_observation(Observation {
            g: g.clone(),
            o: random::gaussian_vec(rng, m),
            noise: CovarianceSpec::Identity(m),
        });
        model.push_step(step);
    }
    model.prior = Some(Prior {
        mean: vec![0.0; n],
        cov: CovarianceSpec::Identity(n),
    });
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1234)
    }

    #[test]
    fn paper_benchmark_validates() {
        let m = paper_benchmark(&mut rng(), 6, 20, false);
        m.validate().unwrap();
        assert_eq!(m.num_states(), 21);
        assert!(m.is_uniform());
        assert!(m.prior.is_none());
        let mp = paper_benchmark(&mut rng(), 6, 20, true);
        assert!(mp.prior.is_some());
        mp.validate().unwrap();
    }

    #[test]
    fn paper_benchmark_is_deterministic_per_seed() {
        let a = paper_benchmark(&mut rng(), 4, 5, false);
        let b = paper_benchmark(&mut rng(), 4, 5, false);
        let oa = &a.steps[3].observation.as_ref().unwrap().o;
        let ob = &b.steps[3].observation.as_ref().unwrap().o;
        assert_eq!(oa, ob);
    }

    #[test]
    fn tracking_validates_and_has_truth() {
        let p = tracking_2d(&mut rng(), 50, 0.1, 0.5, 0.25);
        p.model.validate().unwrap();
        assert_eq!(p.truth.len(), 51);
        assert_eq!(p.model.num_states(), 51);
        assert!(p.model.prior.is_some());
    }

    #[test]
    fn oscillator_validates_and_decays() {
        let p = oscillator(&mut rng(), 100, 0.05, 2.0, 0.1, 1e-6, 1e-4);
        p.model.validate().unwrap();
        // Observation dimension is 1 < state dimension 2.
        assert_eq!(p.model.steps[5].obs_dim(), 1);
        // With tiny process noise the oscillation amplitude decays.
        let early: f64 = p.truth[1][0].abs();
        let late: f64 = p.truth[100][0].abs().max(p.truth[99][0].abs());
        assert!(late < early + 1.0, "oscillator diverged");
    }

    #[test]
    fn ill_conditioned_validates() {
        let m = ill_conditioned(&mut rng(), 3, 10, 1e8);
        m.validate().unwrap();
    }

    #[test]
    fn dimension_change_has_varying_dims() {
        let m = dimension_change(&mut rng(), 3, 6);
        m.validate().unwrap();
        assert_eq!(m.state_dim(0), 3);
        assert_eq!(m.state_dim(1), 4);
        assert_eq!(m.state_dim(2), 3);
        assert!(!m.is_uniform());
    }

    #[test]
    fn short_observations_are_short() {
        let m = short_observations(&mut rng(), 4, 8, 2);
        m.validate().unwrap();
        assert_eq!(m.num_states(), 9);
        for s in &m.steps {
            assert_eq!(s.obs_dim(), 2);
        }
        assert!(m.prior.is_some());
    }

    #[test]
    fn sparse_observations_has_gaps() {
        let m = sparse_observations(&mut rng(), 2, 10, 3);
        m.validate().unwrap();
        assert!(m.steps[0].observation.is_some());
        assert!(m.steps[1].observation.is_none());
        assert!(m.steps[3].observation.is_some());
    }
}

//! Incremental model building for streaming smoothers.
//!
//! A streaming smoother never sees a complete [`LinearModel`]; it receives
//! steps one at a time, keeps a bounded *window* of recent steps, and
//! condenses everything older into an [`InfoHead`] — a single whitened block
//! row `C u_b ≈ d` on the window's first state, obtained as the leading
//! block of the `R` factor of the forgotten prefix.  This module provides:
//!
//! * [`InfoHead`]: the condensed prior and the two orthogonal-transformation
//!   updates that maintain it ([`InfoHead::absorb`] for observation rows,
//!   [`InfoHead::advance`] for marginalizing a state out through its
//!   evolution — one step of a square-root information filter);
//! * [`whiten_window`]: assembly of `head + buffered steps` into the
//!   whitened block array the odd-even factorization consumes;
//! * [`StreamEvent`] and [`events_of`]: a replayable event form of a model,
//!   used to feed batch problems through streaming ingestion in tests and
//!   benchmarks.

use crate::{
    KalmanError, LinearModel, Observation, Prior, Result, WhitenedEvo, WhitenedObs, WhitenedStep,
};
use kalman_dense::{compress_rows_owned, ColPivQr, Matrix};

/// A whitened information block row `C u ≈ d` (noise implicitly `I`) on a
/// single state: the "R-factor head" summarizing everything a stream has
/// forgotten.
///
/// `C` has at most `state_dim` rows ([`InfoHead::absorb`] re-triangularizes
/// with a QR compression), so a head costs `O(n²)` memory regardless of how
/// much history it summarizes.  A head may have *fewer* rows than columns —
/// a stream with no prior starts from the 0-row head and stays
/// under-determined until enough observations arrive.
#[derive(Debug, Clone)]
pub struct InfoHead {
    /// Whitened coefficient rows (`r × n`, `r ≤ n`).
    c: Matrix,
    /// Whitened right-hand side (`r × 1`).
    d: Matrix,
}

impl InfoHead {
    /// The empty head (no information) on a state of dimension `n`.
    pub fn empty(state_dim: usize) -> Self {
        InfoHead {
            c: Matrix::zeros(0, state_dim),
            d: Matrix::zeros(0, 1),
        }
    }

    /// A head equivalent to a Gaussian prior (its whitened row block).
    ///
    /// # Errors
    ///
    /// [`KalmanError::NotPositiveDefinite`] if the prior covariance is not
    /// SPD.
    pub fn from_prior(prior: &Prior) -> Result<Self> {
        let n = prior.mean.len();
        let c = prior.cov.whiten(&Matrix::identity(n), 0)?;
        let d = prior.cov.whiten_col(&prior.mean, 0)?;
        Ok(InfoHead { c, d })
    }

    /// A head from raw whitened rows (used when restoring a checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if `c` and `d` disagree on the row count or `d` is not a
    /// column.
    pub fn from_rows(c: Matrix, d: Matrix) -> Self {
        assert_eq!(c.rows(), d.rows(), "head row mismatch");
        assert_eq!(d.cols(), 1, "head rhs must be a column");
        InfoHead { c, d }
    }

    /// Dimension of the state the head constrains.
    pub fn state_dim(&self) -> usize {
        self.c.cols()
    }

    /// Number of information rows (`≤ state_dim`).
    pub fn rows(&self) -> usize {
        self.c.rows()
    }

    /// `true` when the head carries no information.
    pub fn is_empty(&self) -> bool {
        self.c.rows() == 0
    }

    /// The head's whitened rows, `(C, d)`.
    pub fn rows_ref(&self) -> (&Matrix, &Matrix) {
        (&self.c, &self.d)
    }

    /// Consumes the head into its whitened rows, `(C, d)`.
    pub fn into_rows(self) -> (Matrix, Matrix) {
        (self.c, self.d)
    }

    /// Stacks additional whitened rows `c·u ≈ d` under the head and
    /// re-triangularizes so at most `state_dim` rows remain.  The discarded
    /// rows are pure least-squares residual (zero coefficients), so the
    /// normal equations `CᵀC`, `Cᵀd` — hence every downstream estimate —
    /// are preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree.
    pub fn absorb(&mut self, c: &Matrix, d: &Matrix) {
        assert_eq!(c.cols(), self.state_dim(), "absorb dimension mismatch");
        assert_eq!(c.rows(), d.rows(), "absorb row mismatch");
        if c.rows() == 0 {
            return;
        }
        let stacked_c = Matrix::vstack(&[&self.c, c]);
        let mut stacked_d = Matrix::vstack(&[&self.d, d]);
        let n = self.state_dim();
        if stacked_c.rows() > n {
            self.c = compress_rows_owned(stacked_c, &mut stacked_d);
            self.d = stacked_d.sub_matrix(0, 0, n, 1);
        } else {
            self.c = stacked_c;
            self.d = stacked_d;
        }
    }

    /// Absorbs a (raw) observation of the head's state.
    ///
    /// # Errors
    ///
    /// [`KalmanError::NotPositiveDefinite`] if the observation noise is not
    /// SPD (`step` names the step for the error message).
    pub fn absorb_observation(&mut self, obs: &Observation, step: usize) -> Result<()> {
        let wg = obs.noise.whiten(&obs.g, step)?;
        let wo = obs.noise.whiten_col(&obs.o, step)?;
        self.absorb(&wg, &wo);
        Ok(())
    }

    /// Marginalizes the head's state out through the whitened evolution
    /// connecting it to the next state, returning the head on the next
    /// state.  One step of a square-root information filter: QR-eliminate
    /// the current state's columns from
    ///
    /// ```text
    /// [ C   0 | d ]      (the head)
    /// [-B   D | r ]      (whitened evolution rows, as in §3 of the paper)
    /// ```
    ///
    /// and keep the rows below the eliminated block.  The elimination uses
    /// a *rank-revealing* (column-pivoted) QR: only the top `rank([C; -B])`
    /// rows of the transformed system are exactly satisfiable by the
    /// marginalized state (they are used only to *recover* it, which the
    /// window smoother has already done), so exactly those are dropped and
    /// everything below survives as the marginal on the next state.
    ///
    /// Dropping a fixed `n_cur` rows instead would be wrong whenever
    /// `[C; -B]` is rank-deficient — an underdetermined head advanced
    /// through a singular evolution (`F` with a zero row, a stream with no
    /// prior): the evolution rows acting on `ker F` carry information about
    /// the *next* state only, and sit below the eliminated block's rank.
    pub fn advance(&self, evo: &WhitenedEvo) -> InfoHead {
        let n_cur = self.state_dim();
        let n_next = evo.d.cols();
        debug_assert_eq!(evo.b.cols(), n_cur, "advance dimension mismatch");
        let a = Matrix::vstack(&[&self.c, &evo.b.scaled(-1.0)]);
        let rows = a.rows();
        let qr = ColPivQr::new(a);
        let rank = qr.rank();
        if rank >= rows {
            // The eliminated state absorbs every row: no information flows
            // forward (e.g. a fresh no-prior stream advancing through a
            // nonsingular evolution).
            return InfoHead::empty(n_next);
        }
        let mut companion = Matrix::zeros(rows, n_next + 1);
        companion.set_block(0, n_next, &self.d);
        companion.set_block(self.c.rows(), 0, &evo.d);
        companion.set_block(self.c.rows(), n_next, &evo.rhs);
        // The pivoting permutes only the eliminated state's columns, which
        // are discarded wholesale, so the companion needs no permutation.
        qr.apply_qt(&mut companion);
        let kept = rows - rank;
        let c_new = companion.sub_matrix(rank, 0, kept, n_next);
        let d_new = companion.sub_matrix(rank, n_next, kept, 1);
        let mut head = InfoHead::empty(n_next);
        head.absorb(&c_new, &d_new);
        head
    }
}

/// Whitens a window of buffered steps and stacks the head's rows onto the
/// first step's observation block, producing the step array the odd-even
/// factorization consumes.
///
/// `steps[0]` must carry no evolution (its evolution, if any, was absorbed
/// into `head` when the preceding state was forgotten); later steps must
/// each carry one, exactly like a standalone [`LinearModel`].
///
/// # Errors
///
/// [`KalmanError::InvalidModel`] on structural violations, and covariance
/// whitening failures.
pub fn whiten_window(head: &InfoHead, steps: &[crate::LinearStep]) -> Result<Vec<WhitenedStep>> {
    let mut whitened = Vec::with_capacity(steps.len());
    whiten_window_into(head, steps, &mut whitened)?;
    Ok(whitened)
}

/// [`whiten_window`] into a reused vector: `out` is cleared and refilled,
/// retaining its capacity, so a streaming smoother that re-whitens a
/// same-sized window every flush allocates nothing here (the whitened
/// matrices cycle through the `kalman-dense` workspace pool).
///
/// # Errors
///
/// As [`whiten_window`]; on error `out`'s contents are unspecified.
pub fn whiten_window_into(
    head: &InfoHead,
    steps: &[crate::LinearStep],
    out: &mut Vec<WhitenedStep>,
) -> Result<()> {
    if steps.is_empty() {
        return Err(KalmanError::InvalidModel("empty window".into()));
    }
    if steps[0].evolution.is_some() {
        return Err(KalmanError::InvalidModel(
            "window step 0 must not have an evolution equation".into(),
        ));
    }
    if steps[0].state_dim != head.state_dim() {
        // lint: allow(alloc, "error path: allocates only on a malformed window")
        return Err(KalmanError::InvalidModel(format!(
            "window head has dimension {} but step 0 has dimension {}",
            head.state_dim(),
            steps[0].state_dim
        )));
    }
    out.clear();
    for (i, step) in steps.iter().enumerate() {
        if i > 0 && step.evolution.is_none() {
            // lint: allow(alloc, "error path: allocates only on a malformed window")
            return Err(KalmanError::InvalidModel(format!(
                "window step {i} is missing its evolution equation"
            )));
        }
        out.push(WhitenedStep::from_step(step, i)?); // lint: allow(alloc, "push into cleared output that retains capacity across windows; amortized, steady-state alloc-free")
    }
    if !head.is_empty() {
        let (hc, hd) = head.rows_ref();
        let first = &mut out[0];
        first.obs = Some(WhitenedObs::with_rows_above(
            hc.clone(), // lint: allow(alloc, "one head-row copy per window, bounded by the head dimension")
            hd.clone(), // lint: allow(alloc, "one head-row copy per window, bounded by the head dimension")
            first.obs.take(),
        ));
    }
    Ok(())
}

/// One ingestion event of a streaming smoother.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A new state arrives, evolving from the previous one.
    Evolve(crate::Evolution),
    /// The newest state is observed (several per state stack).
    Observe(Observation),
}

/// Serializes a batch model into the event stream that rebuilds it through
/// streaming ingestion (the test/benchmark bridge between the batch and
/// streaming worlds).  The initial state's dimension and prior travel
/// out-of-band: they parameterize the stream's construction.
pub fn events_of(model: &LinearModel) -> Vec<StreamEvent> {
    let mut events = Vec::new();
    for (i, step) in model.steps.iter().enumerate() {
        if i > 0 {
            if let Some(evo) = &step.evolution {
                events.push(StreamEvent::Evolve(evo.clone()));
            }
        }
        if let Some(obs) = &step.observation {
            events.push(StreamEvent::Observe(obs.clone()));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble_dense, CovarianceSpec, Evolution, LinearStep};
    use kalman_dense::matmul_tn;

    fn head_with(c_rows: &[&[f64]], d: &[f64]) -> InfoHead {
        InfoHead::from_rows(Matrix::from_rows(c_rows), Matrix::col_from_slice(d))
    }

    #[test]
    fn empty_head_has_no_rows() {
        let h = InfoHead::empty(3);
        assert!(h.is_empty());
        assert_eq!(h.state_dim(), 3);
        assert_eq!(h.rows(), 0);
    }

    #[test]
    fn prior_head_whitens_identity_covariance_trivially() {
        let prior = Prior {
            mean: vec![1.0, -2.0],
            cov: CovarianceSpec::Identity(2),
        };
        let h = InfoHead::from_prior(&prior).unwrap();
        assert_eq!(h.rows(), 2);
        let (c, d) = h.rows_ref();
        assert!(c.approx_eq(&Matrix::identity(2), 0.0));
        assert_eq!(d.col(0), &[1.0, -2.0]);
    }

    /// Absorbing rows must preserve the normal equations CᵀC and Cᵀd.
    #[test]
    fn absorb_preserves_normal_equations() {
        let mut h = head_with(&[&[2.0, 1.0], &[0.0, 3.0]], &[1.0, 2.0]);
        let extra_c = Matrix::from_rows(&[&[1.0, -1.0], &[4.0, 0.5], &[0.0, 2.0]]);
        let extra_d = Matrix::col_from_slice(&[0.5, -1.0, 3.0]);

        let full_c = Matrix::vstack(&[&h.c, &extra_c]);
        let full_d = Matrix::vstack(&[&h.d, &extra_d]);
        let gram = matmul_tn(&full_c, &full_c);
        let moment = matmul_tn(&full_c, &full_d);

        h.absorb(&extra_c, &extra_d);
        assert_eq!(h.rows(), 2, "compressed back to state_dim rows");
        assert!(matmul_tn(&h.c, &h.c).approx_eq(&gram, 1e-10));
        assert!(matmul_tn(&h.c, &h.d).approx_eq(&moment, 1e-10));
    }

    /// Advancing through an evolution must produce the exact marginal: solve
    /// the tiny joint least-squares problem densely and compare.
    #[test]
    fn advance_matches_dense_marginal() {
        // Head: u0 ≈ [1, 2] with a non-trivial C.
        let head = head_with(&[&[1.5, 0.3], &[0.0, 0.9]], &[1.0, 2.0]);
        // Evolution u1 = F u0 + c + noise(I), as whitened rows.
        let f = Matrix::from_rows(&[&[0.8, -0.2], &[0.1, 1.1]]);
        let evo = WhitenedEvo {
            b: f.clone(),
            d: Matrix::identity(2),
            rhs: Matrix::col_from_slice(&[0.3, -0.4]),
        };
        let next = head.advance(&evo);
        assert_eq!(next.state_dim(), 2);
        assert_eq!(next.rows(), 2);

        // Dense reference: minimize ‖[C 0; -B D][u0; u1] - [d; r]‖ over u0
        // for each u1 — the marginal normal matrix is the Schur complement.
        let mut joint = Matrix::zeros(4, 4);
        joint.set_block(0, 0, &head.c);
        joint.set_block(2, 0, &f.scaled(-1.0));
        joint.set_block(2, 2, &Matrix::identity(2));
        let rhs = Matrix::col_from_slice(&[1.0, 2.0, 0.3, -0.4]);
        let gram = matmul_tn(&joint, &joint);
        let moment = matmul_tn(&joint, &rhs);
        // Schur complement S = A11 - A10 A00⁻¹ A01 on the u1 block.
        let a00 = gram.sub_matrix(0, 0, 2, 2);
        let a01 = gram.sub_matrix(0, 2, 2, 2);
        let a10 = gram.sub_matrix(2, 0, 2, 2);
        let a11 = gram.sub_matrix(2, 2, 2, 2);
        let a00_inv = kalman_dense::Cholesky::new(&a00).unwrap().inverse();
        let s = &a11 - &kalman_dense::matmul(&a10, &kalman_dense::matmul(&a00_inv, &a01));
        let m0 = moment.sub_matrix(0, 0, 2, 1);
        let m1 = moment.sub_matrix(2, 0, 2, 1);
        let sm = &m1 - &kalman_dense::matmul(&a10, &kalman_dense::matmul(&a00_inv, &m0));

        let (nc, nd) = next.rows_ref();
        assert!(matmul_tn(nc, nc).approx_eq(&s, 1e-10), "marginal Gram");
        assert!(matmul_tn(nc, nd).approx_eq(&sm, 1e-10), "marginal moment");
    }

    /// Regression: an *empty* head advanced through a singular evolution
    /// must keep the evolution rows acting on `ker F` — they constrain the
    /// next state only.  (The pre-rank-revealing implementation returned
    /// the empty head whenever `rows <= n_cur`, silently dropping them.)
    #[test]
    fn advance_of_empty_head_through_singular_f_keeps_process_information() {
        let head = InfoHead::empty(2);
        // u1 = F u0 + [0, 5] + noise(I), F = [[1,0],[0,0]]: component 1 of
        // u1 is pure process mean, u1[1] ≈ 5 with unit precision.
        let evo = WhitenedEvo {
            b: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]),
            d: Matrix::identity(2),
            rhs: Matrix::col_from_slice(&[0.0, 5.0]),
        };
        let next = head.advance(&evo);
        assert_eq!(next.rows(), 1, "one surviving information row");
        let (nc, nd) = next.rows_ref();
        let gram = matmul_tn(nc, nc);
        let expect = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0]]);
        assert!(gram.approx_eq(&expect, 1e-12), "marginal Gram {gram:?}");
        let moment = matmul_tn(nc, nd);
        assert!((moment[(0, 0)]).abs() < 1e-12);
        assert!((moment[(1, 0)] - 5.0).abs() < 1e-12);
    }

    /// Regression: an underdetermined head stacked against a singular `F`
    /// (a rank-deficient `[C; -B]`) must keep `rows - rank` rows, not
    /// `rows - n` — here that is the difference between the exact marginal
    /// and losing one of two information rows.
    #[test]
    fn advance_rank_deficient_stack_matches_dense_marginal() {
        // Head knows only u0[0] ≈ 2; F's second row is zero.
        let head = head_with(&[&[1.0, 0.0]], &[2.0]);
        let evo = WhitenedEvo {
            b: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]),
            d: Matrix::identity(2),
            rhs: Matrix::col_from_slice(&[0.3, 5.0]),
        };
        let next = head.advance(&evo);
        assert_eq!(next.rows(), 2, "both next-state directions informed");
        let (nc, nd) = next.rows_ref();
        // By hand: u1[0] = u0[0] + w with u0[0] ≈ 2 (unit noise) gives
        // u1[0] ≈ 2.3 at precision 1/2; u1[1] ≈ 5 at precision 1.
        let gram = matmul_tn(nc, nc);
        let expect = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, 1.0]]);
        assert!(gram.approx_eq(&expect, 1e-12), "marginal Gram {gram:?}");
        let moment = matmul_tn(nc, nd);
        assert!((moment[(0, 0)] - 1.15).abs() < 1e-12);
        assert!((moment[(1, 0)] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn advance_of_uninformative_head_is_empty() {
        let head = InfoHead::empty(2);
        let evo = WhitenedEvo {
            b: Matrix::identity(2),
            d: Matrix::identity(2),
            rhs: Matrix::zeros(2, 1),
        };
        let next = head.advance(&evo);
        assert!(next.is_empty());
    }

    #[test]
    fn whiten_window_stacks_head_rows_on_first_step() {
        let head = head_with(&[&[1.0, 0.0], &[0.0, 1.0]], &[5.0, 6.0]);
        let steps = vec![
            LinearStep::initial(2).with_observation(Observation {
                g: Matrix::identity(2),
                o: vec![0.1, 0.2],
                noise: CovarianceSpec::Identity(2),
            }),
            LinearStep::evolving(Evolution::random_walk(2)),
        ];
        let w = whiten_window(&head, &steps).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].obs.as_ref().unwrap().c.rows(), 4);
        assert_eq!(w[0].obs.as_ref().unwrap().rhs[(0, 0)], 5.0);
        assert!(w[0].evo.is_none());
        assert!(w[1].evo.is_some());
    }

    #[test]
    fn whiten_window_rejects_structural_errors() {
        let head = InfoHead::empty(2);
        assert!(whiten_window(&head, &[]).is_err());
        let bad = vec![LinearStep::evolving(Evolution::random_walk(2))];
        assert!(whiten_window(&head, &bad).is_err());
        let wrong_dim = vec![LinearStep::initial(3)];
        assert!(whiten_window(&head, &wrong_dim).is_err());
        let gap = vec![LinearStep::initial(2), LinearStep::initial(2)];
        assert!(whiten_window(&head, &gap).is_err());
    }

    /// Bridging a full model through (head = prior) + whiten_window must
    /// reproduce the same normal equations as the batch assembly.
    #[test]
    fn window_of_whole_model_matches_batch_assembly() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let model = crate::generators::paper_benchmark(&mut rng, 2, 4, true);
        let sys = assemble_dense(&model).unwrap();

        let head = InfoHead::from_prior(model.prior.as_ref().unwrap()).unwrap();
        let steps = whiten_window(&head, &model.steps).unwrap();

        // Rebuild densely from the whitened blocks.
        let total: usize = model.total_state_dim();
        let mut col_off = vec![0usize];
        for s in &model.steps {
            col_off.push(col_off.last().unwrap() + s.state_dim);
        }
        let mut rows: Vec<(Matrix, Matrix)> = Vec::new();
        for (i, ws) in steps.iter().enumerate() {
            if let Some(evo) = &ws.evo {
                let mut block = Matrix::zeros(evo.b.rows(), total);
                block.set_block(0, col_off[i - 1], &evo.b.scaled(-1.0));
                block.set_block(0, col_off[i], &evo.d);
                rows.push((block, evo.rhs.clone()));
            }
            if let Some(obs) = &ws.obs {
                let mut block = Matrix::zeros(obs.c.rows(), total);
                block.set_block(0, col_off[i], &obs.c);
                rows.push((block, obs.rhs.clone()));
            }
        }
        let mats: Vec<&Matrix> = rows.iter().map(|(m, _)| m).collect();
        let rhss: Vec<&Matrix> = rows.iter().map(|(_, r)| r).collect();
        let a2 = Matrix::vstack(&mats);
        let b2 = Matrix::vstack(&rhss);
        assert!(matmul_tn(&a2, &a2).approx_eq(&matmul_tn(&sys.a, &sys.a), 1e-10));
        assert!(matmul_tn(&a2, &b2).approx_eq(&matmul_tn(&sys.a, &sys.b), 1e-10));
    }

    #[test]
    fn events_roundtrip_counts() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let model = crate::generators::sparse_observations(&mut rng, 2, 6, 2);
        let events = events_of(&model);
        let evolves = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Evolve(_)))
            .count();
        let observes = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Observe(_)))
            .count();
        assert_eq!(evolves, 6);
        assert_eq!(observes, 4); // steps 0, 2, 4, 6
    }
}

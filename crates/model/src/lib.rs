//! Linear dynamic-system models for Kalman smoothing.
//!
//! This crate defines the *problem* side of the reproduction: the evolution
//! and observation equations of §2.1 of the paper, covariance
//! specifications, synthetic problem generators matching the paper's
//! benchmarks (§5.2), and a dense reference solver used as a correctness
//! oracle by every algorithm crate.
//!
//! A smoothing problem over states `u_0 … u_k` consists of one
//! [`LinearStep`] per state:
//!
//! * step `i > 0` usually carries an evolution equation
//!   `H_i u_i = F_i u_{i-1} + c_i + ε_i` with `cov(ε_i) = K_i`,
//! * any step may carry an observation equation `o_i = G_i u_i + δ_i` with
//!   `cov(δ_i) = L_i`,
//! * optionally, a Gaussian prior on `u_0` (required by the conventional
//!   RTS and associative smoothers; the QR-based smoothers work without it).
//!
//! # Example
//!
//! ```
//! use kalman_model::{LinearModel, LinearStep, Evolution, Observation, CovarianceSpec};
//! use kalman_dense::Matrix;
//!
//! // A 1-D random walk observed directly, three states.
//! let mut model = LinearModel::new();
//! model.push_step(LinearStep::initial(1).with_observation(Observation {
//!     g: Matrix::identity(1),
//!     o: vec![0.9],
//!     noise: CovarianceSpec::Identity(1),
//! }));
//! for o in [2.1, 2.9] {
//!     model.push_step(
//!         LinearStep::evolving(Evolution::random_walk(1))
//!             .with_observation(Observation {
//!                 g: Matrix::identity(1),
//!                 o: vec![o],
//!                 noise: CovarianceSpec::Identity(1),
//!             }),
//!     );
//! }
//! assert_eq!(model.num_states(), 3);
//! model.validate().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod assemble;
mod covariance;
mod error;
mod estimate;
pub mod generators;
pub mod incremental;
mod model;
mod whiten;

pub use assemble::{assemble_dense, solve_dense, DenseSystem};
pub use covariance::CovarianceSpec;
pub use error::KalmanError;
pub use estimate::Smoothed;
pub use incremental::{events_of, whiten_window, whiten_window_into, InfoHead, StreamEvent};
pub use model::{Evolution, LinearModel, LinearStep, Observation, Prior};
pub use whiten::{whiten_model, WhitenedEvo, WhitenedObs, WhitenedStep};

/// Result type for smoother operations.
pub type Result<T> = std::result::Result<T, KalmanError>;

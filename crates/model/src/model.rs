use crate::{CovarianceSpec, KalmanError, Result};
use kalman_dense::Matrix;

/// An evolution equation `H_i u_i = F_i u_{i-1} + c_i + ε_i`, `cov(ε_i) = K_i`.
#[derive(Debug, Clone)]
pub struct Evolution {
    /// Transition matrix `F_i` (`ℓ_i × n_{i-1}`).
    pub f: Matrix,
    /// Left-hand matrix `H_i` (`ℓ_i × n_i`); `None` means the identity
    /// (requiring `ℓ_i = n_i`).  A rectangular `H_i` models state vectors
    /// whose dimension grows or shrinks (§2.1).
    pub h: Option<Matrix>,
    /// Known exogenous input `c_i` (length `ℓ_i`).
    pub c: Vec<f64>,
    /// Evolution noise covariance `K_i` (`ℓ_i × ℓ_i`).
    pub noise: CovarianceSpec,
}

impl Evolution {
    /// A random-walk evolution: `u_i = u_{i-1} + ε_i` with `K = I`.
    pub fn random_walk(n: usize) -> Self {
        Evolution {
            f: Matrix::identity(n),
            h: None,
            c: vec![0.0; n],
            noise: CovarianceSpec::Identity(n),
        }
    }

    /// Row dimension `ℓ_i` of the evolution equation.
    pub fn row_dim(&self) -> usize {
        self.f.rows()
    }
}

/// An observation equation `o_i = G_i u_i + δ_i`, `cov(δ_i) = L_i`.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Observation matrix `G_i` (`m_i × n_i`).
    pub g: Matrix,
    /// Observed values `o_i` (length `m_i`).
    pub o: Vec<f64>,
    /// Observation noise covariance `L_i` (`m_i × m_i`).
    pub noise: CovarianceSpec,
}

impl Observation {
    /// Number of scalar observations `m_i`.
    pub fn dim(&self) -> usize {
        self.g.rows()
    }

    /// Stacks two independent observations of the same state into one
    /// (their noises combine block-diagonally).  The streaming ingestion
    /// path uses this when several sensors report the same step.
    ///
    /// # Panics
    ///
    /// Panics if the two observations disagree on the state dimension.
    pub fn stacked(a: &Observation, b: &Observation) -> Observation {
        assert_eq!(
            a.g.cols(),
            b.g.cols(),
            "stacked observations must share the state dimension"
        );
        let mut o = a.o.clone();
        o.extend_from_slice(&b.o);
        Observation {
            g: Matrix::vstack(&[&a.g, &b.g]),
            o,
            noise: CovarianceSpec::block_diag(&a.noise, &b.noise),
        }
    }
}

/// A Gaussian prior `u_0 ~ N(mean, cov)` on the initial state.
///
/// The QR-based smoothers treat the prior as one more observation row-block
/// on state 0; the conventional RTS and associative smoothers require it.
#[derive(Debug, Clone)]
pub struct Prior {
    /// Prior mean of `u_0`.
    pub mean: Vec<f64>,
    /// Prior covariance of `u_0`.
    pub cov: CovarianceSpec,
}

/// One step of the dynamic system: the state `u_i`, its (optional) evolution
/// from `u_{i-1}`, and its (optional) observation.
#[derive(Debug, Clone)]
pub struct LinearStep {
    /// Dimension `n_i` of the state vector `u_i`.
    pub state_dim: usize,
    /// Evolution from the previous state; `None` for the initial step.
    pub evolution: Option<Evolution>,
    /// Observation of this state; `None` when the state was not observed
    /// (`m_i = 0`).
    pub observation: Option<Observation>,
}

impl LinearStep {
    /// The initial step (no evolution) with state dimension `n`.
    pub fn initial(n: usize) -> Self {
        LinearStep {
            state_dim: n,
            evolution: None,
            observation: None,
        }
    }

    /// A step that evolves from its predecessor.  The state dimension is
    /// inferred from `H` (or from `F` when `H` is the implicit identity).
    pub fn evolving(evolution: Evolution) -> Self {
        let n = evolution
            .h
            .as_ref()
            .map(|h| h.cols())
            .unwrap_or_else(|| evolution.f.rows());
        LinearStep {
            state_dim: n,
            evolution: Some(evolution),
            observation: None,
        }
    }

    /// Attaches an observation to this step.
    pub fn with_observation(mut self, observation: Observation) -> Self {
        self.observation = Some(observation);
        self
    }

    /// Number of observation rows `m_i` (0 when unobserved).
    pub fn obs_dim(&self) -> usize {
        self.observation.as_ref().map(|o| o.dim()).unwrap_or(0)
    }
}

/// A complete linear smoothing problem over states `u_0 … u_k`.
#[derive(Debug, Clone, Default)]
pub struct LinearModel {
    /// The per-state steps; `steps[0]` must have no evolution.
    pub steps: Vec<LinearStep>,
    /// Optional Gaussian prior on `u_0`.
    pub prior: Option<Prior>,
}

impl LinearModel {
    /// An empty model.
    pub fn new() -> Self {
        LinearModel {
            steps: Vec::new(),
            prior: None,
        }
    }

    /// Appends a step.
    pub fn push_step(&mut self, step: LinearStep) {
        self.steps.push(step);
    }

    /// Sets the prior on the initial state.
    pub fn set_prior(&mut self, mean: Vec<f64>, cov: CovarianceSpec) {
        self.prior = Some(Prior { mean, cov });
    }

    /// Number of states `k + 1`.
    pub fn num_states(&self) -> usize {
        self.steps.len()
    }

    /// State dimension `n_i`.
    pub fn state_dim(&self, i: usize) -> usize {
        self.steps[i].state_dim
    }

    /// Sum of all state dimensions (the column dimension of `U·A`).
    pub fn total_state_dim(&self) -> usize {
        self.steps.iter().map(|s| s.state_dim).sum()
    }

    /// Total number of equation rows, including prior rows (the row
    /// dimension of `U·A`).
    pub fn total_row_dim(&self) -> usize {
        let prior_rows = self.prior.as_ref().map(|p| p.mean.len()).unwrap_or(0);
        prior_rows
            + self
                .steps
                .iter()
                .map(|s| s.obs_dim() + s.evolution.as_ref().map(|e| e.row_dim()).unwrap_or(0))
                .sum::<usize>()
    }

    /// `true` when every state has the same dimension, every `H_i` is the
    /// implicit identity, and every `F_i` is square — the structure the
    /// conventional RTS and associative smoothers require.
    pub fn is_uniform(&self) -> bool {
        if self.steps.is_empty() {
            return false;
        }
        let n = self.steps[0].state_dim;
        self.steps.iter().all(|s| {
            s.state_dim == n
                && s.evolution
                    .as_ref()
                    .map(|e| e.h.is_none() && e.f.rows() == n && e.f.cols() == n)
                    .unwrap_or(true)
        })
    }

    /// Structural validation: dimension consistency of every block, SPD
    /// covariances (cheap checks only — dense SPD-ness is verified on use),
    /// and global solvability necessary conditions.
    ///
    /// # Errors
    ///
    /// [`KalmanError::InvalidModel`] describing the first defect found, or
    /// [`KalmanError::NotPositiveDefinite`].
    pub fn validate(&self) -> Result<()> {
        if self.steps.is_empty() {
            return Err(KalmanError::InvalidModel("model has no steps".into()));
        }
        if self.steps[0].evolution.is_some() {
            return Err(KalmanError::InvalidModel(
                "step 0 must not have an evolution equation".into(),
            ));
        }
        for (i, step) in self.steps.iter().enumerate() {
            if step.state_dim == 0 {
                return Err(KalmanError::InvalidModel(format!(
                    "step {i} has zero state dimension"
                )));
            }
            if i > 0 {
                let Some(evo) = &step.evolution else {
                    return Err(KalmanError::InvalidModel(format!(
                        "step {i} is missing its evolution equation"
                    )));
                };
                let prev_n = self.steps[i - 1].state_dim;
                if evo.f.cols() != prev_n {
                    return Err(KalmanError::InvalidModel(format!(
                        "step {i}: F has {} columns but previous state dimension is {prev_n}",
                        evo.f.cols()
                    )));
                }
                let l = evo.row_dim();
                match &evo.h {
                    Some(h) => {
                        if h.rows() != l {
                            return Err(KalmanError::InvalidModel(format!(
                                "step {i}: H has {} rows but F has {l}",
                                h.rows()
                            )));
                        }
                        if h.cols() != step.state_dim {
                            return Err(KalmanError::InvalidModel(format!(
                                "step {i}: H has {} columns but state dimension is {}",
                                h.cols(),
                                step.state_dim
                            )));
                        }
                    }
                    None => {
                        if l != step.state_dim {
                            return Err(KalmanError::InvalidModel(format!(
                                "step {i}: implicit identity H requires F rows ({l}) == state dim ({})",
                                step.state_dim
                            )));
                        }
                    }
                }
                if evo.c.len() != l {
                    return Err(KalmanError::InvalidModel(format!(
                        "step {i}: c has length {} but F has {l} rows",
                        evo.c.len()
                    )));
                }
                if evo.noise.dim() != l {
                    return Err(KalmanError::InvalidModel(format!(
                        "step {i}: K has dimension {} but F has {l} rows",
                        evo.noise.dim()
                    )));
                }
                evo.noise.validate(i)?;
            }
            if let Some(obs) = &step.observation {
                if obs.g.cols() != step.state_dim {
                    return Err(KalmanError::InvalidModel(format!(
                        "step {i}: G has {} columns but state dimension is {}",
                        obs.g.cols(),
                        step.state_dim
                    )));
                }
                if obs.o.len() != obs.dim() {
                    return Err(KalmanError::InvalidModel(format!(
                        "step {i}: o has length {} but G has {} rows",
                        obs.o.len(),
                        obs.dim()
                    )));
                }
                if obs.noise.dim() != obs.dim() {
                    return Err(KalmanError::InvalidModel(format!(
                        "step {i}: L has dimension {} but G has {} rows",
                        obs.noise.dim(),
                        obs.dim()
                    )));
                }
                obs.noise.validate(i)?;
            }
        }
        if let Some(prior) = &self.prior {
            if prior.mean.len() != self.steps[0].state_dim {
                return Err(KalmanError::InvalidModel(format!(
                    "prior mean has length {} but state 0 has dimension {}",
                    prior.mean.len(),
                    self.steps[0].state_dim
                )));
            }
            if prior.cov.dim() != prior.mean.len() {
                return Err(KalmanError::InvalidModel(
                    "prior covariance dimension does not match prior mean".into(),
                ));
            }
            prior.cov.validate(0)?;
        }
        // Necessary (not sufficient) condition for full column rank.
        if self.total_row_dim() < self.total_state_dim() {
            return Err(KalmanError::InvalidModel(format!(
                "underdetermined problem: {} equation rows for {} unknowns",
                self.total_row_dim(),
                self.total_state_dim()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed_step(n: usize, o: f64) -> LinearStep {
        LinearStep::evolving(Evolution::random_walk(n)).with_observation(Observation {
            g: Matrix::identity(n),
            o: vec![o; n],
            noise: CovarianceSpec::Identity(n),
        })
    }

    fn simple_model(k: usize) -> LinearModel {
        let mut m = LinearModel::new();
        m.push_step(LinearStep::initial(2).with_observation(Observation {
            g: Matrix::identity(2),
            o: vec![0.0; 2],
            noise: CovarianceSpec::Identity(2),
        }));
        for i in 0..k {
            m.push_step(observed_step(2, i as f64));
        }
        m
    }

    #[test]
    fn valid_model_passes() {
        let m = simple_model(4);
        assert!(m.validate().is_ok());
        assert_eq!(m.num_states(), 5);
        assert_eq!(m.total_state_dim(), 10);
        assert_eq!(m.total_row_dim(), 5 * 2 + 4 * 2);
        assert!(m.is_uniform());
    }

    #[test]
    fn empty_model_fails() {
        assert!(matches!(
            LinearModel::new().validate(),
            Err(KalmanError::InvalidModel(_))
        ));
    }

    #[test]
    fn step0_with_evolution_fails() {
        let mut m = LinearModel::new();
        m.push_step(observed_step(2, 0.0));
        assert!(m.validate().is_err());
    }

    #[test]
    fn missing_evolution_fails() {
        let mut m = simple_model(2);
        m.steps[1].evolution = None;
        let err = m.validate().unwrap_err();
        assert!(err.to_string().contains("missing its evolution"));
    }

    #[test]
    fn f_dimension_mismatch_fails() {
        let mut m = simple_model(2);
        m.steps[2].evolution.as_mut().unwrap().f = Matrix::identity(3);
        assert!(m.validate().is_err());
    }

    #[test]
    fn c_length_mismatch_fails() {
        let mut m = simple_model(2);
        m.steps[1].evolution.as_mut().unwrap().c = vec![0.0; 5];
        assert!(m.validate().is_err());
    }

    #[test]
    fn observation_mismatch_fails() {
        let mut m = simple_model(2);
        m.steps[1].observation.as_mut().unwrap().o = vec![0.0; 7];
        assert!(m.validate().is_err());
    }

    #[test]
    fn underdetermined_fails() {
        // Two 2-dim states, only an evolution linking them: 2 rows, 4 unknowns.
        let mut m = LinearModel::new();
        m.push_step(LinearStep::initial(2));
        m.push_step(LinearStep::evolving(Evolution::random_walk(2)));
        let err = m.validate().unwrap_err();
        assert!(err.to_string().contains("underdetermined"));
    }

    #[test]
    fn rectangular_h_is_accepted() {
        // State dimension grows from 2 to 3 via a rectangular H.
        let mut m = LinearModel::new();
        m.push_step(LinearStep::initial(2).with_observation(Observation {
            g: Matrix::identity(2),
            o: vec![0.0; 2],
            noise: CovarianceSpec::Identity(2),
        }));
        let evo = Evolution {
            f: Matrix::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 }),
            h: Some(Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]])),
            c: vec![0.0; 2],
            noise: CovarianceSpec::Identity(2),
        };
        m.push_step(LinearStep::evolving(evo).with_observation(Observation {
            g: Matrix::identity(3),
            o: vec![0.0; 3],
            noise: CovarianceSpec::Identity(3),
        }));
        assert!(m.validate().is_ok());
        assert_eq!(m.state_dim(1), 3);
        assert!(!m.is_uniform());
    }

    #[test]
    fn prior_dimension_checked() {
        let mut m = simple_model(1);
        m.set_prior(vec![0.0; 3], CovarianceSpec::Identity(3));
        assert!(m.validate().is_err());
        m.set_prior(vec![0.0; 2], CovarianceSpec::Identity(2));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn bad_covariance_rejected() {
        let mut m = simple_model(1);
        m.steps[1].observation.as_mut().unwrap().noise = CovarianceSpec::Diagonal(vec![1.0, -1.0]);
        assert!(matches!(
            m.validate(),
            Err(KalmanError::NotPositiveDefinite { step: 1 })
        ));
    }
}

//! Whitened per-step blocks: the inputs to the QR-based smoothers.
//!
//! The least-squares matrix `U·A` of §3 of the paper is built from
//! `C_i = W_i G_i`, `B_i = V_i F_i`, and `D_i = V_i H_i`, where
//! `V_iᵀV_i = K_i⁻¹` and `W_iᵀW_i = L_i⁻¹`.  A prior on `u_0` appears as an
//! extra observation row block on state 0.  Each step whitens independently,
//! so the conversion parallelizes trivially (the paper's §3.2 notes the
//! array of steps is built in parallel); callers that want that use
//! [`WhitenedStep::from_model_step`] per index from a parallel loop.

use crate::{LinearModel, Result};
use kalman_dense::Matrix;

/// Whitened observation rows for one state: `C_i` and its right-hand side.
#[derive(Debug, Clone)]
pub struct WhitenedObs {
    /// `C_i = W_i G_i` (`m_i × n_i`); includes prior rows for state 0.
    pub c: Matrix,
    /// Whitened observed values (length `m_i`) as a column.
    pub rhs: Matrix,
}

/// Whitened evolution rows coupling states `i−1` and `i`.
#[derive(Debug, Clone)]
pub struct WhitenedEvo {
    /// `B_i = V_i F_i` (`ℓ_i × n_{i-1}`); enters the matrix negated.
    pub b: Matrix,
    /// `D_i = V_i H_i` (`ℓ_i × n_i`).
    pub d: Matrix,
    /// Whitened input `V_i c_i` (length `ℓ_i`) as a column.
    pub rhs: Matrix,
}

/// All whitened blocks belonging to one step.
#[derive(Debug, Clone)]
pub struct WhitenedStep {
    /// State dimension `n_i`.
    pub state_dim: usize,
    /// Observation rows (absent when `m_i = 0` and, for state 0, no prior).
    pub obs: Option<WhitenedObs>,
    /// Evolution rows (absent for state 0).
    pub evo: Option<WhitenedEvo>,
}

impl WhitenedObs {
    /// Stacks already-whitened rows `(c, rhs)` above `below`'s rows — how
    /// prior rows (batch path) and condensed head rows (streaming path)
    /// join a state's observation block.
    pub(crate) fn with_rows_above(c: Matrix, rhs: Matrix, below: Option<WhitenedObs>) -> Self {
        match below {
            None => WhitenedObs { c, rhs },
            Some(obs) => WhitenedObs {
                c: Matrix::vstack(&[&c, &obs.c]),
                rhs: Matrix::vstack(&[&rhs, &obs.rhs]),
            },
        }
    }
}

impl WhitenedStep {
    /// Whitens step `i` of `model`.  For `i == 0` the prior (if any) is
    /// stacked on top of the observation rows.
    ///
    /// # Errors
    ///
    /// Covariance whitening failures ([`crate::KalmanError::NotPositiveDefinite`]).
    pub fn from_model_step(model: &LinearModel, i: usize) -> Result<WhitenedStep> {
        let mut whitened = WhitenedStep::from_step(&model.steps[i], i)?;
        if i == 0 {
            if let Some(prior) = &model.prior {
                let (c, d) = crate::incremental::InfoHead::from_prior(prior)?.into_rows();
                whitened.obs = Some(WhitenedObs::with_rows_above(c, d, whitened.obs.take()));
            }
        }
        Ok(whitened)
    }

    /// Whitens a single free-standing step (no prior handling) — the
    /// building block for both [`WhitenedStep::from_model_step`] and the
    /// streaming window assembly ([`crate::incremental::whiten_window`]),
    /// which injects its condensed head instead of a prior.  `index` is
    /// used only for error reporting.
    ///
    /// # Errors
    ///
    /// Covariance whitening failures ([`crate::KalmanError::NotPositiveDefinite`]).
    pub fn from_step(step: &crate::LinearStep, index: usize) -> Result<WhitenedStep> {
        let obs = match &step.observation {
            None => None,
            Some(obs) => {
                let c = obs.noise.whiten(&obs.g, index)?;
                let rhs = obs.noise.whiten_col(&obs.o, index)?;
                Some(WhitenedObs { c, rhs })
            }
        };
        let evo = match &step.evolution {
            None => None,
            Some(evo) => {
                let b = evo.noise.whiten(&evo.f, index)?;
                let d = match &evo.h {
                    Some(h) => evo.noise.whiten(h, index)?,
                    None => evo.noise.whiten(&Matrix::identity(step.state_dim), index)?,
                };
                let rhs = evo.noise.whiten_col(&evo.c, index)?;
                Some(WhitenedEvo { b, d, rhs })
            }
        };
        Ok(WhitenedStep {
            state_dim: step.state_dim,
            obs,
            evo,
        })
    }
}

/// Whitens an entire model sequentially.
///
/// # Errors
///
/// Model validation errors or covariance whitening failures.
pub fn whiten_model(model: &LinearModel) -> Result<Vec<WhitenedStep>> {
    model.validate()?;
    (0..model.num_states())
        .map(|i| WhitenedStep::from_model_step(model, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble_dense, generators};
    use kalman_dense::matmul_tn;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The whitened blocks, reassembled densely, must reproduce `assemble_dense`
    /// up to row order — we verify via the Gram matrix (UA)ᵀ(UA) and (UA)ᵀUb,
    /// which are row-order invariant.
    #[test]
    fn whitened_blocks_match_dense_assembly() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let model = generators::paper_benchmark(&mut rng, 3, 4, true);
        let sys = assemble_dense(&model).unwrap();
        let steps = whiten_model(&model).unwrap();

        // Rebuild a dense matrix from the whitened blocks.
        let total_cols = model.total_state_dim();
        let mut col_off = vec![0usize];
        for s in &model.steps {
            col_off.push(col_off.last().unwrap() + s.state_dim);
        }
        let mut rows: Vec<(Matrix, Matrix)> = Vec::new(); // (dense row block, rhs)
        for (i, ws) in steps.iter().enumerate() {
            if let Some(evo) = &ws.evo {
                let mut block = Matrix::zeros(evo.b.rows(), total_cols);
                block.set_block(0, col_off[i - 1], &evo.b.scaled(-1.0));
                block.set_block(0, col_off[i], &evo.d);
                rows.push((block, evo.rhs.clone()));
            }
            if let Some(obs) = &ws.obs {
                let mut block = Matrix::zeros(obs.c.rows(), total_cols);
                block.set_block(0, col_off[i], &obs.c);
                rows.push((block, obs.rhs.clone()));
            }
        }
        let mats: Vec<&Matrix> = rows.iter().map(|(m, _)| m).collect();
        let rhss: Vec<&Matrix> = rows.iter().map(|(_, r)| r).collect();
        let a2 = Matrix::vstack(&mats);
        let b2 = Matrix::vstack(&rhss);

        let gram1 = matmul_tn(&sys.a, &sys.a);
        let gram2 = matmul_tn(&a2, &a2);
        assert!(gram1.approx_eq(&gram2, 1e-10));
        let atb1 = matmul_tn(&sys.a, &sys.b);
        let atb2 = matmul_tn(&a2, &b2);
        assert!(atb1.approx_eq(&atb2, 1e-10));
    }

    #[test]
    fn prior_rows_are_stacked_into_state0_obs() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = generators::paper_benchmark(&mut rng, 2, 2, true);
        let ws = WhitenedStep::from_model_step(&model, 0).unwrap();
        // n=2 prior rows + 2 observation rows.
        assert_eq!(ws.obs.as_ref().unwrap().c.rows(), 4);
        assert!(ws.evo.is_none());
    }

    #[test]
    fn unobserved_step_has_no_obs_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = generators::sparse_observations(&mut rng, 2, 6, 3);
        let steps = whiten_model(&model).unwrap();
        assert!(steps[1].obs.is_none());
        assert!(steps[3].obs.is_some());
        assert!(steps[1].evo.is_some());
    }
}

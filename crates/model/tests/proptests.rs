//! Property tests for the model layer: whitening identities and oracle
//! consistency on random covariance specifications.

use kalman_dense::{matmul, matmul_tn, random, Cholesky, Matrix};
use kalman_model::{solve_dense, CovarianceSpec, Evolution, LinearModel, LinearStep, Observation};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cov_strategy(n: usize) -> impl Strategy<Value = CovarianceSpec> {
    prop_oneof![
        Just(CovarianceSpec::Identity(n)),
        (0.1f64..10.0).prop_map(move |s| CovarianceSpec::ScaledIdentity(n, s)),
        proptest::collection::vec(0.1f64..10.0, n).prop_map(CovarianceSpec::Diagonal),
        (0u64..10_000).prop_map(move |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            CovarianceSpec::Dense(random::spd(&mut rng, n))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whitening identity: (W·A)ᵀ(W·A) == Aᵀ C⁻¹ A for every spec variant.
    #[test]
    fn whitening_gram_identity(spec in cov_strategy(4), seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random::gaussian(&mut rng, 4, 3);
        let wa = spec.whiten(&a, 0).unwrap();
        let cinv = Cholesky::new(&spec.to_dense()).unwrap().inverse();
        let expect = matmul_tn(&a, &matmul(&cinv, &a));
        let got = matmul_tn(&wa, &wa);
        prop_assert!(got.approx_eq(&expect, 1e-7 * (1.0 + expect.max_abs())));
    }

    /// The weighted least-squares solution is invariant to *rescaling* all
    /// covariances by the same factor (only relative weights matter).
    #[test]
    fn solution_invariant_to_global_covariance_scale(
        seed in 0u64..10_000,
        scale in 0.1f64..10.0,
        k in 1usize..12,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base = kalman_model::generators::paper_benchmark(&mut rng, 2, k, false);
        let mut scaled = base.clone();
        for step in scaled.steps.iter_mut() {
            if let Some(evo) = &mut step.evolution {
                evo.noise = CovarianceSpec::ScaledIdentity(2, scale);
            }
            if let Some(obs) = &mut step.observation {
                obs.noise = CovarianceSpec::ScaledIdentity(2, scale);
            }
        }
        let a = solve_dense(&base).unwrap();
        let b = solve_dense(&scaled).unwrap();
        prop_assert!(a.max_mean_diff(&b) < 1e-7, "diff {}", a.max_mean_diff(&b));
        // Covariances scale linearly with the global factor.
        for (ca, cb) in a.covariances.as_ref().unwrap().iter()
            .zip(b.covariances.as_ref().unwrap())
        {
            prop_assert!(ca.scaled(scale).approx_eq(cb, 1e-6 * (1.0 + cb.max_abs())));
        }
    }

    /// Tightening one observation's noise moves the estimate toward that
    /// observation (monotonicity of weighted least squares).
    #[test]
    fn tighter_observation_pulls_estimate(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let o_target = random::gaussian_vec(&mut rng, 1)[0] + 5.0;
        let build = |noise: f64| {
            let mut m = LinearModel::new();
            m.push_step(LinearStep::initial(1).with_observation(Observation {
                g: Matrix::identity(1),
                o: vec![0.0],
                noise: CovarianceSpec::Identity(1),
            }));
            m.push_step(
                LinearStep::evolving(Evolution::random_walk(1)).with_observation(Observation {
                    g: Matrix::identity(1),
                    o: vec![o_target],
                    noise: CovarianceSpec::ScaledIdentity(1, noise),
                }),
            );
            m
        };
        let loose = solve_dense(&build(10.0)).unwrap();
        let tight = solve_dense(&build(0.01)).unwrap();
        prop_assert!(
            (tight.mean(1)[0] - o_target).abs() < (loose.mean(1)[0] - o_target).abs()
        );
    }

    /// Validation accepts exactly the models the solver can handle: random
    /// dimension corruption must be caught by validate(), never panic.
    #[test]
    fn corrupted_models_fail_validation_not_panic(
        seed in 0u64..10_000,
        which in 0usize..4,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut model = kalman_model::generators::paper_benchmark(&mut rng, 2, 4, false);
        match which {
            0 => model.steps[2].evolution.as_mut().unwrap().f = Matrix::zeros(3, 3),
            1 => model.steps[1].observation.as_mut().unwrap().o = vec![0.0; 7],
            2 => model.steps[3].evolution.as_mut().unwrap().c = vec![0.0; 9],
            _ => {
                model.steps[1].observation.as_mut().unwrap().noise =
                    CovarianceSpec::Diagonal(vec![1.0])
            }
        }
        prop_assert!(model.validate().is_err());
        prop_assert!(solve_dense(&model).is_err());
    }
}

//! The Gauss–Newton outer loop with backtracking line search.

use crate::nl_model::NonlinearModel;
use kalman_model::{
    Evolution, KalmanError, LinearModel, LinearStep, Observation, Result, Smoothed,
};
use kalman_odd_even::{odd_even_smooth, OddEvenOptions};
use kalman_par::ExecPolicy;

/// Options for [`gauss_newton_smooth`].
#[derive(Debug, Clone, Copy)]
pub struct GaussNewtonOptions {
    /// Maximum Gauss–Newton iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the max-norm of the increment.
    pub tolerance: f64,
    /// Execution policy for the inner linear solves.
    pub policy: ExecPolicy,
    /// Maximum step-halvings in the backtracking line search.
    pub max_backtracks: usize,
    /// Compute state covariances at the converged trajectory (one extra
    /// linear solve with the full — not NC — smoother).
    pub covariances: bool,
}

impl Default for GaussNewtonOptions {
    fn default() -> Self {
        GaussNewtonOptions {
            max_iterations: 50,
            tolerance: 1e-9,
            policy: ExecPolicy::par(),
            max_backtracks: 20,
            covariances: true,
        }
    }
}

/// The result of an iterated nonlinear smoothing run.
#[derive(Debug, Clone)]
pub struct GaussNewtonResult {
    /// The smoothed trajectory (means) and, optionally, covariances of the
    /// final linearization.
    pub smoothed: Smoothed,
    /// Weighted squared-residual cost at the solution.
    pub cost: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the increment dropped below the tolerance.
    pub converged: bool,
}

/// The weighted nonlinear least-squares cost `‖U(A(u) − b)‖²` of (6) in the
/// paper, evaluated at trajectory `u`.
fn cost(model: &NonlinearModel, traj: &[Vec<f64>]) -> Result<f64> {
    let mut total = 0.0;
    if let Some(prior) = &model.prior {
        let resid: Vec<f64> = traj[0]
            .iter()
            .zip(&prior.mean)
            .map(|(u, m)| u - m)
            .collect();
        let w = prior.cov.whiten_vec(&resid, 0)?;
        total += w.iter().map(|x| x * x).sum::<f64>();
    }
    for (i, step) in model.steps.iter().enumerate() {
        if let Some(evo) = &step.evolution {
            let (fv, _) = (evo.f)(&traj[i - 1]);
            let resid: Vec<f64> = traj[i].iter().zip(&fv).map(|(u, f)| u - f).collect();
            let w = evo.noise.whiten_vec(&resid, i)?;
            total += w.iter().map(|x| x * x).sum::<f64>();
        }
        if let Some(obs) = &step.observation {
            let (gv, _) = (obs.g)(&traj[i]);
            let resid: Vec<f64> = obs.o.iter().zip(&gv).map(|(o, g)| o - g).collect();
            let w = obs.noise.whiten_vec(&resid, i)?;
            total += w.iter().map(|x| x * x).sum::<f64>();
        }
    }
    Ok(total)
}

/// Builds the linearized model over trajectory increments `δ` at `traj`.
///
/// Evolution: `δ_i − J_F δ_{i-1} ≈ F(u_{i-1}) − u_i`; observation:
/// `J_G δ_i ≈ o − G(u_i)`; prior: `δ_0 ~ N(mean − u_0, P_0)`.
fn linearize(model: &NonlinearModel, traj: &[Vec<f64>]) -> LinearModel {
    let mut lin = LinearModel::new();
    for (i, step) in model.steps.iter().enumerate() {
        let mut lstep = match &step.evolution {
            None => LinearStep::initial(step.state_dim),
            Some(evo) => {
                let (fv, jf) = (evo.f)(&traj[i - 1]);
                let c: Vec<f64> = fv.iter().zip(&traj[i]).map(|(f, u)| f - u).collect();
                LinearStep::evolving(Evolution {
                    f: jf,
                    h: None,
                    c,
                    noise: evo.noise.clone(),
                })
            }
        };
        if let Some(obs) = &step.observation {
            let (gv, jg) = (obs.g)(&traj[i]);
            let o: Vec<f64> = obs.o.iter().zip(&gv).map(|(o, g)| o - g).collect();
            lstep = lstep.with_observation(Observation {
                g: jg,
                o,
                noise: obs.noise.clone(),
            });
        }
        lin.push_step(lstep);
    }
    if let Some(prior) = &model.prior {
        let mean: Vec<f64> = prior
            .mean
            .iter()
            .zip(&traj[0])
            .map(|(m, u)| m - u)
            .collect();
        lin.set_prior(mean, prior.cov.clone());
    }
    lin
}

/// Iterated (Gauss–Newton) nonlinear Kalman smoothing.
///
/// Each iteration linearizes around the current trajectory and solves the
/// linear problem with the **NC** odd-even smoother (no covariances — the
/// optimization the paper's §5.4 NC variants exist for); a backtracking line
/// search guarantees monotone cost decrease.  At convergence, one full solve
/// recovers the covariances of the final linearization.
///
/// `initial` is the initial trajectory guess (e.g. from an extended Kalman
/// filter; supplying it is the caller's job, as in the paper).
///
/// # Errors
///
/// Model validation and linear-solver errors propagate; see
/// [`kalman_model::KalmanError`].
pub fn gauss_newton_smooth(
    model: &NonlinearModel,
    initial: &[Vec<f64>],
    options: GaussNewtonOptions,
) -> Result<GaussNewtonResult> {
    model.validate()?;
    if initial.len() != model.num_states() {
        return Err(KalmanError::InvalidModel(format!(
            "initial trajectory has {} states but the model has {}",
            initial.len(),
            model.num_states()
        )));
    }
    let mut traj: Vec<Vec<f64>> = initial.to_vec();
    let mut current_cost = cost(model, &traj)?;
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..options.max_iterations {
        iterations += 1;
        let lin = linearize(model, &traj);
        let delta = odd_even_smooth(&lin, OddEvenOptions::nc(options.policy))?;

        let step_norm = delta
            .means
            .iter()
            .flat_map(|d| d.iter())
            .fold(0.0_f64, |m, x| m.max(x.abs()));

        // Backtracking line search on the true nonlinear cost.
        let mut alpha = 1.0;
        let mut accepted = false;
        for _ in 0..=options.max_backtracks {
            let candidate: Vec<Vec<f64>> = traj
                .iter()
                .zip(&delta.means)
                .map(|(u, d)| u.iter().zip(d).map(|(ui, di)| ui + alpha * di).collect())
                .collect();
            let c = cost(model, &candidate)?;
            if c <= current_cost + 1e-15 {
                traj = candidate;
                current_cost = c;
                accepted = true;
                break;
            }
            alpha *= 0.5;
        }
        if !accepted {
            // The cost cannot be reduced along the Gauss–Newton direction
            // even with tiny steps: numerically stationary.
            converged = true;
            break;
        }
        if step_norm < options.tolerance {
            converged = true;
            break;
        }
    }

    // Covariances of the final linearization (the full smoother, run once).
    let smoothed = if options.covariances {
        let lin = linearize(model, &traj);
        let final_solve = odd_even_smooth(&lin, OddEvenOptions::with_policy(options.policy))?;
        Smoothed {
            means: traj,
            covariances: final_solve.covariances,
        }
    } else {
        Smoothed {
            means: traj,
            covariances: None,
        }
    };
    Ok(GaussNewtonResult {
        smoothed,
        cost: current_cost,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nl_model::{NonlinearEvolution, NonlinearObservation, NonlinearStep};
    use kalman_dense::Matrix;
    use kalman_model::CovarianceSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A linear model expressed through the nonlinear interface must
    /// converge in one iteration to the linear smoother's answer.
    #[test]
    fn linear_problem_converges_in_one_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let linear = kalman_model::generators::paper_benchmark(&mut rng, 2, 10, true);
        // Wrap as "nonlinear".
        let mut nl = NonlinearModel::new();
        for (i, step) in linear.steps.iter().enumerate() {
            let mut s = if i == 0 {
                NonlinearStep::initial(2)
            } else {
                let evo = step.evolution.as_ref().unwrap();
                let f = evo.f.clone();
                NonlinearStep::evolving(NonlinearEvolution {
                    f: Box::new(move |u| (f.mul_vec(u), f.clone())),
                    out_dim: 2,
                    noise: evo.noise.clone(),
                })
            };
            if let Some(obs) = &step.observation {
                let g = obs.g.clone();
                s = s.with_observation(NonlinearObservation {
                    g: Box::new(move |u| (g.mul_vec(u), g.clone())),
                    o: obs.o.clone(),
                    noise: obs.noise.clone(),
                });
            }
            nl.push_step(s);
        }
        nl.prior = linear.prior.clone();

        let init = vec![vec![0.0; 2]; 11];
        let result = gauss_newton_smooth(&nl, &init, GaussNewtonOptions::default()).unwrap();
        assert!(result.converged);
        assert!(
            result.iterations <= 3,
            "took {} iterations",
            result.iterations
        );

        let reference = kalman_model::solve_dense(&linear).unwrap();
        assert!(
            result.smoothed.max_mean_diff(&reference) < 1e-7,
            "diff {}",
            result.smoothed.max_mean_diff(&reference)
        );
        // Covariances at a linear solution equal the linear covariances.
        assert!(result.smoothed.max_cov_diff(&reference).unwrap() < 1e-7);
    }

    /// Pendulum smoothing: the classic nonlinear benchmark.  Ground truth is
    /// simulated; Gauss-Newton must beat the noisy observations.
    #[test]
    fn pendulum_smoothing_beats_observations() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (dt, g_over_l, q, r) = (0.05_f64, 9.81_f64, 1e-5_f64, 0.05_f64);
        let k = 120;
        // Simulate.
        let mut truth = vec![vec![0.8, 0.0]];
        for _ in 0..k {
            let s = truth.last().unwrap();
            truth.push(vec![
                s[0] + dt * s[1] + q * kalman_dense::random::standard_normal(&mut rng),
                s[1] - dt * g_over_l * s[0].sin()
                    + q * kalman_dense::random::standard_normal(&mut rng),
            ]);
        }
        let obs: Vec<f64> = truth
            .iter()
            .map(|s| s[0].sin() + r.sqrt() * kalman_dense::random::standard_normal(&mut rng))
            .collect();

        let mut model = NonlinearModel::new();
        for (i, &oi) in obs.iter().enumerate() {
            let mut step = if i == 0 {
                NonlinearStep::initial(2)
            } else {
                NonlinearStep::evolving(NonlinearEvolution {
                    f: Box::new(move |u: &[f64]| {
                        let val = vec![u[0] + dt * u[1], u[1] - dt * g_over_l * u[0].sin()];
                        let jac =
                            Matrix::from_rows(&[&[1.0, dt], &[-dt * g_over_l * u[0].cos(), 1.0]]);
                        (val, jac)
                    }),
                    out_dim: 2,
                    noise: CovarianceSpec::ScaledIdentity(2, 1e-4),
                })
            };
            step = step.with_observation(NonlinearObservation {
                g: Box::new(move |u: &[f64]| {
                    (vec![u[0].sin()], Matrix::from_rows(&[&[u[0].cos(), 0.0]]))
                }),
                o: vec![oi],
                noise: CovarianceSpec::ScaledIdentity(1, r),
            });
            model.push_step(step);
        }
        model.set_prior(vec![0.8, 0.0], CovarianceSpec::ScaledIdentity(2, 0.1));

        // Initialize from the prior mean held constant.
        let init = vec![vec![0.8, 0.0]; k + 1];
        let result = gauss_newton_smooth(&model, &init, GaussNewtonOptions::default()).unwrap();
        assert!(result.converged, "did not converge");

        // Angle RMSE of the smoothed trajectory must beat arcsin of raw
        // observations (clamped) used as a trivial estimator.
        let mut est_sq = 0.0;
        let mut obs_sq = 0.0;
        for i in 0..=k {
            est_sq += (result.smoothed.mean(i)[0] - truth[i][0]).powi(2);
            let naive = obs[i].clamp(-1.0, 1.0).asin();
            obs_sq += (naive - truth[i][0]).powi(2);
        }
        assert!(
            est_sq < 0.5 * obs_sq,
            "smoothing RMSE² {est_sq} should be well below naive {obs_sq}"
        );
        // Uncertainties are available.
        assert!(result.smoothed.covariances.is_some());
        assert!(result.cost.is_finite());
    }

    /// The line search never increases the cost, even from a poor start.
    #[test]
    fn cost_decreases_monotonically_from_bad_start() {
        let mut model = NonlinearModel::new();
        model.push_step(
            NonlinearStep::initial(1).with_observation(NonlinearObservation {
                g: Box::new(|u: &[f64]| {
                    (
                        vec![u[0].powi(3)],
                        Matrix::from_rows(&[&[3.0 * u[0] * u[0]]]),
                    )
                }),
                o: vec![8.0],
                noise: CovarianceSpec::Identity(1),
            }),
        );
        model.push_step(
            NonlinearStep::evolving(NonlinearEvolution {
                f: Box::new(|u: &[f64]| (vec![u[0]], Matrix::identity(1))),
                out_dim: 1,
                noise: CovarianceSpec::Identity(1),
            })
            .with_observation(NonlinearObservation {
                g: Box::new(|u: &[f64]| (vec![u[0]], Matrix::identity(1))),
                o: vec![2.0],
                noise: CovarianceSpec::Identity(1),
            }),
        );
        // u³ = 8 and u = 2 agree at u = 2; start far away.
        let init = vec![vec![0.5], vec![0.5]];
        let start_cost = cost(&model, &init).unwrap();
        let result = gauss_newton_smooth(&model, &init, GaussNewtonOptions::default()).unwrap();
        assert!(result.cost <= start_cost);
        assert!(
            (result.smoothed.mean(0)[0] - 2.0).abs() < 1e-3,
            "got {}",
            result.smoothed.mean(0)[0]
        );
    }

    #[test]
    fn mismatched_initial_length_is_rejected() {
        let mut model = NonlinearModel::new();
        model.push_step(NonlinearStep::initial(1));
        let err = gauss_newton_smooth(&model, &[], GaussNewtonOptions::default());
        assert!(matches!(err, Err(KalmanError::InvalidModel(_))));
    }
}

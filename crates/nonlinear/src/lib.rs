//! Gauss–Newton iterated nonlinear Kalman smoothing.
//!
//! The paper's §2.2 reduces nonlinear smoothing to a sequence of *linear*
//! smoothing problems: each Gauss–Newton step linearizes the evolution and
//! observation functions around the current trajectory estimate (the
//! Jacobians become the `F_i`/`G_i` of a linear model over trajectory
//! *increments*) and solves it with a linear smoother.  Crucially, the inner
//! solves do not need state covariances — this is exactly why the odd-even
//! and Paige–Saunders smoothers have their "NC" variants (§5.4): inside an
//! iterated/Levenberg–Marquardt nonlinear smoother the covariance phase is
//! skipped on every iteration and run once at convergence.
//!
//! This crate implements that outer loop with a backtracking line search
//! (the simple damping strategy of the paper's reference \[17\]) on top of
//! [`kalman_odd_even::odd_even_smooth`], so the whole nonlinear smoother is
//! parallel in time.
//!
//! # Example
//!
//! ```
//! use kalman_nonlinear::{NonlinearModel, NonlinearStep, NonlinearEvolution,
//!                        NonlinearObservation, gauss_newton_smooth, GaussNewtonOptions};
//! use kalman_model::CovarianceSpec;
//! use kalman_dense::Matrix;
//!
//! // A mildly nonlinear scalar system: u_i = u_{i-1} + 0.1 sin(u_{i-1}).
//! let mut model = NonlinearModel::new();
//! for i in 0..5usize {
//!     let mut step = if i == 0 {
//!         NonlinearStep::initial(1)
//!     } else {
//!         NonlinearStep::evolving(NonlinearEvolution {
//!             f: Box::new(|u: &[f64]| {
//!                 (vec![u[0] + 0.1 * u[0].sin()],
//!                  Matrix::from_rows(&[&[1.0 + 0.1 * u[0].cos()]]))
//!             }),
//!             out_dim: 1,
//!             noise: CovarianceSpec::ScaledIdentity(1, 0.1),
//!         })
//!     };
//!     step = step.with_observation(NonlinearObservation {
//!         g: Box::new(|u: &[f64]| (vec![u[0]], Matrix::identity(1))),
//!         o: vec![0.3 * i as f64],
//!         noise: CovarianceSpec::ScaledIdentity(1, 0.5),
//!     });
//!     model.push_step(step);
//! }
//! let init = vec![vec![0.0]; 5];
//! let result = gauss_newton_smooth(&model, &init, GaussNewtonOptions::default()).unwrap();
//! assert!(result.converged);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod gauss_newton;
mod nl_model;

pub use gauss_newton::{gauss_newton_smooth, GaussNewtonOptions, GaussNewtonResult};
pub use nl_model::{NonlinearEvolution, NonlinearModel, NonlinearObservation, NonlinearStep};

//! Nonlinear dynamic-system models (§2.1 with nonlinear `F_i`, `G_i`).

use kalman_dense::Matrix;
use kalman_model::{CovarianceSpec, KalmanError, Prior};

/// A differentiable vector function `u ↦ (value, Jacobian)`.
///
/// The Jacobian is evaluated together with the value because Gauss–Newton
/// always needs both at the same point.
pub type DiffFn = Box<dyn Fn(&[f64]) -> (Vec<f64>, Matrix) + Sync>;

/// A nonlinear evolution `u_i = F_i(u_{i-1}) + ε_i`, `cov(ε_i) = K_i`.
///
/// (The nonlinear reduction keeps `H_i = I`, as the nonlinear-smoothing
/// literature the paper cites does.)
pub struct NonlinearEvolution {
    /// `F_i` with its Jacobian (`out_dim × n_{i-1}`).
    pub f: DiffFn,
    /// Output dimension of `F_i` (the next state's dimension).
    pub out_dim: usize,
    /// Evolution noise covariance.
    pub noise: CovarianceSpec,
}

/// A nonlinear observation `o_i = G_i(u_i) + δ_i`, `cov(δ_i) = L_i`.
pub struct NonlinearObservation {
    /// `G_i` with its Jacobian (`m_i × n_i`).
    pub g: DiffFn,
    /// Observed values.
    pub o: Vec<f64>,
    /// Observation noise covariance.
    pub noise: CovarianceSpec,
}

/// One step of a nonlinear dynamic system.
pub struct NonlinearStep {
    /// State dimension `n_i`.
    pub state_dim: usize,
    /// Evolution from the previous state (`None` for step 0).
    pub evolution: Option<NonlinearEvolution>,
    /// Observation of this state.
    pub observation: Option<NonlinearObservation>,
}

impl NonlinearStep {
    /// The initial step with state dimension `n`.
    pub fn initial(n: usize) -> Self {
        NonlinearStep {
            state_dim: n,
            evolution: None,
            observation: None,
        }
    }

    /// A step evolving from its predecessor.
    pub fn evolving(evolution: NonlinearEvolution) -> Self {
        NonlinearStep {
            state_dim: evolution.out_dim,
            evolution: Some(evolution),
            observation: None,
        }
    }

    /// Attaches an observation.
    pub fn with_observation(mut self, observation: NonlinearObservation) -> Self {
        self.observation = Some(observation);
        self
    }
}

/// A complete nonlinear smoothing problem.
#[derive(Default)]
pub struct NonlinearModel {
    /// Per-state steps; `steps[0]` must have no evolution.
    pub steps: Vec<NonlinearStep>,
    /// Optional Gaussian prior on `u_0`.
    pub prior: Option<Prior>,
}

impl NonlinearModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push_step(&mut self, step: NonlinearStep) {
        self.steps.push(step);
    }

    /// Sets the prior on the initial state.
    pub fn set_prior(&mut self, mean: Vec<f64>, cov: CovarianceSpec) {
        self.prior = Some(Prior { mean, cov });
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.steps.len()
    }

    /// Light structural validation (full dimension checking happens on the
    /// linearized models every iteration).
    ///
    /// # Errors
    ///
    /// [`KalmanError::InvalidModel`] for structural defects.
    pub fn validate(&self) -> Result<(), KalmanError> {
        if self.steps.is_empty() {
            return Err(KalmanError::InvalidModel("model has no steps".into()));
        }
        if self.steps[0].evolution.is_some() {
            return Err(KalmanError::InvalidModel(
                "step 0 must not have an evolution equation".into(),
            ));
        }
        for (i, s) in self.steps.iter().enumerate().skip(1) {
            if s.evolution.is_none() {
                return Err(KalmanError::InvalidModel(format!(
                    "step {i} is missing its evolution equation"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_step() -> NonlinearStep {
        NonlinearStep::evolving(NonlinearEvolution {
            f: Box::new(|u| (vec![u[0]], Matrix::identity(1))),
            out_dim: 1,
            noise: CovarianceSpec::Identity(1),
        })
    }

    #[test]
    fn validation_catches_structure_errors() {
        let mut m = NonlinearModel::new();
        assert!(m.validate().is_err());
        m.push_step(scalar_step());
        assert!(m.validate().is_err()); // step 0 with evolution
        let mut ok = NonlinearModel::new();
        ok.push_step(NonlinearStep::initial(1));
        ok.push_step(scalar_step());
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn evolving_infers_state_dim() {
        let s = scalar_step();
        assert_eq!(s.state_dim, 1);
    }
}

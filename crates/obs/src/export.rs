//! Exporters over the whole registry: Prometheus text exposition and a
//! JSON snapshot sharing the repository's `BENCH_*.json` line
//! conventions.
//!
//! Both exporters allocate freely — they run on scrape/report paths, not
//! hot paths — and read the registry through
//! [`crate::metrics_snapshot`], so they see counters, gauges,
//! histograms, and samplers alike.

use std::fmt::Write as _;

use crate::metrics::{bucket_bounds, HistogramSnapshot};
use crate::registry::{metrics_snapshot, MetricReading};

/// Registered names are dot-separated (`serve.pool0.shard1.flushes`);
/// Prometheus metric names only allow `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

const NS_PER_SEC: f64 = 1e9;

/// Prometheus-style text exposition of every registered metric.
///
/// Counters become `# TYPE … counter` samples, gauges and samplers
/// become gauges, and histograms become classic cumulative
/// `…_bucket{le="…"}` series (bucket upper bounds and `_sum` converted
/// from recorded nanoseconds to seconds, per Prometheus convention for
/// timing histograms) plus `_sum` and `_count`.  Dots in registered
/// names become underscores.
pub fn prometheus_text() -> String {
    let mut out = String::new();
    for metric in metrics_snapshot() {
        let name = sanitize(&metric.name);
        match metric.reading {
            MetricReading::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricReading::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricReading::Histogram(snap) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cum = 0u64;
                for (idx, &c) in snap.buckets.iter().enumerate() {
                    cum += c;
                    // Skip interior empty buckets to keep the exposition
                    // readable; always emit a bucket once counts exist
                    // below it so the cumulative series stays monotone.
                    if c == 0 && cum == 0 {
                        continue;
                    }
                    let (_, hi) = bucket_bounds(idx);
                    let le = hi as f64 / NS_PER_SEC;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le:e}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                let _ = writeln!(out, "{name}_sum {}", snap.sum as f64 / NS_PER_SEC);
                let _ = writeln!(out, "{name}_count {}", snap.count);
            }
        }
    }
    out
}

fn json_entry(out: &mut String, first: &mut bool, name: &str, value: f64) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(out, "    {{\"name\": \"{name}\", \"value\": {value:.6e}}}");
}

fn histogram_entries(out: &mut String, first: &mut bool, name: &str, snap: &HistogramSnapshot) {
    json_entry(out, first, &format!("{name}/count"), snap.count as f64);
    for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        json_entry(
            out,
            first,
            &format!("{name}/{label}"),
            snap.quantile(q) / NS_PER_SEC,
        );
    }
    json_entry(
        out,
        first,
        &format!("{name}/mean"),
        snap.mean() / NS_PER_SEC,
    );
    json_entry(
        out,
        first,
        &format!("{name}/sum"),
        snap.sum as f64 / NS_PER_SEC,
    );
}

/// JSON snapshot of every registered metric in the repository's
/// `BENCH_*.json` line conventions: schema header, then one
/// `{"name": …, "value": …}` object per line, parseable by
/// `kalman_bench::read_bench_json`.
///
/// Counters and gauges export their value directly.  A histogram
/// `h` expands to `h/count`, `h/p50`, `h/p95`, `h/p99`, `h/mean`,
/// `h/sum`, with the timing entries converted from nanoseconds to
/// seconds (matching the bench files' seconds convention).
pub fn json_snapshot() -> String {
    let mut out = String::from("{\n  \"schema\": \"kalman-obs/1\",\n  \"entries\": [\n");
    let mut first = true;
    for metric in metrics_snapshot() {
        match metric.reading {
            MetricReading::Counter(v) => json_entry(&mut out, &mut first, &metric.name, v as f64),
            MetricReading::Gauge(v) => json_entry(&mut out, &mut first, &metric.name, v),
            MetricReading::Histogram(snap) => {
                histogram_entries(&mut out, &mut first, &metric.name, &snap)
            }
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, histogram, register_sampler};

    #[test]
    fn prometheus_exposition_is_well_formed() {
        counter("test.export.hits").add(3);
        let h = histogram("test.export.lat");
        for v in [500u64, 1_500, 1_500_000] {
            h.record(v);
        }
        register_sampler("test.export.sampled", || 0.25);

        let text = prometheus_text();
        assert!(text.contains("# TYPE test_export_hits counter"));
        assert!(text.contains("# TYPE test_export_lat histogram"));
        assert!(text.contains("# TYPE test_export_sampled gauge"));
        assert!(text.contains("test_export_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("test_export_lat_count 3"));

        // The cumulative bucket series must be monotone non-decreasing.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("test_export_lat_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone bucket series: {line}");
            last = v;
        }
    }

    #[test]
    fn json_snapshot_has_bench_line_format() {
        counter("test.export.json").add(11);
        histogram("test.export.json.lat").record(2_000);
        let json = json_snapshot();
        assert!(json.starts_with("{\n  \"schema\": \"kalman-obs/1\""));
        assert!(json.contains("{\"name\": \"test.export.json\", \"value\": 1.100000e1}"));
        assert!(json.contains("\"name\": \"test.export.json.lat/count\""));
        assert!(json.contains("\"name\": \"test.export.json.lat/p99\""));
        // Every entry line parses as the bench readers expect.
        for line in json
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"name\""))
        {
            let line = line.trim().trim_end_matches(',');
            assert!(
                line.starts_with("{\"name\": \"") && line.ends_with('}'),
                "{line}"
            );
        }
    }
}

//! Fixed-capacity ring-buffer journal for rare events — plan rebuilds,
//! rebalances, flush errors, backpressure transitions.
//!
//! Rare events carry more context than a counter can (which stream, which
//! shard, which shape), but must not cost allocation on the paths that
//! emit them: the ring is a `Vec` pre-allocated at one-time
//! initialization, entries are `Copy`, and recording is an uncontended
//! mutex lock plus a slot write.  When the ring wraps, old events are
//! overwritten; the monotone sequence number makes droppage *detectable*
//! — `journal_dropped()` and gaps in [`Event::seq`] both expose it.

use std::sync::{Mutex, OnceLock};

/// Ring capacity.  Sized for "rare" events: a steady-state serving run
/// emits a handful per rebalance or error, so 256 holds minutes of
/// history; a misbehaving system wraps, and the drop count says so.
const CAP: usize = 256;

/// One journal entry.  `kind` is a static name (e.g.
/// `serve.rebalance`); `a` and `b` are free-form payload words whose
/// meaning is documented per event kind in docs/OBSERVABILITY.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number, starting at 0.  A reader that sees
    /// `seq` jump by more than one between consecutive events knows the
    /// ring wrapped over the gap.
    pub seq: u64,
    /// Static event-kind name.
    pub kind: &'static str,
    /// First payload word (event-kind specific).
    pub a: u64,
    /// Second payload word (event-kind specific).
    pub b: u64,
}

struct Ring {
    /// Pre-allocated to `CAP` at init; `record` only overwrites slots.
    slots: Vec<Event>,
    /// Total events ever recorded; `next` slot is `recorded % CAP`.
    recorded: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            slots: Vec::with_capacity(CAP),
            recorded: 0,
        })
    })
}

/// Appends an event (crate-internal; the public gate is [`crate::event`],
/// which checks the runtime switch first, and under the `off` feature
/// compiles to a no-op that never reaches here).
#[cfg_attr(feature = "off", allow(dead_code))]
pub(crate) fn record(kind: &'static str, a: u64, b: u64) {
    let mut ring = ring().lock().unwrap_or_else(|p| p.into_inner());
    let seq = ring.recorded;
    let ev = Event { seq, kind, a, b };
    let idx = (seq % CAP as u64) as usize;
    if ring.slots.len() < CAP {
        // Still filling the pre-allocated buffer; `push` stays within
        // capacity, so no reallocation.
        // lint: allow(alloc, "push stays within the ring's pre-allocated capacity (CAP slots); never reallocates")
        ring.slots.push(ev);
    } else {
        ring.slots[idx] = ev;
    }
    ring.recorded = seq + 1;
}

/// The retained journal, oldest first.  At most the ring capacity (256)
/// events; older ones have been overwritten (see [`journal_dropped`]).
pub fn journal_events() -> Vec<Event> {
    let ring = ring().lock().unwrap_or_else(|p| p.into_inner());
    let n = ring.slots.len();
    let start = (ring.recorded as usize) % CAP;
    let mut out = Vec::with_capacity(n);
    if n < CAP {
        out.extend_from_slice(&ring.slots);
    } else {
        out.extend_from_slice(&ring.slots[start..]);
        out.extend_from_slice(&ring.slots[..start]);
    }
    out
}

/// Total events ever recorded, including overwritten ones.
pub fn journal_recorded() -> u64 {
    ring().lock().unwrap_or_else(|p| p.into_inner()).recorded
}

/// Events lost to ring wraparound (`recorded − retained`).
pub fn journal_dropped() -> u64 {
    let ring = ring().lock().unwrap_or_else(|p| p.into_inner());
    ring.recorded - ring.slots.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring is process-global, so the wraparound accounting test
    /// works in deltas and tolerates events recorded by other tests.
    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let base = journal_recorded();
        for i in 0..(CAP as u64 + 40) {
            record("test.journal.wrap", i, 0);
        }
        assert_eq!(journal_recorded(), base + CAP as u64 + 40);
        assert!(journal_dropped() >= 40, "ring must have wrapped");

        let events = journal_events();
        assert_eq!(events.len(), CAP);
        // Oldest-first and seq-contiguous once wrapped.
        for pair in events.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
        // The newest entry is the last one recorded.
        let last = events.last().unwrap();
        assert_eq!(last.seq, journal_recorded() - 1);
        assert_eq!(last.kind, "test.journal.wrap");
        assert_eq!(last.a, CAP as u64 + 39);
    }

    #[test]
    fn payload_round_trips() {
        record("test.journal.payload", 7, 99);
        let events = journal_events();
        let ev = events
            .iter()
            .rev()
            .find(|e| e.kind == "test.journal.payload")
            .expect("just recorded");
        assert_eq!((ev.a, ev.b), (7, 99));
    }
}

//! Low-overhead observability for the smoothing stack: a static registry
//! of lock-free metrics, RAII phase spans, a fixed-capacity event journal,
//! and Prometheus/JSON exporters.
//!
//! The design goal is the same discipline the numeric stack lives by:
//! **zero heap allocations in steady state**.  Registration (naming a
//! metric, first execution of a `span!` call site) may allocate; every
//! subsequent hot-path update is a handful of relaxed atomic operations on
//! pre-registered storage.
//!
//! | Piece | What it is |
//! |---|---|
//! | [`Counter`] | Monotone counter, striped across cache-padded per-thread cells |
//! | [`Gauge`] | Point-in-time signed value |
//! | [`Histogram`] | Log-bucketed (HDR-style) latency histogram with p50/p95/p99 readout |
//! | [`span!`] | RAII phase timer recording into a per-call-site histogram |
//! | [`Stamp`] | Queue-wait timestamp carried through channels |
//! | [`event`] | Fixed-capacity ring journal for rare events, with drop accounting |
//! | [`prometheus_text`] / [`json_snapshot`] | Exporters over the whole registry |
//!
//! # Two kill switches
//!
//! * **Runtime** ([`set_enabled`]): gates the instrumentation layer —
//!   spans, stamps, journal events — behind one relaxed atomic load, so
//!   enabled-vs-disabled overhead can be A/B-measured inside a single
//!   process (the `speedup/obs_on` benchmark gate does exactly this).
//! * **Compile time** (cargo feature `off`, exposed as `obs-off` on the
//!   umbrella crate): the `span!` macro, [`Stamp`], and [`event`] become
//!   no-ops and the disabled build is bitwise-identical in behavior.  The
//!   metric *primitives* stay functional even under `off`, because
//!   `kalman-serve`'s `Stats` snapshot is a typed view over them.
//!
//! # Example
//!
//! ```
//! use kalman_obs as obs;
//!
//! let hits = obs::counter("demo.cache.hits");
//! hits.add(3);
//! assert_eq!(hits.get(), 3);
//!
//! let lat = obs::histogram("demo.latency");
//! for ns in [100u64, 200, 400, 800] {
//!     lat.record(ns);
//! }
//! let snap = lat.snapshot();
//! assert_eq!(snap.count, 4);
//! assert!(snap.quantile(0.5) >= 100.0);
//!
//! {
//!     let _span = obs::span!("demo.phase");
//!     // ... timed work ...
//! }
//! // Text exposition covers everything registered so far.
//! assert!(obs::prometheus_text().contains("demo_cache_hits"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;
mod journal;
mod metrics;
mod registry;

pub use export::{json_snapshot, prometheus_text};
pub use journal::{journal_dropped, journal_events, journal_recorded, Event};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use registry::{
    counter, gauge, histogram, metrics_snapshot, register_sampler, MetricReading, MetricValue,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the runtime instrumentation switch on or off.  Affects spans,
/// stamps, and journal events — never the metric primitives, which the
/// serving layer's counters always update.  Defaults to on.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when the instrumentation layer is live: the crate was built
/// without the `off` feature *and* the runtime switch is on.
#[cfg(not(feature = "off"))]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `true` when the instrumentation layer is live — always `false` in this
/// build, which carries the compile-time `off` feature.
#[cfg(feature = "off")]
pub fn enabled() -> bool {
    false
}

/// Appends a journal event (see [`journal_events`]) when instrumentation
/// is enabled.  `a` and `b` are free-form payload words (a stream key, a
/// shard index, a shape signature — whatever identifies the event).
/// Allocation-free after the journal's one-time initialization.
#[cfg(not(feature = "off"))]
pub fn event(kind: &'static str, a: u64, b: u64) {
    if enabled() {
        journal::record(kind, a, b);
    }
}

/// Appends a journal event — a no-op in this build (`off` feature).
#[cfg(feature = "off")]
pub fn event(kind: &'static str, a: u64, b: u64) {
    let _ = (kind, a, b);
}

/// An RAII phase timer: records the span's wall-clock duration (in
/// nanoseconds) into its histogram when dropped.  Construct through the
/// [`span!`] macro, which caches the histogram handle per call site.
#[derive(Debug)]
pub struct SpanGuard(Option<(&'static Histogram, std::time::Instant)>);

impl SpanGuard {
    /// A live guard timing into `hist` ([`span!`] calls this when
    /// instrumentation is enabled).
    pub fn enter(hist: &'static Histogram) -> SpanGuard {
        if enabled() {
            SpanGuard(Some((hist, std::time::Instant::now())))
        } else {
            SpanGuard(None)
        }
    }

    /// A guard that records nothing (the disabled expansion of [`span!`]).
    pub fn disabled() -> SpanGuard {
        SpanGuard(None)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.0 {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Times the enclosing scope into the named histogram:
///
/// ```
/// # use kalman_obs as kalman_obs;
/// {
///     let _span = kalman_obs::span!("doc.example.phase");
///     // ... the timed phase ...
/// }
/// # if kalman_obs::enabled() {
/// assert_eq!(kalman_obs::histogram("doc.example.phase").snapshot().count, 1);
/// # }
/// ```
///
/// The histogram handle is resolved once per call site (a `OnceLock`), so
/// steady-state spans cost two `Instant` reads and one histogram record —
/// and nothing at all when instrumentation is disabled ([`set_enabled`])
/// or compiled out (`off` feature).  Bind the guard (`let _span = …`);
/// an unbound `span!(…)` drops immediately and times nothing.
#[cfg(not(feature = "off"))]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::SpanGuard::enter(SITE.get_or_init(|| $crate::histogram($name)))
    }};
}

/// Times the enclosing scope into the named histogram — compiled to a
/// no-op in this build (`off` feature).
#[cfg(feature = "off")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::disabled()
    };
}

/// A creation timestamp carried through queues to measure queue-wait
/// latency.  With instrumentation enabled it wraps an `Instant`; when
/// disabled at runtime it is inert, and under the `off` feature the type
/// holds no data at all — so the queue element layout carries no live
/// clock in disabled builds.
#[cfg(not(feature = "off"))]
#[derive(Debug, Clone, Copy)]
pub struct Stamp(Option<std::time::Instant>);

#[cfg(not(feature = "off"))]
impl Stamp {
    /// A stamp of the current instant (inert when instrumentation is
    /// disabled).
    pub fn now() -> Stamp {
        Stamp(enabled().then(std::time::Instant::now))
    }

    /// Nanoseconds since the stamp was taken, or `None` for an inert
    /// stamp.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|t| t.elapsed().as_nanos() as u64)
    }
}

/// A creation timestamp carried through queues — a zero-sized no-op in
/// this build (`off` feature).
#[cfg(feature = "off")]
#[derive(Debug, Clone, Copy)]
pub struct Stamp;

#[cfg(feature = "off")]
impl Stamp {
    /// An inert stamp (the `off` feature compiles the clock out).
    pub fn now() -> Stamp {
        Stamp
    }

    /// Always `None` in this build.
    pub fn elapsed_ns(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The runtime switch is process-global; tests that read or flip it
    /// must not interleave.
    static SWITCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn span_records_into_named_histogram() {
        let _lock = SWITCH_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let before = histogram("test.lib.span").snapshot().count;
        {
            let _span = span!("test.lib.span");
            std::hint::black_box(1 + 1);
        }
        let after = histogram("test.lib.span").snapshot().count;
        if enabled() {
            assert_eq!(after, before + 1);
        } else {
            assert_eq!(after, before);
        }
    }

    #[test]
    fn runtime_switch_gates_spans_and_stamps() {
        let _lock = SWITCH_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        if cfg!(feature = "off") {
            assert!(!enabled());
            return;
        }
        set_enabled(false);
        let before = histogram("test.lib.gated").snapshot().count;
        {
            let _span = span!("test.lib.gated");
        }
        assert_eq!(histogram("test.lib.gated").snapshot().count, before);
        assert!(Stamp::now().elapsed_ns().is_none());
        set_enabled(true);
        {
            let _span = span!("test.lib.gated");
        }
        assert_eq!(histogram("test.lib.gated").snapshot().count, before + 1);
        assert!(Stamp::now().elapsed_ns().is_some());
    }
}

//! The lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are updated with relaxed atomic operations and never allocate
//! after construction; snapshots fold the concurrent cells into owned,
//! plain values.  Relaxed ordering is deliberate: metrics tolerate
//! momentary cross-cell skew (a snapshot racing an update may be one tick
//! stale), and in exchange the hot path is a single uncontended RMW.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Stripes per [`Counter`].  A power of two so the thread-to-stripe map is
/// a mask; eight covers the container's core count without making
/// snapshots fold much.
const STRIPES: usize = 8;

/// One counter cell on its own cache line, so two threads bumping
/// different stripes never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Stripe(AtomicU64);

thread_local! {
    /// This thread's stripe assignment (round-robin at first use), so
    /// every thread keeps hitting one cell instead of bouncing a shared
    /// line.  `usize::MAX` = unassigned.
    static STRIPE_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

fn stripe_index() -> usize {
    STRIPE_ID.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
        c.set(v);
        v
    })
}

/// A monotone counter striped across cache-padded per-thread cells: each
/// writing thread bumps its own cell with one relaxed `fetch_add`, and
/// [`Counter::get`] folds the stripes.  No locks, no allocation after
/// registration.
#[derive(Debug)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    /// A zeroed counter (registries construct these; use
    /// [`crate::counter`] to get a named one).
    pub fn new() -> Counter {
        Counter {
            stripes: std::array::from_fn(|_| Stripe::default()),
        }
    }

    /// Adds `n` to the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Shorthand for `add(1)`.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The folded total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A point-in-time signed value (queue depth, engaged flag, last-flush
/// nanoseconds).  One atomic; snapshots read it directly.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (use [`crate::gauge`] to get a named one).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Stores `v`, returning the previous value (how the backpressure
    /// engage/release edge is detected without a lock).
    #[inline]
    pub fn swap(&self, v: i64) -> i64 {
        self.0.swap(v, Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros and bucket
/// `b ≥ 1` holds values whose bit length is `b`, i.e. the range
/// `[2^(b-1), 2^b − 1]` — the classic HDR-style log bucketing, covering
/// the whole `u64` range with ≤ 2× relative error per bucket.
pub const HIST_BUCKETS: usize = 65;

/// The bucket a value lands in (`0` for zero, else the value's bit
/// length).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive `(lower, upper)` value bounds of bucket `idx`.
pub(crate) fn bucket_bounds(idx: usize) -> (u64, u64) {
    debug_assert!(idx < HIST_BUCKETS);
    if idx == 0 {
        (0, 0)
    } else {
        (
            1u64 << (idx - 1),
            (1u64 << (idx - 1)).wrapping_mul(2).wrapping_sub(1),
        )
    }
}

/// A log-bucketed latency histogram over `u64` observations (the stack
/// records nanoseconds).  Recording is two relaxed `fetch_add`s on
/// pre-allocated atomic cells — lock-free, allocation-free — and
/// [`Histogram::snapshot`] folds the cells into an owned
/// [`HistogramSnapshot`] for quantile readout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (use [`crate::histogram`] to get a named one).
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Folds the atomic cells into an owned snapshot.  A snapshot racing
    /// concurrent writers may lag by in-flight observations, but every
    /// completed `record` is eventually visible to a later snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut count = 0u64;
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
            count += *dst;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, foldable histogram snapshot: per-bucket counts plus the
/// observation count and sum.  Obtained from [`Histogram::snapshot`];
/// merged bucket-wise by [`HistogramSnapshot::merge`] (how per-shard
/// latency histograms aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HIST_BUCKETS`] for the
    /// bucketing scheme).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded values, linearly
    /// interpolated inside the containing bucket.  `0.0` for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let (lo, hi) = bucket_bounds(idx);
                let within = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lo as f64 + within * (hi - lo) as f64;
            }
            cum = next;
        }
        let (_, hi) = bucket_bounds(HIST_BUCKETS - 1);
        hi as f64
    }

    /// Median shorthand.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` in bucket-wise (counts and sums add).  Sums wrap on
    /// overflow, matching the atomic `fetch_add` wrap inside
    /// [`Histogram::record`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The observations recorded since `earlier` was taken (both snapshots
    /// of the *same* histogram) — how the phase-profile benchmark turns
    /// cumulative span histograms into per-run timings.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (dst, (now, then)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *dst = now.saturating_sub(*then);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b, "lower bound of bucket {b}");
            assert_eq!(bucket_of(hi), b, "upper bound of bucket {b}");
            if b > 1 {
                assert_eq!(bucket_of(lo - 1), b - 1, "below bucket {b}");
            }
        }
    }

    proptest! {
        /// Every value lands in a bucket whose bounds contain it, and the
        /// quantile estimate of a single-valued histogram stays within
        /// that bucket (≤ 2x relative error by construction).
        #[test]
        fn bucketing_contains_and_bounds_error(v in any::<u64>()) {
            let b = bucket_of(v);
            let (lo, hi) = bucket_bounds(b);
            prop_assert!(lo <= v && v <= hi);
            let h = Histogram::new();
            h.record(v);
            let q = h.snapshot().quantile(0.5);
            prop_assert!(q >= lo as f64 && q <= hi as f64);
        }

        /// Merging two snapshots equals snapshotting the union.
        #[test]
        fn merge_matches_union(a in proptest::collection::vec(any::<u64>(), 0..40),
                               b in proptest::collection::vec(any::<u64>(), 0..40)) {
            let ha = Histogram::new();
            let hb = Histogram::new();
            let hu = Histogram::new();
            for &v in &a { ha.record(v); hu.record(v); }
            for &v in &b { hb.record(v); hu.record(v); }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());
            prop_assert_eq!(merged, hu.snapshot());
        }
    }

    #[test]
    fn quantiles_are_ordered_and_plausible() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000); // 1µs .. 1ms in ns
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Log bucketing bounds each estimate within 2x of the true value.
        assert!((2.5e5..=1.0e6).contains(&p50), "p50 {p50}");
        assert!(p99 <= 2.0e6, "p99 {p99}");
        assert!((s.mean() - 500_500.0).abs() < 1.0);
    }

    #[test]
    fn since_isolates_a_measurement_window() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(1000);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count, 1);
        assert_eq!(delta.sum, 1000);
    }

    #[test]
    fn concurrent_writers_fold_exactly() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (c, h) = (&c, &h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record(t as u64 * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        let s = h.snapshot();
        assert_eq!(s.count, THREADS as u64 * PER_THREAD);
        let expect: u64 = (0..THREADS as u64 * PER_THREAD).sum();
        assert_eq!(s.sum, expect);
    }

    #[test]
    fn gauge_set_add_swap() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(g.swap(7), 3);
        assert_eq!(g.get(), 7);
    }
}

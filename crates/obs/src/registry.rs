//! The static metric registry: name → metric, registered once, handles
//! `&'static` forever after.
//!
//! Registration (the first `counter("x")` for a given name) takes a lock
//! and allocates; every later lookup for the same name still takes the
//! lock but returns the existing handle without allocating.  Hot paths
//! therefore resolve their handle **once** — the `span!` macro caches it
//! in a per-call-site `OnceLock`, and the serving layer stores handles in
//! its shard structs at construction — and never touch the registry again.

use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A registered sampler: evaluated at snapshot/export time to read a
/// value owned elsewhere (workspace pool stats, allocator counters).
type Sampler = Box<dyn Fn() -> f64 + Send + Sync>;

enum Entry {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    Sampled(Sampler),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
            Entry::Sampled(_) => "sampler",
        }
    }
}

fn registry() -> &'static Mutex<Vec<(String, Entry)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(String, Entry)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lookup<T>(
    name: &str,
    matching: impl Fn(&Entry) -> Option<&'static T>,
    create: impl FnOnce() -> Entry,
) -> &'static T {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    if let Some((_, entry)) = reg.iter().find(|(n, _)| n == name) {
        return matching(entry).unwrap_or_else(|| {
            // lint: allow(panic, "programming error: a metric name reused with a different kind; the documented # Panics contract of every accessor")
            panic!(
                "metric {name:?} already registered as a {}, requested with a different kind",
                entry.kind()
            )
        });
    }
    let entry = create();
    // lint: allow(panic, "infallible: `create` builds the kind `matching` selects, in the same call")
    let handle = matching(&entry).expect("freshly created entry matches its own kind");
    reg.push((name.to_owned(), entry));
    handle
}

/// The counter registered under `name`, creating it on first use.  The
/// returned handle is `&'static`; store it, don't re-resolve per
/// operation.
///
/// # Panics
///
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    lookup(
        name,
        |e| match e {
            Entry::Counter(c) => Some(*c),
            _ => None,
        },
        || Entry::Counter(Box::leak(Box::new(Counter::new()))),
    )
}

/// The gauge registered under `name`, creating it on first use.
///
/// # Panics
///
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    lookup(
        name,
        |e| match e {
            Entry::Gauge(g) => Some(*g),
            _ => None,
        },
        || Entry::Gauge(Box::leak(Box::new(Gauge::new()))),
    )
}

/// The histogram registered under `name`, creating it on first use.
///
/// # Panics
///
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> &'static Histogram {
    lookup(
        name,
        |e| match e {
            Entry::Histogram(h) => Some(*h),
            _ => None,
        },
        || Entry::Histogram(Box::leak(Box::new(Histogram::new()))),
    )
}

/// Registers `sample` to be evaluated under `name` at snapshot/export
/// time — the bridge for values owned outside the registry (workspace
/// pool hit rates, allocator counters).  Replaces any previous sampler of
/// the same name, so re-registration is idempotent.
///
/// The closure runs while the registry lock is held: it must not call
/// back into this module (`counter`/`gauge`/… or the exporters), or it
/// will deadlock.
///
/// # Panics
///
/// If `name` is already registered as a non-sampler metric.
pub fn register_sampler(name: &str, sample: impl Fn() -> f64 + Send + Sync + 'static) {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    if let Some((_, entry)) = reg.iter_mut().find(|(n, _)| n == name) {
        match entry {
            Entry::Sampled(s) => *s = Box::new(sample),
            // lint: allow(panic, "programming error: a metric name reused with a different kind; documented # Panics contract")
            other => panic!(
                "metric {name:?} already registered as a {}, cannot become a sampler",
                other.kind()
            ),
        }
        return;
    }
    reg.push((name.to_owned(), Entry::Sampled(Box::new(sample))));
}

/// One metric's current value, as read by [`metrics_snapshot`].
// A histogram snapshot is ~0.5 KiB by value; readings exist only on
// scrape/report paths, where flat values beat a Box indirection in API
// simplicity and cost nothing that matters.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricReading {
    /// A counter's folded total.
    Counter(u64),
    /// A gauge's (or sampler's) point-in-time value.
    Gauge(f64),
    /// A histogram's folded snapshot.
    Histogram(HistogramSnapshot),
}

/// A named metric reading.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricValue {
    /// The registered name (dot-separated, e.g. `serve.pool0.shard1.flushes`).
    pub name: String,
    /// The value at snapshot time.
    pub reading: MetricReading,
}

/// Reads every registered metric — counters and histograms folded,
/// gauges loaded, samplers evaluated — in registration order.  This is
/// the one place the registry lock is held while values are read, so
/// samplers must not re-enter the registry.
pub fn metrics_snapshot() -> Vec<MetricValue> {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    reg.iter()
        .map(|(name, entry)| MetricValue {
            name: name.clone(),
            reading: match entry {
                Entry::Counter(c) => MetricReading::Counter(c.get()),
                Entry::Gauge(g) => MetricReading::Gauge(g.get() as f64),
                Entry::Histogram(h) => MetricReading::Histogram(h.snapshot()),
                Entry::Sampled(s) => MetricReading::Gauge(s()),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_handle() {
        let a = counter("test.registry.same") as *const Counter;
        let b = counter("test.registry.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        counter("test.registry.mismatch");
        gauge("test.registry.mismatch");
    }

    #[test]
    fn snapshot_sees_counter_updates() {
        let c = counter("test.registry.snapconsist");
        let before = read("test.registry.snapconsist");
        c.add(7);
        let after = read("test.registry.snapconsist");
        assert_eq!(after - before, 7);
    }

    #[test]
    fn sampler_is_replaceable_and_evaluated() {
        register_sampler("test.registry.sampler", || 1.5);
        assert_eq!(read_gauge("test.registry.sampler"), 1.5);
        register_sampler("test.registry.sampler", || 2.5);
        assert_eq!(read_gauge("test.registry.sampler"), 2.5);
    }

    fn read(name: &str) -> u64 {
        match metrics_snapshot()
            .into_iter()
            .find(|m| m.name == name)
            .expect("registered")
            .reading
        {
            MetricReading::Counter(v) => v,
            other => panic!("expected counter, got {other:?}"),
        }
    }

    fn read_gauge(name: &str) -> f64 {
        match metrics_snapshot()
            .into_iter()
            .find(|m| m.name == name)
            .expect("registered")
            .reading
        {
            MetricReading::Gauge(v) => v,
            other => panic!("expected gauge, got {other:?}"),
        }
    }
}

//! TBB-like parallel primitives for the parallel-in-time Kalman smoothers.
//!
//! The paper's C implementation uses Intel Threading Building Blocks: a
//! work-stealing scheduler plus `tbb::parallel_for` (with an explicit *block
//! size* — the number of iterations executed sequentially per task) and
//! `tbb::parallel_scan` (a generic two-pass parallel prefix scan).  This
//! crate reproduces that layer on top of [rayon], whose Cilk-lineage
//! work-stealing scheduler offers the same theoretical guarantees the paper
//! cites, and adds the *compiled sequential twin* the paper benchmarks
//! against: every primitive takes an [`ExecPolicy`], and
//! [`ExecPolicy::Seq`] replaces the parallel template with a plain loop that
//! never touches the scheduler (mirroring the paper's separately compiled
//! sequential builds, §5.1).
//!
//! # Example
//!
//! ```
//! use kalman_par::{ExecPolicy, for_each_mut, inclusive_scan_in_place};
//!
//! let mut v: Vec<u64> = (1..=100).collect();
//! for_each_mut(ExecPolicy::par(), &mut v, |_, x| *x *= 2);
//! inclusive_scan_in_place(ExecPolicy::par(), &mut v, |a, b| a + b);
//! assert_eq!(v[99], 100 * 101); // 2 * (1 + ... + 100)
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod pfor;
mod policy;
mod scan;

pub use pfor::{for_each_index, for_each_mut, map_collect, map_collect_into};
pub use policy::{
    available_parallelism, current_pool_threads, run_with_threads, ExecPolicy, DEFAULT_GRAIN,
};
pub use scan::{inclusive_scan_in_place, suffix_scan_in_place};

//! `parallel_for` equivalents with explicit grain control.

use crate::ExecPolicy;
use rayon::prelude::*;

/// Applies `f` to every index in `0..n`, mirroring `tbb::parallel_for` over a
/// `blocked_range` with the policy's block size.
pub fn for_each_index<F>(policy: ExecPolicy, n: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    match policy {
        ExecPolicy::Seq => {
            for i in 0..n {
                f(i);
            }
        }
        ExecPolicy::Par { grain } => {
            let grain = grain.max(1);
            // Chunked indices: each task runs `grain` consecutive iterations
            // sequentially, like TBB's simple_partitioner with a block size.
            (0..n)
                .into_par_iter()
                .with_min_len(grain)
                .with_max_len(grain)
                .for_each(&f);
        }
    }
}

/// Applies `f(i, &mut item)` to every element of `items`.
///
/// This is the primitive the smoothers use to initialize and transform the
/// per-step structure array in place.
pub fn for_each_mut<T, F>(policy: ExecPolicy, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync + Send,
{
    match policy {
        ExecPolicy::Seq => {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
        }
        ExecPolicy::Par { grain } => {
            let grain = grain.max(1);
            items
                .par_chunks_mut(grain)
                .enumerate()
                .for_each(|(c, chunk)| {
                    let base = c * grain;
                    for (off, item) in chunk.iter_mut().enumerate() {
                        f(base + off, item);
                    }
                });
        }
    }
}

/// Evaluates `f(i)` for `i` in `0..n` and collects the results in order.
pub fn map_collect<T, F>(policy: ExecPolicy, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    match policy {
        ExecPolicy::Seq => (0..n).map(f).collect(),
        ExecPolicy::Par { grain } => {
            let grain = grain.max(1);
            (0..n).into_par_iter().with_min_len(grain).map(f).collect()
        }
    }
}

/// Evaluates `f(i)` for `i` in `0..n` into a reused output vector: `out` is
/// cleared and refilled with `Some(f(i))` in index order, retaining its
/// capacity across calls.  This is the allocation-free twin of
/// [`map_collect`] for hot loops that run the same batch shape repeatedly
/// (a streaming smoother's per-flush factorization levels): after warmup
/// the batch produces zero container allocations.
///
/// Results are written to pre-assigned slots, so ordering — and therefore
/// bitwise determinism versus [`ExecPolicy::Seq`] — is independent of steal
/// timing, exactly like [`map_collect`].
pub fn map_collect_into<T, F>(policy: ExecPolicy, n: usize, out: &mut Vec<Option<T>>, f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    out.clear();
    out.resize_with(n, || None);
    match policy {
        ExecPolicy::Seq => {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = Some(f(i));
            }
        }
        ExecPolicy::Par { grain } => {
            let grain = grain.max(1);
            out.par_chunks_mut(grain)
                .enumerate()
                .for_each(|(c, chunk)| {
                    let base = c * grain;
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(base + off));
                    }
                });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_index_visits_every_index_once() {
        for policy in [
            ExecPolicy::Seq,
            ExecPolicy::par(),
            ExecPolicy::par_with_grain(1),
        ] {
            let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
            for_each_index(policy, 97, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed); // Relaxed: pure count; the parallel region's join orders it before the assert.
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1)); // Relaxed: read after the join's happens-before edge.
        }
    }

    #[test]
    fn for_each_mut_matches_sequential() {
        let mut seq: Vec<usize> = (0..1000).collect();
        let mut par: Vec<usize> = (0..1000).collect();
        for_each_mut(ExecPolicy::Seq, &mut seq, |i, x| *x = *x * 3 + i);
        for_each_mut(ExecPolicy::par_with_grain(7), &mut par, |i, x| {
            *x = *x * 3 + i
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn map_collect_preserves_order() {
        let seq = map_collect(ExecPolicy::Seq, 500, |i| i * i);
        let par = map_collect(ExecPolicy::par_with_grain(3), 500, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn map_collect_into_matches_and_reuses_capacity() {
        let mut out: Vec<Option<usize>> = Vec::new();
        for policy in [ExecPolicy::Seq, ExecPolicy::par_with_grain(7)] {
            map_collect_into(policy, 300, &mut out, |i| i * 2);
            assert_eq!(out.len(), 300);
            assert!(out.iter().enumerate().all(|(i, v)| *v == Some(i * 2)));
            let cap = out.capacity();
            // A smaller refill keeps the capacity (no churn).
            map_collect_into(policy, 10, &mut out, |i| i);
            assert_eq!(out.len(), 10);
            assert_eq!(out.capacity(), cap);
            // Empty batches are fine.
            map_collect_into(policy, 0, &mut out, |i| i);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn empty_ranges_are_fine() {
        for_each_index(ExecPolicy::par(), 0, |_| panic!("must not run"));
        let v: Vec<u8> = map_collect(ExecPolicy::par(), 0, |_| 0u8);
        assert!(v.is_empty());
        let mut empty: [u8; 0] = [];
        for_each_mut(ExecPolicy::par(), &mut empty, |_, _| panic!("must not run"));
    }

    #[test]
    fn huge_grain_degenerates_to_sequential_chunks() {
        let mut v: Vec<usize> = (0..100).collect();
        for_each_mut(ExecPolicy::par_with_grain(1_000_000), &mut v, |i, x| {
            *x += i
        });
        let expect: Vec<usize> = (0..100).map(|i| 2 * i).collect();
        assert_eq!(v, expect);
    }
}

/// Default block size (grain) for parallel loops.
///
/// The paper uses a TBB block size of 10 unless noted otherwise (§5.1) and
/// shows (Fig. 6, left) that performance is flat from 1 up to ~1000.
pub const DEFAULT_GRAIN: usize = 10;

/// Execution policy for the parallel primitives.
///
/// `Seq` is not "parallel code on one thread": it compiles to plain loops
/// with no scheduler involvement, exactly like the paper's separately
/// compiled sequential variants.  `Par` uses the rayon pool that is current
/// at the call site (see [`run_with_threads`]) with the given grain size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Plain sequential loops; no scheduler, no task overhead.
    Seq,
    /// Work-stealing parallel execution with the given block size (grain):
    /// the number of consecutive iterations each task executes sequentially.
    Par {
        /// Number of consecutive iterations per task; must be >= 1.
        grain: usize,
    },
}

impl ExecPolicy {
    /// Parallel policy with the paper's default block size.
    pub fn par() -> Self {
        ExecPolicy::Par {
            grain: DEFAULT_GRAIN,
        }
    }

    /// Parallel policy with an explicit block size (clamped to >= 1).
    pub fn par_with_grain(grain: usize) -> Self {
        ExecPolicy::Par {
            grain: grain.max(1),
        }
    }

    /// `true` for the parallel policy.
    pub fn is_parallel(&self) -> bool {
        matches!(self, ExecPolicy::Par { .. })
    }

    /// The grain size (1 for sequential policies, which do not chunk).
    pub fn grain(&self) -> usize {
        match self {
            ExecPolicy::Seq => 1,
            ExecPolicy::Par { grain } => (*grain).max(1),
        }
    }

    /// The policy a batch of `len` items should actually run under: a
    /// parallel policy degrades to [`ExecPolicy::Seq`] when the batch fits
    /// in a single grain — such a batch cannot split, so going through the
    /// scheduler only adds task overhead.  This is the per-level execution
    /// decision a `SmoothPlan` records for the deep (tiny) levels of the
    /// odd-even recursion.  Arithmetic is unaffected: the parallel
    /// primitives are index-stable, so `Seq` and `Par` are bitwise equal.
    pub fn for_len(self, len: usize) -> ExecPolicy {
        match self {
            ExecPolicy::Par { grain } if len <= grain.max(1) => ExecPolicy::Seq,
            p => p,
        }
    }
}

/// Runs `f` inside a dedicated rayon pool with `threads` worker threads.
///
/// This is how the benchmark harness sweeps core counts, mirroring the
/// paper's "instruct TBB to use a certain number of cores".  Nested calls to
/// the parallel primitives inside `f` use this pool.
///
/// # Panics
///
/// Panics if the pool cannot be built (e.g. `threads == 0`).
pub fn run_with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool");
    pool.install(f)
}

/// Number of worker threads in the rayon pool current at the call site:
/// the enclosing [`run_with_threads`] pool's size, or the global pool's
/// size (which honors `RAYON_NUM_THREADS`) outside any pool.  This is the
/// parallelism an `ExecPolicy::Par` loop here would actually run with —
/// report this, not [`available_parallelism`], next to measured speedups.
pub fn current_pool_threads() -> usize {
    rayon::current_num_threads()
}

/// Number of hardware threads available to this process.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grain_is_clamped() {
        assert_eq!(ExecPolicy::par_with_grain(0).grain(), 1);
        assert_eq!(ExecPolicy::par_with_grain(7).grain(), 7);
        assert_eq!(ExecPolicy::Seq.grain(), 1);
    }

    #[test]
    fn for_len_degrades_single_grain_batches() {
        let par = ExecPolicy::par_with_grain(10);
        assert_eq!(par.for_len(10), ExecPolicy::Seq);
        assert_eq!(par.for_len(1), ExecPolicy::Seq);
        assert_eq!(par.for_len(11), par);
        assert_eq!(ExecPolicy::Seq.for_len(1_000_000), ExecPolicy::Seq);
    }

    #[test]
    fn default_par_uses_paper_block_size() {
        assert_eq!(ExecPolicy::par().grain(), DEFAULT_GRAIN);
    }

    #[test]
    fn run_with_threads_returns_value() {
        let x = run_with_threads(2, || 21 * 2);
        assert_eq!(x, 42);
    }

    #[test]
    fn run_with_threads_controls_pool_size() {
        let n = run_with_threads(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }
}
